"""End-to-end physical design flow on a generated benchmark.

Covers the full substrate the reproduction builds:

1. generate a synthetic sequential design,
2. export/reimport the library (Liberty), constraints (SDC) and netlist
   placement (Bookshelf) to show the interchange formats,
3. run differentiable-timing-driven global placement,
4. legalize and refine,
5. evaluate with the golden STA (setup + hold) and print a timing report.

Run:  python examples/timing_driven_flow.py
"""

import os
import tempfile

import numpy as np

from repro.core import TimingDrivenPlacer, TimingPlacerOptions
from repro.netlist import (
    GeneratorSpec,
    generate_design,
    load_placement,
    parse_liberty,
    parse_sdc,
    save_placement,
    write_bookshelf,
    write_liberty,
    write_sdc,
)
from repro.place import PlacerOptions, greedy_refine, hpwl, legalize, max_overlap
from repro.sta import format_path, run_sta, worst_paths


def main():
    # ------------------------------------------------------------------
    # 1. Generate the design.
    # ------------------------------------------------------------------
    spec = GeneratorSpec(name="flowdemo", n_cells=600, depth=14, seed=42)
    design = generate_design(spec)
    print(f"Generated {design}; die = {design.die}, "
          f"clock period = {design.constraints.clock_period:.0f} ps")

    # ------------------------------------------------------------------
    # 2. Interchange formats round-trip.
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        lib_text = write_liberty(design.library)
        sdc_text = write_sdc(design.constraints)
        parse_liberty(lib_text)
        parse_sdc(sdc_text)
        aux = write_bookshelf(design, tmp)
        print(f"Exported Liberty ({len(lib_text.splitlines())} lines), "
              f"SDC ({len(sdc_text.splitlines())} lines), "
              f"Bookshelf bundle at {os.path.basename(aux)}")

        # --------------------------------------------------------------
        # 3. Timing-driven global placement.
        # --------------------------------------------------------------
        placer = TimingDrivenPlacer(
            design, TimingPlacerOptions(placer=PlacerOptions(max_iters=600))
        )
        gp = placer.run()
        print(f"\nGlobal placement: {gp.iterations} iterations "
              f"({gp.stop_reason}), overflow = {gp.overflow:.3f}, "
              f"HPWL = {gp.hpwl:.0f} um")

        # --------------------------------------------------------------
        # 4. Legalization + detailed refinement.
        # --------------------------------------------------------------
        lx, ly = legalize(design, gp.x, gp.y)
        rx, ry = greedy_refine(design, lx, ly, passes=1)
        assert max_overlap(design, rx, ry) < 1e-9
        print(f"Legalized: HPWL = {hpwl(design, rx, ry):.0f} um "
              f"(+{100 * (hpwl(design, rx, ry) / gp.hpwl - 1):.1f}% vs GP), "
              f"no overlaps")

        # Save/reload the final placement through the .pl format.
        pl_path = os.path.join(tmp, "final.pl")
        save_placement(design, rx, ry, pl_path)
        rx2, ry2 = load_placement(design, pl_path)
        assert np.allclose(rx2, rx, atol=1e-5)

        # --------------------------------------------------------------
        # 5. Sign-off style evaluation.
        # --------------------------------------------------------------
        result = run_sta(design, rx, ry, compute_hold=True)
        print(f"\nFinal timing (golden STA, after legalization):")
        print(f"  setup: WNS = {result.wns_setup:9.1f} ps   "
              f"TNS = {result.tns_setup:11.1f} ps")
        print(f"  hold:  WNS = {result.wns_hold:9.1f} ps   "
              f"TNS = {result.tns_hold:11.1f} ps")
        violations = int((result.endpoint_slack < 0).sum())
        print(f"  {violations}/{len(result.endpoint_slack)} endpoints violate setup")

        print("\nTop-2 critical paths:")
        for path in worst_paths(result, 2):
            print(format_path(path))
            print()


if __name__ == "__main__":
    main()
