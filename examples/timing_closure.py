"""Full timing-closure flow: place, legalize, refine, buffer, sign off.

Chains every optimization stage this repository provides, reporting the
slack histogram after each one (the [34] "histogram compression" view):

1. differentiable-timing-driven global placement (the paper),
2. Abacus legalization,
3. incremental-STA-driven detailed placement (swap/gap moves),
4. greedy timing-driven buffer insertion (netlist ECO),
5. final golden sign-off with hold checks, propagated clock and RUDY
   congestion.

Run:  python examples/timing_closure.py
"""

from repro.core import TimingDrivenPlacer, TimingPlacerOptions
from repro.netlist import GeneratorSpec, generate_design
from repro.place import (
    BufferingOptions,
    DetailedPlacerOptions,
    PlacerOptions,
    TimingDrivenBufferizer,
    TimingDrivenDetailedPlacer,
    legalize,
    max_overlap,
    rudy_map,
)
from repro.sta import (
    format_histogram,
    histogram_compression,
    run_sta,
    slack_histogram,
)


def stage(design, x, y, label, baseline_hist=None):
    result = run_sta(design, x, y)
    hist = slack_histogram(result)
    line = (f"{label:<22} WNS {result.wns_setup:8.1f}  "
            f"TNS {result.tns_setup:10.1f}  "
            f"violations {hist.n_violating}/{hist.n_endpoints}")
    if baseline_hist is not None:
        line += (f"  compression "
                 f"{100 * histogram_compression(baseline_hist, hist):5.1f}%")
    print(line)
    return hist


def main():
    design = generate_design(
        GeneratorSpec(name="closure", n_cells=500, depth=12, seed=23)
    )
    print(f"{design}; clock period "
          f"{design.constraints.clock_period:.0f} ps\n")

    # 1. Global placement with the differentiable timing objective.
    gp = TimingDrivenPlacer(
        design, TimingPlacerOptions(placer=PlacerOptions(max_iters=600))
    ).run()
    base_hist = stage(design, gp.x, gp.y, "global placement")

    # 2. Legalization.
    lx, ly = legalize(design, gp.x, gp.y)
    stage(design, lx, ly, "legalized", base_hist)

    # 3. Timing-driven detailed placement.
    dp = TimingDrivenDetailedPlacer(
        design, DetailedPlacerOptions(passes=2, n_critical_paths=6)
    ).run(lx, ly)
    stage(design, dp.x, dp.y, "detailed placement", base_hist)

    # 4. Buffer insertion (edits the netlist - new design object).
    buf = TimingDrivenBufferizer(BufferingOptions(max_buffers=6)).run(
        design, dp.x, dp.y
    )
    bx, by = legalize(buf.design, buf.x, buf.y)
    assert max_overlap(buf.design, bx, by) < 1e-9
    hist = stage(buf.design, bx, by, f"buffered (+{buf.n_inserted} cells)",
                 base_hist)

    # 5. Sign-off.
    final = run_sta(buf.design, bx, by, compute_hold=True,
                    propagated_clock=True)
    congestion = rudy_map(buf.design, bx, by)
    print(f"\nsign-off (propagated clock, skew "
          f"{final.clock.skew:.1f} ps):")
    print(f"  setup WNS/TNS : {final.wns_setup:.1f} / "
          f"{final.tns_setup:.1f} ps")
    print(f"  hold  WNS/TNS : {final.wns_hold:.1f} / "
          f"{final.tns_hold:.1f} ps")
    print(f"  RUDY congestion: peak {congestion.peak:.2f}, "
          f"mean {congestion.mean:.3f}")
    print()
    print(format_histogram(hist))


if __name__ == "__main__":
    main()
