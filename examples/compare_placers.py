"""Compare the three Table 3 placers on one miniblue design.

Runs plain DREAMPlace-style placement, the momentum net-weighting baseline
of [24], and the paper's differentiable-timing placer on the same design,
then prints a one-design slice of Table 3 plus the legalized metrics.

Run:  python examples/compare_placers.py [design] [max_iters]
      (default: miniblue18, 600 iterations)
"""

import sys

from repro.harness import load_design, run_mode
from repro.place import PlacerOptions, hpwl, legalize, max_overlap
from repro.sta import run_sta


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "miniblue18"
    max_iters = int(sys.argv[2]) if len(sys.argv) > 2 else 600
    design = load_design(name)
    print(f"Design {name}: {design.n_cells} cells, {design.n_nets} nets, "
          f"{design.n_pins} pins, clock period "
          f"{design.constraints.clock_period:.0f} ps\n")

    header = (f"{'placer':<12} {'WNS (ps)':>10} {'TNS (ps)':>12} "
              f"{'HPWL (um)':>11} {'time (s)':>9} {'legal WNS':>10}  stop")
    print(header)
    print("-" * len(header))
    records = {}
    for mode in ("dreamplace", "netweight", "ours"):
        rec = run_mode(
            design, mode, placer_options=PlacerOptions(max_iters=max_iters)
        )
        records[mode] = rec
        # Legalize and re-evaluate: the ranking should survive.
        lx, ly = legalize(design, rec.x, rec.y)
        assert max_overlap(design, lx, ly) < 1e-9
        legal = run_sta(design, lx, ly)
        print(f"{mode:<12} {rec.wns:>10.1f} {rec.tns:>12.1f} "
              f"{rec.hpwl:>11.1f} {rec.runtime:>9.2f} "
              f"{legal.wns_setup:>10.1f}  {rec.stop_reason}")
        if rec.stop_reason != "overflow":
            print(f"{'':>12} WARNING: {mode} did not reach the density "
                  f"target; its global-placement metrics are not "
                  f"meaningful - raise max_iters (currently {max_iters}).")

    ours, nw = records["ours"], records["netweight"]
    base = records["dreamplace"]
    print(f"\nWNS improvement vs net weighting: "
          f"{100 * (abs(nw.wns) - abs(ours.wns)) / abs(nw.wns):.1f}%")
    print(f"TNS improvement vs net weighting: "
          f"{100 * (abs(nw.tns) - abs(ours.tns)) / abs(nw.tns):.1f}%")
    print(f"HPWL overhead vs plain DREAMPlace: "
          f"{100 * (ours.hpwl - base.hpwl) / base.hpwl:.1f}%")


if __name__ == "__main__":
    main()
