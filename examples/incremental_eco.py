"""ECO-style incremental timing: move cells, get slacks back in ms.

The ICCAD 2015 contest the paper evaluates on is *incremental*
timing-driven placement: engineering-change-order (ECO) moves must be
timed without re-analysing the design.  This example:

1. places a design and legalizes it,
2. opens an :class:`~repro.sta.IncrementalTimer` session on it,
3. replays a series of trial moves, comparing the incremental updates
   against full golden-STA runs (they match exactly),
4. finishes with the timing-driven detailed placer, which uses the same
   engine to accept/reject hundreds of candidate moves per second.

Run:  python examples/incremental_eco.py
"""

import time

import numpy as np

from repro.netlist import GeneratorSpec, generate_design
from repro.place import (
    DetailedPlacerOptions,
    GlobalPlacer,
    PlacerOptions,
    TimingDrivenDetailedPlacer,
    legalize,
    max_overlap,
)
from repro.sta import IncrementalTimer, run_sta


def main():
    design = generate_design(GeneratorSpec(name="eco", n_cells=350, depth=9, seed=17))
    gp = GlobalPlacer(design, PlacerOptions(max_iters=400)).run()
    lx, ly = legalize(design, gp.x, gp.y)
    print(f"{design}: placed and legalized "
          f"(HPWL {gp.hpwl:.0f} um, overflow {gp.overflow:.3f})")

    # ------------------------------------------------------------------
    # Incremental session.
    # ------------------------------------------------------------------
    timer = IncrementalTimer(design)
    timer.reset(lx, ly)
    print(f"\nBaseline: WNS = {timer.wns:.1f} ps, TNS = {timer.tns:.1f} ps")

    rng = np.random.default_rng(0)
    movable = np.nonzero(~design.cell_fixed)[0]
    print(f"\n{'move':>4} {'cell':<8} {'inc WNS':>9} {'golden WNS':>11} "
          f"{'inc (ms)':>9} {'full (ms)':>10}")
    for k in range(5):
        ci = int(rng.choice(movable))
        nx = float(np.clip(timer.x[ci] + rng.normal(0, 6), 0, design.die[2]))
        ny = float(np.clip(timer.y[ci] + rng.normal(0, 6), 0, design.die[3]))
        t0 = time.perf_counter()
        wns, _ = timer.move([ci], [nx], [ny])
        t_inc = (time.perf_counter() - t0) * 1e3
        t0 = time.perf_counter()
        golden = run_sta(design, timer.x, timer.y)
        t_full = (time.perf_counter() - t0) * 1e3
        print(f"{k:>4} {design.cell_name[ci]:<8} {wns:>9.2f} "
              f"{golden.wns_setup:>11.2f} {t_inc:>9.2f} {t_full:>10.2f}")
    print(f"(pins recomputed per move: "
          f"~{timer.n_pins_recomputed // timer.n_incremental_updates} "
          f"of {design.n_pins})")

    # ------------------------------------------------------------------
    # Timing-driven detailed placement on top of the same engine.
    # ------------------------------------------------------------------
    print("\nTiming-driven detailed placement (swap + gap moves):")
    dp = TimingDrivenDetailedPlacer(
        design, DetailedPlacerOptions(passes=2, n_critical_paths=6)
    )
    t0 = time.perf_counter()
    result = dp.run(lx, ly)
    elapsed = time.perf_counter() - t0
    print(f"  WNS {result.wns_before:8.1f} -> {result.wns_after:8.1f} ps")
    print(f"  TNS {result.tns_before:8.1f} -> {result.tns_after:8.1f} ps")
    print(f"  {result.n_accepted}/{result.n_trials} moves accepted "
          f"in {elapsed:.1f}s")
    assert max_overlap(design, result.x, result.y) < 1e-9
    print("  placement remains legal")


if __name__ == "__main__":
    main()
