"""Inspect the differentiable timer: gradients, smoothing, and validation.

Shows what the paper's engine actually computes:
1. smoothed TNS/WNS vs the golden STA across gamma values (Section 3.2);
2. the gradient of TNS with respect to every cell location, validated
   against central finite differences (Sections 3.4-3.5);
3. the timing-critical cells the gradient identifies, cross-checked
   against the cells on the golden STA's worst paths.

Run:  python examples/gradcheck_demo.py
"""

import numpy as np

from repro.core import DifferentiableTimer, check_gradient
from repro.netlist import GeneratorSpec, generate_design
from repro.route import build_forest
from repro.sta import run_sta, worst_paths


def main():
    design = generate_design(GeneratorSpec(name="gc", n_cells=200, depth=8, seed=9))
    rng = np.random.default_rng(0)
    x = design.cell_x + rng.normal(0, 6, design.n_cells)
    y = design.cell_y + rng.normal(0, 6, design.n_cells)
    x[design.cell_fixed] = design.cell_x[design.cell_fixed]
    y[design.cell_fixed] = design.cell_y[design.cell_fixed]
    forest = build_forest(design, x, y)

    # ------------------------------------------------------------------
    # 1. Smoothing accuracy vs gamma.
    # ------------------------------------------------------------------
    golden = run_sta(design, x, y)
    print(f"Golden STA:   WNS = {golden.wns_setup:9.2f}  "
          f"TNS = {golden.tns_setup:11.2f}")
    for gamma in (1.0, 5.0, 20.0, 80.0):
        tape = DifferentiableTimer(design, gamma=gamma).forward(x, y, forest)
        print(f"gamma = {gamma:5.1f}: WNS = {tape.wns:9.2f}  "
              f"TNS = {tape.tns:11.2f}")

    # ------------------------------------------------------------------
    # 2. Gradient validation against finite differences.
    # ------------------------------------------------------------------
    timer = DifferentiableTimer(design, gamma=15.0)
    tape = timer.forward(x, y, forest)
    gx, gy = timer.backward(tape, d_tns=1.0)

    def objective(pos_x):
        t = timer.forward(pos_x, y, forest)
        return t.tns

    movable = np.nonzero(~design.cell_fixed)[0]
    probes = movable[np.argsort(-np.abs(gx[movable]))[:12]]
    report = check_gradient(objective, gx, x, indices=probes, eps=1e-4, rtol=2e-3)
    print(f"\nGradient check on the 12 highest-gradient cells: {report}")

    # ------------------------------------------------------------------
    # 3. Who does the gradient blame?
    # ------------------------------------------------------------------
    magnitude = np.hypot(gx, gy)
    top = np.argsort(-magnitude)[:10]
    print("\nTop-10 cells by |d TNS / d position|:")
    for ci in top:
        print(f"  {design.cell_name[ci]:<10} |g| = {magnitude[ci]:8.3f} "
              f"({design.cell_type_of(ci).name})")

    path_cells = set()
    for path in worst_paths(golden, 3):
        for point in path.points:
            path_cells.add(int(design.pin2cell[point.pin]))
    overlap = sum(1 for ci in top if int(ci) in path_cells)
    print(f"\n{overlap}/10 of those cells lie on the golden STA's "
          f"3 most critical paths.")


if __name__ == "__main__":
    main()
