"""Quickstart: build a tiny design, analyse it, and place it timing-driven.

Demonstrates the three core APIs in ~60 lines:
1. ``DesignBuilder`` - constructing a netlist against the default library;
2. ``run_sta`` / ``worst_paths`` - golden static timing analysis;
3. ``TimingDrivenPlacer`` - the paper's differentiable-timing placement.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import TimingDrivenPlacer, TimingPlacerOptions
from repro.netlist import Constraints, DesignBuilder, default_library
from repro.place import PlacerOptions
from repro.sta import format_path, run_sta, worst_paths


def build_design():
    """A 2-bit XOR/AND pipeline: 2 inputs -> logic cloud -> FF -> output."""
    library = default_library()
    constraints = Constraints(clock_period=220.0, clock_port="clk")
    b = DesignBuilder(
        "quickstart", library, die=(0, 0, 60, 30), constraints=constraints
    )
    b.add_input("clk", x=0, y=0)
    b.add_input("a", x=0, y=10)
    b.add_input("b", x=0, y=20)
    b.add_output("q", x=60, y=15)

    b.add_cell("x0", "XOR2_X1")
    b.add_cell("n0", "NAND2_X1")
    b.add_cell("o0", "OR2_X1")
    b.add_cell("i0", "INV_X1")
    b.add_cell("ff", "DFF_X1")

    b.add_net("na", ["a", "x0/A", "n0/A"])
    b.add_net("nb", ["b", "x0/B", "n0/B"])
    b.add_net("nx", ["x0/Y", "o0/A"])
    b.add_net("nn", ["n0/Y", "o0/B"])
    b.add_net("no", ["o0/Y", "i0/A"])
    b.add_net("ni", ["i0/Y", "ff/D"])
    b.add_net("nq", ["ff/Q", "q"])
    b.add_net("clknet", ["clk", "ff/CK"])
    return b.build()


def main():
    design = build_design()
    print(f"Built {design}")

    # --- Golden STA at the initial (centered) placement -----------------
    before = run_sta(design)
    print(f"\nInitial timing: WNS = {before.wns_setup:.1f} ps, "
          f"TNS = {before.tns_setup:.1f} ps")
    print("\nMost critical path before placement:")
    print(format_path(worst_paths(before, 1)[0]))

    # --- Timing-driven global placement ---------------------------------
    placer = TimingDrivenPlacer(
        design,
        TimingPlacerOptions(placer=PlacerOptions(max_iters=300)),
    )
    result = placer.run()
    after = run_sta(design, result.x, result.y)
    print(f"\nPlaced in {result.iterations} iterations "
          f"({result.stop_reason}); HPWL = {result.hpwl:.1f} um")
    print(f"Final timing:   WNS = {after.wns_setup:.1f} ps, "
          f"TNS = {after.tns_setup:.1f} ps")

    print("\nMost critical path after placement:")
    print(format_path(worst_paths(after, 1)[0]))


if __name__ == "__main__":
    main()
