"""Ablation: Steiner-tree reuse period (Section 3.6).

The paper calls FLUTE every 10 iterations and updates Steiner points from
their owner pins in between (Figure 4), trading a small gradient error for
a large runtime saving.  This benchmark sweeps the rebuild period on
miniblue18 and reports placement runtime, RSMT call count and final
timing.  Expected shape: runtime drops as the period grows; quality stays
flat through period ~10 and may degrade for very stale trees.
"""

import pytest
from conftest import write_artifact

from repro.core import (
    TimingDrivenPlacer,
    TimingObjectiveOptions,
    TimingPlacerOptions,
)
from repro.place import PlacerOptions
from repro.sta import run_sta

PERIODS = (1, 10, 40)


@pytest.fixture(scope="module")
def sweep(miniblue18):
    rows = []
    for period in PERIODS:
        opts = TimingPlacerOptions(
            placer=PlacerOptions(max_iters=600),
            timing=TimingObjectiveOptions(rsmt_period=period),
            sta_in_trace=False,
        )
        placer = TimingDrivenPlacer(miniblue18, opts)
        result = placer.run()
        final = run_sta(miniblue18, result.x, result.y)
        rows.append(
            {
                "period": period,
                "runtime": result.runtime,
                "rsmt_calls": placer.objective.n_rsmt_calls,
                "timer_calls": placer.objective.n_timer_calls,
                "wns": final.wns_setup,
                "tns": final.tns_setup,
                "stop": result.stop_reason,
            }
        )
    return rows


def test_steiner_reuse_artifact(benchmark, sweep):
    lines = [
        f"{'period':>7} {'runtime(s)':>11} {'RSMT calls':>11} "
        f"{'timer calls':>12} {'WNS':>10} {'TNS':>12}"
    ]
    for r in sweep:
        lines.append(
            f"{r['period']:>7} {r['runtime']:>11.2f} {r['rsmt_calls']:>11} "
            f"{r['timer_calls']:>12} {r['wns']:>10.1f} {r['tns']:>12.1f}"
        )
    write_artifact("ablation_steiner_reuse.txt", "\n".join(lines))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_rsmt_calls_scale_inversely_with_period(sweep):
    by_period = {r["period"]: r for r in sweep}
    assert by_period[1]["rsmt_calls"] > 5 * by_period[10]["rsmt_calls"]
    assert by_period[10]["rsmt_calls"] > by_period[40]["rsmt_calls"]


def test_reuse_saves_runtime(sweep):
    by_period = {r["period"]: r for r in sweep}
    assert by_period[10]["runtime"] < by_period[1]["runtime"]


def test_quality_tolerates_period_ten(sweep):
    """Period-10 reuse (the paper's setting) keeps TNS within 15% of
    rebuilding every iteration."""
    by_period = {r["period"]: r for r in sweep}
    fresh = abs(by_period[1]["tns"])
    reused = abs(by_period[10]["tns"])
    assert reused < 1.15 * fresh
