"""Ablation: TNS-only vs WNS-only vs combined objective (Equation (6)).

The paper's objective carries both a TNS and a WNS term.  This benchmark
disables each term in turn on miniblue18.  Expected shape: the TNS-only
variant leaves WNS on the table; the WNS-only variant fixates on the
single worst path and recovers less TNS; the combined objective is the
best TNS/WNS compromise (and is what Table 3 uses).
"""

import pytest
from conftest import write_artifact

from repro.core import (
    TimingDrivenPlacer,
    TimingObjectiveOptions,
    TimingPlacerOptions,
)
from repro.place import GlobalPlacer, PlacerOptions
from repro.sta import run_sta

VARIANTS = {
    "tns_only": dict(tns_grad_frac=0.08, wns_grad_frac=0.0),
    "wns_only": dict(tns_grad_frac=0.0, wns_grad_frac=0.05),
    "combined": dict(tns_grad_frac=0.08, wns_grad_frac=0.05),
}


@pytest.fixture(scope="module")
def sweep(miniblue18):
    rows = {}
    base = GlobalPlacer(miniblue18, PlacerOptions(max_iters=600)).run()
    rb = run_sta(miniblue18, base.x, base.y)
    rows["baseline"] = {
        "wns": rb.wns_setup,
        "tns": rb.tns_setup,
        "hpwl": base.hpwl,
        "stop": base.stop_reason,
    }
    for name, overrides in VARIANTS.items():
        opts = TimingPlacerOptions(
            placer=PlacerOptions(max_iters=600),
            timing=TimingObjectiveOptions(**overrides),
            sta_in_trace=False,
        )
        result = TimingDrivenPlacer(miniblue18, opts).run()
        final = run_sta(miniblue18, result.x, result.y)
        rows[name] = {
            "wns": final.wns_setup,
            "tns": final.tns_setup,
            "hpwl": result.hpwl,
            "stop": result.stop_reason,
        }
    return rows


def test_objective_ablation_artifact(benchmark, sweep):
    lines = [f"{'variant':<10} {'WNS':>10} {'TNS':>12} {'HPWL':>10}  stop"]
    for name, r in sweep.items():
        lines.append(
            f"{name:<10} {r['wns']:>10.1f} {r['tns']:>12.1f} "
            f"{r['hpwl']:>10.1f}  {r['stop']}"
        )
    write_artifact("ablation_objective.txt", "\n".join(lines))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_each_term_beats_baseline_on_its_metric(sweep):
    assert sweep["tns_only"]["tns"] > sweep["baseline"]["tns"]
    assert sweep["wns_only"]["wns"] > sweep["baseline"]["wns"]


def test_combined_improves_both_metrics(sweep):
    assert sweep["combined"]["wns"] > sweep["baseline"]["wns"]
    assert sweep["combined"]["tns"] > sweep["baseline"]["tns"]


def test_all_variants_converge(sweep):
    for name, r in sweep.items():
        assert r["stop"] == "overflow", f"{name} stopped by {r['stop']}"
