"""Extension flow: GP -> legalization -> timing-driven detailed placement.

Not a paper table (the paper stops at global placement) but the natural
end of its pipeline: the incremental-STA-driven detailed placer should
recover additional WNS/TNS on the *legalized* placement at zero legality
cost, and the incremental engine should be an order of magnitude cheaper
per evaluation than a full STA call.
"""

import time

import pytest
from conftest import write_artifact

from repro.core import TimingDrivenPlacer, TimingPlacerOptions
from repro.place import (
    DetailedPlacerOptions,
    PlacerOptions,
    TimingDrivenDetailedPlacer,
    legalize,
    max_overlap,
)
from repro.place import BufferingOptions, TimingDrivenBufferizer
from repro.sta import IncrementalTimer, StaticTimingAnalyzer, run_sta


@pytest.fixture(scope="module")
def flow(miniblue18):
    design = miniblue18
    gp = TimingDrivenPlacer(
        design,
        TimingPlacerOptions(placer=PlacerOptions(max_iters=600), sta_in_trace=False),
    ).run()
    lx, ly = legalize(design, gp.x, gp.y)
    lg_sta = run_sta(design, lx, ly)
    dp = TimingDrivenDetailedPlacer(
        design, DetailedPlacerOptions(passes=1, n_critical_paths=6)
    )
    dp_result = dp.run(lx, ly)
    buf = TimingDrivenBufferizer(BufferingOptions(max_buffers=5)).run(
        design, dp_result.x, dp_result.y
    )
    return design, gp, (lx, ly), lg_sta, dp_result, buf


def test_flow_artifact(benchmark, flow):
    design, gp, (lx, ly), lg_sta, dp_result, buf = flow
    lines = [
        f"{'stage':<22} {'WNS':>10} {'TNS':>12}",
        f"{'global placement':<22} {run_sta(design, gp.x, gp.y).wns_setup:>10.1f} "
        f"{run_sta(design, gp.x, gp.y).tns_setup:>12.1f}",
        f"{'legalized':<22} {lg_sta.wns_setup:>10.1f} {lg_sta.tns_setup:>12.1f}",
        f"{'detailed placement':<22} {dp_result.wns_after:>10.1f} "
        f"{dp_result.tns_after:>12.1f}",
        f"{'buffered':<22} {buf.wns_after:>10.1f} {buf.tns_after:>12.1f}",
        f"moves accepted: {dp_result.n_accepted}/{dp_result.n_trials}; "
        f"buffers inserted: {buf.n_inserted}/{buf.n_trials} trials",
    ]
    write_artifact("flow_detailed.txt", "\n".join(lines))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_detailed_placement_recovers_timing(flow):
    design, gp, (lx, ly), lg_sta, dp_result, buf = flow
    assert dp_result.wns_after >= dp_result.wns_before - 1e-6
    assert dp_result.tns_after > dp_result.tns_before
    assert max_overlap(design, dp_result.x, dp_result.y) < 1e-9


def test_bench_incremental_move(benchmark, flow):
    design, gp, (lx, ly), lg_sta, dp_result, buf = flow
    timer = IncrementalTimer(design)
    timer.reset(lx, ly)
    import numpy as np

    movable = np.nonzero(~design.cell_fixed)[0]
    rng = np.random.default_rng(0)
    state = {"toggle": 1.0}

    def one_move():
        ci = int(rng.choice(movable))
        state["toggle"] = -state["toggle"]
        timer.move([ci], [timer.x[ci] + state["toggle"]], [timer.y[ci]])

    benchmark(one_move)


def test_incremental_cheaper_than_full_sta(flow):
    design, gp, (lx, ly), lg_sta, dp_result, buf = flow
    timer = IncrementalTimer(design)
    timer.reset(lx, ly)
    sta = StaticTimingAnalyzer(design, timer.graph)
    import numpy as np

    movable = np.nonzero(~design.cell_fixed)[0]
    rng = np.random.default_rng(1)

    t0 = time.perf_counter()
    for _ in range(10):
        ci = int(rng.choice(movable))
        timer.move([ci], [timer.x[ci] + 0.5], [timer.y[ci]])
    t_inc = (time.perf_counter() - t0) / 10

    t0 = time.perf_counter()
    for _ in range(3):
        sta.run(timer.x, timer.y)
    t_full = (time.perf_counter() - t0) / 3
    assert t_inc < t_full / 3


def test_buffering_never_degrades(flow):
    design, gp, (lx, ly), lg_sta, dp_result, buf = flow
    score_before = buf.tns_before + 50.0 * buf.wns_before
    score_after = buf.tns_after + 50.0 * buf.wns_after
    assert score_after >= score_before - 1e-6
