"""Figure 8 reproduction: optimization curves on miniblue4.

Collects HPWL / density overflow / WNS / TNS per iteration for plain
DREAMPlace and for our timing-driven placer, writes the text panel and a
CSV artifact, and asserts the figure's qualitative shape:

- both placers' overflow curves descend to the stop criterion and nearly
  coincide (the timing objective does not disturb spreading);
- HPWL curves stay close (within a modest margin);
- the timing curves separate in later iterations in our favour.
"""

import numpy as np
import pytest
from conftest import write_artifact

from repro.harness.curves import format_fig8, run_fig8, to_csv
from repro.harness.plots import curves_svg, placement_svg, save_svg
from repro.harness.suite import load_design


@pytest.fixture(scope="module")
def fig8_data():
    return run_fig8("miniblue4", max_iters=600)


def test_fig8_artifacts(benchmark, fig8_data):
    write_artifact("fig8_curves.txt", format_fig8(fig8_data, step=20))
    write_artifact("fig8_curves.csv", to_csv(fig8_data))
    benchmark.pedantic(
        format_fig8, args=(fig8_data,), kwargs={"step": 20}, rounds=1, iterations=1
    )


def test_fig8_svg_panels(fig8_data):
    """SVG renderings of the four Figure 8 panels + final placements."""
    import os

    from conftest import RESULTS_DIR

    os.makedirs(RESULTS_DIR, exist_ok=True)
    for metric, ylabel in (
        ("hpwl", "HPWL (um)"),
        ("overflow", "density overflow"),
        ("wns", "WNS (ps)"),
        ("tns", "TNS (ps)"),
    ):
        series = {
            mode: fig8_data.panel(metric, mode) for mode in fig8_data.series
        }
        svg = curves_svg(
            series, title=f"{fig8_data.design}: {metric}", ylabel=ylabel
        )
        save_svg(svg, os.path.join(RESULTS_DIR, f"fig8_{metric}.svg"))
    design = load_design(fig8_data.design)
    for mode, rec in fig8_data.records.items():
        svg = placement_svg(
            design, rec.x, rec.y, title=f"{fig8_data.design} ({mode})"
        )
        save_svg(svg, os.path.join(RESULTS_DIR, f"placement_{mode}.svg"))


def test_overflow_curves_descend_and_coincide(fig8_data):
    final = {}
    for mode in ("dreamplace", "ours"):
        its, ovf = fig8_data.panel("overflow", mode)
        assert ovf[0] > 0.8
        final[mode] = ovf[-1]
    assert abs(final["dreamplace"] - final["ours"]) < 0.1


def test_hpwl_curves_stay_close(fig8_data):
    base = fig8_data.records["dreamplace"].hpwl
    ours = fig8_data.records["ours"].hpwl
    assert ours < 1.25 * base


def test_timing_curves_separate_in_our_favour(fig8_data):
    ours = fig8_data.records["ours"]
    base = fig8_data.records["dreamplace"]
    assert ours.wns > base.wns
    assert ours.tns > base.tns
    # Mid-flight (after timing kicks in) our WNS curve should already be
    # above the baseline's at matching iterations.
    its_b, wns_b = fig8_data.panel("wns", "dreamplace")
    its_o, wns_o = fig8_data.panel("wns", "ours")
    common = sorted(set(its_b.tolist()) & set(its_o.tolist()))
    late = [it for it in common if it >= 0.7 * common[-1]]
    wins = 0
    for it in late:
        b = wns_b[np.nonzero(its_b == it)[0][0]]
        o = wns_o[np.nonzero(its_o == it)[0][0]]
        wins += int(o >= b)
    assert wins >= len(late) * 0.6
