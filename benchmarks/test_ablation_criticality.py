"""Ablation: net-criticality policy of the net-weighting baseline.

The net-weighting literature differs mainly in the slack-to-weight map;
this benchmark compares the three implemented policies (linear = the
DREAMPlace 4.0 form of Table 3's baseline, exponential, threshold) under
otherwise identical settings.  The reproduction's Table 3 uses 'linear';
the ablation documents how sensitive the baseline is to that choice - and
that our differentiable placer beats every variant.
"""

import pytest
from conftest import write_artifact

from repro.core import TimingDrivenPlacer, TimingPlacerOptions
from repro.place import PlacerOptions
from repro.place.netweight import NetWeightingPlacer, NetWeightOptions
from repro.sta import run_sta

POLICIES = ("linear", "exponential", "threshold")


@pytest.fixture(scope="module")
def sweep(miniblue18):
    design = miniblue18
    rows = {}
    for policy in POLICIES:
        nw = NetWeightingPlacer(
            design,
            PlacerOptions(max_iters=600),
            NetWeightOptions(criticality=policy),
        )
        result = nw.run()
        final = run_sta(design, result.x, result.y)
        rows[policy] = {
            "wns": final.wns_setup,
            "tns": final.tns_setup,
            "hpwl": result.hpwl,
            "stop": result.stop_reason,
        }
    ours = TimingDrivenPlacer(
        design,
        TimingPlacerOptions(placer=PlacerOptions(max_iters=600), sta_in_trace=False),
    ).run()
    final = run_sta(design, ours.x, ours.y)
    rows["ours(diff)"] = {
        "wns": final.wns_setup,
        "tns": final.tns_setup,
        "hpwl": ours.hpwl,
        "stop": ours.stop_reason,
    }
    return rows


def test_criticality_ablation_artifact(benchmark, sweep):
    lines = [f"{'policy':<12} {'WNS':>10} {'TNS':>12} {'HPWL':>10}  stop"]
    for name, r in sweep.items():
        lines.append(
            f"{name:<12} {r['wns']:>10.1f} {r['tns']:>12.1f} "
            f"{r['hpwl']:>10.1f}  {r['stop']}"
        )
    write_artifact("ablation_criticality.txt", "\n".join(lines))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_all_policies_converge(sweep):
    for name, r in sweep.items():
        assert r["stop"] == "overflow", f"{name} stopped by {r['stop']}"


def test_differentiable_beats_every_policy_on_wns(sweep):
    """WNS is the paper's headline metric: ours leads every variant.

    On TNS an aggressively tuned exponential policy can come within a few
    percent (at a visible HPWL cost), so the TNS assertion is against the
    Table 3 baseline policy ('linear') plus a 5% band for the others.
    """
    ours = sweep["ours(diff)"]
    for policy in POLICIES:
        assert ours["wns"] >= sweep[policy]["wns"] - 1e-9
    assert ours["tns"] >= sweep["linear"]["tns"] - 1e-9
    for policy in POLICIES:
        assert abs(ours["tns"]) <= 1.05 * abs(sweep[policy]["tns"])
