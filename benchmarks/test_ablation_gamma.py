"""Ablation: the LSE smoothing factor gamma (Section 3.2).

The paper notes gamma trades smoothness against accuracy.  This benchmark
sweeps gamma in the timing objective on miniblue18 and reports final
golden-STA WNS/TNS and HPWL, plus the *static* approximation error of the
smoothed metrics at a fixed placement.  Expected shape: mid-range gamma
places best; tiny gamma approximates the hard max well but optimizes only
the single critical path, huge gamma oversmooths and misguides.
"""

import pytest
from conftest import write_artifact

from repro.core import (
    DifferentiableTimer,
    TimingDrivenPlacer,
    TimingObjectiveOptions,
    TimingPlacerOptions,
)
from repro.place import PlacerOptions
from repro.route import build_forest
from repro.sta import run_sta

GAMMAS = (2.0, 20.0, 120.0)


@pytest.fixture(scope="module")
def sweep(miniblue18):
    design = miniblue18
    rows = []
    for gamma in GAMMAS:
        opts = TimingPlacerOptions(
            placer=PlacerOptions(max_iters=600),
            timing=TimingObjectiveOptions(gamma=gamma),
            sta_in_trace=False,
        )
        result = TimingDrivenPlacer(design, opts).run()
        final = run_sta(design, result.x, result.y)
        rows.append(
            {
                "gamma": gamma,
                "wns": final.wns_setup,
                "tns": final.tns_setup,
                "hpwl": result.hpwl,
                "stop": result.stop_reason,
            }
        )
    return rows


def test_gamma_ablation_artifact(benchmark, sweep, miniblue18):
    lines = [f"{'gamma':>8} {'WNS':>10} {'TNS':>12} {'HPWL':>10}  stop"]
    for r in sweep:
        lines.append(
            f"{r['gamma']:>8.1f} {r['wns']:>10.1f} {r['tns']:>12.1f} "
            f"{r['hpwl']:>10.1f}  {r['stop']}"
        )
    write_artifact("ablation_gamma.txt", "\n".join(lines))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_all_gammas_converge(sweep):
    for r in sweep:
        assert r["stop"] == "overflow", f"gamma={r['gamma']} diverged"


def test_static_smoothing_error_grows_with_gamma(miniblue18):
    """At a fixed placement, |smoothed - exact| WNS grows with gamma."""
    design = miniblue18
    golden = run_sta(design)
    forest = build_forest(design)
    errors = []
    for gamma in GAMMAS:
        tape = DifferentiableTimer(design, gamma=gamma).forward(
            design.cell_x, design.cell_y, forest
        )
        errors.append(abs(tape.wns - golden.wns_setup))
    assert errors[0] < errors[1] < errors[2]


def test_moderate_gamma_not_dominated(sweep):
    """The default mid-range gamma should be at least as good on TNS as
    the extremes (it is what the paper tunes to ~100 in their units)."""
    by_gamma = {r["gamma"]: r for r in sweep}
    mid = by_gamma[GAMMAS[1]]
    assert mid["tns"] >= min(r["tns"] for r in sweep)
