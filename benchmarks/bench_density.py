"""Density-kernel benchmark: seed scipy path vs planned-FFT fast path.

Times one full ``DensityModel.evaluate`` (splat -> Poisson solve ->
field -> gather) per variant on fixed designs and grids:

- **legacy** (the baseline): the seed implementation, reproduced inline
  below exactly as it shipped - four sequential ``np.add.at`` splat
  passes, a per-call ``scipy.fft.dctn``/``idctn`` round-trip,
  ``np.gradient`` central differences, and a fancy-indexed 2-D gather
  that recomputes the bilinear weights per corner.
- **scipy**: today's ``solver="scipy"`` reference path (shared fused
  splat/gather, same per-call scipy transforms).
- **planned**: ``solver="planned"`` - rfft plans with precomputed
  twiddle tables, reciprocal eigen-denominator, spectral E-field,
  Parseval energy.
- **planned-fp32**: the planned path with ``precision="fp32"``
  (complex64 FFTs in the solve; splat/gather stay float64).

Variants are timed interleaved (one rep of each per round) and reported
as the median over ``--repeats`` rounds, which damps machine drift; a
separate profiled pass records the per-stage splat/solve/gather
breakdown through :data:`repro.perf.PROFILER`.

Gates (non-zero exit): planned-fp64 speedup vs legacy below
``--min-speedup`` at the ``--gate-bins`` grid of the gate design (the
last ``--designs`` entry; CI runs midiblue50 with ``--min-speedup
1.5``), and a gradient cross-check vs legacy beyond loose rtol (the
spectral field differs from central differences by the O(h^2) stencil
truncation, so this catches wiring bugs, not ULPs).  Writes
``benchmarks/results/BENCH_density.json`` and appends a
``density_evaluate`` perf-ledger record for ``repro.harness trend``.

Usage::

    PYTHONPATH=src python benchmarks/bench_density.py
        [--designs miniblue18 midiblue50] [--n-bins 64 128 256]
        [--repeats 9] [--gate-bins 128] [--min-speedup 1.5]
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time

import numpy as np
from scipy.fft import dctn, idctn

from repro.harness.suite import load_design
from repro.perf import PROFILER
from repro.place.density import DensityModel
from repro.telemetry.history import append_record

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
HISTORY_DIR = os.path.join(os.path.dirname(__file__), "history")


class LegacyDensity:
    """The seed density implementation, verbatim (the bench baseline).

    Kept inline so the benchmark keeps measuring against the true
    pre-optimization path even as ``repro.place.density`` evolves -
    same approach as the suite-runner bench's cold baseline.
    """

    def __init__(self, design, n_bins=64, target_density=1.0):
        xl, yl, xh, yh = design.die
        self.design = design
        self.xl, self.yl = xl, yl
        self.nb = n_bins
        self.hx = (xh - xl) / n_bins
        self.hy = (yh - yl) / n_bins
        self.target_density = target_density
        self.movable = ~design.cell_fixed
        self.area = design.cell_w * design.cell_h
        self.movable_area_total = float(self.area[self.movable].sum())
        self.bin_area = self.hx * self.hy
        eigen = 2.0 - 2.0 * np.cos(np.pi * np.arange(n_bins) / n_bins)
        denom = (
            eigen[:, None] / (self.hx * self.hx)
            + eigen[None, :] / (self.hy * self.hy)
        )
        denom[0, 0] = 1.0
        self._denominator = denom

    def _splat(self, x, y):
        nb = self.nb
        gx = (x[self.movable] - self.xl) / self.hx - 0.5
        gy = (y[self.movable] - self.yl) / self.hy - 0.5
        gx = np.clip(gx, 0.0, nb - 1.000001)
        gy = np.clip(gy, 0.0, nb - 1.000001)
        ix = np.floor(gx).astype(np.int64)
        iy = np.floor(gy).astype(np.int64)
        fx = gx - ix
        fy = gy - iy
        mass = self.area[self.movable]
        rho = np.zeros((nb, nb))
        np.add.at(rho, (ix, iy), mass * (1 - fx) * (1 - fy))
        np.add.at(rho, (ix + 1, iy), mass * fx * (1 - fy))
        np.add.at(rho, (ix, iy + 1), mass * (1 - fx) * fy)
        np.add.at(rho, (ix + 1, iy + 1), mass * fx * fy)
        return rho, (ix, iy, fx, fy, mass)

    def _solve_poisson(self, rho):
        source = rho / self.bin_area
        source = source - source.mean()
        coeff = dctn(source, type=2, norm="ortho")
        coeff = coeff / self._denominator
        coeff[0, 0] = 0.0
        return idctn(coeff, type=2, norm="ortho")

    def evaluate(self, x, y):
        rho, (ix, iy, fx, fy, mass) = self._splat(x, y)
        phi = self._solve_poisson(rho)
        ex = -np.gradient(phi, self.hx, axis=0)
        ey = -np.gradient(phi, self.hy, axis=1)

        def gather(field):
            return (
                field[ix, iy] * (1 - fx) * (1 - fy)
                + field[ix + 1, iy] * fx * (1 - fy)
                + field[ix, iy + 1] * (1 - fx) * fy
                + field[ix + 1, iy + 1] * fx * fy
            )

        grad_x = np.zeros(self.design.n_cells)
        grad_y = np.zeros(self.design.n_cells)
        grad_x[self.movable] = -mass * gather(ex)
        grad_y[self.movable] = -mass * gather(ey)
        energy = 0.5 * float(np.sum(rho / self.bin_area * phi)) * self.bin_area
        capacity = self.target_density * self.bin_area
        overflow = float(np.maximum(rho - capacity, 0.0).sum())
        overflow /= max(self.movable_area_total, 1e-12)
        return energy, overflow, grad_x, grad_y


def _build_variants(design, n_bins):
    return {
        "legacy": LegacyDensity(design, n_bins),
        "scipy": DensityModel(design, n_bins, solver="scipy"),
        "planned": DensityModel(design, n_bins, solver="planned"),
        "planned-fp32": DensityModel(
            design, n_bins, solver="planned", precision="fp32"
        ),
    }


def _time_variants(variants, x, y, repeats, warmup=2):
    """Interleaved timing; returns {variant: median_seconds}."""
    samples = {name: [] for name in variants}
    for _ in range(warmup):
        for model in variants.values():
            model.evaluate(x, y)
    for _ in range(repeats):
        for name, model in variants.items():
            t0 = time.perf_counter()
            model.evaluate(x, y)
            samples[name].append(time.perf_counter() - t0)
    return {name: statistics.median(s) for name, s in samples.items()}


def _stage_breakdown(model, x, y, reps=5):
    """Per-stage seconds for one model via a profiled pass."""
    was_enabled = PROFILER.enabled
    PROFILER.reset()
    PROFILER.enable()
    try:
        for _ in range(reps):
            model.evaluate(x, y)
        stats = PROFILER.stats()
    finally:
        PROFILER.reset()
        if not was_enabled:
            PROFILER.disable()
    return {
        name: round(entry["mean_s"] * 1e3, 4)
        for name, entry in stats.items()
        if name.startswith("density.")
    }


def _cross_check(legacy, model, x, y, grad_rtol):
    """Planned-vs-seed sanity: sharp where exact, loose where not.

    Energy (Parseval vs grid inner product, same spectral solve) and
    overflow (identical splat) must match to near machine precision.
    The gradient only matches loosely: the seed's central-difference
    field attenuates high spatial frequencies (its transfer function is
    ``sin(kh)/kh``) where the planned field differentiates the
    interpolant exactly, and on a rough density map the two legitimately
    differ by ~15-20% in L2.  A wiring bug (swapped axes, lost ``1/h``)
    lands at O(1), far beyond ``grad_rtol``.
    """
    e_ref, o_ref, gx_ref, gy_ref = legacy.evaluate(x, y)
    res = model.evaluate(x, y)
    num = np.linalg.norm(res.grad_x - gx_ref) + np.linalg.norm(
        res.grad_y - gy_ref
    )
    den = np.linalg.norm(gx_ref) + np.linalg.norm(gy_ref) + 1e-30
    checks = {
        "grad_rel_l2": float(num / den),
        "energy_rel": abs(res.energy - e_ref) / max(abs(e_ref), 1e-30),
        "overflow_rel": abs(res.overflow - o_ref) / max(abs(o_ref), 1e-30),
    }
    ok = (
        checks["grad_rel_l2"] <= grad_rtol
        and checks["energy_rel"] <= 1e-9
        and checks["overflow_rel"] <= 1e-12
    )
    return checks, ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--designs",
        nargs="*",
        default=["miniblue18", "midiblue50"],
        help="suite designs; the LAST one is the speedup-gate design",
    )
    parser.add_argument(
        "--n-bins", nargs="*", type=int, default=[64, 128, 256]
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=9,
        help="timed rounds per variant (median reported)",
    )
    parser.add_argument(
        "--gate-bins",
        type=int,
        default=128,
        help="grid size the --min-speedup gate applies to",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="fail below this planned-fp64 speedup vs legacy (CI uses 1.5)",
    )
    parser.add_argument(
        "--grad-rtol",
        type=float,
        default=0.35,
        help="planned-vs-legacy gradient relative-L2 sanity bound "
        "(loose: spectral vs central-difference field, see _cross_check)",
    )
    parser.add_argument(
        "--history",
        default=HISTORY_DIR,
        help="perf-ledger directory for `trend` (empty string disables)",
    )
    args = parser.parse_args(argv)
    if args.gate_bins not in args.n_bins:
        args.n_bins = sorted(set(args.n_bins) | {args.gate_bins})

    gate_design = args.designs[-1]
    points = []
    gate_speedup = None
    gate_fp32_speedup = None
    grad_ok_all = True
    for design_name in args.designs:
        design = load_design(design_name, cache=True)
        # Spread movable cells over the die (seed-stable): generated
        # designs start every movable cell at the exact die center,
        # where the field vanishes by symmetry and the splat degenerates
        # to a single bin - neither resembles a real placer iteration.
        rng = np.random.default_rng(1234)
        xl, yl, xh, yh = design.die
        mov = ~design.cell_fixed
        x = design.cell_x.copy()
        y = design.cell_y.copy()
        x[mov] = xl + rng.random(int(mov.sum())) * (xh - xl)
        y[mov] = yl + rng.random(int(mov.sum())) * (yh - yl)
        for n_bins in args.n_bins:
            variants = _build_variants(design, n_bins)
            medians = _time_variants(variants, x, y, args.repeats)
            base = medians["legacy"]
            speedups = {
                name: base / t for name, t in medians.items() if t > 0
            }
            checks, grad_ok = _cross_check(
                variants["legacy"], variants["planned"], x, y, args.grad_rtol
            )
            grad_ok_all = grad_ok_all and grad_ok
            point = {
                "design": design_name,
                "n_bins": n_bins,
                "median_ms": {
                    name: round(t * 1e3, 4) for name, t in medians.items()
                },
                "speedup_vs_legacy": {
                    name: round(s, 3) for name, s in speedups.items()
                },
                "checks_vs_legacy": checks,
                "checks_ok": grad_ok,
                "stages_ms": {
                    "planned": _stage_breakdown(variants["planned"], x, y),
                    "scipy": _stage_breakdown(variants["scipy"], x, y),
                },
            }
            points.append(point)
            if design_name == gate_design and n_bins == args.gate_bins:
                gate_speedup = speedups["planned"]
                gate_fp32_speedup = speedups["planned-fp32"]
            print(
                f"{design_name} nb={n_bins}: legacy {base * 1e3:.2f}ms | "
                + " | ".join(
                    f"{name} {medians[name] * 1e3:.2f}ms "
                    f"({speedups[name]:.2f}x)"
                    for name in ("scipy", "planned", "planned-fp32")
                )
                + f" | grad rel {checks['grad_rel_l2']:.2e} "
                f"energy rel {checks['energy_rel']:.2e}"
            )

    payload = {
        "designs": args.designs,
        "n_bins": args.n_bins,
        "repeats": args.repeats,
        "gate_design": gate_design,
        "gate_bins": args.gate_bins,
        "speedup": gate_speedup,
        "speedup_fp32": gate_fp32_speedup,
        "grad_ok": grad_ok_all,
        "baseline": "seed density path (4-pass np.add.at splat, per-call "
        "scipy dctn/idctn, np.gradient field, fancy-indexed gather)",
        "points": points,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    out = os.path.join(RESULTS_DIR, "BENCH_density.json")
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"gate point {gate_design} nb={args.gate_bins}: "
        f"planned {gate_speedup:.2f}x, fp32 {gate_fp32_speedup:.2f}x "
        f"vs legacy -> {out}"
    )

    if args.history:
        append_record(
            "density_evaluate",
            {
                "speedup": gate_speedup,
                "speedup_fp32": gate_fp32_speedup,
            },
            gates={"speedup": "higher"},
            history_dir=args.history,
        )
        print(
            f"history: appended density_evaluate record under {args.history}"
        )

    failed = False
    if not grad_ok_all:
        print(
            "FAIL: planned path drifted from the seed path (grad rtol "
            f"{args.grad_rtol}, energy rtol 1e-9, overflow rtol 1e-12; "
            "see checks_vs_legacy above)"
        )
        failed = True
    if gate_speedup is None or gate_speedup < args.min_speedup:
        print(
            f"FAIL: planned speedup {gate_speedup or 0.0:.2f}x below "
            f"required {args.min_speedup:.2f}x at {gate_design} "
            f"nb={args.gate_bins}"
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
