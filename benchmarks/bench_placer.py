"""Suite-runner benchmark: cold legacy baseline vs warm cached parallel.

The original version of this benchmark recorded a 0.99x parallel
"speedup": every worker re-generated the design and re-levelized the
timing graph per task, so the fan-out only parallelized redundant setup.
This version measures the fix end to end and keeps the benchmark honest
about where the time goes:

- **baseline** (``serial_s``): the legacy cold path - serial, no design
  cache, every task regenerates its design and the final golden STA
  rebuilds the timing graph.  This is exactly what the suite runner
  shipped before the cache existed.
- **warm scaling curve**: the fixed path at ``--jobs-curve`` settings
  (default 1/2/4) - designs served from the content-keyed bundle cache,
  spawn workers preloaded by the pool initializer, final STA reusing the
  cached levelized graph.
- every run reports ``setup_s`` (design acquisition) and ``solve_s``
  (placement) separately, so setup-dominated regressions can't hide
  inside a single wall-clock number again.  The bench fails if setup
  exceeds ``--max-setup-frac`` of the parallel wall clock.

Gates (non-zero exit): warm/cold metric mismatch, setup fraction above
``--max-setup-frac``, and speedup below ``--min-speedup`` at the curve's
``--jobs`` point.  Writes ``benchmarks/results/BENCH_placer.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_placer.py
        [--design midiblue50] [--seeds 0 1 2 3] [--jobs 2]
        [--jobs-curve 1 2 4] [--max-iters 6] [--min-speedup 1.5]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.harness.parallel import SuiteTask, run_parallel, suite_metrics
from repro.harness.suite import design_spec
from repro.netlist.cache import clear_memo, ensure_cached
from repro.telemetry.history import append_record

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
HISTORY_DIR = os.path.join(os.path.dirname(__file__), "history")


def _run_pass(tasks, jobs, use_cache, cache_dir):
    """One timed pass; returns (records, wall_s)."""
    t0 = time.perf_counter()
    records = run_parallel(
        tasks, jobs=jobs, use_cache=use_cache, cache_dir=cache_dir
    )
    return records, time.perf_counter() - t0


def _breakdown(records):
    return [
        {
            "design": r.design,
            "mode": r.mode,
            "setup_s": r.setup_s,
            "solve_s": r.runtime,
            "design_cache": r.design_cache,
        }
        for r in records
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--design",
        default="midiblue50",
        help="suite design name (default: the 50k-cell midiblue50)",
    )
    parser.add_argument("--mode", default="ours")
    parser.add_argument(
        "--seeds", nargs="*", type=int, default=[0, 1, 2, 3, 4, 5]
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=2,
        help="the scaling-curve point the speedup gate applies to",
    )
    parser.add_argument(
        "--jobs-curve",
        nargs="*",
        type=int,
        default=[1, 2, 4],
        help="warm-path jobs settings to measure",
    )
    parser.add_argument("--max-iters", type=int, default=6)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="fail below this cold->warm speedup at --jobs (CI uses 1.5)",
    )
    parser.add_argument(
        "--max-setup-frac",
        type=float,
        default=0.2,
        help="fail if summed setup exceeds this fraction of parallel wall",
    )
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument(
        "--history",
        default=HISTORY_DIR,
        help="perf-ledger directory for `trend` (empty string disables)",
    )
    args = parser.parse_args(argv)

    if args.jobs not in args.jobs_curve:
        args.jobs_curve = sorted(set(args.jobs_curve) | {args.jobs})

    tasks = [
        SuiteTask(
            design=args.design,
            mode=args.mode,
            seed=seed,
            max_iters=args.max_iters,
        )
        for seed in args.seeds
    ]

    print(f"cold baseline: {len(tasks)} tasks on {args.design}, serial, "
          "no cache (legacy path) ...")
    cold, serial_s = _run_pass(tasks, 1, use_cache=False, cache_dir=None)
    m_cold = suite_metrics(tasks, cold)
    print(f"  {serial_s:.2f}s")

    # Prime the on-disk cache once, outside the timed region, so every
    # curve point measures the steady warm state (the one-off generation
    # cost is reported separately as prime_s).
    t0 = time.perf_counter()
    ensure_cached(design_spec(args.design), args.cache_dir)
    prime_s = time.perf_counter() - t0
    print(f"cache primed in {prime_s:.2f}s")

    scaling = []
    identical = True
    parallel_s = None
    parallel_records = None
    for jobs in args.jobs_curve:
        # Drop the parent-process memo so each curve point pays the same
        # parent-side cache cost (the disk cache itself stays warm).
        clear_memo()
        records, wall_s = _run_pass(
            tasks, jobs, use_cache=True, cache_dir=args.cache_dir
        )
        point_identical = suite_metrics(tasks, records) == m_cold
        identical = identical and point_identical
        setup_total = sum(r.setup_s for r in records)
        solve_total = sum(r.runtime for r in records)
        scaling.append(
            {
                "jobs": jobs,
                "wall_s": wall_s,
                "setup_s_total": setup_total,
                "solve_s_total": solve_total,
                "speedup_vs_cold": serial_s / wall_s if wall_s > 0 else 0.0,
                "metrics_identical": point_identical,
            }
        )
        print(
            f"warm jobs={jobs}: {wall_s:.2f}s "
            f"(setup {setup_total:.2f}s, solve {solve_total:.2f}s, "
            f"{serial_s / wall_s:.2f}x vs cold, identical={point_identical})"
        )
        if jobs == args.jobs:
            parallel_s = wall_s
            parallel_records = records

    speedup = serial_s / parallel_s if parallel_s else 0.0
    setup_frac = (
        sum(r.setup_s for r in parallel_records) / parallel_s
        if parallel_s
        else 1.0
    )

    payload = {
        "design": args.design,
        "mode": args.mode,
        "seeds": args.seeds,
        "max_iters": args.max_iters,
        "jobs": args.jobs,
        "serial_s": serial_s,
        "prime_s": prime_s,
        "parallel_s": parallel_s,
        "speedup": speedup,
        "setup_frac": setup_frac,
        "metrics_identical": identical,
        "baseline": "serial, uncached (legacy per-task regeneration)",
        "scaling": scaling,
        "metrics": m_cold,
        "runs_cold": _breakdown(cold),
        "runs_parallel": _breakdown(parallel_records),
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    out = os.path.join(RESULTS_DIR, "BENCH_placer.json")
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"cold {serial_s:.2f}s vs warm jobs={args.jobs} {parallel_s:.2f}s "
        f"-> {speedup:.2f}x (metrics identical={identical}) -> {out}"
    )

    if args.history:
        append_record(
            "placer_suite",
            {
                "speedup": speedup,
                "serial_s": serial_s,
                "parallel_s": parallel_s,
                "setup_frac": setup_frac,
            },
            gates={"speedup": "higher"},
            history_dir=args.history,
        )
        print(f"history: appended placer_suite record under {args.history}")

    failed = False
    if not identical:
        print("FAIL: warm metrics differ from cold-baseline metrics")
        failed = True
    if setup_frac > args.max_setup_frac:
        print(
            f"FAIL: setup is {setup_frac:.1%} of parallel wall clock "
            f"(limit {args.max_setup_frac:.0%}) - setup-dominated run"
        )
        failed = True
    if speedup < args.min_speedup:
        print(
            f"FAIL: speedup {speedup:.2f}x below required "
            f"{args.min_speedup:.2f}x"
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
