"""Suite-runner benchmark: serial vs process-parallel wall clock.

Runs a small designs x modes matrix through
:func:`repro.harness.parallel.run_parallel` with ``jobs=1`` and
``jobs=N``, checks the final metrics are identical, and writes
``benchmarks/results/BENCH_placer.json`` with both wall clocks and the
per-run breakdown.  The parallel speedup depends on core count, so only
metric equality is gated (non-zero exit on mismatch), not the timing.

Usage::

    PYTHONPATH=src python benchmarks/bench_placer.py
        [--designs miniblue4 miniblue18] [--jobs 2] [--max-iters 150]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.harness.parallel import SuiteTask, run_parallel, suite_metrics

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--designs", nargs="*", default=["miniblue4", "miniblue18"]
    )
    parser.add_argument("--modes", nargs="*", default=["ours"])
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--max-iters", type=int, default=150)
    args = parser.parse_args(argv)

    tasks = [
        SuiteTask(design=design, mode=mode, max_iters=args.max_iters)
        for design in args.designs
        for mode in args.modes
    ]

    t0 = time.perf_counter()
    serial = run_parallel(tasks, jobs=1)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_parallel(tasks, jobs=args.jobs)
    parallel_s = time.perf_counter() - t0

    m_serial = suite_metrics(tasks, serial)
    m_parallel = suite_metrics(tasks, parallel)
    identical = m_serial == m_parallel
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")

    payload = {
        "designs": args.designs,
        "modes": args.modes,
        "max_iters": args.max_iters,
        "jobs": args.jobs,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": speedup,
        "metrics_identical": identical,
        "metrics": m_serial,
        "runs": [
            {"design": r.design, "mode": r.mode, "runtime": r.runtime}
            for r in serial
        ],
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    out = os.path.join(RESULTS_DIR, "BENCH_placer.json")
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"serial {serial_s:.2f}s vs jobs={args.jobs} {parallel_s:.2f}s "
        f"-> {speedup:.2f}x (metrics identical={identical}) -> {out}"
    )
    if not identical:
        print("FAIL: parallel metrics differ from serial metrics")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
