"""Micro-benchmark: reprolint cold vs warm incremental-cache wall time.

Lints the repository twice through :class:`repro.analysis.core.Analyzer`
against a scratch cache file: the first (cold) run parses every target
and populates the cache, the second (warm) run must be served from the
project-signature hit without parsing anything.  The findings of both
runs are compared byte for byte (``to_dict`` equality), the timings are
appended to the ``benchmarks/history/`` perf ledger under the
``reprolint`` bench, and the run fails if the warm/cold speedup falls
below ``--min-speedup`` (CI gates at 3.0: a cache that saves less than
3x is not doing its one job).

Usage::

    PYTHONPATH=src python benchmarks/bench_reprolint.py
        [--repeat 3] [--min-speedup 3.0] [--no-ledger]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

from repro.analysis.core import Analyzer
from repro.analysis.rules import RULES_VERSION
from repro.telemetry.history import append_record

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def _lint(cache_path: str):
    t0 = time.perf_counter()
    findings, n_files, suppressed = Analyzer(
        REPO_ROOT, cache_path=cache_path
    ).run()
    elapsed = time.perf_counter() - t0
    return elapsed, [f.to_dict() for f in findings], n_files, suppressed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--min-speedup", type=float, default=None)
    parser.add_argument(
        "--no-ledger",
        action="store_true",
        help="skip the benchmarks/history/ trend-ledger append",
    )
    args = parser.parse_args(argv)

    cold_times, warm_times = [], []
    identical = True
    n_files = 0
    with tempfile.TemporaryDirectory(prefix="reprolint-bench-") as tmp:
        for i in range(max(1, args.repeat)):
            cache_path = os.path.join(tmp, f"cache-{i}.json")
            cold_s, cold_findings, n_files, cold_sup = _lint(cache_path)
            warm_s, warm_findings, _, warm_sup = _lint(cache_path)
            identical &= (cold_findings, cold_sup) == (warm_findings, warm_sup)
            cold_times.append(cold_s)
            warm_times.append(warm_s)
            print(
                f"round {i}: cold {cold_s * 1e3:8.1f} ms   "
                f"warm {warm_s * 1e3:8.1f} ms   "
                f"{cold_s / warm_s:6.2f}x   "
                f"{'identical' if identical else 'MISMATCH'}"
            )

    cold_s = min(cold_times)
    warm_s = min(warm_times)
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    print(
        f"best:    cold {cold_s * 1e3:8.1f} ms   warm {warm_s * 1e3:8.1f} ms"
        f"   {speedup:6.2f}x over {n_files} files"
    )

    payload = {
        "rules_version": RULES_VERSION,
        "repeat": args.repeat,
        "n_files": n_files,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "warm_speedup": speedup,
        "findings_identical": identical,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    out_path = os.path.join(RESULTS_DIR, "BENCH_reprolint.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {out_path}")

    if not args.no_ledger:
        append_record(
            "reprolint",
            {"cold_s": cold_s, "warm_s": warm_s, "warm_speedup": speedup},
            gates={"warm_speedup": "higher"},
        )

    if not identical:
        print("FAIL: warm-cache findings differ from cold findings")
        return 1
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(
            f"FAIL: warm speedup {speedup:.2f}x below "
            f"--min-speedup {args.min_speedup:g}"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
