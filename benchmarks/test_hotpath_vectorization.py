"""Speedup measurement: vectorised levelisation & incremental cone sweep.

The two remaining scalar Python loops on the timing hot path - the Kahn
levelisation inner loop and the per-pin worklist of the incremental
engine - were replaced by wave/level batched NumPy kernels.  This
benchmark re-implements the scalar loops as oracles, times both variants
on the largest miniblue design (miniblue7) and asserts the acceptance
floor of a >= 2x speedup for each, dumping the measured times plus the
``--profile``-style per-kernel breakdown to ``benchmarks/results/``.
"""

import time
from typing import Dict, List, Set, Tuple

import numpy as np
import pytest
from conftest import write_artifact

from repro.harness import load_design
from repro.perf import PROFILER
from repro.sta import IncrementalTimer, TimingGraph, levelize
from repro.sta.graph import levelize as vector_levelize

_EPS = 1e-9


# ----------------------------------------------------------------------
# Scalar oracles: the pre-vectorisation implementations.
# ----------------------------------------------------------------------
def scalar_levelize(
    edges_src: np.ndarray, edges_dst: np.ndarray, n_pins: int
) -> np.ndarray:
    """The old per-edge Kahn inner loop."""
    level = np.zeros(n_pins, dtype=np.int64)
    indegree = np.bincount(edges_dst, minlength=n_pins)
    frontier = np.nonzero(indegree == 0)[0]
    remaining = indegree.copy()
    order = np.argsort(edges_src, kind="stable")
    dst_sorted = edges_dst[order]
    out_start = np.zeros(n_pins + 1, dtype=np.int64)
    np.cumsum(np.bincount(edges_src, minlength=n_pins), out=out_start[1:])
    while len(frontier):
        next_set: List[int] = []
        for u in frontier:
            for k in range(out_start[u], out_start[u + 1]):
                v = dst_sorted[k]
                level[v] = max(level[v], level[u] + 1)
                remaining[v] -= 1
                if remaining[v] == 0:
                    next_set.append(v)
        frontier = np.array(next_set, dtype=np.int64)
    return level


class ScalarSweepTimer(IncrementalTimer):
    """IncrementalTimer with the old per-pin dict-of-sets worklist."""

    def _sweep(self, dirty: np.ndarray) -> np.ndarray:
        levels_of = self.graph.level
        worklist: Dict[int, Set[int]] = {}
        for p in dirty:
            worklist.setdefault(int(levels_of[p]), set()).add(int(p))
        touched: Set[int] = set()
        while worklist:
            level = min(worklist)
            pins = worklist.pop(level)
            for p in sorted(pins):
                self.n_pins_recomputed += 1
                at, slew = self._recompute_pin(p)
                changed = (
                    np.abs(at - self.at[p]).max() > _EPS
                    or np.abs(slew - self.slew[p]).max() > _EPS
                )
                if p in self._endpoint_index:
                    touched.add(p)
                if not changed:
                    continue
                self.at[p] = at
                self.slew[p] = slew
                for k in range(self._out_start[p], self._out_start[p + 1]):
                    q = int(self._out_dst[k])
                    worklist.setdefault(int(levels_of[q]), set()).add(q)
        return np.array(sorted(touched), dtype=np.int64)

    def _refresh_endpoint_slacks(self, pins: np.ndarray) -> None:
        for p in pins:
            self.ep_slack[self._endpoint_index[int(p)]] = (
                self._endpoint_slack(int(p))
            )


# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def miniblue7():
    """The largest suite design (superblue7 analogue)."""
    return load_design("miniblue7")


@pytest.fixture(scope="module")
def propagation_edges(miniblue7):
    graph = TimingGraph(miniblue7)
    edges_src = np.concatenate([graph.net_src, graph.c_src])
    edges_dst = np.concatenate([graph.net_sink, graph.c_dst])
    pairs = np.unique(np.stack([edges_src, edges_dst], axis=1), axis=0)
    return graph, pairs[:, 0], pairs[:, 1]


def _move_sequence(design, n_moves: int = 40):
    rng = np.random.default_rng(77)
    movable = np.nonzero(~design.cell_fixed)[0]
    xl, yl, xh, yh = design.die
    cells = rng.choice(movable, n_moves)
    dx = rng.normal(0, 6, n_moves)
    dy = rng.normal(0, 6, n_moves)
    return cells, dx, dy, (xl, yl, xh, yh)


def _run_moves(timer, design, cells, dx, dy, die) -> Tuple[float, float, float]:
    xl, yl, xh, yh = die
    start = time.perf_counter()
    wns = tns = 0.0
    for ci, ddx, ddy in zip(cells, dx, dy):
        nx = float(np.clip(timer.x[ci] + ddx, xl, xh))
        ny = float(np.clip(timer.y[ci] + ddy, yl, yh))
        wns, tns = timer.move([ci], [nx], [ny])
    return time.perf_counter() - start, wns, tns


@pytest.fixture(scope="module")
def measurements(miniblue7, propagation_edges):
    graph, edges_src, edges_dst = propagation_edges
    n_pins = miniblue7.n_pins

    # --- Levelisation: scalar loop vs wave-vectorised sweep. ----------
    t0 = time.perf_counter()
    ref_level = scalar_levelize(edges_src, edges_dst, n_pins)
    t_scalar_lvl = time.perf_counter() - t0
    t0 = time.perf_counter()
    vec_level = vector_levelize(edges_src, edges_dst, n_pins)
    t_vector_lvl = time.perf_counter() - t0
    np.testing.assert_array_equal(vec_level, ref_level)

    # --- Incremental cone sweep: per-pin worklist vs batched levels. --
    cells, dx, dy, die = _move_sequence(miniblue7)
    scalar_timer = ScalarSweepTimer(miniblue7, graph)
    scalar_timer.reset()
    t_scalar_sweep, wns_s, tns_s = _run_moves(
        scalar_timer, miniblue7, cells, dx, dy, die
    )
    vector_timer = IncrementalTimer(miniblue7, graph)
    vector_timer.reset()
    PROFILER.reset()
    PROFILER.enable()
    try:
        t_vector_sweep, wns_v, tns_v = _run_moves(
            vector_timer, miniblue7, cells, dx, dy, die
        )
        profile = PROFILER.report("miniblue7 incremental move sequence")
    finally:
        PROFILER.disable()
        PROFILER.reset()
    assert wns_v == pytest.approx(wns_s, abs=1e-6)
    assert tns_v == pytest.approx(tns_s, abs=1e-5)
    np.testing.assert_allclose(
        vector_timer.ep_slack, scalar_timer.ep_slack, atol=1e-8
    )

    return {
        "scalar_levelize": t_scalar_lvl,
        "vector_levelize": t_vector_lvl,
        "scalar_sweep": t_scalar_sweep,
        "vector_sweep": t_vector_sweep,
        "n_pins": n_pins,
        "n_edges": len(edges_src),
        "n_moves": len(cells),
        "profile": profile,
    }


def test_hotpath_artifact(benchmark, measurements):
    m = measurements
    lines = [
        f"design=miniblue7 pins={m['n_pins']} prop_edges={m['n_edges']} "
        f"moves={m['n_moves']}",
        f"{'kernel':<22} {'scalar(s)':>10} {'vector(s)':>10} {'speedup':>8}",
        f"{'levelisation':<22} {m['scalar_levelize']:>10.4f} "
        f"{m['vector_levelize']:>10.4f} "
        f"{m['scalar_levelize'] / m['vector_levelize']:>8.1f}",
        f"{'incremental sweep':<22} {m['scalar_sweep']:>10.4f} "
        f"{m['vector_sweep']:>10.4f} "
        f"{m['scalar_sweep'] / m['vector_sweep']:>8.1f}",
        "",
        m["profile"],
    ]
    write_artifact("hotpath_vectorization.txt", "\n".join(lines))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_levelisation_speedup_floor(measurements):
    speedup = (
        measurements["scalar_levelize"] / measurements["vector_levelize"]
    )
    assert speedup >= 2.0, f"levelisation speedup only {speedup:.2f}x"


def test_incremental_sweep_speedup_floor(measurements):
    speedup = measurements["scalar_sweep"] / measurements["vector_sweep"]
    assert speedup >= 2.0, f"incremental sweep speedup only {speedup:.2f}x"


def test_profile_breakdown_covers_sweep_stages(measurements):
    for stage in (
        "incremental.reroute",
        "incremental.sweep",
        "incremental.endpoints",
    ):
        assert stage in measurements["profile"]
