"""RSMT kernel benchmark: scalar vs degree-bucketed batched build_forest.

Times both paths of :func:`repro.route.rsmt.build_forest` on miniblue7
(the largest suite design), verifies the batched forest is identical to
the scalar one, and writes ``benchmarks/results/BENCH_rsmt.json`` with
the timings, the degree histogram and a per-kernel profiler breakdown.

Exit status is non-zero when the batched path is not faster than the
scalar path - the CI perf-smoke job runs this script as a regression
gate.

Usage::

    PYTHONPATH=src python benchmarks/bench_rsmt.py [--design miniblue7]
        [--repeats 3] [--min-speedup 1.0]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.harness.suite import load_design
from repro.perf import PROFILER
from repro.route.rsmt import build_forest
from repro.telemetry.history import append_record

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
HISTORY_DIR = os.path.join(os.path.dirname(__file__), "history")


def _forests_equal(a, b) -> bool:
    for attr in (
        "parent",
        "node_net",
        "node_pin",
        "owner_x_pin",
        "owner_y_pin",
        "depth",
        "node_offset",
        "pin_node",
        "is_root",
    ):
        if not np.array_equal(getattr(a, attr), getattr(b, attr)):
            return False
    return True


def _time_path(design, x, y, batched: bool, repeats: int):
    best = float("inf")
    forest = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        forest = build_forest(design, x, y, batched=batched)
        best = min(best, time.perf_counter() - t0)
    return best, forest


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--design", default="miniblue7")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.0,
        help="fail when batched/scalar speedup is below this",
    )
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument(
        "--history",
        default=HISTORY_DIR,
        help="perf-ledger directory for `trend` (empty string disables)",
    )
    args = parser.parse_args(argv)

    design = load_design(args.design)
    rng = np.random.default_rng(args.seed)
    x = rng.uniform(0.0, 400.0, design.n_cells)
    y = rng.uniform(0.0, 400.0, design.n_cells)

    # Warm-up (allocator, caches) before timing.
    build_forest(design, x, y, batched=True)

    scalar_s, scalar_forest = _time_path(
        design, x, y, batched=False, repeats=args.repeats
    )
    batched_s, batched_forest = _time_path(
        design, x, y, batched=True, repeats=args.repeats
    )
    identical = _forests_equal(scalar_forest, batched_forest)
    speedup = scalar_s / batched_s if batched_s > 0 else float("inf")

    # Per-kernel profiler breakdown of one batched build.
    PROFILER.reset()
    PROFILER.enable()
    build_forest(design, x, y, batched=True)
    spans = PROFILER.stats()
    PROFILER.disable()

    degrees = design.net_degrees
    hist = {
        str(d): int(c)
        for d, c in zip(*np.unique(degrees[degrees >= 2], return_counts=True))
    }
    payload = {
        "design": args.design,
        "n_nets": int(design.n_nets),
        "n_trees": int(sum(t is not None for t in batched_forest.trees)),
        "degree_histogram": hist,
        "repeats": args.repeats,
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "speedup": speedup,
        "forests_identical": identical,
        "profiler": spans,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    out = os.path.join(RESULTS_DIR, "BENCH_rsmt.json")
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"{args.design}: scalar {scalar_s * 1e3:.1f} ms, "
        f"batched {batched_s * 1e3:.1f} ms -> {speedup:.2f}x "
        f"(identical={identical}) -> {out}"
    )
    if args.history:
        append_record(
            "rsmt_forest",
            {
                "speedup": speedup,
                "scalar_s": scalar_s,
                "batched_s": batched_s,
            },
            gates={"speedup": "higher"},
            history_dir=args.history,
        )
        print(f"history: appended rsmt_forest record under {args.history}")
    if not identical:
        print("FAIL: batched forest differs from scalar forest")
        return 1
    if speedup < args.min_speedup:
        print(
            f"FAIL: speedup {speedup:.2f}x below required "
            f"{args.min_speedup:.2f}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
