"""Kernel throughput benchmarks for the differentiable timer (Section 3.6).

The paper's efficiency claims rest on fast forward and backward timing
kernels plus Steiner-tree reuse.  These micro benchmarks measure every
stage of Figure 3 on a mid-size design: RSMT construction (the FLUTE
substitute), the 4-pass Elmore DP, its 4-pass adjoint, the levelised
forward propagation, the full backward pass, and the golden STA for
comparison.
"""

import numpy as np
import pytest

from repro.core import DifferentiableTimer
from repro.core.elmore_grad import elmore_backward
from repro.place import DensityModel, WAWirelength
from repro.route import build_forest
from repro.sta import StaticTimingAnalyzer
from repro.sta.elmore import elmore_forward, node_caps


@pytest.fixture(scope="module")
def env(kernel_design):
    design, x, y = kernel_design
    forest = build_forest(design, x, y)
    timer = DifferentiableTimer(design, gamma=20.0)
    tape = timer.forward(x, y, forest)
    px, py = design.pin_positions(x, y)
    nx, ny = forest.node_coords(px, py)
    caps = node_caps(forest, design.pin_cap, timer.graph.extra_pin_cap)
    return design, x, y, forest, timer, tape, nx, ny, caps


def test_bench_rsmt_build(benchmark, kernel_design):
    """FLUTE-substitute: route every net of the design."""
    design, x, y = kernel_design
    forest = benchmark(build_forest, design, x, y)
    assert forest.n_nodes > design.n_pins * 0.5


def test_bench_elmore_forward(benchmark, env):
    design, x, y, forest, timer, tape, nx, ny, caps = env
    result = benchmark(
        elmore_forward, forest, nx, ny, caps, design.library.wire
    )
    assert (result.delay >= 0).all()


def test_bench_elmore_backward(benchmark, env):
    design, x, y, forest, timer, tape, nx, ny, caps = env
    elm = elmore_forward(forest, nx, ny, caps, design.library.wire)
    rng = np.random.default_rng(0)
    g = rng.normal(size=forest.n_nodes)
    z = np.zeros(forest.n_nodes)
    gx, gy = benchmark(
        elmore_backward, forest, elm, design.library.wire, g, z, z
    )
    assert np.isfinite(gx).all()


def test_bench_timer_forward(benchmark, env):
    design, x, y, forest, timer, tape, *_ = env
    out = benchmark(timer.forward, x, y, forest)
    assert out.tns <= 0.0


def test_bench_timer_backward(benchmark, env):
    design, x, y, forest, timer, tape, *_ = env
    gx, gy = benchmark(timer.backward, tape, -0.01, -0.001)
    assert np.isfinite(gx).all()


def test_bench_golden_sta_with_routing(benchmark, kernel_design):
    """The cost of one net-weighting STA call (fresh routing, as in [24])."""
    design, x, y = kernel_design
    sta = StaticTimingAnalyzer(design)
    result = benchmark(sta.run, x, y)
    assert result.wns_setup < 0


def test_bench_golden_sta_forest_reuse(benchmark, env):
    """The same STA when trees are reused (our Section 3.6 strategy)."""
    design, x, y, forest, *_ = env
    sta = StaticTimingAnalyzer(design)
    result = benchmark(sta.run, x, y, forest)
    assert result.wns_setup < 0


def test_bench_wirelength_gradient(benchmark, kernel_design):
    design, x, y = kernel_design
    wa = WAWirelength(design)
    wl, gx, gy = benchmark(wa.evaluate, x, y, 2.0)
    assert wl > 0


def test_bench_density_evaluation(benchmark, kernel_design):
    design, x, y = kernel_design
    model = DensityModel(design, n_bins=32)
    result = benchmark(model.evaluate, x, y)
    assert result.overflow >= 0


def test_timer_faster_than_fresh_sta_plus_routing(env, kernel_design):
    """Sanity: fwd+bwd with tree reuse beats one route-from-scratch STA.

    This is the mechanism behind the paper's 1.80x speed-up over the
    net-weighting placer: the expensive step is FLUTE, and our flow calls
    it every 10 iterations instead of at every STA evaluation.
    """
    import time

    design, x, y, forest, timer, tape, *_ = env
    sta = StaticTimingAnalyzer(design)

    t0 = time.perf_counter()
    for _ in range(5):
        tp = timer.forward(x, y, forest)
        timer.backward(tp, -0.01, -0.001)
    timer_cost = (time.perf_counter() - t0) / 5

    t0 = time.perf_counter()
    for _ in range(5):
        sta.run(x, y)  # re-routes every call
    sta_cost = (time.perf_counter() - t0) / 5
    assert timer_cost < sta_cost
