"""Table 2 reproduction: benchmark-suite statistics.

Generates the full miniblue suite, prints its #cells/#nets/#pins next to
the superblue numbers of the paper's Table 2, and asserts that the
relative size ordering of the paper is preserved.  The benchmark measures
the generation throughput of one suite design.
"""

from conftest import write_artifact

from repro.harness import SUITE, format_table2, load_design, suite_statistics


def test_table2_statistics_artifact():
    rows = suite_statistics()
    text = format_table2(rows)
    write_artifact("table2_stats.txt", text)

    # The miniblue suite must preserve superblue's relative ordering.
    ours = [r["cells"] for r in rows]
    paper = [r["superblue_cells"] for r in rows]
    for i in range(len(rows)):
        for j in range(len(rows)):
            if paper[i] < 0.9 * paper[j]:
                assert ours[i] < ours[j], (
                    f"{rows[i]['benchmark']} should be smaller than "
                    f"{rows[j]['benchmark']}"
                )
    # Pins per cell in a sane standard-cell range.
    for r in rows:
        assert 2.0 < r["pins"] / r["cells"] < 4.0


def test_generate_miniblue18(benchmark):
    design = benchmark(load_design, "miniblue18")
    assert design.n_cells > 900
