"""Shared fixtures and artifact helpers for the benchmark suite.

Macro benchmarks (full placement runs) use ``benchmark.pedantic`` with a
single round; micro benchmarks (kernels) use the default calibration.
Every benchmark writes its table/series to ``benchmarks/results/`` so the
reproduction artifacts survive the run.
"""

import os

import numpy as np
import pytest

from repro.harness import load_design
from repro.netlist import GeneratorSpec, generate_design

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_artifact(name: str, text: str) -> str:
    """Persist a benchmark artifact and echo it to stdout."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w") as handle:
        handle.write(text if text.endswith("\n") else text + "\n")
    print(f"\n=== {name} ===")
    print(text)
    return path


@pytest.fixture(scope="session")
def miniblue18():
    """Smallest suite design - used by the ablation benchmarks."""
    return load_design("miniblue18")


@pytest.fixture(scope="session")
def miniblue4():
    """The design the paper's Figure 8 uses (superblue4 analogue)."""
    return load_design("miniblue4")


@pytest.fixture(scope="session")
def kernel_design():
    """A mid-size design with spread positions for kernel throughput."""
    design = generate_design(
        GeneratorSpec(name="kernels", n_cells=800, depth=14, seed=3)
    )
    rng = np.random.default_rng(0)
    x = design.cell_x + rng.normal(0, 8, design.n_cells)
    y = design.cell_y + rng.normal(0, 8, design.n_cells)
    x[design.cell_fixed] = design.cell_x[design.cell_fixed]
    y[design.cell_fixed] = design.cell_y[design.cell_fixed]
    return design, x, y
