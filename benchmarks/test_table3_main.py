"""Table 3 reproduction: WNS/TNS/HPWL/runtime, three placers per design.

By default a three-design subset keeps the benchmark run short; set
``REPRO_TABLE3_FULL=1`` to run all eight miniblue designs (a few minutes).
The shape assertions encode the paper's headline claims:

- Ours achieves the best (least negative) WNS on every design;
- Ours achieves the best average TNS;
- plain DREAMPlace is the fastest (no timing machinery), and the timing-
  driven placers cost a small multiple of it;
- HPWL degradation of Ours vs plain DREAMPlace stays bounded.
"""

import os

import pytest
from conftest import write_artifact

from repro.harness import average_ratios, format_table3, run_table3

_DEFAULT_SUBSET = ["miniblue4", "miniblue16", "miniblue18"]


def _designs():
    if os.environ.get("REPRO_TABLE3_FULL"):
        return None  # full suite
    return _DEFAULT_SUBSET


@pytest.fixture(scope="module")
def table3_result():
    return run_table3(designs=_designs(), max_iters=600, verbose=False)


def test_table3_runs_and_formats(benchmark, table3_result):
    text = format_table3(table3_result)
    write_artifact("table3_main.txt", text)
    # Benchmark one cheap re-format so the run appears in the report
    # without re-running placements.
    benchmark.pedantic(format_table3, args=(table3_result,), rounds=1, iterations=1)


def test_ours_wins_wns_everywhere(table3_result):
    for design in table3_result.designs:
        ours = table3_result.metric(design, "ours", "wns")
        nw = table3_result.metric(design, "netweight", "wns")
        base = table3_result.metric(design, "dreamplace", "wns")
        assert ours >= nw - 1e-9, f"{design}: ours WNS {ours} vs nw {nw}"
        assert ours >= base - 1e-9, f"{design}: ours WNS {ours} vs base {base}"


def test_average_ratio_shape(table3_result):
    ratios = average_ratios(table3_result)
    # Both baselines are worse than ours on WNS and TNS on average.
    assert ratios["dreamplace"]["wns"] > 1.05
    assert ratios["dreamplace"]["tns"] > 1.05
    assert ratios["netweight"]["wns"] > 1.0
    assert ratios["netweight"]["tns"] > 1.0
    # Timing comes at a bounded wirelength cost.
    assert ratios["dreamplace"]["hpwl"] > 0.80
    # Plain DREAMPlace is by far the fastest.
    assert ratios["dreamplace"]["runtime"] < 0.5


def test_all_runs_converged(table3_result):
    for design in table3_result.designs:
        for mode, rec in table3_result.records[design].items():
            assert rec.stop_reason == "overflow", (
                f"{design}/{mode} stopped by {rec.stop_reason}"
            )
