"""Micro-benchmark: repro.core.scatter helpers vs the old ``np.add.at``.

For each scatter shape the library actually uses (1-D pin->cell
gradient gather, 2-D density splats, row scatters onto ``(n, 2)``
rise/fall tables, and in-place accumulation for the levelised Elmore
sweeps), times ``repro.core.scatter`` against the equivalent
``np.add.at`` call form it replaced, asserts the results are **bit
identical**, and writes ``benchmarks/results/BENCH_scatter.json``.

Exit is non-zero if any result differs bitwise, or if the geometric-mean
speedup falls below ``--min-speedup`` (CI gates at 1.0: the helpers must
never be slower overall).

Usage::

    PYTHONPATH=src python benchmarks/bench_scatter.py
        [--size 200000] [--repeat 5] [--min-speedup 1.0]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.core.scatter import (
    scatter_accumulate,
    scatter_accumulate_at,
    scatter_add,
    scatter_add_2d,
    scatter_add_rows,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def _time(fn, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _cases(size: int, rng: np.random.Generator):
    """(name, new_fn, old_fn) triples; each fn returns the result array."""
    n_out = max(size // 8, 4)
    index = rng.integers(0, n_out, size)
    values = rng.standard_normal(size)

    def new_1d():
        return scatter_add(index, values, n_out)

    def old_1d():
        out = np.zeros(n_out)
        np.add.at(out, index, values)
        return out

    yield "scatter_add_1d", new_1d, old_1d

    nb = 128
    ix = rng.integers(0, nb, size)
    iy = rng.integers(0, nb, size)

    def new_2d():
        return scatter_add_2d(ix, iy, values, (nb, nb))

    def old_2d():
        out = np.zeros((nb, nb))
        np.add.at(out, (ix, iy), values)
        return out

    yield "scatter_add_2d", new_2d, old_2d

    rows = rng.integers(0, n_out, size)
    row_vals = rng.standard_normal((size, 2))

    def new_rows():
        return scatter_add_rows(rows, row_vals, n_out)

    def old_rows():
        out = np.zeros((n_out, 2))
        np.add.at(out, rows, row_vals)
        return out

    yield "scatter_add_rows", new_rows, old_rows

    base = rng.standard_normal(n_out)

    def new_acc():
        out = base.copy()
        scatter_accumulate(out, index, values)
        return out

    def old_acc():
        out = base.copy()
        np.add.at(out, index, values)
        return out

    yield "scatter_accumulate_dense", new_acc, old_acc

    # Sparse accumulation: few touched slots in a large array, the
    # per-level shape of the Elmore sweeps.
    k = max(size // 64, 2)
    sparse_idx = rng.integers(0, n_out, k)
    sparse_vals = rng.standard_normal(k)

    def new_sparse():
        out = base.copy()
        scatter_accumulate(out, sparse_idx, sparse_vals)
        return out

    def old_sparse():
        out = base.copy()
        np.add.at(out, sparse_idx, sparse_vals)
        return out

    yield "scatter_accumulate_sparse", new_sparse, old_sparse

    cols = rng.integers(0, 2, size)
    table = rng.standard_normal((n_out, 2))

    def new_pairs():
        out = table.copy()
        scatter_accumulate_at(out, rows, cols, values)
        return out

    def old_pairs():
        out = table.copy()
        np.add.at(out, (rows, cols), values)
        return out

    yield "scatter_accumulate_at", new_pairs, old_pairs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=200_000)
    parser.add_argument("--repeat", type=int, default=5)
    parser.add_argument("--min-speedup", type=float, default=None)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    rng = np.random.default_rng(args.seed)
    cases = []
    all_identical = True
    for name, new_fn, old_fn in _cases(args.size, rng):
        identical = bool(np.array_equal(new_fn(), old_fn()))
        all_identical &= identical
        new_s = _time(new_fn, args.repeat)
        old_s = _time(old_fn, args.repeat)
        speedup = old_s / new_s if new_s > 0 else float("inf")
        cases.append(
            {
                "case": name,
                "helper_s": new_s,
                "add_at_s": old_s,
                "speedup": speedup,
                "bit_identical": identical,
            }
        )
        print(
            f"{name:28s} helper {new_s * 1e3:8.3f} ms   "
            f"np.add.at {old_s * 1e3:8.3f} ms   {speedup:6.2f}x   "
            f"{'bit-identical' if identical else 'MISMATCH'}"
        )

    geomean = float(np.exp(np.mean([np.log(c["speedup"]) for c in cases])))
    print(f"{'geomean':28s} {geomean:44.2f}x")

    payload = {
        "size": args.size,
        "repeat": args.repeat,
        "seed": args.seed,
        "cases": cases,
        "geomean_speedup": geomean,
        "all_bit_identical": all_identical,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    out_path = os.path.join(RESULTS_DIR, "BENCH_scatter.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {out_path}")

    if not all_identical:
        print("FAIL: scatter helpers are not bit-identical to np.add.at")
        return 1
    if args.min_speedup is not None and geomean < args.min_speedup:
        print(
            f"FAIL: geomean speedup {geomean:.2f}x below "
            f"--min-speedup {args.min_speedup:g}"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
