"""Ablation: differentiable wire-delay model (Elmore vs D2M).

The paper claims its framework extends to any analytic interconnect model
(Section 3.4.2).  This benchmark runs the full timing-driven placement
with both the Elmore and the D2M differentiable heads and evaluates both
placements with both golden metrics.  Expected shape: each objective's
placement is at least competitive under its own metric, and both clearly
beat the wirelength-only baseline, demonstrating the extensibility claim
end-to-end.
"""

import pytest
from conftest import write_artifact

from repro.core import TimingDrivenPlacer, TimingPlacerOptions
from repro.place import GlobalPlacer, PlacerOptions
from repro.sta import run_sta

MODELS = ("elmore", "d2m")


@pytest.fixture(scope="module")
def sweep(miniblue18):
    design = miniblue18
    rows = {}
    base = GlobalPlacer(design, PlacerOptions(max_iters=600)).run()
    rows["baseline"] = {
        metric: run_sta(design, base.x, base.y, wire_delay_model=metric)
        for metric in MODELS
    }
    for model in MODELS:
        placer = TimingDrivenPlacer(
            design, TimingPlacerOptions(placer=PlacerOptions(max_iters=600),
                                        sta_in_trace=False)
        )
        placer.objective.timer.wire_delay_model = model
        result = placer.run()
        rows[model] = {
            metric: run_sta(design, result.x, result.y, wire_delay_model=metric)
            for metric in MODELS
        }
    return rows


def test_wire_model_artifact(benchmark, sweep):
    lines = [
        f"{'objective':<10} {'WNS(elmore)':>12} {'TNS(elmore)':>13} "
        f"{'WNS(d2m)':>12} {'TNS(d2m)':>13}"
    ]
    for name, evals in sweep.items():
        lines.append(
            f"{name:<10} {evals['elmore'].wns_setup:>12.1f} "
            f"{evals['elmore'].tns_setup:>13.1f} "
            f"{evals['d2m'].wns_setup:>12.1f} "
            f"{evals['d2m'].tns_setup:>13.1f}"
        )
    write_artifact("ablation_wire_model.txt", "\n".join(lines))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_both_objectives_beat_baseline(sweep):
    for model in MODELS:
        assert (
            sweep[model][model].tns_setup > sweep["baseline"][model].tns_setup
        )
        assert (
            sweep[model][model].wns_setup > sweep["baseline"][model].wns_setup
        )


def test_d2m_metric_less_pessimistic(sweep):
    for name, evals in sweep.items():
        assert evals["d2m"].wns_setup >= evals["elmore"].wns_setup
