"""Scaling: placement and timer cost versus design size.

Not a paper table, but supports its runtime discussion: the levelised
kernels should scale near-linearly with pin count, so the whole flow stays
usable as designs grow.
"""

import pytest
from conftest import write_artifact

from repro.harness import run_mode
from repro.netlist import GeneratorSpec, generate_design
from repro.place import PlacerOptions

SIZES = (300, 1000, 2400)


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for n in SIZES:
        design = generate_design(
            GeneratorSpec(name=f"scale{n}", n_cells=n, depth=14, seed=n)
        )
        base = run_mode(design, "dreamplace", PlacerOptions(max_iters=600))
        ours = run_mode(design, "ours", PlacerOptions(max_iters=600))
        rows.append(
            {
                "cells": design.n_cells,
                "pins": design.n_pins,
                "base_runtime": base.runtime,
                "ours_runtime": ours.runtime,
                "overhead": ours.runtime / max(base.runtime, 1e-9),
                "base_wns": base.wns,
                "ours_wns": ours.wns,
            }
        )
    return rows


def test_scaling_artifact(benchmark, sweep):
    lines = [
        f"{'#cells':>7} {'#pins':>7} {'base t(s)':>10} {'ours t(s)':>10} "
        f"{'overhead':>9} {'base WNS':>10} {'ours WNS':>10}"
    ]
    for r in sweep:
        lines.append(
            f"{r['cells']:>7} {r['pins']:>7} {r['base_runtime']:>10.2f} "
            f"{r['ours_runtime']:>10.2f} {r['overhead']:>9.2f} "
            f"{r['base_wns']:>10.1f} {r['ours_wns']:>10.1f}"
        )
    write_artifact("placer_scaling.txt", "\n".join(lines))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_runtime_scales_subquadratically(sweep):
    small, large = sweep[0], sweep[-1]
    size_ratio = large["pins"] / small["pins"]
    time_ratio = large["ours_runtime"] / max(small["ours_runtime"], 1e-9)
    assert time_ratio < size_ratio**2


def test_timing_win_holds_at_every_size(sweep):
    for r in sweep:
        assert r["ours_wns"] > r["base_wns"]
