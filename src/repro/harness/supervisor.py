"""Supervised process fan-out for the suite runner.

:mod:`repro.harness.parallel` used to hand tasks to a bare
``ProcessPoolExecutor``; one SIGKILL'd or hung worker then surfaced as a
``BrokenProcessPool`` traceback and every completed run's results were
discarded.  This module replaces that fan-out with a task-granular
supervisor built directly on ``multiprocessing`` spawn workers:

- **crash isolation** - each worker owns a duplex pipe; a dead worker
  (SIGKILL, segfault) costs exactly its in-flight task, which is retried
  on a freshly spawned replacement while every other worker keeps going;
- **per-task wall-clock timeouts** - a hung worker is killed at
  ``task_timeout`` seconds and its task retried (taxonomy ``timeout``);
- **bounded retry with deterministic backoff** - failed tasks re-enter
  the queue after an exponential-backoff delay with seeded jitter
  (:meth:`SupervisorOptions.backoff_delay` is a pure function of
  ``(seed, task_index, attempt)``, so retry schedules are reproducible);
- **poisoned-task quarantine** - after ``max_retries`` retries a task is
  quarantined with its failure taxonomy (``crash`` / ``timeout`` /
  ``exception`` / ``cache-corrupt``) and the suite *completes*, salvaging
  every other result;
- **graceful degradation** - if workers cannot be (re)spawned the
  remaining tasks run serially in-process (retry/quarantine still apply;
  timeouts cannot preempt in-process tasks).

Task execution is byte-identical to the legacy path: the same
:func:`_execute_task` body runs in both, every task seeds its own run,
and a zero-fault supervised suite produces the same records, metrics and
manifests as an unsupervised one.  Supervisor outcomes stream to
telemetry (``task_retry`` / ``task_quarantine`` / ``worker_respawn``
events, written lazily so zero-fault runs add no files) and into the
suite manifest's ``supervision`` provenance.

This is the **only** module allowed to construct process pools
(reprolint rule ``supervised-pool-only``): the legacy unsupervised
executor fan-out lives here too (:func:`run_pool_unsupervised`), kept as
the byte-identity reference and wrapped so its raw failures surface as
typed :class:`SupervisorError`\\ s with completed results salvaged.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.objective import TimingObjectiveOptions
from ..netlist.cache import load_bundle
from ..perf import PROFILER
from ..place.placer import PlacerOptions
from ..runtime.faults import BundleCorruptionError, maybe_inject_process_fault
from ..telemetry.events import MetricsRecorder
from ..telemetry.registry import RunRegistry
from ..telemetry.resources import resource_delta, sample_resources
from .runners import RunRecord, run_mode
from .suite import design_spec, load_design

__all__ = [
    "FAILURE_KINDS",
    "SupervisorError",
    "TaskFailedError",
    "PoolBrokenError",
    "SupervisorOptions",
    "TaskAttempt",
    "TaskOutcome",
    "SupervisedResult",
    "SuiteTask",
    "run_supervised",
    "run_pool_unsupervised",
]

#: The supervisor's failure taxonomy, as recorded in outcomes/manifests.
FAILURE_KINDS = ("crash", "timeout", "exception", "cache-corrupt")

#: Filename of the lazily created suite-level supervisor event stream.
SUPERVISOR_EVENTS_FILENAME = "supervisor_events.jsonl"

#: True inside a spawned suite worker process (set by the worker entry
#: points); gates the process-killing fault injections.
_IN_WORKER = False


# ----------------------------------------------------------------------
# Typed error hierarchy (satellite: no raw BrokenProcessPool/TimeoutError
# reaches the CLI).
# ----------------------------------------------------------------------
class SupervisorError(RuntimeError):
    """A suite execution failure with enough context for a one-line report.

    ``completed`` carries every ``(task_index, RunRecord)`` that finished
    before the failure, so callers can salvage a partial suite manifest
    instead of discarding finished work.
    """

    def __init__(
        self,
        message: str,
        failure: str = "exception",
        task_index: Optional[int] = None,
        run_id: Optional[str] = None,
        attempts: int = 1,
        completed: Sequence[Tuple[int, RunRecord]] = (),
    ) -> None:
        super().__init__(message)
        self.failure = failure
        self.task_index = task_index
        self.run_id = run_id
        self.attempts = attempts
        self.completed = list(completed)
        #: Filled in by the salvage path with the partial manifest path.
        self.partial_manifest: Optional[str] = None

    def summary(self) -> str:
        """One actionable line: which task, which failure, how many tries."""
        where = self.run_id if self.run_id else "suite"
        line = (
            f"{type(self).__name__}: task {where} failed "
            f"({self.failure}) after {self.attempts} attempt(s): {self}"
        )
        if self.completed:
            line += f" [{len(self.completed)} completed run(s) salvaged]"
        return line


class TaskFailedError(SupervisorError):
    """One task failed terminally (unsupervised path, or aborted suite)."""


class PoolBrokenError(SupervisorError):
    """The worker pool died and could not be used or rebuilt."""

    def __init__(self, message: str, **kwargs: Any) -> None:
        kwargs.setdefault("failure", "crash")
        super().__init__(message, **kwargs)


# ----------------------------------------------------------------------
# Options / outcome records
# ----------------------------------------------------------------------
@dataclass
class SupervisorOptions:
    """Retry/timeout/backoff policy of one supervised suite run."""

    #: Per-task wall-clock timeout in seconds; None/0 disables (a hung
    #: worker then blocks its slot forever - set a timeout whenever task
    #: runtimes are bounded and predictable).
    task_timeout: Optional[float] = None
    #: Retries after the first attempt before quarantine (total attempts
    #: = ``max_retries + 1``).
    max_retries: int = 2
    #: First retry delay in seconds (exponential growth per attempt).
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    #: Seed of the backoff jitter; schedules are a pure function of
    #: ``(backoff_seed, task_index, attempt)``.
    backoff_seed: int = 0

    def backoff_delay(self, task_index: int, attempt: int) -> float:
        """Deterministic retry delay before attempt ``attempt + 1``."""
        base = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** max(attempt - 1, 0),
        )
        rng = np.random.default_rng(
            (self.backoff_seed, int(task_index), int(attempt))
        )
        # +/-20% seeded jitter decorrelates retry bursts across tasks.
        return float(base * (0.8 + 0.4 * rng.random()))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "task_timeout_s": self.task_timeout,
            "max_retries": self.max_retries,
            "backoff_base_s": self.backoff_base,
            "backoff_factor": self.backoff_factor,
            "backoff_max_s": self.backoff_max,
            "backoff_seed": self.backoff_seed,
        }


@dataclass
class TaskAttempt:
    """One failed attempt of one task."""

    attempt: int
    failure: str  # one of FAILURE_KINDS
    error: str
    retry_delay_s: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "attempt": self.attempt,
            "failure": self.failure,
            "error": self.error,
            "retry_delay_s": self.retry_delay_s,
        }


@dataclass
class TaskOutcome:
    """Supervision history of one task (attempts, failures, quarantine)."""

    index: int
    run_id: str
    attempts: int = 0
    #: Failure kind the task was quarantined with, or None on success.
    quarantined: Optional[str] = None
    failures: List[TaskAttempt] = field(default_factory=list)

    @property
    def eventful(self) -> bool:
        return bool(self.failures) or self.quarantined is not None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "run_id": self.run_id,
            "attempts": self.attempts,
            "quarantined": self.quarantined,
            "failures": [f.to_dict() for f in self.failures],
        }


@dataclass
class SupervisedResult:
    """Everything a supervised fan-out produced."""

    records: List[RunRecord]
    outcomes: List[TaskOutcome]
    options: SupervisorOptions
    worker_respawns: int = 0
    degraded_to_serial: bool = False

    @property
    def quarantined(self) -> List[TaskOutcome]:
        return [o for o in self.outcomes if o.quarantined is not None]

    @property
    def eventful(self) -> bool:
        """True when supervision actually intervened (retry, quarantine,
        respawn, or serial degradation) - fault-free runs stay False so
        their output remains byte-identical to unsupervised runs."""
        return (
            self.worker_respawns > 0
            or self.degraded_to_serial
            or any(o.eventful for o in self.outcomes)
        )

    def supervision_dict(self) -> Dict[str, Any]:
        """Suite-manifest ``supervision`` provenance (deterministic)."""
        return {
            "enabled": True,
            "options": self.options.to_dict(),
            "worker_respawns": self.worker_respawns,
            "degraded_to_serial": self.degraded_to_serial,
            "retries": sum(len(o.failures) for o in self.outcomes)
            - len(self.quarantined),
            "quarantined": [o.run_id for o in self.quarantined],
            "tasks": [o.to_dict() for o in self.outcomes if o.eventful],
        }


# ----------------------------------------------------------------------
# Task definition + execution body (shared by every execution path)
# ----------------------------------------------------------------------
@dataclass
class SuiteTask:
    """One self-contained (design, mode, seed) placement run."""

    design: str
    mode: str
    seed: int = 0
    max_iters: int = 600
    checkpoint_every: int = 0
    rsmt_period: Optional[int] = None
    rsmt_dirty_threshold: Optional[float] = None
    telemetry_dir: Optional[str] = None
    profile: bool = False
    #: Record the span tree onto the result (for suite trace export)
    #: without --profile's text-dump side effects.
    collect_spans: bool = False
    with_trace_sta: bool = False
    extra_placer_options: Dict[str, Any] = field(default_factory=dict)

    @property
    def run_id(self) -> str:
        """Deterministic telemetry run id (no timestamp/pid component)."""
        return f"{self.design}_{self.mode}_s{self.seed}"

    def timing_options(self) -> Optional[TimingObjectiveOptions]:
        if self.rsmt_period is None and self.rsmt_dirty_threshold is None:
            return None
        opts = TimingObjectiveOptions()
        if self.rsmt_period is not None:
            opts.rsmt_period = self.rsmt_period
        opts.rsmt_dirty_threshold = self.rsmt_dirty_threshold
        return opts


def _execute_task(
    task: SuiteTask,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
    task_index: int = 0,
    attempt: int = 1,
) -> RunRecord:
    """Worker body: run one task and attach its profiler span tree.

    With ``use_cache`` the design (and its prebuilt timing graph) comes
    from the bundle cache: in a warm worker the per-process memo serves
    it with zero disk traffic, so ``setup_s`` collapses to microseconds
    after the first task.  Without, the legacy cold path regenerates the
    design from scratch - kept as the benchmark baseline and as a
    cross-check that cached runs are bit-identical.

    ``task_index``/``attempt`` feed the process-level fault injections
    (fired mid-task, after design setup) and stamp retry provenance into
    the run's telemetry manifest on attempts past the first.
    """
    resources_before = sample_resources()
    t0 = time.perf_counter()
    graph = None
    cache_info = None
    if use_cache:
        bundle, info = load_bundle(design_spec(task.design), cache_dir)
        design = bundle.design
        graph = bundle.graph
        cache_info = info.to_dict()
    else:
        design = load_design(task.design)
    setup_s = time.perf_counter() - t0
    maybe_inject_process_fault(
        task_index,
        attempt,
        in_worker=_IN_WORKER,
        bundle_path=cache_info["path"] if cache_info else None,
    )
    record = run_mode(
        design,
        task.mode,
        placer_options=PlacerOptions(
            max_iters=task.max_iters,
            seed=task.seed,
            checkpoint_every=task.checkpoint_every,
            **task.extra_placer_options,
        ),
        timing_options=task.timing_options(),
        with_trace_sta=task.with_trace_sta,
        profile=task.profile,
        collect_spans=task.collect_spans,
        telemetry_dir=task.telemetry_dir,
        run_id=task.run_id if task.telemetry_dir else None,
        sta_graph=graph,
        design_cache=cache_info,
        supervision={"attempt": attempt} if attempt > 1 else None,
    )
    record.setup_s = setup_s
    record.attempts = attempt
    if task.profile or task.collect_spans or task.telemetry_dir:
        record.span_tree = PROFILER.tree()
    # Whole-task attribution (setup + solve + golden STA): CPU/fault
    # deltas stay per-task even in a warm worker whose getrusage counters
    # accumulate across tasks.  Overrides the session-scoped rollup
    # run_mode attached, which excludes design setup.
    delta = resource_delta(resources_before, sample_resources())
    if delta is not None:
        record.resources = delta
    return record


def _preload_designs(cache_dir: Optional[str], names: Sequence[str]) -> None:
    """Warm a fresh worker: load every task design bundle once."""
    for name in names:
        try:
            load_bundle(design_spec(name), cache_dir)
        except Exception:
            # A failed preload is not fatal: the task that needs the
            # design will surface (and retry) the real error.
            pass


def _classify_exception(exc: BaseException) -> str:
    """Map a task exception onto the supervisor failure taxonomy."""
    if isinstance(exc, BundleCorruptionError):
        return "cache-corrupt"
    return "exception"


def _one_line(exc: BaseException) -> str:
    text = " ".join(str(exc).split())
    return f"{type(exc).__name__}: {text}" if text else type(exc).__name__


def quarantined_record(task: SuiteTask, outcome: TaskOutcome) -> RunRecord:
    """Placeholder record keeping quarantined tasks aligned with results."""
    return RunRecord(
        design=task.design,
        mode=task.mode,
        wns=float("nan"),
        tns=float("nan"),
        hpwl=float("nan"),
        runtime=0.0,
        iterations=0,
        stop_reason=f"quarantined:{outcome.quarantined}",
        x=np.empty(0),
        y=np.empty(0),
        attempts=outcome.attempts,
        quarantine=outcome.to_dict(),
    )


# ----------------------------------------------------------------------
# Supervised worker process
# ----------------------------------------------------------------------
def _worker_main(
    conn,
    use_cache: bool,
    cache_dir: Optional[str],
    names: Tuple[str, ...],
) -> None:
    """Spawned-worker loop: warm up, then execute tasks until told to stop.

    Replies ``("ok", index, record)`` or ``("exc", index, kind, error)``;
    a crash (SIGKILL, hard fault) simply drops the pipe, which the parent
    observes as EOF.
    """
    global _IN_WORKER
    _IN_WORKER = True
    if use_cache:
        _preload_designs(cache_dir, names)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return  # parent went away
        if message[0] == "stop":
            return
        _, index, attempt, task = message
        try:
            record = _execute_task(
                task, use_cache, cache_dir, task_index=index, attempt=attempt
            )
        except BaseException as exc:  # noqa: BLE001 - forwarded, not hidden
            conn.send(("exc", index, _classify_exception(exc), _one_line(exc)))
        else:
            conn.send(("ok", index, record))


class _Worker:
    """Parent-side handle of one supervised worker process."""

    __slots__ = ("process", "conn", "task_index", "attempt", "deadline")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.task_index: Optional[int] = None
        self.attempt = 0
        self.deadline: Optional[float] = None

    @property
    def busy(self) -> bool:
        return self.task_index is not None

    def assign(
        self, index: int, attempt: int, task: SuiteTask, timeout: Optional[float]
    ) -> None:
        self.task_index = index
        self.attempt = attempt
        self.deadline = (
            time.monotonic() + timeout if timeout and timeout > 0 else None
        )
        self.conn.send(("task", index, attempt, task))

    def release(self) -> None:
        self.task_index = None
        self.attempt = 0
        self.deadline = None

    def shutdown(self, timeout: float = 5.0) -> None:
        try:
            if self.process.is_alive():
                self.conn.send(("stop",))
        except (OSError, ValueError, BrokenPipeError):
            pass
        try:
            self.conn.close()
        except OSError:
            pass
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout)

    def kill(self) -> None:
        try:
            self.process.kill()
        except (OSError, ValueError):
            pass
        self.process.join(5.0)
        try:
            self.conn.close()
        except OSError:
            pass


def _spawn_worker(
    ctx, use_cache: bool, cache_dir: Optional[str], names: Sequence[str]
) -> _Worker:
    parent_conn, child_conn = ctx.Pipe(duplex=True)
    process = ctx.Process(
        target=_worker_main,
        args=(child_conn, use_cache, cache_dir, tuple(names)),
        daemon=True,
    )
    process.start()
    child_conn.close()
    return _Worker(process, parent_conn)


# ----------------------------------------------------------------------
# Lazy suite-level telemetry (no file unless an event actually happens,
# keeping zero-fault supervised runs byte-identical on disk).
# ----------------------------------------------------------------------
class _SupervisorTelemetry:
    def __init__(self, directory: Optional[str]) -> None:
        self.directory = directory
        self._recorder: Optional[MetricsRecorder] = None

    def event(self, kind: str, **fields: Any) -> None:
        if self.directory is None:
            return
        if self._recorder is None:
            self._recorder = MetricsRecorder(
                os.path.join(self.directory, SUPERVISOR_EVENTS_FILENAME)
            )
        self._recorder.event(kind, **fields)

    def close(self) -> None:
        if self._recorder is not None:
            self._recorder.close()


# ----------------------------------------------------------------------
# The supervisor proper
# ----------------------------------------------------------------------
class _Supervisor:
    """State machine of one supervised fan-out."""

    def __init__(
        self,
        tasks: Sequence[SuiteTask],
        jobs: int,
        options: SupervisorOptions,
        verbose: bool,
        use_cache: bool,
        cache_dir: Optional[str],
    ) -> None:
        self.tasks = list(tasks)
        self.jobs = jobs
        self.options = options
        self.verbose = verbose
        self.use_cache = use_cache
        self.cache_dir = cache_dir
        self.names: List[str] = []
        for task in self.tasks:
            if task.design not in self.names:
                self.names.append(task.design)
        n = len(self.tasks)
        self.results: List[Optional[RunRecord]] = [None] * n
        self.outcomes = [
            TaskOutcome(index=i, run_id=t.run_id)
            for i, t in enumerate(self.tasks)
        ]
        self.pending = deque(range(n))
        self.retries: List[Tuple[float, int]] = []  # (ready_at, index) heap
        self.done = 0
        self.emitted = 0
        self.worker_respawns = 0
        self.degraded = False
        telemetry_dir = next(
            (t.telemetry_dir for t in self.tasks if t.telemetry_dir), None
        )
        self.telemetry = _SupervisorTelemetry(telemetry_dir)
        #: Live-run registry under the suite telemetry dir: worker
        #: sessions heartbeat into it, and the supervisor reads it
        #: post-mortem to say *where* a killed/hung task last was.
        self.registry = (
            RunRegistry(telemetry_dir) if telemetry_dir is not None else None
        )

    # ------------------------------------------------------------------
    def run(self) -> SupervisedResult:
        try:
            if self.jobs <= 1 or len(self.tasks) <= 1:
                self._run_serial(list(self.pending))
                self.pending.clear()
            else:
                self._run_pool()
            return SupervisedResult(
                records=[r for r in self.results if r is not None],
                outcomes=self.outcomes,
                options=self.options,
                worker_respawns=self.worker_respawns,
                degraded_to_serial=self.degraded,
            )
        finally:
            self.telemetry.close()
            if self.registry is not None:
                # Sweep records orphaned by killed workers so `status`
                # shows a clean registry after the suite returns.
                self.registry.gc()

    def _last_heartbeat(self, run_id: str) -> Optional[Dict[str, Any]]:
        """Post-mortem heartbeat of a killed/hung task's run, if any.

        A worker that died mid-task leaves its run's registry record
        behind (clean exits remove it), so the last beat tells us the
        phase/iteration the task reached and how long it had been silent.
        """
        if self.registry is None:
            return None
        record = self.registry.read(run_id)
        if record is None:
            return None
        return {
            "phase": record.phase,
            "iteration": record.iteration,
            "age_s": round(record.age_s(), 1),
        }

    @staticmethod
    def _describe_heartbeat(heartbeat: Optional[Dict[str, Any]]) -> str:
        """``"; last seen at iteration 412 in rsmt_rebuild, silent for 93s"``."""
        if heartbeat is None:
            return ""
        where = f"in {heartbeat['phase']}"
        if heartbeat.get("iteration") is not None:
            where = f"at iteration {heartbeat['iteration']} {where}"
        return f"; last seen {where}, silent for {heartbeat['age_s']:.0f}s"

    def records_in_task_order(self) -> List[RunRecord]:
        out: List[RunRecord] = []
        for index, record in enumerate(self.results):
            if record is None:  # pragma: no cover - defensive
                record = quarantined_record(
                    self.tasks[index], self.outcomes[index]
                )
            out.append(record)
        return out

    # ------------------------------------------------------------------
    # Parallel path
    # ------------------------------------------------------------------
    def _run_pool(self) -> None:
        ctx = multiprocessing.get_context("spawn")
        workers: List[_Worker] = []
        target = min(self.jobs, len(self.tasks))
        try:
            for _ in range(target):
                workers.append(self._respawn(ctx, initial=True))
        except Exception as exc:
            for worker in workers:
                worker.shutdown()
            self._degrade(f"worker pool could not be built: {_one_line(exc)}")
            return

        try:
            while self.done < len(self.tasks):
                self._dispatch(ctx, workers)
                busy = [w for w in workers if w.busy]
                if not busy:
                    if not self.pending and not self.retries:
                        break  # pragma: no cover - defensive
                    self._sleep_until_retry_ready()
                    continue
                timeout = self._wait_timeout(busy)
                ready = mp_connection.wait(
                    [w.conn for w in busy], timeout=timeout
                )
                now = time.monotonic()
                by_conn = {w.conn: w for w in busy}
                for conn in ready:
                    self._drain_worker(ctx, workers, by_conn[conn], now)
                for worker in list(workers):
                    if (
                        worker.busy
                        and worker.deadline is not None
                        and time.monotonic() >= worker.deadline
                    ):
                        self._timeout_worker(ctx, workers, worker)
        except _DegradedToSerial as exc:
            for worker in workers:
                worker.kill()
            workers = []
            self._degrade(str(exc))
        finally:
            for worker in workers:
                worker.shutdown()

    def _respawn(self, ctx, initial: bool = False) -> _Worker:
        worker = _spawn_worker(ctx, self.use_cache, self.cache_dir, self.names)
        if not initial:
            self.worker_respawns += 1
        return worker

    def _dispatch(self, ctx, workers: List[_Worker]) -> None:
        now = time.monotonic()
        for worker in list(workers):
            if worker.busy:
                continue
            index = self._next_ready(now)
            if index is None:
                return
            outcome = self.outcomes[index]
            outcome.attempts += 1
            try:
                worker.assign(
                    index,
                    outcome.attempts,
                    self.tasks[index],
                    self.options.task_timeout,
                )
            except (OSError, ValueError):
                # The worker died while idle: the task never ran, so it
                # goes back to the front of the queue uncharged.
                outcome.attempts -= 1
                worker.release()
                self.pending.appendleft(index)
                worker.kill()
                workers.remove(worker)
                try:
                    workers.append(self._respawn(ctx))
                except Exception as exc:
                    raise _DegradedToSerial(
                        f"worker respawn failed: {_one_line(exc)}"
                    )

    def _next_ready(self, now: float) -> Optional[int]:
        if self.retries and self.retries[0][0] <= now:
            return heapq.heappop(self.retries)[1]
        if self.pending:
            return self.pending.popleft()
        return None

    def _wait_timeout(self, busy: List[_Worker]) -> Optional[float]:
        now = time.monotonic()
        bounds = [
            w.deadline - now for w in busy if w.deadline is not None
        ]
        if self.retries:
            bounds.append(self.retries[0][0] - now)
        if not bounds:
            return None
        return max(min(bounds), 0.0)

    def _sleep_until_retry_ready(self) -> None:
        now = time.monotonic()
        delay = max(self.retries[0][0] - now, 0.0) if self.retries else 0.01
        time.sleep(min(delay + 0.001, 0.25))

    def _drain_worker(
        self, ctx, workers: List[_Worker], worker: _Worker, now: float
    ) -> None:
        index = worker.task_index
        try:
            message = worker.conn.recv()
        except (EOFError, OSError):
            # The worker died mid-task: respawn it, retry only its task.
            pid = worker.process.pid
            worker.kill()
            workers.remove(worker)
            if index is not None:
                heartbeat = self._last_heartbeat(self.tasks[index].run_id)
                self._register_failure(
                    index,
                    "crash",
                    f"worker pid {pid} died mid-task"
                    f"{self._describe_heartbeat(heartbeat)}",
                    last_heartbeat=heartbeat,
                )
                self.telemetry.event(
                    "worker_respawn",
                    pid=pid,
                    run_id=self.tasks[index].run_id,
                    failure="crash",
                )
            if self.pending or self.retries:
                try:
                    workers.append(self._respawn(ctx))
                except Exception as exc:
                    raise _DegradedToSerial(
                        f"worker respawn failed: {_one_line(exc)}"
                    )
            return
        kind = message[0]
        if kind == "ok":
            _, index, record = message
            record.attempts = self.outcomes[index].attempts
            self._register_success(index, record)
        elif kind == "exc":
            _, index, failure, error = message
            self._register_failure(index, failure, error)
        worker.release()

    def _timeout_worker(
        self, ctx, workers: List[_Worker], worker: _Worker
    ) -> None:
        index = worker.task_index
        pid = worker.process.pid
        worker.kill()
        workers.remove(worker)
        if index is not None:
            heartbeat = self._last_heartbeat(self.tasks[index].run_id)
            self._register_failure(
                index,
                "timeout",
                f"task exceeded {self.options.task_timeout:.1f}s wall-clock "
                f"timeout (worker pid {pid} killed)"
                f"{self._describe_heartbeat(heartbeat)}",
                last_heartbeat=heartbeat,
            )
            self.telemetry.event(
                "worker_respawn",
                pid=pid,
                run_id=self.tasks[index].run_id,
                failure="timeout",
            )
        if self.pending or self.retries:
            try:
                workers.append(self._respawn(ctx))
            except Exception as exc:
                raise _DegradedToSerial(
                    f"worker respawn failed: {_one_line(exc)}"
                )

    # ------------------------------------------------------------------
    # Serial (degraded / jobs<=1) path
    # ------------------------------------------------------------------
    def _degrade(self, reason: str) -> None:
        self.degraded = True
        if self.verbose:
            print(f"supervisor: degrading to serial execution ({reason})")
        remaining = sorted(
            set(self.pending)
            | {index for _, index in self.retries}
            | {
                i
                for i in range(len(self.tasks))
                if self.results[i] is None
                and self.outcomes[i].quarantined is None
            }
        )
        self.pending.clear()
        self.retries = []
        self._run_serial(remaining)

    def _run_serial(self, indices: Sequence[int]) -> None:
        for index in indices:
            outcome = self.outcomes[index]
            while True:
                outcome.attempts += 1
                try:
                    record = _execute_task(
                        self.tasks[index],
                        self.use_cache,
                        self.cache_dir,
                        task_index=index,
                        attempt=outcome.attempts,
                    )
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as exc:
                    retrying = self._register_failure(
                        index, _classify_exception(exc), _one_line(exc)
                    )
                    if not retrying:
                        break
                    # Honour the deterministic backoff schedule in-process.
                    time.sleep(outcome.failures[-1].retry_delay_s)
                else:
                    self._register_success(index, record)
                    break

    # ------------------------------------------------------------------
    # Outcome bookkeeping (shared by both paths)
    # ------------------------------------------------------------------
    def _register_success(self, index: int, record: RunRecord) -> None:
        self.results[index] = record
        self.done += 1
        self._flush_verbose()

    def _register_failure(
        self,
        index: int,
        failure: str,
        error: str,
        last_heartbeat: Optional[Dict[str, Any]] = None,
    ) -> bool:
        """Record one failed attempt; True when the task will be retried.

        ``last_heartbeat`` (``{phase, iteration, age_s}``, from the run
        registry) is stamped into the quarantine telemetry so the event
        says *where* the task died, not just that it did.
        """
        outcome = self.outcomes[index]
        task = self.tasks[index]
        if outcome.attempts > self.options.max_retries:
            outcome.failures.append(
                TaskAttempt(
                    attempt=outcome.attempts, failure=failure, error=error
                )
            )
            outcome.quarantined = failure
            self.results[index] = quarantined_record(task, outcome)
            self.done += 1
            self.telemetry.event(
                "task_quarantine",
                run_id=task.run_id,
                task_index=index,
                attempts=outcome.attempts,
                failure=failure,
                error=error,
                last_heartbeat=last_heartbeat,
            )
            if self.registry is not None:
                # The quarantined run will never beat again; drop its
                # record rather than leaving a permanent "dead" row.
                self.registry.remove(task.run_id)
            self._flush_verbose()
            return False
        delay = self.options.backoff_delay(index, outcome.attempts)
        outcome.failures.append(
            TaskAttempt(
                attempt=outcome.attempts,
                failure=failure,
                error=error,
                retry_delay_s=delay,
            )
        )
        heapq.heappush(self.retries, (time.monotonic() + delay, index))
        self.telemetry.event(
            "task_retry",
            run_id=task.run_id,
            task_index=index,
            attempt=outcome.attempts,
            failure=failure,
            error=error,
            delay_s=delay,
        )
        if self.verbose:
            print(
                f"supervisor: retrying {task.run_id} "
                f"(attempt {outcome.attempts} {failure}: {error})"
            )
        return True

    def _flush_verbose(self) -> None:
        """Print finished records in task order, independent of scheduling."""
        while (
            self.emitted < len(self.results)
            and self.results[self.emitted] is not None
        ):
            if self.verbose:
                print(self.results[self.emitted].summary())
            self.emitted += 1


class _DegradedToSerial(Exception):
    """Internal control flow: the pool is unrecoverable, finish serially."""


def run_supervised(
    tasks: Sequence[SuiteTask],
    jobs: int = 1,
    options: Optional[SupervisorOptions] = None,
    verbose: bool = False,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
) -> Tuple[List[RunRecord], SupervisedResult]:
    """Run tasks under supervision; returns task-ordered records + outcome.

    Records are aligned with ``tasks``; a quarantined task contributes a
    placeholder record (``stop_reason="quarantined:<kind>"``, NaN
    metrics, ``quarantine`` provenance) so downstream zips keep working.
    The suite always completes - only ``KeyboardInterrupt``/``SystemExit``
    escape.
    """
    supervisor = _Supervisor(
        tasks,
        jobs=jobs,
        options=options if options is not None else SupervisorOptions(),
        verbose=verbose,
        use_cache=use_cache,
        cache_dir=cache_dir,
    )
    try:
        result = supervisor.run()
    except (KeyboardInterrupt, SystemExit, SupervisorError):
        raise
    except Exception as exc:
        # A failure of the supervisor itself (not of a task): salvage
        # whatever completed before surfacing it as a typed error.
        raise SupervisorError(
            _one_line(exc),
            completed=[
                (i, r)
                for i, r in enumerate(supervisor.results)
                if r is not None
            ],
        ) from exc
    return supervisor.records_in_task_order(), result


# ----------------------------------------------------------------------
# Legacy unsupervised executor fan-out (byte-identity reference)
# ----------------------------------------------------------------------
def _pool_worker_init(cache_dir: Optional[str], names: Sequence[str]) -> None:
    """Unsupervised-pool initializer: mark the worker + warm the designs."""
    global _IN_WORKER
    _IN_WORKER = True
    _preload_designs(cache_dir, names)


def run_pool_unsupervised(
    tasks: Sequence[SuiteTask],
    jobs: int,
    verbose: bool = False,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
) -> List[RunRecord]:
    """The pre-supervisor ``ProcessPoolExecutor`` fan-out (``--no-supervise``).

    No retries, no timeouts, no crash isolation: the first failure aborts
    the suite.  But raw ``BrokenProcessPool``/task tracebacks no longer
    escape - failures are wrapped in the typed :class:`SupervisorError`
    hierarchy with every already-completed record attached for salvage.
    """
    tasks = list(tasks)
    names: List[str] = []
    for task in tasks:
        if task.design not in names:
            names.append(task.design)
    ctx = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(tasks)),
        mp_context=ctx,
        initializer=_pool_worker_init,
        initargs=(cache_dir, tuple(names) if use_cache else ()),
    ) as pool:
        futures = [
            pool.submit(_execute_task, task, use_cache, cache_dir, i, 1)
            for i, task in enumerate(tasks)
        ]
        records: List[RunRecord] = []
        # Ordered collection: wait for tasks in submission order so the
        # output (and any verbose printing) is independent of scheduling.
        for index, future in enumerate(futures):
            try:
                record = future.result()
            except BaseException as exc:
                # Salvage everything that can still finish: cancel tasks
                # not yet started, drain the in-flight ones (a task
                # exception leaves the pool alive; a broken pool makes
                # every remaining future fail instantly).
                completed = list(enumerate(records))
                for later in range(index + 1, len(futures)):
                    f = futures[later]
                    if f.cancel():
                        continue
                    try:
                        completed.append((later, f.result()))
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except BaseException:
                        pass
                if isinstance(exc, BrokenProcessPool):
                    raise PoolBrokenError(
                        "a worker process died; run with supervision "
                        "(drop --no-supervise) to isolate and retry the "
                        "failed task",
                        task_index=index,
                        run_id=tasks[index].run_id,
                        completed=completed,
                    ) from exc
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                raise TaskFailedError(
                    _one_line(exc),
                    failure=_classify_exception(exc),
                    task_index=index,
                    run_id=tasks[index].run_id,
                    completed=completed,
                ) from exc
            records.append(record)
            if verbose:
                print(record.summary())
    return records


# ----------------------------------------------------------------------
# Generic supervised fan-out for non-suite workloads
# ----------------------------------------------------------------------
def supervised_map(
    fn: Any,
    items: Sequence[Any],
    jobs: int,
) -> List[Any]:
    """Map a picklable ``fn`` over ``items`` across spawn workers.

    The general-purpose sibling of the suite fan-out, for workloads
    (e.g. the reprolint ``--jobs`` analyzer shards) that want process
    parallelism without the suite-task machinery.  It keeps the two
    properties that matter: pools are constructed *here* (the
    ``supervised-pool-only`` contract) and failures degrade instead of
    crashing - any pool-level fault falls back to computing the
    remaining items serially in-process.  Results are in ``items``
    order.  Nested fan-out from inside a worker runs serially.
    """
    items = list(items)
    jobs = max(1, min(jobs, len(items)))
    if jobs <= 1 or len(items) <= 1 or _IN_WORKER:
        return [fn(item) for item in items]
    results: List[Any] = [None] * len(items)
    done = [False] * len(items)
    try:
        ctx = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=ctx,
            initializer=_pool_worker_init,
            initargs=(None, ()),
        ) as pool:
            futures = [pool.submit(fn, item) for item in items]
            for i, future in enumerate(futures):
                results[i] = future.result()
                done[i] = True
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException:
        # Worker death, unpicklable payloads, spawn failure: finish the
        # outstanding items serially rather than losing the run.
        for i, item in enumerate(items):
            if not done[i]:
                results[i] = fn(item)
    return results
