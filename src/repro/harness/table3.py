"""Table 3 reproduction: WNS/TNS/HPWL/runtime across placers and designs.

Runs the three placers (original DREAMPlace [16], momentum net weighting
[24], and our differentiable-timing placer) on the miniblue suite and
formats the results in the paper's layout, including the average-ratio row
(each metric normalised to "Ours", geometric-mean style arithmetic mean of
per-design ratios as the paper uses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..place.placer import PlacerOptions
from .runners import MODES, RunRecord, run_mode
from .suite import SUITE, load_design

__all__ = ["Table3Result", "run_table3", "format_table3", "average_ratios"]


@dataclass
class Table3Result:
    """All runs of the comparison, keyed by (design, mode)."""

    records: Dict[str, Dict[str, RunRecord]] = field(default_factory=dict)

    def add(self, record: RunRecord) -> None:
        self.records.setdefault(record.design, {})[record.mode] = record

    @property
    def designs(self) -> List[str]:
        return list(self.records)

    def metric(self, design: str, mode: str, key: str) -> float:
        return getattr(self.records[design][mode], key)


def run_table3(
    designs: Optional[Sequence[str]] = None,
    modes: Sequence[str] = MODES,
    max_iters: int = 600,
    verbose: bool = True,
    profile: bool = False,
    validate: bool = False,
    checkpoint_every: int = 0,
    jobs: int = 1,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
) -> Table3Result:
    """Run the full (designs x modes) comparison matrix.

    ``profile=True`` dumps a per-kernel timing breakdown per (design,
    mode) run into ``benchmarks/results/`` (see :func:`run_mode`).
    ``validate`` runs structural design validation before each placement;
    ``checkpoint_every`` saves resumable placer checkpoints on that period
    (see :mod:`repro.runtime`).  ``jobs > 1`` fans the matrix out to that
    many worker processes (see :mod:`repro.harness.parallel`); results
    and final metrics are identical to the serial run.  ``use_cache``
    serves designs through the bundle cache (bit-identical, loads once
    per process); ``cache_dir`` overrides its location.
    """
    names = list(designs) if designs is not None else [e.name for e in SUITE]
    result = Table3Result()
    if jobs > 1 and all(isinstance(n, str) for n in names):
        from .parallel import SuiteTask, run_parallel

        tasks = [
            SuiteTask(
                design=name,
                mode=mode,
                max_iters=max_iters,
                checkpoint_every=checkpoint_every,
                profile=profile,
                extra_placer_options={"validate": validate},
            )
            for name in names
            for mode in modes
        ]
        records = run_parallel(
            tasks,
            jobs=jobs,
            verbose=verbose,
            use_cache=use_cache,
            cache_dir=cache_dir,
        )
        for record in records:
            result.add(record)
        return result
    for name in names:
        design = (
            load_design(name, cache=use_cache, cache_dir=cache_dir)
            if isinstance(name, str)
            else name
        )
        for mode in modes:
            record = run_mode(
                design, mode,
                placer_options=PlacerOptions(
                    max_iters=max_iters,
                    validate=validate,
                    checkpoint_every=checkpoint_every,
                ),
                profile=profile,
            )
            result.add(record)
            if verbose:
                print(record.summary())
    return result


def average_ratios(
    result: Table3Result, reference_mode: str = "ours"
) -> Dict[str, Dict[str, float]]:
    """Per-mode average of metric ratios vs the reference mode.

    WNS/TNS ratios use absolute values (a ratio > 1 means worse timing
    than the reference); runtime and HPWL are plain ratios.  Matches the
    "Avg. Ratio" row of Table 3.
    """
    out: Dict[str, Dict[str, float]] = {}
    designs = result.designs
    for mode in next(iter(result.records.values())).keys():
        ratios: Dict[str, List[float]] = {
            "wns": [],
            "tns": [],
            "hpwl": [],
            "runtime": [],
        }
        for design in designs:
            ref = result.records[design][reference_mode]
            rec = result.records[design][mode]
            for key in ratios:
                ref_val = getattr(ref, key)
                val = getattr(rec, key)
                if key in ("wns", "tns"):
                    ref_val, val = abs(ref_val), abs(val)
                if abs(ref_val) < 1e-12:
                    continue
                ratios[key].append(val / ref_val)
        out[mode] = {k: float(np.mean(v)) if v else float("nan") for k, v in ratios.items()}
    return out


def format_table3(result: Table3Result, reference_mode: str = "ours") -> str:
    """Render the comparison in the paper's Table 3 layout."""
    modes = list(next(iter(result.records.values())).keys())
    mode_title = {
        "dreamplace": "DREAMPlace [16]",
        "netweight": "Net Weighting [24]",
        "ours": "Ours",
    }
    col = f"{'WNS':>9} {'TNS':>11} {'HPWL':>9} {'Time':>7}"
    header1 = f"{'Benchmark':<12}" + "".join(
        f" | {mode_title.get(m, m):^40}" for m in modes
    )
    header2 = f"{'':<12}" + "".join(f" | {col}" for m in modes)
    lines = [header1, header2, "-" * len(header2)]
    for design in result.designs:
        row = f"{design:<12}"
        for mode in modes:
            rec = result.records[design][mode]
            row += (
                f" | {rec.wns:>9.1f} {rec.tns:>11.1f} "
                f"{rec.hpwl:>9.1f} {rec.runtime:>7.2f}"
            )
        lines.append(row)
    ratios = average_ratios(result, reference_mode)
    row = f"{'Avg. Ratio':<12}"
    for mode in modes:
        r = ratios[mode]
        row += (
            f" | {r['wns']:>9.3f} {r['tns']:>11.3f} "
            f"{r['hpwl']:>9.3f} {r['runtime']:>7.3f}"
        )
    lines.append(row)
    lines.append(
        "WNS/TNS in ps (golden STA, setup); HPWL in um; Time in s; "
        f"ratios are averages vs mode '{reference_mode}'."
    )
    return "\n".join(lines)
