"""Dependency-free SVG rendering of placements and optimization curves.

Matplotlib is not assumed anywhere in this package; these helpers emit
plain SVG text so benchmark artifacts (Figure 8 curves, placement
snapshots before/after timing optimization) can be inspected in any
browser.  Layout is deliberately simple: one plot per file, auto-scaled
axes with a handful of ticks, and a legend.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from ..netlist.design import Design

__all__ = ["placement_svg", "curves_svg", "save_svg"]

_PALETTE = ["#3465a4", "#cc0000", "#4e9a06", "#f57900", "#75507b", "#0e7c7b"]


def _svg_header(width: int, height: int, title: str) -> list:
    return [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2:.0f}" y="18" text-anchor="middle" '
        f'font-family="sans-serif" font-size="14">{title}</text>',
    ]


def placement_svg(
    design: Design,
    cell_x: Optional[np.ndarray] = None,
    cell_y: Optional[np.ndarray] = None,
    highlight: Optional[Iterable[int]] = None,
    title: Optional[str] = None,
    size: int = 640,
) -> str:
    """Render a placement: die, rows, cells (sequential in red), ports.

    ``highlight`` marks cells (e.g. a critical path) in orange.
    """
    x = design.cell_x if cell_x is None else cell_x
    y = design.cell_y if cell_y is None else cell_y
    xl, yl, xh, yh = design.die
    margin = 30
    scale = (size - 2 * margin) / max(xh - xl, yh - yl, 1e-9)
    width = int(2 * margin + (xh - xl) * scale)
    height = int(2 * margin + (yh - yl) * scale + 20)

    def sx(v: float) -> float:
        return margin + (v - xl) * scale

    def sy(v: float) -> float:
        return height - margin - (v - yl) * scale  # flip y

    out = _svg_header(width, height, title or design.name)
    out.append(
        f'<rect x="{sx(xl):.1f}" y="{sy(yh):.1f}" '
        f'width="{(xh - xl) * scale:.1f}" height="{(yh - yl) * scale:.1f}" '
        f'fill="#f7f7f7" stroke="#888"/>'
    )
    n_rows = max(int((yh - yl) / design.row_height), 1)
    for r in range(1, n_rows):
        ry = sy(yl + r * design.row_height)
        out.append(
            f'<line x1="{sx(xl):.1f}" y1="{ry:.1f}" x2="{sx(xh):.1f}" '
            f'y2="{ry:.1f}" stroke="#e0e0e0" stroke-width="0.5"/>'
        )
    highlight_set = (
        set(int(c) for c in highlight) if highlight is not None else set()
    )
    for ci in range(design.n_cells):
        w = max(design.cell_w[ci] * scale, 1.5)
        h = max(design.cell_h[ci] * scale, 1.5)
        px = sx(x[ci]) - w / 2
        py = sy(y[ci]) - h / 2
        if ci in highlight_set:
            fill = "#f57900"
        elif design.cell_is_port[ci]:
            fill = "#4e9a06"
        elif design.cell_type_of(ci).is_sequential:
            fill = "#cc0000"
        else:
            fill = "#3465a4"
        out.append(
            f'<rect x="{px:.1f}" y="{py:.1f}" width="{w:.1f}" '
            f'height="{h:.1f}" fill="{fill}" fill-opacity="0.75"/>'
        )
    out.append("</svg>")
    return "\n".join(out)


def curves_svg(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    title: str = "",
    xlabel: str = "iteration",
    ylabel: str = "",
    width: int = 640,
    height: int = 400,
) -> str:
    """Render labelled (x, y) series as an SVG line plot with a legend."""
    margin_l, margin_r, margin_t, margin_b = 70, 20, 30, 45
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b

    all_x = np.concatenate([np.asarray(xs, float) for xs, _ in series.values()])
    all_y = np.concatenate([np.asarray(ys, float) for _, ys in series.values()])
    if len(all_x) == 0:
        raise ValueError("no data to plot")
    x0, x1 = float(all_x.min()), float(all_x.max())
    y0, y1 = float(all_y.min()), float(all_y.max())
    if x1 == x0:
        x1 = x0 + 1.0
    if y1 == y0:
        y1 = y0 + 1.0
    pad = 0.05 * (y1 - y0)
    y0, y1 = y0 - pad, y1 + pad

    def sx(v: float) -> float:
        return margin_l + (v - x0) / (x1 - x0) * plot_w

    def sy(v: float) -> float:
        return margin_t + (y1 - v) / (y1 - y0) * plot_h

    out = _svg_header(width, height, title)
    out.append(
        f'<rect x="{margin_l}" y="{margin_t}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#444"/>'
    )
    # Ticks.
    for k in range(5):
        tx = x0 + k * (x1 - x0) / 4
        ty = y0 + k * (y1 - y0) / 4
        out.append(
            f'<text x="{sx(tx):.1f}" y="{height - margin_b + 16}" '
            f'text-anchor="middle" font-family="sans-serif" '
            f'font-size="10">{tx:.0f}</text>'
        )
        out.append(
            f'<text x="{margin_l - 6}" y="{sy(ty) + 3:.1f}" '
            f'text-anchor="end" font-family="sans-serif" '
            f'font-size="10">{ty:.3g}</text>'
        )
        out.append(
            f'<line x1="{margin_l}" y1="{sy(ty):.1f}" '
            f'x2="{width - margin_r}" y2="{sy(ty):.1f}" '
            f'stroke="#eee" stroke-width="0.5"/>'
        )
    out.append(
        f'<text x="{margin_l + plot_w / 2:.0f}" y="{height - 8}" '
        f'text-anchor="middle" font-family="sans-serif" '
        f'font-size="12">{xlabel}</text>'
    )
    out.append(
        f'<text x="14" y="{margin_t + plot_h / 2:.0f}" text-anchor="middle" '
        f'font-family="sans-serif" font-size="12" '
        f'transform="rotate(-90 14 {margin_t + plot_h / 2:.0f})">{ylabel}</text>'
    )
    # Series + legend.
    for k, (label, (xs, ys)) in enumerate(series.items()):
        color = _PALETTE[k % len(_PALETTE)]
        points = " ".join(
            f"{sx(float(px)):.1f},{sy(float(py)):.1f}"
            for px, py in zip(xs, ys)
        )
        out.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            f'stroke-width="1.6"/>'
        )
        ly = margin_t + 14 + 16 * k
        out.append(
            f'<line x1="{width - margin_r - 110}" y1="{ly}" '
            f'x2="{width - margin_r - 86}" y2="{ly}" stroke="{color}" '
            f'stroke-width="2"/>'
        )
        out.append(
            f'<text x="{width - margin_r - 80}" y="{ly + 4}" '
            f'font-family="sans-serif" font-size="11">{label}</text>'
        )
    out.append("</svg>")
    return "\n".join(out)


def save_svg(svg_text: str, path: str) -> str:
    """Write SVG text to a file; returns the path."""
    with open(path, "w") as handle:
        handle.write(svg_text)
    return path
