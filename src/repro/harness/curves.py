"""Figure 8 reproduction: optimization curves over placement iterations.

Runs the plain-wirelength DREAMPlace baseline and our timing-driven placer
on one design (the paper uses superblue4; we use miniblue4), collecting
HPWL, density overflow, WNS and TNS per (sampled) iteration, and renders
the four series side by side.  The expected shape matches the paper's
figure: the HPWL and overflow curves of the two placers nearly coincide,
while the timing curves separate in later iterations in our favour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..place.placer import PlacerOptions
from .runners import RunRecord, run_mode
from .suite import load_design

__all__ = ["CurveData", "run_fig8", "format_fig8", "to_csv"]


@dataclass
class CurveData:
    """Per-mode iteration series for the four Figure 8 panels."""

    design: str
    series: Dict[str, Dict[str, Tuple[np.ndarray, np.ndarray]]] = field(
        default_factory=dict
    )
    records: Dict[str, RunRecord] = field(default_factory=dict)

    def panel(self, metric: str, mode: str) -> Tuple[np.ndarray, np.ndarray]:
        return self.series[mode][metric]


def _extract(trace: List[Dict[str, float]], key: str):
    its = np.array([t["iteration"] for t in trace if key in t])
    vals = np.array([t[key] for t in trace if key in t])
    return its, vals


def run_fig8(
    design_name: str = "miniblue4",
    max_iters: int = 600,
    modes: Tuple[str, ...] = ("dreamplace", "ours"),
) -> CurveData:
    """Collect the Figure 8 curves for the given design."""
    data = CurveData(design=design_name)
    for mode in modes:
        design = load_design(design_name)
        record = run_mode(
            design,
            mode,
            placer_options=PlacerOptions(max_iters=max_iters),
            with_trace_sta=True,
        )
        data.records[mode] = record
        data.series[mode] = {
            key: _extract(record.trace, key)
            for key in ("hpwl", "overflow", "wns", "tns")
        }
    return data


def format_fig8(data: CurveData, step: int = 20) -> str:
    """Text rendering of the four panels, one row per sampled iteration."""
    modes = list(data.series)
    lines = [
        f"Figure 8 curves on {data.design} "
        f"(modes: {', '.join(modes)}; every {step} iterations)",
        f"{'iter':>6}"
        + "".join(
            f" | {m}:{'hpwl':>9} {'ovf':>6} {'wns':>9} {'tns':>11}" for m in modes
        ),
    ]
    its = data.series[modes[0]]["hpwl"][0]
    for it in its:
        if int(it) % step != 0:
            continue
        row = f"{int(it):>6}"
        for mode in modes:
            cells = []
            for key, width, fmt in (
                ("hpwl", 9, "{:9.0f}"),
                ("overflow", 6, "{:6.3f}"),
                ("wns", 9, "{:9.1f}"),
                ("tns", 11, "{:11.1f}"),
            ):
                xs, ys = data.series[mode][key]
                match = np.nonzero(xs == it)[0]
                if len(match):
                    cells.append(fmt.format(ys[match[0]]))
                else:
                    cells.append(" " * width)
            row += " | " + " ".join(cells)
        lines.append(row)
    for mode in modes:
        rec = data.records[mode]
        lines.append(
            f"final {mode}: WNS={rec.wns:.1f} TNS={rec.tns:.1f} "
            f"HPWL={rec.hpwl:.1f}"
        )
    return "\n".join(lines)


def to_csv(data: CurveData) -> str:
    """CSV dump of all series (iteration, mode, metric, value)."""
    lines = ["iteration,mode,metric,value"]
    for mode, metrics in data.series.items():
        for metric, (xs, ys) in metrics.items():
            for x, y in zip(xs, ys):
                lines.append(f"{int(x)},{mode},{metric},{y!r}")
    return "\n".join(lines)
