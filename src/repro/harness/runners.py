"""Single-run drivers: one placer mode on one design, evaluated honestly.

Each run returns a :class:`RunRecord` with final WNS/TNS from the *golden*
STA (never the smoothed objective), exact HPWL, wall-clock runtime of the
placement itself, and the per-iteration trace for curve plots.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.objective import TimingObjectiveOptions
from ..core.timing_placer import TimingDrivenPlacer, TimingPlacerOptions
from ..netlist.design import Design
from ..perf import PROFILER
from ..place.netweight import NetWeightingPlacer, NetWeightOptions
from ..place.placer import GlobalPlacer, PlacerOptions, PlacerResult
from ..sta.analysis import run_sta

__all__ = ["MODES", "RunRecord", "run_mode", "PROFILE_DIR"]

#: Default destination of ``--profile`` breakdowns (relative to the cwd).
PROFILE_DIR = os.path.join("benchmarks", "results")

#: The three placers of Table 3.
MODES = ("dreamplace", "netweight", "ours")


@dataclass
class RunRecord:
    """Outcome of one (design, mode) run."""

    design: str
    mode: str
    wns: float
    tns: float
    hpwl: float
    runtime: float
    iterations: int
    stop_reason: str
    x: np.ndarray
    y: np.ndarray
    trace: List[Dict[str, float]] = field(default_factory=list)
    #: Per-kernel profiler stats of the run (``--profile`` only).
    profile: Optional[Dict[str, Dict[str, float]]] = None
    #: Numerical-guard event counts (non-empty only when faults occurred).
    nonfinite_events: Dict[str, int] = field(default_factory=dict)
    #: Escalated recoveries (step-shrink retries + checkpoint rollbacks).
    recoveries: int = 0

    def summary(self) -> str:
        return (
            f"{self.design:<12} {self.mode:<10} WNS={self.wns:9.1f} "
            f"TNS={self.tns:11.1f} HPWL={self.hpwl:10.1f} "
            f"t={self.runtime:6.2f}s it={self.iterations}"
        )


def run_mode(
    design: Design,
    mode: str,
    placer_options: Optional[PlacerOptions] = None,
    timing_options: Optional[TimingObjectiveOptions] = None,
    nw_options: Optional[NetWeightOptions] = None,
    with_trace_sta: bool = False,
    profile: bool = False,
    profile_dir: Optional[str] = None,
) -> RunRecord:
    """Run one of the three Table 3 placers on a design.

    ``with_trace_sta`` adds periodic golden-STA samples to the trace (for
    Figure 8 curves); it is excluded from the reported runtime, which is
    re-measured around the placement call only.

    ``profile=True`` turns the shared :data:`repro.perf.PROFILER` on for
    the duration of the run and dumps the per-kernel breakdown to
    ``<profile_dir>/profile_<design>_<mode>.txt`` (default
    ``benchmarks/results/``); the stats dict is also attached to the
    returned record.
    """
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; expected one of {MODES}")
    popts = placer_options if placer_options is not None else PlacerOptions(
        max_iters=600
    )

    was_enabled = PROFILER.enabled
    if profile:
        PROFILER.reset()
        PROFILER.enable()

    start = time.perf_counter()
    if mode == "dreamplace":
        hook = _sta_trace_hook(design, every=10) if with_trace_sta else None
        result: PlacerResult = GlobalPlacer(
            design, popts, extra_grad_fn=hook
        ).run()
    elif mode == "netweight":
        result = NetWeightingPlacer(design, popts, nw_options).run()
    else:
        tp_options = TimingPlacerOptions(
            placer=popts,
            timing=timing_options
            if timing_options is not None
            else TimingObjectiveOptions(),
            sta_in_trace=with_trace_sta,
        )
        result = TimingDrivenPlacer(design, tp_options).run()
    runtime = time.perf_counter() - start

    stats = None
    if profile:
        stats = PROFILER.stats()
        out_dir = profile_dir if profile_dir is not None else PROFILE_DIR
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, f"profile_{design.name}_{mode}.txt")
        with open(path, "w") as handle:
            handle.write(
                PROFILER.report(f"{design.name} / {mode}") + "\n"
            )
        PROFILER.enabled = was_enabled

    final = run_sta(design, result.x, result.y)
    return RunRecord(
        design=design.name,
        mode=mode,
        wns=final.wns_setup,
        tns=final.tns_setup,
        hpwl=result.hpwl,
        runtime=runtime,
        iterations=result.iterations,
        stop_reason=result.stop_reason,
        x=result.x,
        y=result.y,
        trace=result.trace,
        profile=stats,
        nonfinite_events=result.nonfinite_events,
        recoveries=result.recoveries,
    )


def _sta_trace_hook(design: Design, every: int = 10):
    """Metrics-only placer hook: periodic golden STA into the trace.

    Used for Figure 8 curves of the plain-wirelength mode, which otherwise
    never evaluates timing.  Returns zero gradients so the optimization is
    unaffected; the extra STA time is instrumentation, so callers that
    measure runtime should run with ``with_trace_sta=False``.
    """
    from ..sta.analysis import StaticTimingAnalyzer

    sta = StaticTimingAnalyzer(design)
    zeros = np.zeros(design.n_cells)

    def hook(iteration: int, x: np.ndarray, y: np.ndarray):
        if iteration % every != 0:
            return None
        res = sta.run(x, y)
        return zeros, zeros, {"wns": res.wns_setup, "tns": res.tns_setup}

    return hook
