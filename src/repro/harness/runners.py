"""Single-run drivers: one placer mode on one design, evaluated honestly.

Each run returns a :class:`RunRecord` with final WNS/TNS from the *golden*
STA (never the smoothed objective), exact HPWL, wall-clock runtime of the
placement itself, and the per-iteration trace for curve plots.
"""

from __future__ import annotations

import contextlib
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.backend import backend_name
from ..core.objective import TimingObjectiveOptions
from ..core.timing_placer import TimingDrivenPlacer, TimingPlacerOptions
from ..netlist.design import Design
from ..perf import PROFILER
from ..place.netweight import NetWeightingPlacer, NetWeightOptions
from ..place.placer import GlobalPlacer, PlacerOptions, PlacerResult
from ..sta.analysis import run_sta
from ..telemetry.events import recording
from ..telemetry.manifest import make_run_id
from ..telemetry.registry import heartbeating
from ..telemetry.session import RunSession, start_run

__all__ = ["MODES", "RunRecord", "run_mode", "PROFILE_DIR"]

#: Default destination of ``--profile`` breakdowns (relative to the cwd).
PROFILE_DIR = os.path.join("benchmarks", "results")

#: The three placers of Table 3.
MODES = ("dreamplace", "netweight", "ours")


@dataclass
class RunRecord:
    """Outcome of one (design, mode) run."""

    design: str
    mode: str
    wns: float
    tns: float
    hpwl: float
    runtime: float
    iterations: int
    stop_reason: str
    x: np.ndarray
    y: np.ndarray
    trace: List[Dict[str, float]] = field(default_factory=list)
    #: Per-kernel profiler stats of the run (``--profile`` only).
    profile: Optional[Dict[str, Dict[str, float]]] = None
    #: Numerical-guard event counts (non-empty only when faults occurred).
    nonfinite_events: Dict[str, int] = field(default_factory=dict)
    #: Escalated recoveries (step-shrink retries + checkpoint rollbacks).
    recoveries: int = 0
    #: Telemetry run directory (``telemetry_dir`` runs only).
    run_dir: Optional[str] = None
    #: Hierarchical profiler span tree (parallel/profiled runs; merged
    #: across workers by the suite runner).
    span_tree: Optional[Dict[str, object]] = None
    #: Seconds spent acquiring the design (generation or cache load)
    #: before the solve.  Wall-clock: excluded from suite metrics.
    setup_s: float = 0.0
    #: Design-bundle cache provenance for this run (``CacheInfo`` dict;
    #: ``None`` when the design was constructed without the cache).
    design_cache: Optional[Dict[str, object]] = None
    #: Execution attempts the supervised suite runner spent on this task
    #: (1 = first attempt succeeded; >1 = retried after a failure).
    attempts: int = 1
    #: Quarantine provenance when the task exhausted its retries
    #: (``TaskOutcome`` dict with the failure taxonomy); None for runs
    #: that produced real metrics.
    quarantine: Optional[Dict[str, object]] = None
    #: Resource rollup of the run (peak RSS bytes, CPU user/sys second
    #: deltas, fault counts; see :mod:`repro.telemetry.resources`);
    #: None off-POSIX or for unsampled runs.  Wall-clock-class data:
    #: excluded from suite metrics and determinism gates.
    resources: Optional[Dict[str, object]] = None

    @property
    def quarantined(self) -> bool:
        """True for a placeholder record of a task that never succeeded."""
        return self.quarantine is not None

    def summary(self) -> str:
        if self.quarantined:
            failure = (self.quarantine or {}).get("failure", "unknown")
            return (
                f"{self.design:<12} {self.mode:<10} QUARANTINED "
                f"({failure} after {self.attempts} attempts)"
            )
        return (
            f"{self.design:<12} {self.mode:<10} WNS={self.wns:9.1f} "
            f"TNS={self.tns:11.1f} HPWL={self.hpwl:10.1f} "
            f"t={self.runtime:6.2f}s it={self.iterations}"
        )


def run_mode(
    design: Design,
    mode: str,
    placer_options: Optional[PlacerOptions] = None,
    timing_options: Optional[TimingObjectiveOptions] = None,
    nw_options: Optional[NetWeightOptions] = None,
    with_trace_sta: bool = False,
    profile: bool = False,
    profile_dir: Optional[str] = None,
    collect_spans: bool = False,
    telemetry_dir: Optional[str] = None,
    run_id: Optional[str] = None,
    sta_graph=None,
    design_cache: Optional[Dict[str, object]] = None,
    supervision: Optional[Dict[str, object]] = None,
) -> RunRecord:
    """Run one of the three Table 3 placers on a design.

    ``sta_graph`` reuses a prebuilt levelized
    :class:`~repro.sta.graph.TimingGraph` of ``design`` - the
    timing-aware placers (``ours``, ``netweight``) and the final golden
    STA all skip their per-run graph rebuild; results are bit-identical
    to a fresh build.  ``design_cache`` is the cache-provenance dict
    stamped into the run's telemetry manifest and record;
    ``supervision`` likewise stamps supervised-retry provenance
    (``{"attempt": n, ...}``) when the suite supervisor re-ran the task.

    ``with_trace_sta`` adds periodic golden-STA samples to the trace (for
    Figure 8 curves); it is excluded from the reported runtime, which is
    re-measured around the placement call only.

    ``profile=True`` turns the shared :data:`repro.perf.PROFILER` on for
    the duration of the run and dumps the hierarchical span breakdown to
    ``<profile_dir>/profile_<design>_<mode>_<run_id>.txt`` (default
    directory ``benchmarks/results/``), updating a
    ``profile_<design>_<mode>_latest.txt`` pointer; the flat stats dict
    is also attached to the returned record.

    ``collect_spans=True`` records the hierarchical span tree onto the
    returned record (for ``--trace-out`` exports) without the text-dump
    side effects of ``profile``; implied by ``profile``/``telemetry_dir``.

    ``telemetry_dir`` opens a telemetry run under that directory (see
    :func:`repro.telemetry.session.start_run`): every layer's recorder
    events stream to ``events.jsonl`` and the run manifest is finalized
    with the golden-STA outcome and the span tree.  When the placer
    options carry ``resume_from``, the telemetry run resumes too
    (``telemetry_dir`` may then point directly at the original run
    directory).
    """
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; expected one of {MODES}")
    popts = placer_options if placer_options is not None else PlacerOptions(
        max_iters=600
    )

    session: Optional[RunSession] = None
    if telemetry_dir is not None:
        session = start_run(
            telemetry_dir,
            design=design.name,
            mode=mode,
            seed=popts.seed,
            options={
                "optimizer": popts.optimizer,
                "max_iters": popts.max_iters,
                "trace_every": popts.trace_every,
                "checkpoint_every": popts.checkpoint_every,
                "with_trace_sta": with_trace_sta,
                # Numerics provenance: which array backend and density
                # pipeline produced this run.  Options diffs are
                # non-gating notes in `compare`, so a planned-vs-scipy
                # comparison reports the provenance without failing on
                # it - the metrics themselves are what gate.
                "backend": backend_name(),
                "density_solver": popts.density_solver,
                "density_precision": popts.density_precision,
            },
            run_id=run_id,
            resume=bool(popts.resume_from),
            attempt=int((supervision or {}).get("attempt", 1)),
        )
        if design_cache is not None:
            session.manifest.design_cache = dict(design_cache)
        if supervision is not None:
            session.manifest.supervision = dict(supervision)

    # The session enables the profiler itself (the manifest carries the
    # span tree); --profile without telemetry keeps the legacy behaviour.
    use_prof = profile or collect_spans or session is not None
    was_enabled = PROFILER.enabled
    if (profile or collect_spans) and session is None:
        PROFILER.reset()
        PROFILER.enable()

    try:
        with contextlib.ExitStack() as stack:
            if session is not None:
                stack.enter_context(recording(session.recorder))
                stack.enter_context(heartbeating(session.heartbeat))
            start = time.perf_counter()
            if mode == "dreamplace":
                hook = (
                    _sta_trace_hook(design, every=10)
                    if with_trace_sta
                    else None
                )
                result: PlacerResult = GlobalPlacer(
                    design, popts, extra_grad_fn=hook
                ).run()
            elif mode == "netweight":
                result = NetWeightingPlacer(
                    design, popts, nw_options, graph=sta_graph
                ).run()
            else:
                tp_options = TimingPlacerOptions(
                    placer=popts,
                    timing=timing_options
                    if timing_options is not None
                    else TimingObjectiveOptions(),
                    sta_in_trace=with_trace_sta,
                )
                result = TimingDrivenPlacer(
                    design, tp_options, graph=sta_graph
                ).run()
            runtime = time.perf_counter() - start
    except BaseException:
        if session is not None:
            session.finalize(final_metrics={"stop_reason": "exception"})
        raise

    stats = None
    if use_prof:
        stats = PROFILER.stats()
    if profile:
        out_dir = profile_dir if profile_dir is not None else PROFILE_DIR
        rid = session.run_id if session is not None else make_run_id(
            design.name, mode
        )
        _dump_profile(out_dir, design.name, mode, rid)
    if (profile or collect_spans) and session is None:
        PROFILER.enabled = was_enabled

    if session is not None and session.heartbeat is not None:
        session.heartbeat.update(phase="sta", force=True)
    final = run_sta(design, result.x, result.y, graph=sta_graph)
    if session is not None:
        session.finalize(
            final_metrics={
                "wns": final.wns_setup,
                "tns": final.tns_setup,
                "hpwl": result.hpwl,
                "overflow": result.overflow,
                "iterations": result.iterations,
                "stop_reason": result.stop_reason,
                "runtime": runtime,
            }
        )
    # Spans accumulate until the next reset, so the tree is still
    # readable after finalize restored the profiler's enabled state.
    span_tree = PROFILER.tree() if use_prof else None
    return RunRecord(
        design=design.name,
        mode=mode,
        wns=final.wns_setup,
        tns=final.tns_setup,
        hpwl=result.hpwl,
        runtime=runtime,
        iterations=result.iterations,
        stop_reason=result.stop_reason,
        x=result.x,
        y=result.y,
        trace=result.trace,
        profile=stats,
        nonfinite_events=result.nonfinite_events,
        recoveries=result.recoveries,
        run_dir=session.run_dir if session is not None else None,
        span_tree=span_tree,
        design_cache=dict(design_cache) if design_cache is not None else None,
        resources=session.manifest.resources if session is not None else None,
    )


def _dump_profile(out_dir: str, design: str, mode: str, run_id: str) -> str:
    """Write this run's span breakdown without clobbering earlier runs.

    Each dump gets a unique ``profile_<design>_<mode>_<run_id>.txt``; a
    ``profile_<design>_<mode>_latest.txt`` symlink points at the newest
    one (on filesystems without symlink support it degrades to a pointer
    file containing the dump's filename).
    """
    os.makedirs(out_dir, exist_ok=True)
    # Auto run ids already start with "<design>_<mode>_"; don't repeat it.
    suffix = run_id[len(f"{design}_{mode}_"):] if run_id.startswith(
        f"{design}_{mode}_"
    ) else run_id
    name = f"profile_{design}_{mode}_{suffix}.txt"
    path = os.path.join(out_dir, name)
    with open(path, "w") as handle:
        handle.write(PROFILER.report(f"{design} / {mode}") + "\n")
        handle.write("\n")
        handle.write(PROFILER.span_report(f"{design} / {mode} spans") + "\n")
    latest = os.path.join(out_dir, f"profile_{design}_{mode}_latest.txt")
    try:
        if os.path.islink(latest) or os.path.exists(latest):
            os.remove(latest)
        os.symlink(name, latest)
    except OSError:
        with open(latest, "w") as handle:
            handle.write(name + "\n")
    return path


def _sta_trace_hook(design: Design, every: int = 10):
    """Metrics-only placer hook: periodic golden STA into the trace.

    Used for Figure 8 curves of the plain-wirelength mode, which otherwise
    never evaluates timing.  Returns zero gradients so the optimization is
    unaffected; the extra STA time is instrumentation, so callers that
    measure runtime should run with ``with_trace_sta=False``.
    """
    from ..sta.analysis import StaticTimingAnalyzer

    sta = StaticTimingAnalyzer(design)
    zeros = np.zeros(design.n_cells)

    def hook(iteration: int, x: np.ndarray, y: np.ndarray):
        if iteration % every != 0:
            return None
        res = sta.run(x, y)
        return zeros, zeros, {"wns": res.wns_setup, "tns": res.tns_setup}

    return hook
