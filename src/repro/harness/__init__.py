"""Experiment harness: benchmark suite, runners, tables, curves.

Suite fan-out (:mod:`repro.harness.parallel`) runs under the task
supervisor (:mod:`repro.harness.supervisor`) by default: worker-crash
isolation, per-task timeouts, bounded deterministic retry, and
poisoned-task quarantine, with fault-free output byte-identical to the
legacy unsupervised pool.
"""

from .suite import SUITE, SuiteEntry, format_table2, load_design, suite_statistics
from .runners import MODES, RunRecord, run_mode
from .table3 import Table3Result, average_ratios, format_table3, run_table3
from .curves import CurveData, format_fig8, run_fig8, to_csv
from .plots import curves_svg, placement_svg, save_svg
from .parallel import run_parallel, run_suite, run_tasks, suite_metrics
from .supervisor import (
    SupervisorError,
    SupervisorOptions,
    SuiteTask,
    PoolBrokenError,
    TaskFailedError,
)

__all__ = [
    "run_parallel",
    "run_suite",
    "run_tasks",
    "suite_metrics",
    "SupervisorError",
    "SupervisorOptions",
    "SuiteTask",
    "PoolBrokenError",
    "TaskFailedError",
    "SUITE",
    "SuiteEntry",
    "format_table2",
    "load_design",
    "suite_statistics",
    "MODES",
    "RunRecord",
    "run_mode",
    "Table3Result",
    "average_ratios",
    "format_table3",
    "run_table3",
    "CurveData",
    "format_fig8",
    "run_fig8",
    "to_csv",
    "curves_svg",
    "placement_svg",
    "save_svg",
]
