"""Experiment harness: benchmark suite, runners, tables, curves."""

from .suite import SUITE, SuiteEntry, format_table2, load_design, suite_statistics
from .runners import MODES, RunRecord, run_mode
from .table3 import Table3Result, average_ratios, format_table3, run_table3
from .curves import CurveData, format_fig8, run_fig8, to_csv
from .plots import curves_svg, placement_svg, save_svg

__all__ = [
    "SUITE",
    "SuiteEntry",
    "format_table2",
    "load_design",
    "suite_statistics",
    "MODES",
    "RunRecord",
    "run_mode",
    "Table3Result",
    "average_ratios",
    "format_table3",
    "run_table3",
    "CurveData",
    "format_fig8",
    "run_fig8",
    "to_csv",
    "curves_svg",
    "placement_svg",
    "save_svg",
]
