"""Process-parallel execution of independent placement runs.

The Table-3 matrix and the suite runner fan (design, mode, seed) tasks
out to a :class:`concurrent.futures.ProcessPoolExecutor`.  Each task is
self-contained - the worker loads the design by name, seeds its own run
and streams its own telemetry - so runs never share mutable state and
the fan-out is deterministic:

- every run's randomness comes from its task's explicit seed (the placer
  seeds a fresh ``Generator`` per run; no global RNG is shared);
- results are collected in task order regardless of completion order;
- per-run telemetry goes to separate run directories whose ids are
  derived from the task (not from timestamps), and the parent merges the
  manifests and profiler span trees afterwards.

Workers are **warm**: the pool is pinned to the ``spawn`` start method
(fork would inherit the parent's warmed NumPy/RNG state, which is both
platform-dependent and a determinism hazard), and a per-process
initializer preloads the shared immutable design state - netlist CSRs,
library LUTs, levelized timing graph - once per process through the
design-bundle cache (:mod:`repro.netlist.cache`).  Each task then only
carries ``(design name, mode, seed, options)``; the parent primes the
on-disk cache before fanning out so workers never race to generate the
same design.

Consequently ``--jobs N`` changes wall-clock only: the per-design final
metrics are bit-identical to a serial run (the CI determinism job diffs
the two metric files byte for byte), and cached runs are bit-identical
to uncached ones (pickle round-trips NumPy arrays exactly).
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import multiprocessing

from ..core.objective import TimingObjectiveOptions
from ..netlist.cache import ensure_cached, load_bundle
from ..perf import PROFILER, merge_span_trees
from ..place.placer import PlacerOptions
from ..telemetry.manifest import load_manifest
from .runners import RunRecord, run_mode
from .suite import design_spec, load_design

__all__ = [
    "SuiteTask",
    "run_parallel",
    "run_suite",
    "suite_metrics",
    "write_suite_manifest",
]

#: Filename of the merged suite summary inside a telemetry directory.
SUITE_MANIFEST_FILENAME = "suite_manifest.json"


@dataclass
class SuiteTask:
    """One self-contained (design, mode, seed) placement run."""

    design: str
    mode: str
    seed: int = 0
    max_iters: int = 600
    checkpoint_every: int = 0
    rsmt_period: Optional[int] = None
    rsmt_dirty_threshold: Optional[float] = None
    telemetry_dir: Optional[str] = None
    profile: bool = False
    with_trace_sta: bool = False
    extra_placer_options: Dict[str, Any] = field(default_factory=dict)

    @property
    def run_id(self) -> str:
        """Deterministic telemetry run id (no timestamp/pid component)."""
        return f"{self.design}_{self.mode}_s{self.seed}"

    def timing_options(self) -> Optional[TimingObjectiveOptions]:
        if self.rsmt_period is None and self.rsmt_dirty_threshold is None:
            return None
        opts = TimingObjectiveOptions()
        if self.rsmt_period is not None:
            opts.rsmt_period = self.rsmt_period
        opts.rsmt_dirty_threshold = self.rsmt_dirty_threshold
        return opts


def _execute_task(
    task: SuiteTask,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
) -> RunRecord:
    """Worker body: run one task and attach its profiler span tree.

    With ``use_cache`` the design (and its prebuilt timing graph) comes
    from the bundle cache: in a warm worker the per-process memo serves
    it with zero disk traffic, so ``setup_s`` collapses to microseconds
    after the first task.  Without, the legacy cold path regenerates the
    design from scratch - kept as the benchmark baseline and as a
    cross-check that cached runs are bit-identical.
    """
    t0 = time.perf_counter()
    graph = None
    cache_info = None
    if use_cache:
        bundle, info = load_bundle(design_spec(task.design), cache_dir)
        design = bundle.design
        graph = bundle.graph
        cache_info = info.to_dict()
    else:
        design = load_design(task.design)
    setup_s = time.perf_counter() - t0
    record = run_mode(
        design,
        task.mode,
        placer_options=PlacerOptions(
            max_iters=task.max_iters,
            seed=task.seed,
            checkpoint_every=task.checkpoint_every,
            **task.extra_placer_options,
        ),
        timing_options=task.timing_options(),
        with_trace_sta=task.with_trace_sta,
        profile=task.profile,
        telemetry_dir=task.telemetry_dir,
        run_id=task.run_id if task.telemetry_dir else None,
        sta_graph=graph,
        design_cache=cache_info,
    )
    record.setup_s = setup_s
    if task.profile or task.telemetry_dir:
        record.span_tree = PROFILER.tree()
    return record


def _worker_init(cache_directory: Optional[str], names: Sequence[str]) -> None:
    """Spawned-worker initializer: preload every task design once.

    Populates the per-process bundle memo from the on-disk cache (primed
    by the parent), so every task this worker executes starts warm.
    """
    for name in names:
        load_bundle(design_spec(name), cache_directory)


def run_parallel(
    tasks: Sequence[SuiteTask],
    jobs: int = 1,
    verbose: bool = False,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
) -> List[RunRecord]:
    """Run tasks across ``jobs`` worker processes; results in task order.

    ``jobs <= 1`` runs everything in-process (no executor), which is the
    reference ordering the parallel path must reproduce.  The pool is
    pinned to the ``spawn`` start method: workers import a pristine
    interpreter instead of inheriting the parent's warmed NumPy/RNG
    state, which keeps the fan-out deterministic across platforms.

    With ``use_cache`` (the default) the parent primes the design-bundle
    cache before fanning out and each worker's initializer preloads the
    bundles, so workers are warm from their first task.
    ``use_cache=False`` is the legacy cold path (regenerate per task) -
    the benchmark baseline.
    """
    tasks = list(tasks)
    names: List[str] = []
    for task in tasks:
        if task.design not in names:
            names.append(task.design)
    if use_cache:
        # Prime the on-disk cache serially so spawned workers always hit
        # a valid file instead of racing to generate the same design.
        for name in names:
            ensure_cached(design_spec(name), cache_dir)
    if jobs <= 1 or len(tasks) <= 1:
        records = []
        for task in tasks:
            record = _execute_task(task, use_cache, cache_dir)
            records.append(record)
            if verbose:
                print(record.summary())
        return records

    ctx = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(tasks)),
        mp_context=ctx,
        initializer=_worker_init if use_cache else None,
        initargs=(cache_dir, tuple(names)) if use_cache else (),
    ) as pool:
        futures = [
            pool.submit(_execute_task, task, use_cache, cache_dir)
            for task in tasks
        ]
        records = []
        # Ordered collection: wait for tasks in submission order so the
        # output (and any verbose printing) is independent of scheduling.
        for future in futures:
            record = future.result()
            records.append(record)
            if verbose:
                print(record.summary())
    return records


def _final_metrics(rec: RunRecord) -> Dict[str, Any]:
    """Deterministic final metrics of one run (no wall-clock fields)."""
    return {
        "wns": rec.wns,
        "tns": rec.tns,
        "hpwl": rec.hpwl,
        "iterations": rec.iterations,
        "stop_reason": rec.stop_reason,
    }


def suite_metrics(
    tasks: Sequence[SuiteTask], records: Sequence[RunRecord]
) -> Dict[str, Any]:
    """Final metrics keyed ``design -> mode -> s<seed>``.

    Runtime (and other wall-clock quantities) are deliberately excluded:
    this dict must be byte-identical between ``--jobs 1`` and
    ``--jobs N`` runs of the same matrix.
    """
    out: Dict[str, Any] = {}
    for task, rec in zip(tasks, records):
        out.setdefault(rec.design, {}).setdefault(rec.mode, {})[
            f"s{task.seed}"
        ] = _final_metrics(rec)
    return out


def write_suite_manifest(
    directory: str,
    tasks: Sequence[SuiteTask],
    records: Sequence[RunRecord],
    jobs: int,
) -> str:
    """Merge per-run telemetry into one ``suite_manifest.json``.

    Collects each run's manifest (when the run streamed telemetry) and
    merges the per-run profiler span trees into a single aggregate tree,
    so a parallel suite still yields one hierarchical profile.
    """
    runs = []
    for task, rec in zip(tasks, records):
        entry: Dict[str, Any] = {
            "design": rec.design,
            "mode": rec.mode,
            "seed": task.seed,
            "run_id": task.run_id,
            "final_metrics": _final_metrics(rec),
            "runtime": rec.runtime,
            "setup_s": rec.setup_s,
            "design_cache": rec.design_cache,
        }
        if rec.run_dir:
            entry["run_dir"] = rec.run_dir
            try:
                entry["manifest"] = load_manifest(rec.run_dir).to_dict()
            except (OSError, ValueError):
                entry["manifest"] = None
        runs.append(entry)
    trees = [rec.span_tree for rec in records if rec.span_tree]
    payload = {
        "jobs": jobs,
        "n_runs": len(runs),
        "runs": runs,
        "merged_span_tree": merge_span_trees(trees) if trees else None,
        "metrics": suite_metrics(tasks, records),
    }
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, SUITE_MANIFEST_FILENAME)
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def run_suite(
    designs: Sequence[str],
    modes: Sequence[str],
    seeds: Sequence[int] = (0,),
    jobs: int = 1,
    max_iters: int = 600,
    telemetry_dir: Optional[str] = None,
    rsmt_period: Optional[int] = None,
    rsmt_dirty_threshold: Optional[float] = None,
    verbose: bool = False,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
) -> List[RunRecord]:
    """Fan the designs x modes x seeds matrix out to ``jobs`` workers."""
    tasks = [
        SuiteTask(
            design=design,
            mode=mode,
            seed=seed,
            max_iters=max_iters,
            rsmt_period=rsmt_period,
            rsmt_dirty_threshold=rsmt_dirty_threshold,
            telemetry_dir=telemetry_dir,
        )
        for design in designs
        for mode in modes
        for seed in seeds
    ]
    records = run_parallel(
        tasks,
        jobs=jobs,
        verbose=verbose,
        use_cache=use_cache,
        cache_dir=cache_dir,
    )
    if telemetry_dir is not None:
        write_suite_manifest(telemetry_dir, tasks, records, jobs)
    return records
