"""Process-parallel execution of independent placement runs.

The Table-3 matrix and the suite runner fan (design, mode, seed) tasks
out across worker processes.  Each task is self-contained - the worker
loads the design by name, seeds its own run and streams its own
telemetry - so runs never share mutable state and the fan-out is
deterministic:

- every run's randomness comes from its task's explicit seed (the placer
  seeds a fresh ``Generator`` per run; no global RNG is shared);
- results are collected in task order regardless of completion order;
- per-run telemetry goes to separate run directories whose ids are
  derived from the task (not from timestamps), and the parent merges the
  manifests and profiler span trees afterwards.

Workers are **warm**: pools are pinned to the ``spawn`` start method
(fork would inherit the parent's warmed NumPy/RNG state, which is both
platform-dependent and a determinism hazard), and each worker preloads
the shared immutable design state - netlist CSRs, library LUTs,
levelized timing graph - once per process through the design-bundle
cache (:mod:`repro.netlist.cache`).  Each task then only carries
``(design name, mode, seed, options)``; the parent primes the on-disk
cache before fanning out so workers never race to generate the same
design.

Execution itself is delegated to :mod:`repro.harness.supervisor`.  The
default (supervised) path adds per-task timeouts, bounded deterministic
retry, crash isolation with worker respawn, and quarantine - one dead or
poisoned task no longer costs the suite.  ``supervise=False`` keeps the
legacy bare executor fan-out (the byte-identity reference); either way a
terminal failure salvages every completed run into a partial suite
manifest (``"partial": true``) before the typed
:class:`~repro.harness.supervisor.SupervisorError` propagates.

Consequently ``--jobs N`` *and supervision* change wall-clock only: on a
fault-free suite the per-design final metrics are bit-identical across
``--jobs 1`` / ``--jobs N`` / supervised / unsupervised (the CI
determinism job diffs the metric files byte for byte), and cached runs
are bit-identical to uncached ones (pickle round-trips NumPy arrays
exactly).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

import multiprocessing  # noqa: F401  (re-exported: tests spy get_context here)

from ..netlist.cache import ensure_cached
from ..perf import merge_span_trees
from ..telemetry.manifest import load_manifest
from .runners import RunRecord
from .supervisor import (
    PoolBrokenError,
    SupervisorError,
    SupervisorOptions,
    SuiteTask,
    TaskFailedError,
    _execute_task,  # noqa: F401  (re-exported: legacy import location)
    run_pool_unsupervised,
    run_supervised,
)
from .suite import design_spec

__all__ = [
    "SuiteTask",
    "SupervisorError",
    "SupervisorOptions",
    "PoolBrokenError",
    "TaskFailedError",
    "run_parallel",
    "run_suite",
    "suite_metrics",
    "write_suite_manifest",
]

#: Filename of the merged suite summary inside a telemetry directory.
SUITE_MANIFEST_FILENAME = "suite_manifest.json"


def _prime_cache(
    tasks: Sequence[SuiteTask], cache_dir: Optional[str]
) -> None:
    """Prime the on-disk bundle cache serially so spawned workers always
    hit a valid file instead of racing to generate the same design."""
    names: List[str] = []
    for task in tasks:
        if task.design not in names:
            names.append(task.design)
    for name in names:
        ensure_cached(design_spec(name), cache_dir)


def _salvage_partial_manifest(
    exc: SupervisorError,
    tasks: Sequence[SuiteTask],
    jobs: int,
) -> None:
    """Satellite fix: never abandon completed runs on a terminal failure.

    Writes a partial suite manifest (``"partial": true``) holding every
    completed record the failure salvaged, into the suite's telemetry
    directory when there is one, and attaches its path to the exception.
    """
    directory = next(
        (t.telemetry_dir for t in tasks if t.telemetry_dir), None
    )
    if directory is None or not exc.completed:
        return
    completed = sorted(exc.completed, key=lambda pair: pair[0])
    try:
        exc.partial_manifest = write_suite_manifest(
            directory,
            [tasks[i] for i, _ in completed],
            [rec for _, rec in completed],
            jobs,
            partial=True,
        )
    except OSError:  # pragma: no cover - salvage must not mask the failure
        pass


def run_parallel(
    tasks: Sequence[SuiteTask],
    jobs: int = 1,
    verbose: bool = False,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
    supervise: bool = True,
    supervisor_options: Optional[SupervisorOptions] = None,
) -> List[RunRecord]:
    """Run tasks across ``jobs`` worker processes; results in task order.

    Thin wrapper over :func:`run_tasks` for callers that only need the
    records (quarantined tasks contribute placeholder records with
    ``stop_reason="quarantined:<kind>"``).
    """
    records, _ = run_tasks(
        tasks,
        jobs=jobs,
        verbose=verbose,
        use_cache=use_cache,
        cache_dir=cache_dir,
        supervise=supervise,
        supervisor_options=supervisor_options,
    )
    return records


def run_tasks(
    tasks: Sequence[SuiteTask],
    jobs: int = 1,
    verbose: bool = False,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
    supervise: bool = True,
    supervisor_options: Optional[SupervisorOptions] = None,
) -> Tuple[List[RunRecord], Optional[Dict[str, Any]]]:
    """Run tasks, returning ``(records, supervision provenance)``.

    ``supervise=True`` (the default) routes through
    :func:`repro.harness.supervisor.run_supervised`; the provenance dict
    is non-None only when supervision actually intervened (a retry,
    quarantine, respawn, or serial degradation), so fault-free suites
    stay byte-identical to unsupervised output.  ``supervise=False`` is
    the legacy bare executor fan-out - no retries, first failure aborts.

    Either way, a terminal :class:`SupervisorError` first salvages every
    completed record into a partial suite manifest (satellite fix) and
    then propagates with ``.partial_manifest`` set.
    """
    tasks = list(tasks)
    if use_cache:
        _prime_cache(tasks, cache_dir)
    try:
        if supervise:
            records, result = run_supervised(
                tasks,
                jobs=jobs,
                options=supervisor_options,
                verbose=verbose,
                use_cache=use_cache,
                cache_dir=cache_dir,
            )
            return records, (
                result.supervision_dict() if result.eventful else None
            )
        if jobs <= 1 or len(tasks) <= 1:
            # Unsupervised serial reference path, in-process.
            records = []
            for index, task in enumerate(tasks):
                try:
                    record = _execute_task(
                        task, use_cache, cache_dir, task_index=index
                    )
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as exc:
                    raise TaskFailedError(
                        f"{type(exc).__name__}: {exc}",
                        task_index=index,
                        run_id=task.run_id,
                        completed=list(enumerate(records)),
                    ) from exc
                records.append(record)
                if verbose:
                    print(record.summary())
            return records, None
        return (
            run_pool_unsupervised(
                tasks,
                jobs=jobs,
                verbose=verbose,
                use_cache=use_cache,
                cache_dir=cache_dir,
            ),
            None,
        )
    except SupervisorError as exc:
        _salvage_partial_manifest(exc, tasks, jobs)
        raise


def _final_metrics(rec: RunRecord) -> Dict[str, Any]:
    """Deterministic final metrics of one run (no wall-clock fields)."""
    return {
        "wns": rec.wns,
        "tns": rec.tns,
        "hpwl": rec.hpwl,
        "iterations": rec.iterations,
        "stop_reason": rec.stop_reason,
    }


def suite_metrics(
    tasks: Sequence[SuiteTask], records: Sequence[RunRecord]
) -> Dict[str, Any]:
    """Final metrics keyed ``design -> mode -> s<seed>``.

    Runtime (and other wall-clock quantities) are deliberately excluded:
    this dict must be byte-identical between ``--jobs 1`` and
    ``--jobs N`` runs of the same matrix.  Quarantined placeholder
    records are excluded too - their NaN metrics would poison the JSON
    and they carry no real result; the suite manifest records them under
    ``supervision`` instead.
    """
    out: Dict[str, Any] = {}
    for task, rec in zip(tasks, records):
        if rec.quarantined:
            continue
        out.setdefault(rec.design, {}).setdefault(rec.mode, {})[
            f"s{task.seed}"
        ] = _final_metrics(rec)
    return out


def _suite_resources(
    records: Sequence[RunRecord],
) -> Optional[Dict[str, Any]]:
    """Suite-level resource rollup: summed CPU/faults, max of the peaks.

    CPU seconds and fault counts are per-run deltas, so they sum to a
    suite total; peak RSS is per *process* (workers run tasks serially),
    so the honest aggregate is the worst single process, not a sum.
    Returns None when no record carries a sample (off-POSIX).
    """
    sampled = [r.resources for r in records if r.resources is not None]
    if not sampled:
        return None
    return {
        "peak_rss_bytes": max(int(s["peak_rss_bytes"]) for s in sampled),
        "cpu_user_s": sum(float(s["cpu_user_s"]) for s in sampled),
        "cpu_sys_s": sum(float(s["cpu_sys_s"]) for s in sampled),
        "minor_faults": sum(int(s["minor_faults"]) for s in sampled),
        "major_faults": sum(int(s["major_faults"]) for s in sampled),
        "sampled_runs": len(sampled),
    }


def write_suite_manifest(
    directory: str,
    tasks: Sequence[SuiteTask],
    records: Sequence[RunRecord],
    jobs: int,
    supervision: Optional[Dict[str, Any]] = None,
    partial: bool = False,
) -> str:
    """Merge per-run telemetry into one ``suite_manifest.json``.

    Collects each run's manifest (when the run streamed telemetry) and
    merges the per-run profiler span trees into a single aggregate tree,
    so a parallel suite still yields one hierarchical profile.

    ``supervision`` is the supervisor's provenance dict; it (and per-run
    ``attempts``/``quarantine`` fields) is only emitted when supervision
    actually intervened, so a fault-free supervised manifest stays
    byte-identical to an unsupervised one.  ``partial=True`` marks a
    salvage manifest written on a terminal failure: it holds only the
    completed subset of the suite.
    """
    runs = []
    for task, rec in zip(tasks, records):
        entry: Dict[str, Any] = {
            "design": rec.design,
            "mode": rec.mode,
            "seed": task.seed,
            "run_id": task.run_id,
            "final_metrics": None if rec.quarantined else _final_metrics(rec),
            "runtime": rec.runtime,
            "setup_s": rec.setup_s,
            "design_cache": rec.design_cache,
        }
        if rec.attempts > 1:
            entry["attempts"] = rec.attempts
        if rec.resources is not None:
            entry["resources"] = rec.resources
        if rec.quarantined:
            entry["quarantined"] = True
            entry["quarantine"] = rec.quarantine
        if rec.run_dir:
            entry["run_dir"] = rec.run_dir
            try:
                entry["manifest"] = load_manifest(rec.run_dir).to_dict()
            except (OSError, ValueError):
                entry["manifest"] = None
        runs.append(entry)
    trees = [rec.span_tree for rec in records if rec.span_tree]
    payload = {
        "jobs": jobs,
        "n_runs": len(runs),
        "runs": runs,
        "merged_span_tree": merge_span_trees(trees) if trees else None,
        "metrics": suite_metrics(tasks, records),
        "resources": _suite_resources(records),
    }
    if supervision is not None:
        payload["supervision"] = supervision
    if partial:
        payload["partial"] = True
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, SUITE_MANIFEST_FILENAME)
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def run_suite(
    designs: Sequence[str],
    modes: Sequence[str],
    seeds: Sequence[int] = (0,),
    jobs: int = 1,
    max_iters: int = 600,
    telemetry_dir: Optional[str] = None,
    rsmt_period: Optional[int] = None,
    rsmt_dirty_threshold: Optional[float] = None,
    verbose: bool = False,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
    supervise: bool = True,
    supervisor_options: Optional[SupervisorOptions] = None,
) -> List[RunRecord]:
    """Fan the designs x modes x seeds matrix out to ``jobs`` workers."""
    tasks = [
        SuiteTask(
            design=design,
            mode=mode,
            seed=seed,
            max_iters=max_iters,
            rsmt_period=rsmt_period,
            rsmt_dirty_threshold=rsmt_dirty_threshold,
            telemetry_dir=telemetry_dir,
        )
        for design in designs
        for mode in modes
        for seed in seeds
    ]
    records, supervision = run_tasks(
        tasks,
        jobs=jobs,
        verbose=verbose,
        use_cache=use_cache,
        cache_dir=cache_dir,
        supervise=supervise,
        supervisor_options=supervisor_options,
    )
    if telemetry_dir is not None:
        write_suite_manifest(
            telemetry_dir, tasks, records, jobs, supervision=supervision
        )
    return records
