"""Command-line entry point: reproduce the paper's evaluation.

Usage::

    python -m repro.harness                 # Table 2 + subset Table 3
    python -m repro.harness --full          # all 8 designs (minutes)
    python -m repro.harness --fig8          # also collect Figure 8 curves
    python -m repro.harness --designs miniblue4 miniblue18
"""

from __future__ import annotations

import argparse

from .curves import format_fig8, run_fig8
from .suite import format_table2
from .table3 import format_table3, run_table3


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Reproduce the DAC 2022 differentiable-timing "
        "placement evaluation on the miniblue suite.",
    )
    parser.add_argument(
        "--full", action="store_true", help="run all 8 suite designs"
    )
    parser.add_argument(
        "--designs", nargs="*", default=None, help="explicit design names"
    )
    parser.add_argument(
        "--max-iters", type=int, default=600, help="placer iteration cap"
    )
    parser.add_argument(
        "--fig8", action="store_true", help="also collect Figure 8 curves"
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="record per-kernel wall-time breakdowns and dump them to "
        "benchmarks/results/profile_<design>_<mode>.txt",
    )
    args = parser.parse_args(argv)

    print("Table 2 - benchmark statistics")
    print(format_table2())
    print()

    designs = args.designs
    if designs is None and not args.full:
        designs = ["miniblue4", "miniblue16", "miniblue18"]
    print("Table 3 - WNS/TNS/HPWL/runtime")
    result = run_table3(
        designs=designs, max_iters=args.max_iters, profile=args.profile
    )
    print()
    print(format_table3(result))

    if args.fig8:
        print("\nFigure 8 - optimization curves (miniblue4)")
        data = run_fig8("miniblue4", max_iters=args.max_iters)
        print(format_fig8(data, step=20))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
