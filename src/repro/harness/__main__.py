"""Command-line entry point: reproduce the paper's evaluation.

Usage::

    python -m repro.harness                 # Table 2 + subset Table 3
    python -m repro.harness --full          # all 8 designs (minutes)
    python -m repro.harness --fig8          # also collect Figure 8 curves
    python -m repro.harness --designs miniblue4 miniblue18
    python -m repro.harness --validate --full        # design checks only
    python -m repro.harness --checkpoint-every 50    # resumable runs
    python -m repro.harness --resume benchmarks/results/checkpoints/... \
        --designs miniblue1 --mode ours     # restart a killed run

Telemetry toolchain (subcommands)::

    python -m repro.harness run --design miniblue1 --mode ours \
        --telemetry out/                    # one instrumented run
    python -m repro.harness report out/<run_id>       # markdown + curves
    python -m repro.harness compare out/<a> out/<b>   # regression gate
"""

from __future__ import annotations

import argparse
import sys

from ..place.placer import PlacerOptions
from ..runtime import validate_design
from .curves import format_fig8, run_fig8
from .runners import MODES, run_mode
from .suite import format_table2, load_design
from .table3 import format_table3, run_table3

#: Subcommand names; anything else falls through to the legacy flag CLI.
_SUBCOMMANDS = ("run", "report", "compare")


def _run_validate(designs) -> int:
    """``--validate``: structural design checks only, no placement."""
    failed = 0
    for name in designs:
        report = validate_design(load_design(name))
        print(report.format())
        if not report.ok:
            failed += 1
    return 1 if failed else 0


def _run_resume(path: str, designs, mode: str, args) -> int:
    """``--resume``: restart one placer run from a checkpoint file."""
    if not designs or len(designs) != 1:
        raise SystemExit(
            "--resume needs exactly one design (--designs <name>)"
        )
    design = load_design(designs[0])
    record = run_mode(
        design,
        mode,
        placer_options=PlacerOptions(
            max_iters=args.max_iters,
            resume_from=path,
            checkpoint_every=args.checkpoint_every,
        ),
        profile=args.profile,
    )
    print(record.summary())
    if record.nonfinite_events:
        print(f"guard events: {record.nonfinite_events}")
    return 0


def _cmd_run(args) -> int:
    """``run``: one instrumented (design, mode) placement."""
    design = load_design(args.design)
    record = run_mode(
        design,
        args.mode,
        placer_options=PlacerOptions(
            max_iters=args.max_iters,
            seed=args.seed,
            checkpoint_every=args.checkpoint_every,
            resume_from=args.resume,
        ),
        profile=args.profile,
        telemetry_dir=args.telemetry,
        run_id=args.run_id,
    )
    print(record.summary())
    if record.nonfinite_events:
        print(f"guard events: {record.nonfinite_events}")
    if record.run_dir:
        print(f"telemetry: {record.run_dir}")
    return 0


def _cmd_report(args) -> int:
    """``report``: render one telemetry run to markdown + SVG curves."""
    from ..telemetry.report import render_report

    markdown = render_report(args.run_dir, out_dir=args.out)
    print(markdown)
    return 0


def _cmd_compare(args) -> int:
    """``compare``: gate run B against run A; exit 1 on regression."""
    from ..telemetry.compare import compare_runs

    result = compare_runs(
        args.run_a,
        args.run_b,
        rtol=args.rtol,
        atol=args.atol,
        span_rtol=args.span_rtol,
    )
    print(result.format())
    return 0 if result.ok else 1


def _subcommand_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Telemetry toolchain: instrumented runs, reports, "
        "run-vs-run regression gating.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="one instrumented placement run")
    run_p.add_argument("--design", required=True, help="suite design name")
    run_p.add_argument("--mode", choices=MODES, default="ours")
    run_p.add_argument(
        "--telemetry",
        metavar="DIR",
        default=None,
        help="write manifest.json + events.jsonl under DIR/<run_id>/",
    )
    run_p.add_argument(
        "--run-id",
        default=None,
        help="explicit run id (default: <design>_<mode>_<timestamp>...)",
    )
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--max-iters", type=int, default=600)
    run_p.add_argument("--profile", action="store_true")
    run_p.add_argument("--checkpoint-every", type=int, default=0, metavar="N")
    run_p.add_argument(
        "--resume",
        metavar="PATH",
        default=None,
        help="checkpoint file to restart from (with --telemetry pointing "
        "at the original run directory, its event stream is continued)",
    )
    run_p.set_defaults(func=_cmd_run)

    rep_p = sub.add_parser("report", help="render one run's telemetry")
    rep_p.add_argument("run_dir", help="telemetry run directory")
    rep_p.add_argument(
        "--out", default=None, help="output directory (default: run_dir)"
    )
    rep_p.set_defaults(func=_cmd_report)

    cmp_p = sub.add_parser(
        "compare", help="diff two runs; nonzero exit on regression"
    )
    cmp_p.add_argument("run_a", help="baseline run directory")
    cmp_p.add_argument("run_b", help="candidate run directory")
    cmp_p.add_argument(
        "--rtol",
        type=float,
        default=1e-6,
        help="relative tolerance on gated final metrics (default 1e-6)",
    )
    cmp_p.add_argument("--atol", type=float, default=1e-9)
    cmp_p.add_argument(
        "--span-rtol",
        type=float,
        default=None,
        help="also gate per-span wall time at this relative tolerance "
        "(default: span timing is informational)",
    )
    cmp_p.set_defaults(func=_cmd_compare)
    return parser


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] in _SUBCOMMANDS:
        args = _subcommand_parser().parse_args(argv)
        return args.func(args)
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Reproduce the DAC 2022 differentiable-timing "
        "placement evaluation on the miniblue suite.",
    )
    parser.add_argument(
        "--full", action="store_true", help="run all 8 suite designs"
    )
    parser.add_argument(
        "--designs", nargs="*", default=None, help="explicit design names"
    )
    parser.add_argument(
        "--max-iters", type=int, default=600, help="placer iteration cap"
    )
    parser.add_argument(
        "--fig8", action="store_true", help="also collect Figure 8 curves"
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="record per-kernel wall-time breakdowns and dump them to "
        "benchmarks/results/profile_<design>_<mode>.txt",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="run structural design validation on the selected designs and "
        "exit (non-zero when any design has errors); during placement "
        "runs, validation always happens before iteration 0",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="save a resumable placer checkpoint every N iterations to "
        "benchmarks/results/checkpoints/ (0 = off)",
    )
    parser.add_argument(
        "--resume",
        metavar="PATH",
        default=None,
        help="restart a single run from a checkpoint file (requires "
        "--designs with exactly one design; see --mode)",
    )
    parser.add_argument(
        "--mode",
        choices=MODES,
        default="ours",
        help="placer mode for --resume (default: ours)",
    )
    args = parser.parse_args(argv)

    designs = args.designs
    if designs is None:
        if args.full or args.validate:
            from .suite import SUITE

            designs = [e.name for e in SUITE]
        else:
            designs = ["miniblue4", "miniblue16", "miniblue18"]

    if args.validate:
        return _run_validate(designs)
    if args.resume:
        return _run_resume(args.resume, args.designs, args.mode, args)

    print("Table 2 - benchmark statistics")
    print(format_table2())
    print()

    print("Table 3 - WNS/TNS/HPWL/runtime")
    result = run_table3(
        designs=designs,
        max_iters=args.max_iters,
        profile=args.profile,
        checkpoint_every=args.checkpoint_every,
    )
    print()
    print(format_table3(result))

    if args.fig8:
        print("\nFigure 8 - optimization curves (miniblue4)")
        data = run_fig8("miniblue4", max_iters=args.max_iters)
        print(format_fig8(data, step=20))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
