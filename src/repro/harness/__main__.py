"""Command-line entry point: reproduce the paper's evaluation.

Usage::

    python -m repro.harness                 # Table 2 + subset Table 3
    python -m repro.harness --full          # all 8 designs (minutes)
    python -m repro.harness --fig8          # also collect Figure 8 curves
    python -m repro.harness --designs miniblue4 miniblue18
    python -m repro.harness --validate --full        # design checks only
    python -m repro.harness --checkpoint-every 50    # resumable runs
    python -m repro.harness --resume benchmarks/results/checkpoints/... \
        --designs miniblue1 --mode ours     # restart a killed run

Telemetry toolchain (subcommands)::

    python -m repro.harness run --design miniblue1 --mode ours \
        --telemetry out/                    # one instrumented run
    python -m repro.harness report out/<run_id>       # markdown + curves
    python -m repro.harness compare out/<a> out/<b>   # regression gate

Live observability::

    python -m repro.harness status out/     # who is running right now
    python -m repro.harness tail out/ --run <run_id>  # follow convergence
    python -m repro.harness trend           # perf-regression ledger gate
"""

from __future__ import annotations

import argparse
import sys

from ..place.placer import PlacerOptions
from ..runtime import validate_design
from .curves import format_fig8, run_fig8
from .runners import MODES, run_mode
from .suite import format_table2, load_design
from .table3 import format_table3, run_table3

#: Subcommand names; anything else falls through to the legacy flag CLI.
_SUBCOMMANDS = (
    "run",
    "report",
    "compare",
    "suite",
    "status",
    "tail",
    "trend",
    "verify-density",
)


def _apply_backend(name) -> None:
    """Select the array backend process-wide (and for spawn workers).

    Probes immediately so an unavailable backend fails here with one
    actionable message instead of from inside a worker; exporting
    ``REPRO_BACKEND`` makes suite spawn workers inherit the choice.
    """
    if not name:
        return
    import os

    from ..core.backend import BACKEND_ENV, set_backend

    set_backend(name)
    os.environ[BACKEND_ENV] = name


def _add_density_flags(p) -> None:
    """The density-pipeline knobs shared by ``run`` and ``suite``."""
    from ..core.backend import BACKEND_NAMES
    from ..place.density import PRECISIONS, SOLVERS

    p.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default=None,
        help="array backend for the hot kernels (default: numpy, or "
        "the REPRO_BACKEND environment variable)",
    )
    p.add_argument(
        "--density-solver",
        choices=SOLVERS,
        default="scipy",
        help="density Poisson solver: 'scipy' reference or the "
        "'planned' rfft fast path",
    )
    p.add_argument(
        "--precision",
        choices=PRECISIONS,
        default="fp64",
        help="density spectral-solve precision (fp32 requires "
        "--density-solver planned; gated by verify-density)",
    )


def _run_validate(designs) -> int:
    """``--validate``: structural design checks only, no placement."""
    failed = 0
    for name in designs:
        report = validate_design(load_design(name))
        print(report.format())
        if not report.ok:
            failed += 1
    return 1 if failed else 0


def _run_resume(path: str, designs, mode: str, args) -> int:
    """``--resume``: restart one placer run from a checkpoint file."""
    if not designs or len(designs) != 1:
        raise SystemExit(
            "--resume needs exactly one design (--designs <name>)"
        )
    design = load_design(designs[0])
    record = run_mode(
        design,
        mode,
        placer_options=PlacerOptions(
            max_iters=args.max_iters,
            resume_from=path,
            checkpoint_every=args.checkpoint_every,
        ),
        profile=args.profile,
    )
    print(record.summary())
    if record.nonfinite_events:
        print(f"guard events: {record.nonfinite_events}")
    return 0


def _timing_options(args):
    """TimingObjectiveOptions from CLI flags, or None for the defaults."""
    if args.rsmt_period is None and args.rsmt_dirty_threshold is None:
        return None
    from ..core.objective import TimingObjectiveOptions

    opts = TimingObjectiveOptions()
    if args.rsmt_period is not None:
        opts.rsmt_period = args.rsmt_period
    opts.rsmt_dirty_threshold = args.rsmt_dirty_threshold
    return opts


def _cmd_run(args) -> int:
    """``run``: one instrumented (design, mode) placement."""
    if args.precision == "fp32" and args.density_solver != "planned":
        print(
            "--precision fp32 requires --density-solver planned",
            file=sys.stderr,
        )
        return 2
    _apply_backend(args.backend)
    design = load_design(args.design)
    record = run_mode(
        design,
        args.mode,
        placer_options=PlacerOptions(
            max_iters=args.max_iters,
            seed=args.seed,
            checkpoint_every=args.checkpoint_every,
            resume_from=args.resume,
            density_solver=args.density_solver,
            density_precision=args.precision,
        ),
        timing_options=_timing_options(args),
        profile=args.profile,
        collect_spans=bool(args.trace_out),
        telemetry_dir=args.telemetry,
        run_id=args.run_id,
    )
    print(record.summary())
    if record.nonfinite_events:
        print(f"guard events: {record.nonfinite_events}")
    if record.run_dir:
        print(f"telemetry: {record.run_dir}")
    if args.trace_out:
        from ..perf import write_chrome_trace

        if record.span_tree:
            write_chrome_trace(
                args.trace_out,
                [(f"{record.design}/{record.mode}", record.span_tree)],
            )
            print(f"trace: {args.trace_out}")
        else:  # pragma: no cover - collect_spans guarantees a tree
            print("no span tree collected; trace not written", file=sys.stderr)
    return 0


def _cmd_suite(args) -> int:
    """``suite``: designs x modes x seeds matrix, optionally parallel.

    Runs under the task supervisor by default (crash isolation, per-task
    timeouts, bounded deterministic retry, quarantine); failures surface
    as one-line :class:`SupervisorError` summaries, never multi-process
    tracebacks.  Exits 1 when the suite aborted (unsupervised path) or
    when any task was quarantined - completed results are still written.
    """
    import json

    from .parallel import (
        SupervisorError,
        SupervisorOptions,
        SuiteTask,
        run_tasks,
        suite_metrics,
        write_suite_manifest,
    )

    if args.precision == "fp32" and args.density_solver != "planned":
        print(
            "--precision fp32 requires --density-solver planned",
            file=sys.stderr,
        )
        return 2
    _apply_backend(args.backend)
    designs = args.designs
    if not designs:
        from .suite import SUITE

        designs = [e.name for e in SUITE]
    density_options = {}
    if args.density_solver != "scipy":
        density_options["density_solver"] = args.density_solver
    if args.precision != "fp64":
        density_options["density_precision"] = args.precision
    tasks = [
        SuiteTask(
            design=design,
            mode=mode,
            seed=seed,
            max_iters=args.max_iters,
            rsmt_period=args.rsmt_period,
            rsmt_dirty_threshold=args.rsmt_dirty_threshold,
            telemetry_dir=args.telemetry,
            collect_spans=bool(args.trace_out),
            extra_placer_options=density_options,
        )
        for design in designs
        for mode in args.modes
        for seed in args.seeds
    ]
    options = SupervisorOptions(
        task_timeout=args.task_timeout, max_retries=args.max_retries
    )
    try:
        records, supervision = run_tasks(
            tasks,
            jobs=args.jobs,
            verbose=True,
            use_cache=not args.no_design_cache,
            cache_dir=args.cache_dir,
            supervise=not args.no_supervise,
            supervisor_options=options,
        )
    except SupervisorError as exc:
        print(exc.summary(), file=sys.stderr)
        if exc.partial_manifest:
            print(
                f"partial suite manifest: {exc.partial_manifest}",
                file=sys.stderr,
            )
        return 1
    if args.telemetry:
        path = write_suite_manifest(
            args.telemetry, tasks, records, args.jobs, supervision=supervision
        )
        print(f"suite manifest: {path}")
    if args.trace_out:
        from ..perf import merge_span_trees, write_chrome_trace

        named = [
            (task.run_id, rec.span_tree)
            for task, rec in zip(tasks, records)
            if rec.span_tree
        ]
        if named:
            named.append(
                ("suite (merged)", merge_span_trees([t for _, t in named]))
            )
            write_chrome_trace(args.trace_out, named)
            print(f"trace: {args.trace_out}")
        else:
            print(
                "no span trees collected; trace not written", file=sys.stderr
            )
    if args.metrics_out:
        with open(args.metrics_out, "w") as handle:
            json.dump(
                suite_metrics(tasks, records),
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        print(f"metrics: {args.metrics_out}")
    quarantined = [r for r in records if r.quarantined]
    if quarantined:
        for rec in quarantined:
            print(rec.summary(), file=sys.stderr)
        print(
            f"{len(quarantined)} task(s) quarantined; "
            "see the suite manifest's supervision block",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_report(args) -> int:
    """``report``: render one telemetry run to markdown + SVG curves."""
    from ..telemetry.report import render_report

    markdown = render_report(args.run_dir, out_dir=args.out)
    print(markdown)
    return 0


def _cmd_compare(args) -> int:
    """``compare``: gate run B against run A; exit 1 on regression."""
    from ..telemetry.compare import compare_runs

    result = compare_runs(
        args.run_a,
        args.run_b,
        rtol=args.rtol,
        atol=args.atol,
        span_rtol=args.span_rtol,
    )
    print(result.format())
    return 0 if result.ok else 1


def _cmd_status(args) -> int:
    """``status``: render the live-run registry of a telemetry dir."""
    from .observe import cmd_status

    return cmd_status(
        args.telemetry_dir,
        stale_after_s=args.stale_after,
        as_json=args.json,
        gc=args.gc,
    )


def _cmd_tail(args) -> int:
    """``tail``: follow one run's event stream with convergence deltas."""
    from .observe import cmd_tail

    return cmd_tail(
        args.target,
        run_id=args.run,
        once=args.once,
        interval_s=args.interval,
        timeout_s=args.timeout,
    )


def _cmd_trend(args) -> int:
    """``trend``: render the perf ledger; exit 1 on drift past rtol."""
    from ..telemetry.history import (
        HISTORY_DIR,
        check_trend,
        list_benches,
        load_history,
        render_trend,
    )

    history_dir = args.history if args.history else HISTORY_DIR
    benches = args.benches or list_benches(history_dir)
    if not benches:
        print(f"no benchmark history under {history_dir}")
        return 0
    failed = False
    for bench in benches:
        records = load_history(bench, history_dir)
        if not records and args.benches:
            # An explicitly named bench with no ledger is a typo or a
            # wiring failure, not a clean pass.
            print(f"trend: no history for bench {bench!r} "
                  f"under {history_dir}")
            failed = True
            continue
        print(render_trend(records, rtol=args.rtol))
        print()
        if check_trend(records, rtol=args.rtol):
            failed = True
    return 1 if failed else 0


def _cmd_verify_density(args) -> int:
    """``verify-density``: gate the planned/fp32 density fast path."""
    from .verify import verify_density

    report = verify_density(
        args.design,
        mode=args.mode,
        seed=args.seed,
        max_iters=args.max_iters,
        metric_rtol=args.metric_rtol,
        traj_rtol=args.traj_rtol,
        fp32_rtol=args.fp32_rtol,
        n_bins=args.n_bins,
    )
    print(report.format())
    return 0 if report.ok else 1


def _subcommand_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Telemetry toolchain: instrumented runs, reports, "
        "run-vs-run regression gating.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="one instrumented placement run")
    run_p.add_argument("--design", required=True, help="suite design name")
    run_p.add_argument("--mode", choices=MODES, default="ours")
    run_p.add_argument(
        "--telemetry",
        metavar="DIR",
        default=None,
        help="write manifest.json + events.jsonl under DIR/<run_id>/",
    )
    run_p.add_argument(
        "--run-id",
        default=None,
        help="explicit run id (default: <design>_<mode>_<timestamp>...)",
    )
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--max-iters", type=int, default=600)
    run_p.add_argument("--profile", action="store_true")
    run_p.add_argument("--checkpoint-every", type=int, default=0, metavar="N")
    run_p.add_argument(
        "--resume",
        metavar="PATH",
        default=None,
        help="checkpoint file to restart from (with --telemetry pointing "
        "at the original run directory, its event stream is continued)",
    )
    run_p.add_argument(
        "--rsmt-period",
        type=int,
        default=None,
        metavar="N",
        help="rebuild the full Steiner forest every N iterations "
        "(default: the timing objective's built-in period)",
    )
    run_p.add_argument(
        "--rsmt-dirty-threshold",
        type=float,
        default=None,
        metavar="DIST",
        help="between full rebuilds, re-route nets whose pins moved more "
        "than DIST um since their tree was built (default: off)",
    )
    run_p.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="export the run's span tree as Chrome trace_event JSON "
        "(open in chrome://tracing or ui.perfetto.dev)",
    )
    _add_density_flags(run_p)
    run_p.set_defaults(func=_cmd_run)

    suite_p = sub.add_parser(
        "suite", help="designs x modes x seeds matrix, optionally parallel"
    )
    suite_p.add_argument(
        "--designs", nargs="*", default=None, help="suite design names "
        "(default: all 8)"
    )
    suite_p.add_argument(
        "--modes", nargs="*", choices=MODES, default=["ours"],
    )
    suite_p.add_argument("--seeds", nargs="*", type=int, default=[0])
    suite_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (results are identical to --jobs 1)",
    )
    suite_p.add_argument("--max-iters", type=int, default=600)
    suite_p.add_argument(
        "--telemetry",
        metavar="DIR",
        default=None,
        help="per-run telemetry under DIR plus a merged suite_manifest.json",
    )
    suite_p.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="write deterministic final metrics JSON (no wall-clock "
        "fields; byte-identical across --jobs settings)",
    )
    suite_p.add_argument(
        "--no-design-cache",
        action="store_true",
        help="regenerate designs per task instead of using the bundle "
        "cache (legacy cold path; metrics are identical either way)",
    )
    suite_p.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="design-bundle cache location (default "
        "benchmarks/.design_cache, or $REPRO_DESIGN_CACHE)",
    )
    suite_p.add_argument("--rsmt-period", type=int, default=None, metavar="N")
    suite_p.add_argument(
        "--rsmt-dirty-threshold", type=float, default=None, metavar="DIST"
    )
    suite_p.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task wall-clock timeout under supervision; a worker "
        "exceeding it is killed and the task retried (default: none)",
    )
    suite_p.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="retries per task before quarantine (default 2; the suite "
        "completes either way, quarantined tasks are recorded in the "
        "suite manifest)",
    )
    suite_p.add_argument(
        "--no-supervise",
        action="store_true",
        help="legacy bare process-pool fan-out: no timeouts, retries or "
        "crash isolation; the first failure aborts the suite (completed "
        "runs are still salvaged into a partial manifest)",
    )
    suite_p.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="export every run's span tree plus the suite-merged "
        "aggregate as Chrome trace_event JSON (one track per run)",
    )
    _add_density_flags(suite_p)
    suite_p.set_defaults(func=_cmd_suite)

    vd_p = sub.add_parser(
        "verify-density",
        help="gate the planned/fp32 density fast path against the "
        "scipy reference (final STA metrics + overflow trajectory)",
    )
    vd_p.add_argument("--design", default="miniblue18")
    vd_p.add_argument("--mode", choices=MODES, default="dreamplace")
    vd_p.add_argument("--seed", type=int, default=0)
    vd_p.add_argument("--max-iters", type=int, default=120)
    vd_p.add_argument("--n-bins", type=int, default=None)
    vd_p.add_argument(
        "--metric-rtol",
        type=float,
        default=5e-2,
        help="planned-vs-scipy bound on final WNS/TNS/HPWL (cross-solver: "
        "the E-field discretisations differ by O(h^2))",
    )
    vd_p.add_argument(
        "--traj-rtol",
        type=float,
        default=2e-2,
        help="planned-vs-scipy bound on the overflow trajectory",
    )
    vd_p.add_argument(
        "--fp32-rtol",
        type=float,
        default=5e-3,
        help="fp32-vs-fp64 bound (same solver: pure rounding)",
    )
    vd_p.set_defaults(func=_cmd_verify_density)

    status_p = sub.add_parser(
        "status", help="show live/stale/dead runs from the registry"
    )
    status_p.add_argument(
        "telemetry_dir", help="telemetry directory holding the registry"
    )
    status_p.add_argument(
        "--stale-after",
        type=float,
        default=15.0,
        metavar="SECONDS",
        help="heartbeat age past which a live pid counts as stale "
        "(default 15)",
    )
    status_p.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    status_p.add_argument(
        "--gc",
        action="store_true",
        help="also remove records whose pid no longer exists",
    )
    status_p.set_defaults(func=_cmd_status)

    tail_p = sub.add_parser(
        "tail", help="follow a run's event stream with convergence deltas"
    )
    tail_p.add_argument(
        "target",
        help="run directory, events.jsonl path, or telemetry dir "
        "(with --run)",
    )
    tail_p.add_argument(
        "--run", default=None, metavar="RUN_ID",
        help="run id inside a telemetry directory",
    )
    tail_p.add_argument(
        "--once",
        action="store_true",
        help="parse the stream as it is now and exit (CI mode; torn "
        "trailing records are counted, not fatal)",
    )
    tail_p.add_argument(
        "--interval", type=float, default=0.5, metavar="SECONDS",
        help="poll interval while following (default 0.5)",
    )
    tail_p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="stop following after this long even without run_end",
    )
    tail_p.set_defaults(func=_cmd_tail)

    trend_p = sub.add_parser(
        "trend", help="render the perf ledger; nonzero exit on drift"
    )
    trend_p.add_argument(
        "benches", nargs="*", default=None,
        help="bench names (default: every ledger under --history)",
    )
    trend_p.add_argument(
        "--history",
        default=None,
        metavar="DIR",
        help="ledger directory (default benchmarks/history)",
    )
    trend_p.add_argument(
        "--rtol",
        type=float,
        default=0.1,
        metavar="FRAC",
        help="tolerated relative drift of the latest record vs the "
        "median of up to 5 prior records (default 0.1)",
    )
    trend_p.set_defaults(func=_cmd_trend)

    rep_p = sub.add_parser("report", help="render one run's telemetry")
    rep_p.add_argument("run_dir", help="telemetry run directory")
    rep_p.add_argument(
        "--out", default=None, help="output directory (default: run_dir)"
    )
    rep_p.set_defaults(func=_cmd_report)

    cmp_p = sub.add_parser(
        "compare", help="diff two runs; nonzero exit on regression"
    )
    cmp_p.add_argument("run_a", help="baseline run directory")
    cmp_p.add_argument("run_b", help="candidate run directory")
    cmp_p.add_argument(
        "--rtol",
        type=float,
        default=1e-6,
        help="relative tolerance on gated final metrics (default 1e-6)",
    )
    cmp_p.add_argument("--atol", type=float, default=1e-9)
    cmp_p.add_argument(
        "--span-rtol",
        type=float,
        default=None,
        help="also gate per-span wall time at this relative tolerance "
        "(default: span timing is informational)",
    )
    cmp_p.set_defaults(func=_cmd_compare)
    return parser


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] in _SUBCOMMANDS:
        args = _subcommand_parser().parse_args(argv)
        return args.func(args)
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Reproduce the DAC 2022 differentiable-timing "
        "placement evaluation on the miniblue suite.",
    )
    parser.add_argument(
        "--full", action="store_true", help="run all 8 suite designs"
    )
    parser.add_argument(
        "--designs", nargs="*", default=None, help="explicit design names"
    )
    parser.add_argument(
        "--max-iters", type=int, default=600, help="placer iteration cap"
    )
    parser.add_argument(
        "--fig8", action="store_true", help="also collect Figure 8 curves"
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="record per-kernel wall-time breakdowns and dump them to "
        "benchmarks/results/profile_<design>_<mode>.txt",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="run structural design validation on the selected designs and "
        "exit (non-zero when any design has errors); during placement "
        "runs, validation always happens before iteration 0",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="save a resumable placer checkpoint every N iterations to "
        "benchmarks/results/checkpoints/ (0 = off)",
    )
    parser.add_argument(
        "--resume",
        metavar="PATH",
        default=None,
        help="restart a single run from a checkpoint file (requires "
        "--designs with exactly one design; see --mode)",
    )
    parser.add_argument(
        "--mode",
        choices=MODES,
        default="ours",
        help="placer mode for --resume (default: ours)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run the Table 3 matrix across N worker processes "
        "(final metrics are identical to a serial run)",
    )
    args = parser.parse_args(argv)

    designs = args.designs
    if designs is None:
        if args.full or args.validate:
            from .suite import SUITE

            designs = [e.name for e in SUITE]
        else:
            designs = ["miniblue4", "miniblue16", "miniblue18"]

    if args.validate:
        return _run_validate(designs)
    if args.resume:
        return _run_resume(args.resume, args.designs, args.mode, args)

    print("Table 2 - benchmark statistics")
    print(format_table2())
    print()

    print("Table 3 - WNS/TNS/HPWL/runtime")
    result = run_table3(
        designs=designs,
        max_iters=args.max_iters,
        profile=args.profile,
        checkpoint_every=args.checkpoint_every,
        jobs=args.jobs,
    )
    print()
    print(format_table3(result))

    if args.fig8:
        print("\nFigure 8 - optimization curves (miniblue4)")
        data = run_fig8("miniblue4", max_iters=args.max_iters)
        print(format_fig8(data, step=20))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
