"""Live-run observation: the ``status`` and ``tail`` subcommands.

``status`` renders the run registry of a telemetry directory - every
active (or stale/dead) run with its phase, iteration, iteration rate,
RSS and heartbeat age - without touching the runs themselves: readers
only ever open the small atomically-replaced registry records.

``tail`` follows one run's ``events.jsonl`` while it is being written,
printing per-iteration convergence deltas and an ETA derived from the
iteration cadence.  Reads are torn-line safe: a partial trailing record
(the writer mid-``write``) stays buffered until its newline arrives.
Rate/ETA math prefers the monotonic ``ts_mono`` stamps (schema v2) so a
wall-clock step does not corrupt the estimates; v1 streams fall back to
``ts``.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

from ..telemetry.events import EVENTS_FILENAME, read_events_partial
from ..telemetry.registry import (
    DEFAULT_STALE_AFTER_S,
    HeartbeatRecord,
    RunRegistry,
)

__all__ = [
    "format_status",
    "cmd_status",
    "EventFollower",
    "format_iteration_line",
    "cmd_tail",
]


def _format_bytes(n: Optional[int]) -> str:
    if n is None:
        return "-"
    value = float(n)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024.0 or unit == "TB":
            return f"{value:.0f}{unit}" if unit == "B" else f"{value:.1f}{unit}"
        value /= 1024.0
    return f"{value:.1f}TB"  # pragma: no cover - loop always returns


def _format_age(seconds: float) -> str:
    if seconds < 120.0:
        return f"{seconds:.0f}s"
    if seconds < 7200.0:
        return f"{seconds / 60.0:.0f}m"
    return f"{seconds / 3600.0:.1f}h"


def format_status(
    records: List[HeartbeatRecord],
    stale_after_s: float = DEFAULT_STALE_AFTER_S,
) -> str:
    """The registry as an aligned table (one row per run)."""
    header = (
        f"{'RUN':<28} {'DESIGN':<12} {'MODE':<10} {'PHASE':<12} "
        f"{'ITER':>6} {'IT/S':>6} {'RSS':>9} {'ATT':>3} {'AGE':>5} STATE"
    )
    if not records:
        return header + "\n(no active runs)"
    now = time.time()
    lines = [header]
    for record in records:
        rate = record.iteration_rate()
        lines.append(
            f"{record.run_id:<28} {record.design:<12} {record.mode:<10} "
            f"{record.phase:<12} "
            f"{record.iteration if record.iteration is not None else '-':>6} "
            f"{f'{rate:.1f}' if rate is not None else '-':>6} "
            f"{_format_bytes(record.rss_bytes):>9} "
            f"{record.attempt:>3} "
            f"{_format_age(record.age_s(now)):>5} "
            f"{record.state(stale_after_s, now)}"
        )
    return "\n".join(lines)


def cmd_status(
    telemetry_dir: str,
    stale_after_s: float = DEFAULT_STALE_AFTER_S,
    as_json: bool = False,
    gc: bool = False,
) -> int:
    """Implementation of ``python -m repro.harness status``."""
    registry = RunRegistry(telemetry_dir)
    if gc:
        for record in registry.gc():
            print(f"gc: removed dead record {record.run_id} (pid {record.pid})")
    records = registry.list()
    if as_json:
        now = time.time()
        payload = []
        for record in records:
            entry = record.to_dict()
            entry["state"] = record.state(stale_after_s, now)
            entry["age_s"] = round(record.age_s(now), 3)
            entry["iteration_rate"] = record.iteration_rate()
            payload.append(entry)
        print(json.dumps(payload, indent=2))
    else:
        print(format_status(records, stale_after_s))
    return 0


# ----------------------------------------------------------------------
# tail
# ----------------------------------------------------------------------
class EventFollower:
    """Incremental, torn-line-safe reader of a growing JSONL stream.

    Each :meth:`poll` returns the events whose lines completed since the
    last poll.  A trailing fragment without its newline stays in the
    carry buffer; a complete-but-unparsable line is counted in
    ``skipped`` and dropped (the writer crashed mid-record and the run
    appended past it - rare, but a follower must not wedge on it).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._offset = 0
        self._carry = ""
        self.skipped = 0

    def poll(self) -> List[Dict[str, Any]]:
        try:
            with open(self.path) as handle:
                handle.seek(self._offset)
                chunk = handle.read()
                self._offset = handle.tell()
        except FileNotFoundError:
            return []
        if not chunk:
            return []
        buffered = self._carry + chunk
        lines = buffered.split("\n")
        self._carry = lines.pop()  # "" when the chunk ended on a newline
        events = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                self.skipped += 1
        return events


def _event_time(event: Dict[str, Any]) -> Optional[float]:
    """Monotonic stamp when present (v2), wall clock otherwise (v1)."""
    if "ts_mono" in event:
        return float(event["ts_mono"])
    if "ts" in event:
        return float(event["ts"])
    return None


class _TailState:
    """Convergence bookkeeping across iteration events."""

    def __init__(self) -> None:
        self.max_iters: Optional[int] = None
        self.prev_hpwl: Optional[float] = None
        self.prev_iteration: Optional[int] = None
        self.prev_time: Optional[float] = None
        self.last_rate: Optional[float] = None

    def observe_start(self, event: Dict[str, Any]) -> str:
        self.max_iters = event.get("max_iters")
        return (
            f"run_start design={event.get('design')} "
            f"optimizer={event.get('optimizer')} seed={event.get('seed')} "
            f"max_iters={self.max_iters} resumed={event.get('resumed')}"
        )

    def observe_iteration(self, event: Dict[str, Any]) -> str:
        iteration = event.get("iteration")
        metrics = event.get("metrics") or {}
        now = _event_time(event)
        rate: Optional[float] = None
        if (
            now is not None
            and self.prev_time is not None
            and iteration is not None
            and self.prev_iteration is not None
            and now > self.prev_time
            and iteration > self.prev_iteration
        ):
            rate = (iteration - self.prev_iteration) / (now - self.prev_time)
            self.last_rate = rate
        hpwl = metrics.get("hpwl")
        delta = ""
        if hpwl is not None and self.prev_hpwl not in (None, 0.0):
            delta = f" ({100.0 * (hpwl - self.prev_hpwl) / self.prev_hpwl:+.2f}%)"
        line = f"it {iteration}"
        if self.max_iters:
            line += f"/{self.max_iters}"
        if hpwl is not None:
            line += f" hpwl {hpwl:.4e}{delta}"
        if "overflow" in metrics:
            line += f" overflow {metrics['overflow']:.3f}"
        if "tns" in metrics:
            line += f" tns {metrics['tns']:.1f}"
        if rate is not None:
            line += f" {rate:.1f} it/s"
            if self.max_iters and iteration is not None:
                remaining = max(int(self.max_iters) - int(iteration), 0)
                line += f" eta<={remaining / rate:.0f}s"
        if hpwl is not None:
            self.prev_hpwl = hpwl
        if iteration is not None and now is not None:
            self.prev_iteration = iteration
            self.prev_time = now
        return line


def _resolve_events_path(target: str, run_id: Optional[str]) -> str:
    """Locate the events file of ``target`` (+ optional ``run_id``)."""
    if os.path.isfile(target):
        return target
    if run_id is not None:
        return os.path.join(target, run_id, EVENTS_FILENAME)
    direct = os.path.join(target, EVENTS_FILENAME)
    if os.path.exists(direct):
        return direct
    # A telemetry base dir: tail is unambiguous only with one run.
    try:
        candidates = sorted(
            entry
            for entry in os.listdir(target)
            if os.path.exists(os.path.join(target, entry, EVENTS_FILENAME))
        )
    except FileNotFoundError:
        candidates = []
    if len(candidates) == 1:
        return os.path.join(target, candidates[0], EVENTS_FILENAME)
    if candidates:
        raise SystemExit(
            f"{target} holds {len(candidates)} runs; pick one with "
            f"--run (e.g. --run {candidates[0]})"
        )
    return direct  # let the follower report file-not-found semantics


def _render_event(event: Dict[str, Any], state: _TailState) -> Optional[str]:
    kind = event.get("kind")
    if kind == "run_start":
        return state.observe_start(event)
    if kind == "iteration":
        return state.observe_iteration(event)
    if kind == "resource":
        rss = _format_bytes(event.get("rss_bytes"))
        return (
            f"resource rss {rss} cpu {event.get('cpu_user_s', 0.0):.1f}s"
            f"+{event.get('cpu_sys_s', 0.0):.1f}s sys"
        )
    if kind == "run_end":
        return (
            f"run_end stop={event.get('stop_reason')} "
            f"iterations={event.get('iterations')} "
            f"hpwl={event.get('hpwl'):.4e} "
            f"overflow={event.get('overflow'):.3f}"
        )
    if kind in ("quarantine", "term_exception", "recovery", "checkpoint"):
        extras = {
            k: v
            for k, v in event.items()
            if k not in ("ts", "ts_mono", "kind", "iteration")
        }
        return f"{kind} it={event.get('iteration')} {extras}"
    return None


def cmd_tail(
    target: str,
    run_id: Optional[str] = None,
    once: bool = False,
    interval_s: float = 0.5,
    timeout_s: Optional[float] = None,
    out=None,
) -> int:
    """Implementation of ``python -m repro.harness tail``.

    ``once`` parses whatever the stream currently holds and prints a
    summary line (CI mode; exits 0 even mid-run).  Otherwise the stream
    is followed until its ``run_end`` event, ``timeout_s`` elapses, or
    interrupt.
    """
    out = out if out is not None else sys.stdout
    path = _resolve_events_path(target, run_id)
    state = _TailState()

    if once:
        try:
            events, skipped = read_events_partial(path)
        except FileNotFoundError:
            print(f"no event stream at {path}", file=out)
            return 1
        ended = False
        for event in events:
            line = _render_event(event, state)
            if line is not None:
                print(line, file=out)
            ended = ended or event.get("kind") == "run_end"
        print(
            f"-- {len(events)} event(s), {skipped} torn partial record(s) "
            f"skipped, run {'ended' if ended else 'in flight'}",
            file=out,
        )
        return 0

    follower = EventFollower(path)
    deadline = (
        time.monotonic() + timeout_s if timeout_s is not None else None
    )
    try:
        while True:
            for event in follower.poll():
                line = _render_event(event, state)
                if line is not None:
                    print(line, file=out, flush=True)
                if event.get("kind") == "run_end":
                    return 0
            if deadline is not None and time.monotonic() >= deadline:
                print("tail: timeout reached, run still in flight", file=out)
                return 0
            time.sleep(interval_s)
    except KeyboardInterrupt:  # pragma: no cover - interactive escape
        return 0
