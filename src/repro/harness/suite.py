"""The miniblue/midiblue benchmark suites (Table 2 substitute).

Eight synthetic designs mirroring the *relative* sizes of the ICCAD 2015
superblue benchmarks the paper evaluates on, scaled by ~1/800 so the whole
Table 3 run matrix completes on a laptop-class machine in minutes.  The
suite is seed-stable: the same name always generates the same design.

==========  ============  =============  ======
miniblue    superblue     #cells target  depth
==========  ============  =============  ======
miniblue1   superblue1    1512           14
miniblue3   superblue3    1516           16
miniblue4   superblue4    995            12
miniblue5   superblue5    1358           15
miniblue7   superblue7    2414           18
miniblue10  superblue10   2345           17
miniblue16  superblue16   1227           13
miniblue18  superblue18   960            12
==========  ============  =============  ======

The **midiblue** tier sits between miniblue and the paper's 0.8-1.9M-cell
superblue targets: 50k-500k-cell designs from the vectorized generator
engine, big enough to stress the batched RSMT/levelisation/scatter
kernels.  They are not part of the default Table 2/3 matrix (generate on
demand; the design cache makes repeated loads cheap):

==========  =============  ======
midiblue    #cells target  depth
==========  =============  ======
midiblue50   50000          20
midiblue120  120000         22
midiblue500  500000         24
==========  =============  ======
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..netlist.design import Design
from ..netlist.generator import GeneratorSpec, generate_design

__all__ = [
    "SUITE",
    "MIDIBLUE",
    "SuiteEntry",
    "MidiblueEntry",
    "design_spec",
    "load_design",
    "suite_statistics",
    "format_table2",
]


@dataclass(frozen=True)
class SuiteEntry:
    """One miniblue design: generator knobs + its superblue counterpart."""

    name: str
    superblue: str
    n_cells: int
    depth: int
    seed: int
    superblue_cells: int
    superblue_nets: int
    superblue_pins: int


#: The eight suite designs, in Table 2/3 order.
SUITE: List[SuiteEntry] = [
    SuiteEntry("miniblue1", "superblue1", 1512, 14, 101, 1209716, 1215710, 3767494),
    SuiteEntry("miniblue3", "superblue3", 1516, 16, 103, 1213253, 1224979, 3905321),
    SuiteEntry("miniblue4", "superblue4", 995, 12, 104, 795645, 802513, 2497940),
    SuiteEntry("miniblue5", "superblue5", 1358, 15, 105, 1086888, 1100825, 3246878),
    SuiteEntry("miniblue7", "superblue7", 2414, 18, 107, 1931639, 1933945, 6372094),
    SuiteEntry("miniblue10", "superblue10", 2345, 17, 110, 1876103, 1898119, 5560506),
    SuiteEntry("miniblue16", "superblue16", 1227, 13, 116, 981559, 999902, 3013268),
    SuiteEntry("miniblue18", "superblue18", 960, 12, 118, 768068, 771542, 2559143),
]

_SUITE_BY_NAME: Dict[str, SuiteEntry] = {e.name: e for e in SUITE}


@dataclass(frozen=True)
class MidiblueEntry:
    """One midiblue design: vectorized-engine generator knobs."""

    name: str
    n_cells: int
    depth: int
    seed: int


#: The midiblue tier (50k-500k cells; vectorized generator engine).
MIDIBLUE: List[MidiblueEntry] = [
    MidiblueEntry("midiblue50", 50_000, 20, 150),
    MidiblueEntry("midiblue120", 120_000, 22, 151),
    MidiblueEntry("midiblue500", 500_000, 24, 152),
]

_MIDIBLUE_BY_NAME: Dict[str, MidiblueEntry] = {e.name: e for e in MIDIBLUE}


def design_spec(name: str) -> GeneratorSpec:
    """The :class:`GeneratorSpec` behind a suite design name.

    The spec fully determines the design (the generator is seed-stable),
    so it also determines the design's cache key - this is the single
    source of truth shared by direct generation and the bundle cache.
    """
    if name in _SUITE_BY_NAME:
        entry = _SUITE_BY_NAME[name]
        n_io = max(int(round((entry.n_cells / 1000) * 24)), 8)
        return GeneratorSpec(
            name=entry.name,
            n_cells=entry.n_cells,
            depth=entry.depth,
            seed=entry.seed,
            n_inputs=n_io,
            n_outputs=n_io,
        )
    if name in _MIDIBLUE_BY_NAME:
        mentry = _MIDIBLUE_BY_NAME[name]
        # IO count grows sublinearly past miniblue scale (superblue-like).
        n_io = max(int(round(24 * (mentry.n_cells / 1000) ** 0.75)), 8)
        return GeneratorSpec(
            name=mentry.name,
            n_cells=mentry.n_cells,
            depth=mentry.depth,
            seed=mentry.seed,
            n_inputs=n_io,
            n_outputs=n_io,
            n_high_fanout_nets=max(mentry.n_cells // 2000, 4),
            high_fanout=32,
            engine="vectorized",
        )
    available = sorted(_SUITE_BY_NAME) + sorted(_MIDIBLUE_BY_NAME)
    raise KeyError(f"unknown suite design {name!r}; available: {available}")


def load_design(
    name: str, cache: bool = False, cache_dir: Optional[str] = None
) -> Design:
    """Generate a suite design by name (deterministic per name).

    ``cache=True`` serves the design through the content-keyed bundle
    cache (:mod:`repro.netlist.cache`): generated once, bit-identical
    afterwards.  Repeated cached loads in one process return the *same*
    object - treat it as immutable (every run path already does).
    """
    spec = design_spec(name)
    if cache:
        from ..netlist.cache import load_bundle

        bundle, _ = load_bundle(spec, directory=cache_dir)
        return bundle.design
    return generate_design(spec)


def suite_statistics() -> List[Dict[str, object]]:
    """Generate every design and collect Table 2-style statistics."""
    rows = []
    for entry in SUITE:
        design = load_design(entry.name)
        stats = design.stats()
        rows.append(
            {
                "benchmark": entry.name,
                "superblue": entry.superblue,
                "cells": stats["cells"],
                "nets": stats["nets"],
                "pins": stats["pins"],
                "superblue_cells": entry.superblue_cells,
                "superblue_nets": entry.superblue_nets,
                "superblue_pins": entry.superblue_pins,
            }
        )
    return rows


def format_table2(rows: Optional[List[Dict[str, object]]] = None) -> str:
    """Render the Table 2 analogue: suite statistics next to superblue's."""
    if rows is None:
        rows = suite_statistics()
    header = (
        f"{'Benchmark':<12} {'#Cells':>8} {'#Nets':>8} {'#Pins':>8} "
        f"| {'(paper)':<12} {'#Cells':>9} {'#Nets':>9} {'#Pins':>9}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r['benchmark']:<12} {r['cells']:>8} {r['nets']:>8} {r['pins']:>8} "
            f"| {r['superblue']:<12} {r['superblue_cells']:>9} "
            f"{r['superblue_nets']:>9} {r['superblue_pins']:>9}"
        )
    return "\n".join(lines)
