"""The miniblue benchmark suite (Table 2 substitute).

Eight synthetic designs mirroring the *relative* sizes of the ICCAD 2015
superblue benchmarks the paper evaluates on, scaled by ~1/800 so the whole
Table 3 run matrix completes on a laptop-class machine in minutes.  The
suite is seed-stable: the same name always generates the same design.

==========  ============  =============  ======
miniblue    superblue     #cells target  depth
==========  ============  =============  ======
miniblue1   superblue1    1512           14
miniblue3   superblue3    1516           16
miniblue4   superblue4    995            12
miniblue5   superblue5    1358           15
miniblue7   superblue7    2414           18
miniblue10  superblue10   2345           17
miniblue16  superblue16   1227           13
miniblue18  superblue18   960            12
==========  ============  =============  ======
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..netlist.design import Design
from ..netlist.generator import GeneratorSpec, generate_design

__all__ = ["SUITE", "SuiteEntry", "load_design", "suite_statistics", "format_table2"]


@dataclass(frozen=True)
class SuiteEntry:
    """One miniblue design: generator knobs + its superblue counterpart."""

    name: str
    superblue: str
    n_cells: int
    depth: int
    seed: int
    superblue_cells: int
    superblue_nets: int
    superblue_pins: int


#: The eight suite designs, in Table 2/3 order.
SUITE: List[SuiteEntry] = [
    SuiteEntry("miniblue1", "superblue1", 1512, 14, 101, 1209716, 1215710, 3767494),
    SuiteEntry("miniblue3", "superblue3", 1516, 16, 103, 1213253, 1224979, 3905321),
    SuiteEntry("miniblue4", "superblue4", 995, 12, 104, 795645, 802513, 2497940),
    SuiteEntry("miniblue5", "superblue5", 1358, 15, 105, 1086888, 1100825, 3246878),
    SuiteEntry("miniblue7", "superblue7", 2414, 18, 107, 1931639, 1933945, 6372094),
    SuiteEntry("miniblue10", "superblue10", 2345, 17, 110, 1876103, 1898119, 5560506),
    SuiteEntry("miniblue16", "superblue16", 1227, 13, 116, 981559, 999902, 3013268),
    SuiteEntry("miniblue18", "superblue18", 960, 12, 118, 768068, 771542, 2559143),
]

_SUITE_BY_NAME: Dict[str, SuiteEntry] = {e.name: e for e in SUITE}


def load_design(name: str) -> Design:
    """Generate a suite design by name (deterministic per name)."""
    if name not in _SUITE_BY_NAME:
        raise KeyError(
            f"unknown suite design {name!r}; available: {sorted(_SUITE_BY_NAME)}"
        )
    entry = _SUITE_BY_NAME[name]
    n_io = max(int(round((entry.n_cells / 1000) * 24)), 8)
    spec = GeneratorSpec(
        name=entry.name,
        n_cells=entry.n_cells,
        depth=entry.depth,
        seed=entry.seed,
        n_inputs=n_io,
        n_outputs=n_io,
    )
    return generate_design(spec)


def suite_statistics() -> List[Dict[str, object]]:
    """Generate every design and collect Table 2-style statistics."""
    rows = []
    for entry in SUITE:
        design = load_design(entry.name)
        stats = design.stats()
        rows.append(
            {
                "benchmark": entry.name,
                "superblue": entry.superblue,
                "cells": stats["cells"],
                "nets": stats["nets"],
                "pins": stats["pins"],
                "superblue_cells": entry.superblue_cells,
                "superblue_nets": entry.superblue_nets,
                "superblue_pins": entry.superblue_pins,
            }
        )
    return rows


def format_table2(rows: Optional[List[Dict[str, object]]] = None) -> str:
    """Render the Table 2 analogue: suite statistics next to superblue's."""
    if rows is None:
        rows = suite_statistics()
    header = (
        f"{'Benchmark':<12} {'#Cells':>8} {'#Nets':>8} {'#Pins':>8} "
        f"| {'(paper)':<12} {'#Cells':>9} {'#Nets':>9} {'#Pins':>9}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r['benchmark']:<12} {r['cells']:>8} {r['nets']:>8} {r['pins']:>8} "
            f"| {r['superblue']:<12} {r['superblue_cells']:>9} "
            f"{r['superblue_nets']:>9} {r['superblue_pins']:>9}"
        )
    return "\n".join(lines)
