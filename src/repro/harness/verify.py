"""Placement-level equivalence gate for the density fast path.

Transform-level identity of the planned FFT pipeline is pinned at
~1e-15 in ``tests/test_fftplan.py``, but the planned solver also swaps
the E-field discretisation: the seed path differentiates the potential
with central differences, the planned path differentiates the spectral
interpolant exactly.  The two fields differ by the O(h^2) stencil
truncation, the placer integrates that difference over hundreds of
iterations, and no transform test can bound where the cells end up - so
the meaningful equivalence check is *placement-level*: run the same
(design, mode, seed) with each solver and compare what the paper's
evaluation actually reports.

:func:`verify_density` runs three configurations -

- ``scipy``   (fp64): the seed reference pipeline,
- ``planned`` (fp64): the fast path,
- ``planned`` (fp32): the fast path with the single-precision solve -

and applies two gates:

1. **planned-fp64 vs scipy** at a *cross-solver* tolerance: final
   golden-STA metrics (WNS/TNS/HPWL/overflow) within ``metric_rtol``
   and the per-iteration overflow trajectory within ``traj_rtol``.
   Empirically the miniblue-scale differences sit at ~1e-2 on final
   metrics and ~2e-3 on trajectories; the default tolerances carry
   ~5x headroom without letting a lost scale factor or swapped axis
   (O(1) effects) through.
2. **planned-fp32 vs planned-fp64** at a much tighter tolerance
   (``fp32_rtol``): same solver, so the only difference is float32
   rounding inside the spectral solve.  This is the verification gate
   behind the harness ``--precision fp32`` flag.

The run trio is also a speed probe: the report carries each
configuration's placement runtime, so a fast path that silently stopped
being fast shows up here too (informational, not gated - the perf gate
lives in ``benchmarks/bench_density.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..place.placer import PlacerOptions

__all__ = ["DensityCheck", "DensityVerifyReport", "verify_density"]


@dataclass
class DensityCheck:
    """One compared quantity of one configuration pair."""

    pair: str
    quantity: str
    ref: float
    cand: float
    rel: float
    rtol: float

    @property
    def ok(self) -> bool:
        return self.rel <= self.rtol

    def format(self) -> str:
        mark = "ok " if self.ok else "FAIL"
        return (
            f"  [{mark}] {self.pair:<24} {self.quantity:<18} "
            f"ref={self.ref:12.4f} cand={self.cand:12.4f} "
            f"rel={self.rel:.3e} (rtol {self.rtol:.1e})"
        )


@dataclass
class DensityVerifyReport:
    """All checks of one :func:`verify_density` invocation."""

    design: str
    mode: str
    seed: int
    max_iters: int
    checks: List[DensityCheck] = field(default_factory=list)
    runtimes: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    def format(self) -> str:
        lines = [
            f"# verify-density: {self.design} mode={self.mode} "
            f"seed={self.seed} max_iters={self.max_iters}"
        ]
        lines.extend(c.format() for c in self.checks)
        lines.append(
            "  runtimes: "
            + ", ".join(
                f"{name} {t:.2f}s" for name, t in self.runtimes.items()
            )
        )
        lines.append(
            "PASS: density fast path matches the reference"
            if self.ok
            else "FAIL: density fast path drifted beyond tolerance"
        )
        return "\n".join(lines)


def _rel(ref: float, cand: float) -> float:
    return abs(cand - ref) / max(abs(ref), 1e-12)


def _compare_pair(
    pair: str, ref, cand, metric_rtol: float, traj_rtol: float
) -> List[DensityCheck]:
    """Final golden-STA metrics + overflow-trajectory checks for a pair."""
    checks = [
        DensityCheck(pair, name, getattr(ref, name), getattr(cand, name),
                     _rel(getattr(ref, name), getattr(cand, name)),
                     metric_rtol)
        for name in ("wns", "tns", "hpwl")
    ]
    traj_ref = [p["overflow"] for p in ref.trace if "overflow" in p]
    traj_cand = [p["overflow"] for p in cand.trace if "overflow" in p]
    n = min(len(traj_ref), len(traj_cand))
    worst = 0.0
    worst_ref = worst_cand = 0.0
    for a, b in zip(traj_ref[:n], traj_cand[:n]):
        rel = _rel(a, b)
        if rel > worst:
            worst, worst_ref, worst_cand = rel, a, b
    checks.append(
        DensityCheck(
            pair, "overflow_traj_max", worst_ref, worst_cand, worst,
            traj_rtol,
        )
    )
    # Diverging iteration counts mean one run hit the stop criterion on
    # a different trajectory entirely; gate the relative length gap.
    len_rel = _rel(float(len(traj_ref)), float(len(traj_cand)))
    checks.append(
        DensityCheck(
            pair, "traj_length", float(len(traj_ref)),
            float(len(traj_cand)), len_rel, traj_rtol,
        )
    )
    return checks


def verify_density(
    design_name: str,
    mode: str = "dreamplace",
    seed: int = 0,
    max_iters: int = 120,
    metric_rtol: float = 5e-2,
    traj_rtol: float = 2e-2,
    fp32_rtol: float = 5e-3,
    n_bins: Optional[int] = None,
) -> DensityVerifyReport:
    """Run the solver trio and gate the fast path (see module docstring)."""
    from .runners import run_mode
    from .suite import load_design

    design = load_design(design_name, cache=True)
    configs = {
        "scipy": ("scipy", "fp64"),
        "planned": ("planned", "fp64"),
        "planned-fp32": ("planned", "fp32"),
    }
    records = {}
    report = DensityVerifyReport(design_name, mode, seed, max_iters)
    for name, (solver, precision) in configs.items():
        records[name] = run_mode(
            design,
            mode,
            placer_options=PlacerOptions(
                max_iters=max_iters,
                seed=seed,
                n_bins=n_bins,
                density_solver=solver,
                density_precision=precision,
            ),
        )
        report.runtimes[name] = records[name].runtime
    report.checks.extend(
        _compare_pair(
            "planned-vs-scipy",
            records["scipy"],
            records["planned"],
            metric_rtol,
            traj_rtol,
        )
    )
    report.checks.extend(
        _compare_pair(
            "fp32-vs-planned-fp64",
            records["planned"],
            records["planned-fp32"],
            fp32_rtol,
            fp32_rtol,
        )
    )
    return report
