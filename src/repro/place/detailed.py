"""Timing-driven detailed placement on top of the incremental timer.

The paper positions path-based timing optimization as a detailed-placement
technique (Section 1); this module provides that step for the end-to-end
flow: starting from a *legalized* placement, it walks the cells on the most
critical paths and greedily tries legality-preserving moves -

- swapping two equal-width cells (any rows), and
- sliding a cell into a free gap of a nearby row -

accepting a move only if the incremental timer reports an improved
``(WNS, TNS)`` score.  Rejected trials are rolled back by moving the cells
straight back (the incremental update is exact and symmetric).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

import numpy as np

from ..netlist.design import Design
from ..sta.analysis import StaticTimingAnalyzer
from ..sta.incremental import IncrementalTimer
from ..sta.paths import worst_paths
from .legalize import max_overlap

__all__ = ["DetailedPlacerOptions", "TimingDrivenDetailedPlacer"]


@dataclass
class DetailedPlacerOptions:
    """Knobs of the timing-driven detailed placer."""

    passes: int = 2
    n_critical_paths: int = 8  # paths whose cells become candidates
    swap_window: float = 12.0  # max center distance for swap partners
    gap_window: float = 10.0  # max displacement for gap moves
    wns_weight: float = 50.0  # score = TNS + weight * WNS
    min_gain: float = 1e-6


@dataclass
class DetailedPlacementResult:
    """Outcome of the detailed-placement pass."""

    x: np.ndarray
    y: np.ndarray
    wns_before: float
    tns_before: float
    wns_after: float
    tns_after: float
    n_trials: int
    n_accepted: int


class TimingDrivenDetailedPlacer:
    """Greedy slack-driven refinement of a legalized placement."""

    def __init__(
        self, design: Design, options: Optional[DetailedPlacerOptions] = None
    ) -> None:
        self.design = design
        self.options = options if options is not None else DetailedPlacerOptions()
        self.timer = IncrementalTimer(design)
        self._sta = StaticTimingAnalyzer(design, self.timer.graph)

    # ------------------------------------------------------------------
    def _critical_cells(self) -> List[int]:
        """Movable cells on the currently most critical paths."""
        result = self._sta.run(self.timer.x, self.timer.y)
        cells: List[int] = []
        seen: Set[int] = set()
        for path in worst_paths(result, self.options.n_critical_paths):
            for point in path.points:
                ci = int(self.design.pin2cell[point.pin])
                if ci not in seen and not self.design.cell_fixed[ci]:
                    seen.add(ci)
                    cells.append(ci)
        return cells

    def _score(self) -> float:
        return self.timer.tns + self.options.wns_weight * self.timer.wns

    def _try(self, cells, xs, ys, undo_xs, undo_ys, score_before) -> bool:
        self.timer.move(cells, xs, ys)
        if self._score() > score_before + self.options.min_gain:
            return True
        self.timer.move(cells, undo_xs, undo_ys)
        return False

    # ------------------------------------------------------------------
    def _swap_candidates(self, ci: int, movable: np.ndarray) -> np.ndarray:
        """Equal-width movable cells within the swap window."""
        d = self.design
        same_w = np.abs(d.cell_w[movable] - d.cell_w[ci]) < 1e-9
        dist = np.abs(self.timer.x[movable] - self.timer.x[ci]) + np.abs(
            self.timer.y[movable] - self.timer.y[ci]
        )
        mask = same_w & (dist > 1e-9) & (dist <= self.options.swap_window)
        candidates = movable[mask]
        order = np.argsort(dist[mask])
        return candidates[order]

    def _row_gaps(self, width: float) -> List[Tuple[float, float]]:
        """Free intervals (center-x, row-center-y) that fit ``width``."""
        d = self.design
        xl, yl, xh, yh = d.die
        row_h = d.row_height
        n_rows = max(int((yh - yl) / row_h), 1)
        movable = np.nonzero(~d.cell_fixed)[0]
        rows = np.clip(
            ((self.timer.y[movable] - yl) / row_h - 0.5).round().astype(int),
            0,
            n_rows - 1,
        )
        gaps: List[Tuple[float, float]] = []
        for r in range(n_rows):
            members = movable[rows == r]
            if len(members):
                xs = np.stack(
                    [
                        self.timer.x[members] - 0.5 * d.cell_w[members],
                        self.timer.x[members] + 0.5 * d.cell_w[members],
                    ],
                    axis=1,
                )
                xs = xs[np.argsort(xs[:, 0])]
            else:
                xs = np.zeros((0, 2))
            cursor = xl
            row_y = yl + (r + 0.5) * row_h
            for lo, hi in xs:
                if lo - cursor >= width:
                    gaps.append((cursor + 0.5 * width, row_y))
                cursor = max(cursor, hi)
            if xh - cursor >= width:
                gaps.append((cursor + 0.5 * width, row_y))
        return gaps

    # ------------------------------------------------------------------
    def run(
        self, x: np.ndarray, y: np.ndarray
    ) -> DetailedPlacementResult:
        """Refine a legalized placement; returns the improved placement."""
        d = self.design
        self.timer.reset(x, y)
        wns0, tns0 = self.timer.wns, self.timer.tns
        movable = np.nonzero(~d.cell_fixed)[0]
        n_trials = 0
        n_accepted = 0

        for pass_index in range(self.options.passes):
            if pass_index:
                # Re-sync: epsilon cutoffs in the incremental sweeps leave
                # sub-picosecond residues that would otherwise accumulate
                # over thousands of trial/revert cycles.
                self.timer.reset(self.timer.x, self.timer.y)
            improved = False
            for ci in self._critical_cells():
                score = self._score()
                cx, cy = self.timer.x[ci], self.timer.y[ci]
                # Gap moves first: they relocate without disturbing others.
                for gx, gy in self._row_gaps(d.cell_w[ci]):
                    if abs(gx - cx) + abs(gy - cy) > self.options.gap_window:
                        continue
                    n_trials += 1
                    if self._try([ci], [gx], [gy], [cx], [cy], score):
                        n_accepted += 1
                        improved = True
                        score = self._score()
                        cx, cy = gx, gy
                        break
                # Equal-width swaps.
                for cj in self._swap_candidates(ci, movable)[:8]:
                    ox, oy = self.timer.x[cj], self.timer.y[cj]
                    n_trials += 1
                    if self._try(
                        [ci, cj], [ox, cx], [oy, cy], [cx, ox], [cy, oy], score
                    ):
                        n_accepted += 1
                        improved = True
                        break
            if not improved:
                break

        return DetailedPlacementResult(
            x=self.timer.x.copy(),
            y=self.timer.y.copy(),
            wns_before=wns0,
            tns_before=tns0,
            wns_after=self.timer.wns,
            tns_after=self.timer.tns,
            n_trials=n_trials,
            n_accepted=n_accepted,
        )
