"""Nonlinear global placement substrate and baselines."""

from .wirelength import WAWirelength, hpwl
from .density import DensityModel, DensityResult
from .optimizer import AdamOptimizer, NesterovOptimizer, make_optimizer
from .placer import GlobalPlacer, PlacerOptions, PlacerResult
from .legalize import greedy_refine, legalize, max_overlap
from .netweight import MomentumNetWeighter, NetWeightOptions, NetWeightingPlacer
from .detailed import (
    DetailedPlacerOptions,
    TimingDrivenDetailedPlacer,
)
from .criticality import CRITICALITY_POLICIES, make_criticality
from .congestion import CongestionMap, rudy_map
from .buffering import BufferingOptions, BufferingResult, TimingDrivenBufferizer

__all__ = [
    "WAWirelength",
    "hpwl",
    "DensityModel",
    "DensityResult",
    "AdamOptimizer",
    "NesterovOptimizer",
    "make_optimizer",
    "GlobalPlacer",
    "PlacerOptions",
    "PlacerResult",
    "greedy_refine",
    "legalize",
    "max_overlap",
    "MomentumNetWeighter",
    "NetWeightOptions",
    "NetWeightingPlacer",
    "DetailedPlacerOptions",
    "TimingDrivenDetailedPlacer",
    "CRITICALITY_POLICIES",
    "make_criticality",
    "CongestionMap",
    "rudy_map",
    "BufferingOptions",
    "BufferingResult",
    "TimingDrivenBufferizer",
]
