"""Electrostatic density model (ePlace / DREAMPlace style).

Cell area is deposited onto a regular bin grid with cloud-in-cell
(bilinear) splatting; the resulting density map is treated as a charge
distribution and the Poisson equation ``lap(phi) = -(rho - rho_mean)`` is
solved spectrally with a type-II DCT (Neumann boundary, as in ePlace).
The negative potential gradient is the electric field; each movable cell
feels a force ``area * E`` interpolated at its center, which is the
density gradient used by the placer.  Density overflow - the stopping
metric of the paper's experiments - is measured on the same grid.

Two solvers share the splat/gather machinery:

- ``solver="scipy"`` (default): the reference pipeline - per-call
  ``scipy.fft`` DCT round-trip (via the backend shim) and a central
  difference field.  Kept bit-compatible with the original
  implementation; everything downstream (telemetry goldens, determinism
  suites) pins against it.
- ``solver="planned"``: the fast path.  All size-dependent work -
  rfft-based DCT plans with twiddle/mirror tables, the reciprocal
  eigen-denominator - is built once here in ``__init__``
  (:mod:`repro.core.fftplan`); per-iteration the solve is pure planned
  rffts, the E-field comes from exact spectral differentiation of the
  trigonometric interpolant (no ``np.gradient`` stencil passes), the
  energy is read off the coefficients by Parseval (the potential grid is
  only materialised on request), and the gather reuses fully fused
  stencil weights.  ``precision="fp32"`` additionally runs the spectral
  solve and field in single precision (complex64 FFTs); splat, gather
  and the returned gradients stay float64 at the boundary.

The spectral field differs from the central-difference field by the
O(h^2) truncation error of the stencil, so planned-vs-scipy equivalence
is a placement-level harness gate (``repro.harness verify-density``),
while transform-level identity is pinned at ~1e-15 in
``tests/test_fftplan.py``.

Fixed macro area (fixed cells with nonzero area) is splatted once at
construction and added to every density map, so movable cells are
repelled from blockages; zero-area fixed pads/ports contribute nothing
and keep historical behaviour bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.backend import get_backend, xp
from ..core.fftplan import SpectralGridPlan
from ..core.scatter import scatter_add
from ..netlist.design import Design
from ..perf import PROFILER

__all__ = ["DensityModel", "DensityResult"]

SOLVERS = ("scipy", "planned")
PRECISIONS = ("fp64", "fp32")


@dataclass
class DensityResult:
    """Outputs of one density evaluation.

    ``potential`` is ``None`` on the planned fast path unless the model
    was built with ``keep_potential=True`` - the placer never reads it,
    and skipping it saves a full inverse-transform pass per iteration.
    """

    energy: float
    overflow: float
    grad_x: xp.ndarray
    grad_y: xp.ndarray
    density: xp.ndarray
    potential: Optional[xp.ndarray]


class DensityModel:
    """ePlace-style electrostatic density on an ``nb x nb`` grid."""

    def __init__(
        self,
        design: Design,
        n_bins: int = 64,
        target_density: float = 1.0,
        solver: str = "scipy",
        precision: str = "fp64",
        keep_potential: bool = False,
    ) -> None:
        if solver not in SOLVERS:
            raise ValueError(
                f"unknown density solver {solver!r} (choose from {SOLVERS})"
            )
        if precision not in PRECISIONS:
            raise ValueError(
                f"unknown density precision {precision!r} "
                f"(choose from {PRECISIONS})"
            )
        if precision == "fp32" and solver != "planned":
            raise ValueError(
                "precision='fp32' requires solver='planned' "
                "(the scipy reference path is the fp64 golden)"
            )
        self.design = design
        xl, yl, xh, yh = design.die
        self.xl, self.yl = xl, yl
        self.nb = n_bins
        self.hx = (xh - xl) / n_bins
        self.hy = (yh - yl) / n_bins
        self.target_density = target_density
        self.solver = solver
        self.precision = precision
        self.keep_potential = keep_potential
        self.movable = ~design.cell_fixed
        self.area = design.cell_w * design.cell_h
        self.movable_area_total = float(self.area[self.movable].sum())
        self.bin_area = self.hx * self.hy

        # Fixed macro/port blockage: deposit fixed-cell area once.  Ports
        # and pads have zero area, so designs without real macros keep
        # the historical all-movable density map bit-for-bit.
        fixed = design.cell_fixed & (self.area > 0.0)
        if bool(fixed.any()):
            rho_f, _ = self._stencil(
                design.cell_x[fixed], design.cell_y[fixed], self.area[fixed]
            )
            self._fixed_rho: Optional[xp.ndarray] = rho_f
        else:
            self._fixed_rho = None

        eigen_x = 2.0 - 2.0 * xp.cos(xp.pi * xp.arange(n_bins) / n_bins)
        eigen_y = 2.0 - 2.0 * xp.cos(xp.pi * xp.arange(n_bins) / n_bins)
        denom = (
            eigen_x[:, None] / (self.hx * self.hx)
            + eigen_y[None, :] / (self.hy * self.hy)
        )
        denom[0, 0] = 1.0  # DC mode is projected out before division
        self._denominator = denom

        # Planned-path state, all built once: the rfft DCT plans and the
        # reciprocal denominator (per-iteration multiply, not divide).
        # The reciprocal table is stored transposed (the pipeline works
        # in [ky, kx] layout) with the 1/bin_area source scaling folded
        # in; its zero DC slot also absorbs the mean projection, so the
        # per-iteration solve needs no source preparation at all.
        if solver == "planned":
            dtype = xp.float32 if precision == "fp32" else xp.float64
            self._plan = SpectralGridPlan(n_bins, dtype=dtype)
            inv = 1.0 / (denom * self.bin_area)
            inv[0, 0] = 0.0
            self._inv_denominator_t = xp.ascontiguousarray(inv.T).astype(
                dtype
            )
        else:
            self._plan = None
            self._inv_denominator_t = None

    # ------------------------------------------------------------------
    def _stencil(self, x: xp.ndarray, y: xp.ndarray, mass: xp.ndarray):
        """Cloud-in-cell deposition of ``mass`` at ``(x, y)`` onto the grid.

        Returns the density map plus the flattened stencil (corner
        indices and the four weights, computed once) so the field gather
        can reuse it.  The four corner passes are concatenated into a
        single deterministic :func:`scatter_add`; per destination bin
        the contributions fold in the same pass-major order as the
        historical four sequential scatters, so the map is bit-identical
        to the original implementation.
        """
        nb = self.nb
        gx = (x - self.xl) / self.hx - 0.5
        gy = (y - self.yl) / self.hy - 0.5
        gx = xp.clip(gx, 0.0, nb - 1.000001)
        gy = xp.clip(gy, 0.0, nb - 1.000001)
        ix = xp.floor(gx).astype(xp.int64)
        iy = xp.floor(gy).astype(xp.int64)
        fx = gx - ix
        fy = gy - iy
        # Fused stencil weights: the x-edge products are shared between
        # the four corners (same association as the historical
        # ``mass * (1 - fx) * (1 - fy)`` forms, so no bits change).
        ax = mass * (1.0 - fx)
        bx = mass * fx
        w00 = ax * (1.0 - fy)
        w10 = bx * (1.0 - fy)
        w01 = ax * fy
        w11 = bx * fy
        base = ix * nb + iy
        flat = xp.concatenate([base, base + nb, base + 1, base + nb + 1])
        weights = xp.concatenate([w00, w10, w01, w11])
        rho = scatter_add(flat, weights, nb * nb).reshape(nb, nb)
        # The transposed base (iy-major) lets the planned path gather
        # its [y, x]-layout field with the same weights, no transpose.
        base_t = iy * nb + ix if self.solver == "planned" else None
        return rho, (base, base_t, w00, w10, w01, w11)

    def _splat(self, x: xp.ndarray, y: xp.ndarray):
        """Movable-cell density map (fixed blockage included)."""
        rho, stencil = self._stencil(
            x[self.movable], y[self.movable], self.area[self.movable]
        )
        if self._fixed_rho is not None:
            rho = rho + self._fixed_rho
        return rho, stencil

    def _solve_poisson(self, rho: xp.ndarray) -> xp.ndarray:
        """Reference spectral Poisson solve (scipy DCT round-trip)."""
        be = get_backend()
        source = rho / self.bin_area
        source = source - source.mean()
        coeff = be.dctn(source, type=2, norm="ortho")
        coeff = coeff / self._denominator
        coeff[0, 0] = 0.0
        return be.idctn(coeff, type=2, norm="ortho")

    # ------------------------------------------------------------------
    @staticmethod
    def _gather(field, base, step_x, step_y, w00, w10, w01, w11):
        """Bilinear field interpolation reusing the splat stencil weights.

        ``step_x``/``step_y`` encode the flat-index stride of one bin in
        x and y, which lets the same kernel read fields in either
        ``[x, y]`` or transposed ``[y, x]`` layout.
        """
        flat = field.reshape(-1)
        return (
            xp.take(flat, base) * w00
            + xp.take(flat, base + step_x) * w10
            + xp.take(flat, base + step_y) * w01
            + xp.take(flat, base + step_x + step_y) * w11
        )

    def _gather_grads(self, ex, ey, stencil):
        """Per-cell force from standard-layout fields (scipy path)."""
        base, _base_t, w00, w10, w01, w11 = stencil
        nb = self.nb
        # Gradients are float64 at the model boundary regardless of the
        # transform precision (module docstring).
        grad_x = xp.zeros(self.design.n_cells, dtype=xp.float64)
        grad_y = xp.zeros(self.design.n_cells, dtype=xp.float64)
        grad_x[self.movable] = -self._gather(
            ex, base, nb, 1, w00, w10, w01, w11
        )
        grad_y[self.movable] = -self._gather(
            ey, base, nb, 1, w00, w10, w01, w11
        )
        return grad_x, grad_y

    def _empty_result(self) -> DensityResult:
        """Explicit zero-movable-area early-out.

        Without movable area there is no force, no energy, and - by
        convention - no overflow (nothing can be moved to resolve it),
        so the result is exact zeros rather than whatever the
        ``1e-12``-clamped normalisation would produce.
        """
        rho = (
            self._fixed_rho
            if self._fixed_rho is not None
            else xp.zeros((self.nb, self.nb), dtype=xp.float64)
        )
        return DensityResult(
            energy=0.0,
            overflow=0.0,
            grad_x=xp.zeros(self.design.n_cells, dtype=xp.float64),
            grad_y=xp.zeros(self.design.n_cells, dtype=xp.float64),
            density=rho / self.bin_area,
            potential=None,
        )

    def _evaluate_scipy(self, rho, stencil) -> DensityResult:
        """Reference path: scipy DCTs + central-difference field."""
        with PROFILER.stage("density.solve"):
            phi = self._solve_poisson(rho)
        with PROFILER.stage("density.field"):
            # Field = -grad(phi), central differences on the bin grid.
            ex = -xp.gradient(phi, self.hx, axis=0)
            ey = -xp.gradient(phi, self.hy, axis=1)
        with PROFILER.stage("density.gather"):
            grad_x, grad_y = self._gather_grads(ex, ey, stencil)
        energy = 0.5 * float(xp.sum(rho / self.bin_area * phi)) * self.bin_area
        return self._finalize(rho, phi, energy, grad_x, grad_y)

    def _evaluate_planned(self, rho, stencil) -> DensityResult:
        """Fast path: planned rfft DCTs + spectral field + Parseval."""
        base, base_t, w00, w10, w01, w11 = stencil
        nb = self.nb
        with PROFILER.stage("density.solve"):
            # Raw rho in, no source prep: the 1/bin_area scaling and the
            # mean projection are folded into the reciprocal table.
            coeff_t, pot_t, ex_t, ey, phi = self._plan.poisson_field(
                rho, self._inv_denominator_t, want_potential=self.keep_potential
            )
        with PROFILER.stage("density.gather"):
            # Fields are at unit bin pitch; the 1/h scale rides the
            # final per-cell scalar multiply (cells, not grid, sized).
            gx = self._gather(ex_t, base_t, 1, nb, w00, w10, w01, w11)
            gy = self._gather(ey, base, nb, 1, w00, w10, w01, w11)
            gx *= -1.0 / self.hx
            gy *= -1.0 / self.hy
            grad_x = xp.zeros(self.design.n_cells, dtype=xp.float64)
            grad_y = xp.zeros(self.design.n_cells, dtype=xp.float64)
            grad_x[self.movable] = gx
            grad_y[self.movable] = gy
        # Parseval: ortho transforms preserve inner products and the
        # potential has zero mean, so the energy never needs phi
        # (0.5 * sum(rho * phi) == 0.5 * sum(coeff * pot), any layout).
        energy = 0.5 * float(xp.sum(coeff_t * pot_t))
        if phi is not None:
            # reprolint: allow[dtype-flow] potential leaves the model in float64 (boundary contract); fp32 plans upcast exactly here
            phi = phi.astype(xp.float64, copy=False)
        return self._finalize(rho, phi, energy, grad_x, grad_y)

    def _finalize(self, rho, phi, energy, grad_x, grad_y) -> DensityResult:
        capacity = self.target_density * self.bin_area
        overflow = float(xp.maximum(rho - capacity, 0.0).sum())
        overflow /= self.movable_area_total
        return DensityResult(
            energy=energy,
            overflow=overflow,
            grad_x=grad_x,
            grad_y=grad_y,
            density=rho / self.bin_area,
            potential=phi,
        )

    # ------------------------------------------------------------------
    def evaluate(self, x: xp.ndarray, y: xp.ndarray) -> DensityResult:
        """Density energy, overflow and per-cell gradient at (x, y)."""
        if self.movable_area_total <= 0.0:
            return self._empty_result()
        with PROFILER.stage("density.splat"):
            rho, stencil = self._splat(x, y)
        if self.solver == "planned":
            return self._evaluate_planned(rho, stencil)
        return self._evaluate_scipy(rho, stencil)

    @property
    def bin_size(self) -> float:
        return 0.5 * (self.hx + self.hy)
