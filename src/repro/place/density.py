"""Electrostatic density model (ePlace / DREAMPlace style).

Cell area is deposited onto a regular bin grid with cloud-in-cell
(bilinear) splatting; the resulting density map is treated as a charge
distribution and the Poisson equation ``lap(phi) = -(rho - rho_mean)`` is
solved spectrally with a type-II DCT (Neumann boundary, as in ePlace).
The negative potential gradient is the electric field; each movable cell
feels a force ``area * E`` interpolated at its center, which is the
density gradient used by the placer.  Density overflow - the stopping
metric of the paper's experiments - is measured on the same grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy.fft import dctn, idctn

from ..core.scatter import scatter_accumulate_at, scatter_add_2d
from ..netlist.design import Design

__all__ = ["DensityModel", "DensityResult"]


@dataclass
class DensityResult:
    """Outputs of one density evaluation."""

    energy: float
    overflow: float
    grad_x: np.ndarray
    grad_y: np.ndarray
    density: np.ndarray
    potential: np.ndarray


class DensityModel:
    """ePlace-style electrostatic density on an ``nb x nb`` grid."""

    def __init__(
        self,
        design: Design,
        n_bins: int = 64,
        target_density: float = 1.0,
    ) -> None:
        self.design = design
        xl, yl, xh, yh = design.die
        self.xl, self.yl = xl, yl
        self.nb = n_bins
        self.hx = (xh - xl) / n_bins
        self.hy = (yh - yl) / n_bins
        self.target_density = target_density
        self.movable = ~design.cell_fixed
        self.area = design.cell_w * design.cell_h
        self.movable_area_total = float(self.area[self.movable].sum())
        self.bin_area = self.hx * self.hy
        # Fixed macro/port area per bin could be added here; ports have
        # zero area so the fixed contribution is zero for generated designs.
        eigen_x = 2.0 - 2.0 * np.cos(np.pi * np.arange(n_bins) / n_bins)
        eigen_y = 2.0 - 2.0 * np.cos(np.pi * np.arange(n_bins) / n_bins)
        denom = (
            eigen_x[:, None] / (self.hx * self.hx)
            + eigen_y[None, :] / (self.hy * self.hy)
        )
        denom[0, 0] = 1.0  # DC mode is projected out before division
        self._denominator = denom

    # ------------------------------------------------------------------
    def _splat(self, x: np.ndarray, y: np.ndarray):
        """Cloud-in-cell deposition of movable-cell area onto the grid.

        Returns the density map plus the interpolation stencils so the
        field gather can reuse them.
        """
        nb = self.nb
        gx = (x[self.movable] - self.xl) / self.hx - 0.5
        gy = (y[self.movable] - self.yl) / self.hy - 0.5
        gx = np.clip(gx, 0.0, nb - 1.000001)
        gy = np.clip(gy, 0.0, nb - 1.000001)
        ix = np.floor(gx).astype(np.int64)
        iy = np.floor(gy).astype(np.int64)
        fx = gx - ix
        fy = gy - iy
        mass = self.area[self.movable]

        rho = scatter_add_2d(ix, iy, mass * (1 - fx) * (1 - fy), (nb, nb))
        scatter_accumulate_at(rho, ix + 1, iy, mass * fx * (1 - fy))
        scatter_accumulate_at(rho, ix, iy + 1, mass * (1 - fx) * fy)
        scatter_accumulate_at(rho, ix + 1, iy + 1, mass * fx * fy)
        return rho, (ix, iy, fx, fy, mass)

    def _solve_poisson(self, rho: np.ndarray) -> np.ndarray:
        """Spectral Poisson solve with Neumann boundary conditions."""
        source = rho / self.bin_area
        source = source - source.mean()
        coeff = dctn(source, type=2, norm="ortho")
        coeff = coeff / self._denominator
        coeff[0, 0] = 0.0
        return idctn(coeff, type=2, norm="ortho")

    # ------------------------------------------------------------------
    def evaluate(self, x: np.ndarray, y: np.ndarray) -> DensityResult:
        """Density energy, overflow and per-cell gradient at (x, y)."""
        rho, (ix, iy, fx, fy, mass) = self._splat(x, y)
        phi = self._solve_poisson(rho)

        # Field = -grad(phi), central differences on the bin grid.
        ex = -np.gradient(phi, self.hx, axis=0)
        ey = -np.gradient(phi, self.hy, axis=1)

        # Gather field at cell centers with the same bilinear stencil.
        def gather(field: np.ndarray) -> np.ndarray:
            return (
                field[ix, iy] * (1 - fx) * (1 - fy)
                + field[ix + 1, iy] * fx * (1 - fy)
                + field[ix, iy + 1] * (1 - fx) * fy
                + field[ix + 1, iy + 1] * fx * fy
            )

        # The density "force" moves cells down the potential; the gradient
        # of the energy is the negative force.
        grad_x = np.zeros(self.design.n_cells)
        grad_y = np.zeros(self.design.n_cells)
        grad_x[self.movable] = -mass * gather(ex)
        grad_y[self.movable] = -mass * gather(ey)

        energy = 0.5 * float(np.sum(rho / self.bin_area * phi)) * self.bin_area
        capacity = self.target_density * self.bin_area
        overflow = float(np.maximum(rho - capacity, 0.0).sum())
        overflow /= max(self.movable_area_total, 1e-12)
        return DensityResult(
            energy=energy,
            overflow=overflow,
            grad_x=grad_x,
            grad_y=grad_y,
            density=rho / self.bin_area,
            potential=phi,
        )

    @property
    def bin_size(self) -> float:
        return 0.5 * (self.hx + self.hy)
