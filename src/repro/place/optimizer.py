"""First-order optimizers for nonlinear placement.

:class:`NesterovOptimizer` follows the ePlace/DREAMPlace recipe: Nesterov
acceleration with a Barzilai-Borwein step size estimated from consecutive
lookahead iterates, plus step clamping for robustness.
:class:`AdamOptimizer` is a simpler fallback with the same interface.
Both operate on a flat parameter vector; masking of fixed cells is the
caller's job (their gradient entries are zero).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["NesterovOptimizer", "AdamOptimizer", "make_optimizer"]


class NesterovOptimizer:
    """Nesterov accelerated gradient with Barzilai-Borwein step size."""

    def __init__(
        self,
        x0: np.ndarray,
        lr: float,
        lr_min_ratio: float = 1e-3,
        lr_max_ratio: float = 20.0,
        bounds: Optional[tuple] = None,
    ) -> None:
        self.u = x0.astype(np.float64).copy()  # main iterate
        self.v = x0.astype(np.float64).copy()  # lookahead iterate
        self.a = 1.0
        self.lr = float(lr)
        self.lr_min = lr * lr_min_ratio
        self.lr_max = lr * lr_max_ratio
        self.bounds = bounds
        self._prev_v: Optional[np.ndarray] = None
        self._prev_grad: Optional[np.ndarray] = None

    def _project(self, x: np.ndarray) -> np.ndarray:
        """Clip into the feasible box (gradients are evaluated at the
        lookahead point, so it must stay inside the placement region)."""
        if self.bounds is not None:
            np.clip(x, self.bounds[0], self.bounds[1], out=x)
        return x

    @property
    def params(self) -> np.ndarray:
        """Point at which the caller should evaluate the gradient."""
        return self.v

    def restart(self, lr_scale: float = 0.5) -> None:
        """Drop momentum and shrink the step bounds (divergence recovery)."""
        self.v = self.u.copy()
        self.a = 1.0
        self._prev_v = None
        self._prev_grad = None
        self.lr_max = max(self.lr_max * lr_scale, self.lr_min)
        self.lr = min(self.lr * lr_scale, self.lr_max)

    def get_state(self) -> dict:
        """Complete serializable state (checkpoint/restart support)."""
        return {
            "kind": "nesterov",
            "u": self.u.copy(),
            "v": self.v.copy(),
            "a": self.a,
            "lr": self.lr,
            "lr_min": self.lr_min,
            "lr_max": self.lr_max,
            "prev_v": None if self._prev_v is None else self._prev_v.copy(),
            "prev_grad": (
                None if self._prev_grad is None else self._prev_grad.copy()
            ),
        }

    def set_state(self, state: dict) -> None:
        """Restore state captured by :meth:`get_state` (bit-exact resume)."""
        if state.get("kind") != "nesterov":
            raise ValueError(f"state is for optimizer {state.get('kind')!r}")
        self.u = state["u"].copy()
        self.v = state["v"].copy()
        self.a = float(state["a"])
        self.lr = float(state["lr"])
        self.lr_min = float(state["lr_min"])
        self.lr_max = float(state["lr_max"])
        pv, pg = state["prev_v"], state["prev_grad"]
        self._prev_v = None if pv is None else pv.copy()
        self._prev_grad = None if pg is None else pg.copy()

    def step(self, grad: np.ndarray) -> np.ndarray:
        """Consume the gradient at ``params``; returns the new main iterate."""
        if self._prev_grad is not None:
            dv = self.v - self._prev_v
            dg = grad - self._prev_grad
            denom = float(dg @ dg)
            if np.isfinite(denom) and denom > 1e-20:
                bb = abs(float(dv @ dg)) / denom
                if np.isfinite(bb) and bb > 0:
                    self.lr = float(np.clip(bb, self.lr_min, self.lr_max))
        self._prev_v = self.v.copy()
        self._prev_grad = grad.copy()

        u_next = self._project(self.v - self.lr * grad)
        a_next = 0.5 * (1.0 + np.sqrt(4.0 * self.a * self.a + 1.0))
        self.v = self._project(
            u_next + ((self.a - 1.0) / a_next) * (u_next - self.u)
        )
        self.u = u_next
        self.a = a_next
        return self.u


class AdamOptimizer:
    """Adam with the same ``params``/``step`` interface."""

    def __init__(
        self,
        x0: np.ndarray,
        lr: float,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-12,
        bounds: Optional[tuple] = None,
    ) -> None:
        self.x = x0.astype(np.float64).copy()
        self.bounds = bounds
        self.lr = float(lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.m = np.zeros_like(self.x)
        self.s = np.zeros_like(self.x)
        self.t = 0

    @property
    def params(self) -> np.ndarray:
        return self.x

    def step(self, grad: np.ndarray) -> np.ndarray:
        self.t += 1
        self.m = self.beta1 * self.m + (1 - self.beta1) * grad
        self.s = self.beta2 * self.s + (1 - self.beta2) * grad * grad
        m_hat = self.m / (1 - self.beta1**self.t)
        s_hat = self.s / (1 - self.beta2**self.t)
        self.x = self.x - self.lr * m_hat / (np.sqrt(s_hat) + self.eps)
        if self.bounds is not None:
            np.clip(self.x, self.bounds[0], self.bounds[1], out=self.x)
        return self.x

    def get_state(self) -> dict:
        """Complete serializable state (checkpoint/restart support)."""
        return {
            "kind": "adam",
            "x": self.x.copy(),
            "lr": self.lr,
            "m": self.m.copy(),
            "s": self.s.copy(),
            "t": self.t,
        }

    def set_state(self, state: dict) -> None:
        """Restore state captured by :meth:`get_state` (bit-exact resume)."""
        if state.get("kind") != "adam":
            raise ValueError(f"state is for optimizer {state.get('kind')!r}")
        self.x = state["x"].copy()
        self.lr = float(state["lr"])
        self.m = state["m"].copy()
        self.s = state["s"].copy()
        self.t = int(state["t"])


def make_optimizer(kind: str, x0: np.ndarray, lr: float, bounds=None):
    """Factory for the optimizers above ('nesterov' or 'adam')."""
    if kind == "nesterov":
        return NesterovOptimizer(x0, lr, bounds=bounds)
    if kind == "adam":
        return AdamOptimizer(x0, lr, bounds=bounds)
    raise ValueError(f"unknown optimizer {kind!r}")
