"""Greedy timing-driven buffer insertion (post-placement ECO).

After placement, long or heavily loaded critical nets dominate the wire
delay; the standard remedy is a repeater: isolate part of the load behind
a buffer so the critical sink sees less capacitance and a refreshed slew.
This optimizer implements the greedy verify-or-revert flavour of that ECO
on top of the reproduction's netlist-editing substrate:

1. rank nets by worst sink slack (golden STA);
2. for each critical net, propose candidate splits - (a) isolate the
   *non-critical* sinks behind a buffer placed at their centroid, or
   (b) place a mid-wire repeater toward the farthest sink;
3. apply the edit (:func:`repro.netlist.edit.insert_buffer`), re-run the
   golden STA, and keep the buffer only if WNS/TNS actually improve.

Every accepted buffer is a new movable cell at its proposed position;
callers should legalize afterwards.  This is firmly in the "timing
closure flow around the paper" category: the paper optimises placement,
and this stage consumes its output the way a physical-synthesis step
would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..netlist.design import Design
from ..netlist.edit import clone_design, insert_buffer
from ..sta.analysis import run_sta

__all__ = ["BufferingOptions", "BufferingResult", "TimingDrivenBufferizer"]


@dataclass
class BufferingOptions:
    """Knobs of the greedy buffering pass."""

    max_buffers: int = 8
    buffer_type: str = "BUF_X2"
    min_sinks_to_split: int = 3  # candidate (a) needs spare sinks
    min_gain: float = 1e-6  # required WNS-score improvement
    wns_weight: float = 50.0  # score = TNS + weight * WNS


@dataclass
class BufferingResult:
    """Outcome of buffering: the edited design and its placement."""

    design: Design
    x: np.ndarray
    y: np.ndarray
    wns_before: float
    tns_before: float
    wns_after: float
    tns_after: float
    n_inserted: int
    n_trials: int
    inserted_names: List[str] = field(default_factory=list)


class TimingDrivenBufferizer:
    """Greedy verify-or-revert buffer insertion on critical nets."""

    def __init__(self, options: Optional[BufferingOptions] = None) -> None:
        self.options = options if options is not None else BufferingOptions()

    # ------------------------------------------------------------------
    def _candidates(self, design: Design, x, y, result) -> List[Tuple]:
        """(net, moved sink pins, position) proposals, most critical first."""
        px, py = design.pin_positions(x, y)
        net_slack = result.net_worst_slack()
        pin_slack = result.slack.min(axis=1)
        order = np.argsort(net_slack)
        proposals: List[Tuple] = []
        for ni in order[: 3 * self.options.max_buffers]:
            ni = int(ni)
            if net_slack[ni] >= 0 or design.net_is_clock[ni]:
                continue
            pins = design.net_pins(ni)
            driver = int(design.net_driver[ni])
            sinks = np.array([int(p) for p in pins if p != driver])
            if len(sinks) == 0:
                continue
            worst = sinks[int(np.argmin(pin_slack[sinks]))]
            others = [s for s in sinks if s != worst]
            if len(others) >= self.options.min_sinks_to_split - 1:
                # (a) shield the critical sink: push every other sink
                # behind a buffer at their centroid.
                cx = float(np.mean(px[others]))
                cy = float(np.mean(py[others]))
                proposals.append((ni, tuple(others), (cx, cy)))
            # (b) mid-wire repeater toward the most critical sink.
            mx = 0.5 * float(px[driver] + px[worst])
            my = 0.5 * float(py[driver] + py[worst])
            span = abs(px[driver] - px[worst]) + abs(py[driver] - py[worst])
            if span > 2.0:
                proposals.append((ni, (int(worst),), (mx, my)))
        return proposals

    @staticmethod
    def _score(wns: float, tns: float, weight: float) -> float:
        return tns + weight * wns

    # ------------------------------------------------------------------
    def run(
        self,
        design: Design,
        cell_x: Optional[np.ndarray] = None,
        cell_y: Optional[np.ndarray] = None,
    ) -> BufferingResult:
        """Insert up to ``max_buffers`` buffers, verifying each by STA."""
        opts = self.options
        x = (design.cell_x if cell_x is None else cell_x).astype(float).copy()
        y = (design.cell_y if cell_y is None else cell_y).astype(float).copy()
        # Work on a clone carrying the requested placement so that edits
        # (which rebuild from stored positions) never touch the input
        # design and always see the current coordinates.
        current = clone_design(design)
        current.cell_x[:] = x
        current.cell_y[:] = y
        result = run_sta(current, x, y)
        wns0, tns0 = result.wns_setup, result.tns_setup
        score = self._score(wns0, tns0, opts.wns_weight)
        inserted: List[str] = []
        n_trials = 0

        while len(inserted) < opts.max_buffers:
            accepted = False
            for ni, moved, position in self._candidates(current, x, y, result):
                n_trials += 1
                name = f"eco_buf{len(inserted)}_{n_trials}"
                try:
                    trial = insert_buffer(
                        current, ni, moved, position,
                        buffer_type=opts.buffer_type, name=name,
                    )
                except ValueError:
                    continue
                # Carry positions over by name; the buffer takes its
                # proposed spot.
                tx = trial.cell_x.copy()
                ty = trial.cell_y.copy()
                trial_result = run_sta(trial, tx, ty)
                trial_score = self._score(
                    trial_result.wns_setup, trial_result.tns_setup,
                    opts.wns_weight,
                )
                if trial_score > score + opts.min_gain:
                    current, x, y = trial, tx, ty
                    result = trial_result
                    score = trial_score
                    inserted.append(name)
                    accepted = True
                    break
            if not accepted:
                break

        return BufferingResult(
            design=current,
            x=x,
            y=y,
            wns_before=wns0,
            tns_before=tns0,
            wns_after=result.wns_setup,
            tns_after=result.tns_setup,
            n_inserted=len(inserted),
            n_trials=n_trials,
            inserted_names=inserted,
        )
