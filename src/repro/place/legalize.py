"""Row legalization (Abacus-style) and a small greedy detailed placer.

Global placement leaves fractional overlaps; :func:`legalize` assigns each
movable cell to a row with available capacity (searching outward from its
preferred row) and then solves each row with the Abacus clustering
algorithm, which finds the displacement-optimal non-overlapping positions
for a fixed left-to-right order.  :func:`greedy_refine` optionally follows
with profitable same-row adjacent swaps under the HPWL objective.

The paper's scope is global placement; legalization here exists so that
end-to-end flows and evaluations are realistic, not to compete with
dedicated legalizers.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..netlist.design import Design
from .wirelength import hpwl

__all__ = ["legalize", "greedy_refine", "max_overlap"]


def _abacus_row(
    desired_left: np.ndarray, widths: np.ndarray, xl: float, xh: float
) -> np.ndarray:
    """Displacement-optimal left edges for one row, preserving x order.

    Classic Abacus clustering: walk the cells in increasing desired
    position; whenever a cell would overlap the previous cluster, merge and
    re-optimize the cluster position (mean of member targets), clamped to
    the row span.
    """
    order = np.argsort(desired_left, kind="stable")
    # Each cluster: [sum_target, n_members, width, member_indices]
    clusters: List[List] = []
    for idx in order:
        w = widths[idx]
        target = desired_left[idx]
        clusters.append([target, 1.0, w, [idx]])
        # Merge while the new cluster overlaps its predecessor.
        while len(clusters) > 1:
            prev = clusters[-2]
            cur = clusters[-1]
            prev_pos = _cluster_pos(prev, xl, xh)
            cur_pos = _cluster_pos(cur, xl, xh)
            if prev_pos + prev[2] <= cur_pos + 1e-12:
                break
            # Merge cur into prev; member targets shift by prev's width.
            prev[0] += cur[0] - cur[1] * prev[2]
            prev[1] += cur[1]
            prev[3].extend(cur[3])
            prev[2] += cur[2]
            clusters.pop()
    out = np.empty(len(desired_left))
    for cluster in clusters:
        pos = _cluster_pos(cluster, xl, xh)
        for member in cluster[3]:
            out[member] = pos
            pos += widths[member]
    return out


def _cluster_pos(cluster: List, xl: float, xh: float) -> float:
    """Optimal (clamped) left edge of a cluster: mean of member targets."""
    pos = cluster[0] / cluster[1]
    return float(np.clip(pos, xl, max(xh - cluster[2], xl)))


def legalize(
    design: Design,
    x: np.ndarray,
    y: np.ndarray,
    capacity_margin: float = 1e-9,
) -> Tuple[np.ndarray, np.ndarray]:
    """Snap movable cells into non-overlapping row positions.

    Rows are chosen per cell by smallest displacement among rows with
    remaining width capacity; each row is then solved exactly (for its
    cell order) with Abacus clustering.  Fixed cells are untouched.
    Raises ``RuntimeError`` if the movable width exceeds total capacity.
    """
    xl, yl, xh, yh = design.die
    row_h = design.row_height
    n_rows = max(int((yh - yl) / row_h), 1)
    row_width = xh - xl
    row_used = np.zeros(n_rows)
    row_members: List[List[int]] = [[] for _ in range(n_rows)]

    out_x = x.copy()
    out_y = y.copy()
    movable = np.nonzero(~design.cell_fixed)[0]
    # Wider cells first: they are hardest to fit.
    order = movable[np.argsort(-design.cell_w[movable], kind="stable")]

    for ci in order:
        w = design.cell_w[ci]
        pref_row = int(np.clip((y[ci] - yl) / row_h - 0.5, 0, n_rows - 1))
        chosen = -1
        for offset in range(n_rows):
            for row in ({pref_row + offset, pref_row - offset}):
                if 0 <= row < n_rows and row_used[row] + w <= row_width + capacity_margin:
                    chosen = row
                    break
            if chosen >= 0:
                break
        if chosen < 0:
            raise RuntimeError(
                "legalization failed: movable width exceeds row capacity"
            )
        row_used[chosen] += w
        row_members[chosen].append(ci)
        out_y[ci] = yl + (chosen + 0.5) * row_h

    for row, members in enumerate(row_members):
        if not members:
            continue
        idx = np.array(members, dtype=np.int64)
        desired_left = x[idx] - 0.5 * design.cell_w[idx]
        left = _abacus_row(desired_left, design.cell_w[idx], xl, xh)
        out_x[idx] = left + 0.5 * design.cell_w[idx]
    return out_x, out_y


def max_overlap(design: Design, x: np.ndarray, y: np.ndarray) -> float:
    """Largest pairwise overlap area among movable cells (0 if legal)."""
    movable = np.nonzero(~design.cell_fixed)[0]
    if len(movable) < 2:
        return 0.0
    rows = np.round((y[movable] - design.die[1]) / design.row_height, 6)
    worst = 0.0
    for row in np.unique(rows):
        members = movable[rows == row]
        if len(members) < 2:
            continue
        order = members[np.argsort(x[members])]
        lo = x[order] - 0.5 * design.cell_w[order]
        hi = x[order] + 0.5 * design.cell_w[order]
        overlap_x = np.maximum(hi[:-1] - lo[1:], 0.0)
        if len(overlap_x):
            worst = max(worst, float(overlap_x.max() * design.row_height))
    return worst


def greedy_refine(
    design: Design,
    x: np.ndarray,
    y: np.ndarray,
    passes: int = 1,
) -> Tuple[np.ndarray, np.ndarray]:
    """Profitable adjacent same-row swaps under exact HPWL.

    A deliberately small detailed-placement step: repeatedly try swapping
    horizontally adjacent movable cells of equal width and keep the swap if
    HPWL improves.
    """
    out_x = x.copy()
    out_y = y.copy()
    movable = np.nonzero(~design.cell_fixed)[0]
    base = hpwl(design, out_x, out_y)
    for _ in range(passes):
        improved = False
        rows = np.round((out_y[movable] - design.die[1]) / design.row_height, 6)
        for row in np.unique(rows):
            members = movable[rows == row]
            order = members[np.argsort(out_x[members])]
            for a, b in zip(order[:-1], order[1:]):
                if abs(design.cell_w[a] - design.cell_w[b]) > 1e-9:
                    continue
                out_x[a], out_x[b] = out_x[b], out_x[a]
                trial = hpwl(design, out_x, out_y)
                if trial < base - 1e-9:
                    base = trial
                    improved = True
                else:
                    out_x[a], out_x[b] = out_x[b], out_x[a]
        if not improved:
            break
    return out_x, out_y
