"""Net-criticality policies for net-weighting timing optimization.

The net-weighting literature the paper builds its baseline from differs
mainly in how slack maps to a weight increment.  This module makes the
policy pluggable so the [24]-style momentum weighter can be ablated:

- ``linear``   - the DREAMPlace 4.0 form used in Table 3:
  ``c = max(0, -slack / |WNS|)``;
- ``exponential`` - classic VPR/[19]-style sharpening:
  ``c = (1 - slack / |WNS|)^k - 1`` for negative slack (k = 2 default),
  emphasising the most critical nets superlinearly;
- ``threshold`` - binary: every net within ``margin`` of violating gets
  the same unit criticality (the earliest net-weighting works).

All policies return 0 for comfortably positive slacks and are bounded so
the momentum update in :mod:`repro.place.netweight` stays stable.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

__all__ = ["CRITICALITY_POLICIES", "make_criticality"]


def _linear(net_slack: np.ndarray, wns: float) -> np.ndarray:
    return np.maximum(0.0, -net_slack / abs(wns))


def _exponential(
    net_slack: np.ndarray, wns: float, exponent: float = 2.0
) -> np.ndarray:
    ratio = np.clip(-net_slack / abs(wns), 0.0, 1.0)
    return (1.0 + ratio) ** exponent - 1.0


def _threshold(
    net_slack: np.ndarray, wns: float, margin_fraction: float = 0.1
) -> np.ndarray:
    margin = margin_fraction * abs(wns)
    return (net_slack < margin).astype(float)


CRITICALITY_POLICIES: Dict[str, Callable] = {
    "linear": _linear,
    "exponential": _exponential,
    "threshold": _threshold,
}


def make_criticality(policy: str = "linear", **kwargs) -> Callable:
    """Return a ``criticality(net_slack, wns) -> weights`` callable.

    Extra keyword arguments are bound into the policy (e.g.
    ``make_criticality("exponential", exponent=3.0)``).
    """
    if policy not in CRITICALITY_POLICIES:
        raise ValueError(
            f"unknown criticality policy {policy!r}; "
            f"expected one of {sorted(CRITICALITY_POLICIES)}"
        )
    base = CRITICALITY_POLICIES[policy]
    if not kwargs:
        return base

    def bound(net_slack: np.ndarray, wns: float) -> np.ndarray:
        return base(net_slack, wns, **kwargs)

    return bound
