"""Wirelength objectives: exact HPWL and the weighted-average (WA) model.

HPWL is the reporting metric (Table 3 of the paper).  The optimizer uses
the smooth weighted-average wirelength of DREAMPlace, whose per-net maximum
is ``WA+ = sum(x * exp(x / gamma)) / sum(exp(x / gamma))`` with the closed-
form gradient ``dWA+/dx_j = (a_j / b)(1 + (x_j - WA+) / gamma)``.  All
reductions are computed net-by-net with CSR ``reduceat`` kernels, so the
cost is linear in pins.
"""

from __future__ import annotations

from typing import Optional, Tuple


from ..core.backend import xp
from ..core.scatter import scatter_add
from ..netlist.design import Design

__all__ = ["hpwl", "WAWirelength"]


def _segment_reduceat(op, values: xp.ndarray, starts: xp.ndarray) -> xp.ndarray:
    """`op.reduceat` guarded against empty trailing segments."""
    return op.reduceat(values, starts)


def hpwl(
    design: Design,
    cell_x: Optional[xp.ndarray] = None,
    cell_y: Optional[xp.ndarray] = None,
    net_weights: Optional[xp.ndarray] = None,
) -> float:
    """(Weighted) half-perimeter wirelength of all nets."""
    px, py = design.pin_positions(cell_x, cell_y)
    starts = design.net2pin_start[:-1]
    order = design.net2pin
    if len(order) == 0:
        return 0.0
    x = px[order]
    y = py[order]
    span = (
        xp.maximum.reduceat(x, starts)
        - xp.minimum.reduceat(x, starts)
        + xp.maximum.reduceat(y, starts)
        - xp.minimum.reduceat(y, starts)
    )
    if net_weights is not None:
        span = span * net_weights
    return float(span.sum())


class WAWirelength:
    """Weighted-average wirelength with analytic gradients.

    One instance caches the CSR layout of a design; :meth:`evaluate`
    returns the smooth wirelength and its gradient with respect to cell
    centers (pin offsets are rigid).
    """

    def __init__(self, design: Design) -> None:
        self.design = design
        self.starts = design.net2pin_start[:-1]
        self.order = design.net2pin
        self.degrees = design.net_degrees
        # Nets with fewer than 2 pins contribute nothing.
        self.active = (self.degrees >= 2).astype(xp.float64)
        self.pin_cells = design.pin2cell[self.order]

    def _axis(
        self, coord: xp.ndarray, gamma: float, weights: xp.ndarray
    ) -> Tuple[float, xp.ndarray]:
        """Smooth span and per-ordered-pin gradient along one axis."""
        starts = self.starts
        repeats = self.degrees

        c_max = xp.maximum.reduceat(coord, starts)
        c_min = xp.minimum.reduceat(coord, starts)
        shift_max = xp.repeat(c_max, repeats)
        shift_min = xp.repeat(c_min, repeats)

        a_pos = xp.exp((coord - shift_max) / gamma)
        a_neg = xp.exp((shift_min - coord) / gamma)
        b_pos = xp.add.reduceat(a_pos, starts)
        b_neg = xp.add.reduceat(a_neg, starts)
        c_pos = xp.add.reduceat(coord * a_pos, starts)
        c_neg = xp.add.reduceat(coord * a_neg, starts)
        wa_pos = c_pos / b_pos
        wa_neg = c_neg / b_neg

        span = float(xp.sum(weights * self.active * (wa_pos - wa_neg)))

        w_rep = xp.repeat(weights * self.active, repeats)
        wa_pos_rep = xp.repeat(wa_pos, repeats)
        wa_neg_rep = xp.repeat(wa_neg, repeats)
        b_pos_rep = xp.repeat(b_pos, repeats)
        b_neg_rep = xp.repeat(b_neg, repeats)
        grad = w_rep * (
            (a_pos / b_pos_rep) * (1.0 + (coord - wa_pos_rep) / gamma)
            - (a_neg / b_neg_rep) * (1.0 - (coord - wa_neg_rep) / gamma)
        )
        return span, grad

    def evaluate(
        self,
        cell_x: xp.ndarray,
        cell_y: xp.ndarray,
        gamma: float,
        net_weights: Optional[xp.ndarray] = None,
    ) -> Tuple[float, xp.ndarray, xp.ndarray]:
        """Return (smooth WL, dWL/dcell_x, dWL/dcell_y)."""
        design = self.design
        weights = (
            xp.ones(design.n_nets, dtype=xp.float64)
            if net_weights is None
            else net_weights
        )
        px, py = design.pin_positions(cell_x, cell_y)
        x = px[self.order]
        y = py[self.order]
        wl_x, gx = self._axis(x, gamma, weights)
        wl_y, gy = self._axis(y, gamma, weights)
        grad_x = scatter_add(self.pin_cells, gx, design.n_cells)
        grad_y = scatter_add(self.pin_cells, gy, design.n_cells)
        return wl_x + wl_y, grad_x, grad_y
