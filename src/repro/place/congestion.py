"""RUDY routing-congestion estimation.

RUDY (Rectangular Uniform wire DensitY, Spindler & Johannes, DATE 2007)
spreads each net's expected wire volume uniformly over its bounding box:

    density(net) = wirelength / area = (w + h) / (w * h)

accumulated over a bin grid.  It is the standard pre-routing congestion
proxy in placement studies (the routability-driven placers of the paper's
related work optimise exactly this kind of map); here it provides a
congestion *report* for placements so experiments can verify that timing
optimization does not silently wreck routability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..netlist.design import Design

__all__ = ["CongestionMap", "rudy_map"]


@dataclass
class CongestionMap:
    """RUDY utilisation per bin plus summary statistics."""

    density: np.ndarray  # (nb, nb) expected wire density
    bin_w: float
    bin_h: float

    @property
    def peak(self) -> float:
        return float(self.density.max())

    @property
    def mean(self) -> float:
        return float(self.density.mean())

    def overflow_fraction(self, capacity: float) -> float:
        """Fraction of bins whose RUDY density exceeds ``capacity``."""
        return float((self.density > capacity).mean())


def rudy_map(
    design: Design,
    cell_x: Optional[np.ndarray] = None,
    cell_y: Optional[np.ndarray] = None,
    n_bins: int = 32,
) -> CongestionMap:
    """Compute the RUDY congestion map of a placement.

    Each net contributes ``(w + h) / (w * h)`` density over its pin
    bounding box, deposited exactly (area-weighted) into the bin grid.
    Degenerate boxes are inflated to one wire pitch so point nets still
    register their local wire demand.
    """
    px, py = design.pin_positions(cell_x, cell_y)
    xl, yl, xh, yh = design.die
    bw = (xh - xl) / n_bins
    bh = (yh - yl) / n_bins
    density = np.zeros((n_bins, n_bins))
    pitch = 0.5 * min(bw, bh)

    starts = design.net2pin_start
    order = design.net2pin
    for ni in range(design.n_nets):
        pins = order[starts[ni] : starts[ni + 1]]
        if len(pins) < 2:
            continue
        x0, x1 = float(px[pins].min()), float(px[pins].max())
        y0, y1 = float(py[pins].min()), float(py[pins].max())
        w = max(x1 - x0, pitch)
        h = max(y1 - y0, pitch)
        rudy = (w + h) / (w * h)
        # Exact area-weighted deposition over covered bins.
        bx0 = int(np.clip((x0 - xl) / bw, 0, n_bins - 1))
        bx1 = int(np.clip((x0 + w - xl) / bw, 0, n_bins - 1))
        by0 = int(np.clip((y0 - yl) / bh, 0, n_bins - 1))
        by1 = int(np.clip((y0 + h - yl) / bh, 0, n_bins - 1))
        for bx in range(bx0, bx1 + 1):
            ox = min(x0 + w, xl + (bx + 1) * bw) - max(x0, xl + bx * bw)
            if ox <= 0:
                continue
            for by in range(by0, by1 + 1):
                oy = min(y0 + h, yl + (by + 1) * bh) - max(y0, yl + by * bh)
                if oy > 0:
                    density[bx, by] += rudy * (ox * oy) / (bw * bh)
    return CongestionMap(density=density, bin_w=bw, bin_h=bh)
