"""Momentum-based net weighting - the timing-driven baseline of [24].

Implements the DREAMPlace 4.0 scheme (Liao et al., DATE 2022) the paper
compares against in Table 3: once timing optimization starts, the golden
STA engine is invoked periodically on the current placement; nets with
negative worst slack receive a multiplicative weight increase proportional
to their criticality ``c_e = max(0, -slack_e / |WNS|)``, smoothed with a
momentum term:

    w_hat_e  = w_e * (1 + alpha * c_e)
    w_e(t+1) = beta * w_e(t) + (1 - beta) * w_hat_e

The weighted wirelength of Equation (4) then pulls critical nets shorter.
This module plugs into :class:`~repro.place.placer.GlobalPlacer` through
its ``net_weight_fn`` hook.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..netlist.design import Design
from ..sta.analysis import StaticTimingAnalyzer
from .criticality import make_criticality
from ..sta.graph import TimingGraph
from .placer import GlobalPlacer, PlacerOptions, PlacerResult

__all__ = ["NetWeightOptions", "MomentumNetWeighter", "NetWeightingPlacer"]


@dataclass
class NetWeightOptions:
    """Hyper-parameters of the momentum net-weighting baseline."""

    start_iteration: int = 100
    period: int = 3  # STA call every N iterations once started
    alpha: float = 0.1  # criticality-to-weight increment gain
    beta: float = 0.8  # momentum coefficient
    max_weight: float = 16.0  # clamp to keep the objective bounded
    criticality: str = "linear"  # see repro.place.criticality


class MomentumNetWeighter:
    """Stateful ``net_weight_fn`` hook implementing [24]."""

    def __init__(
        self,
        design: Design,
        options: Optional[NetWeightOptions] = None,
        graph: Optional[TimingGraph] = None,
    ) -> None:
        self.design = design
        self.options = options if options is not None else NetWeightOptions()
        self.sta = StaticTimingAnalyzer(design, graph)
        self.weights = np.ones(design.n_nets)
        self.criticality = make_criticality(self.options.criticality)
        self.n_sta_calls = 0
        self.last_wns = 0.0
        self.last_tns = 0.0

    def __call__(
        self, iteration: int, cell_x: np.ndarray, cell_y: np.ndarray
    ) -> Optional[np.ndarray]:
        opts = self.options
        if iteration < opts.start_iteration:
            return None
        if (iteration - opts.start_iteration) % opts.period != 0:
            return None
        result = self.sta.run(cell_x, cell_y)
        self.n_sta_calls += 1
        self.last_wns = result.wns_setup
        self.last_tns = result.tns_setup
        net_slack = result.net_worst_slack()
        wns = result.wns_setup
        if wns >= 0.0:
            return self.weights
        criticality = self.criticality(net_slack, wns)
        proposed = self.weights * (1.0 + opts.alpha * criticality)
        self.weights = np.minimum(
            opts.beta * self.weights + (1.0 - opts.beta) * proposed,
            opts.max_weight,
        )
        return self.weights


class NetWeightingPlacer:
    """The [24] baseline flow: GlobalPlacer + momentum net weighting."""

    def __init__(
        self,
        design: Design,
        placer_options: Optional[PlacerOptions] = None,
        nw_options: Optional[NetWeightOptions] = None,
        graph: Optional[TimingGraph] = None,
        sta_every: int = 10,
    ) -> None:
        self.design = design
        self.placer_options = (
            placer_options if placer_options is not None else PlacerOptions()
        )
        self.weighter = MomentumNetWeighter(design, nw_options, graph)
        self.sta_every = sta_every

    def run(self) -> PlacerResult:
        """Run the net-weighting timing-driven placement flow."""
        design = self.design

        def metrics_hook(iteration: int, x: np.ndarray, y: np.ndarray):
            # Record the last STA metrics into the trace (no extra STA
            # calls: the weighter already runs them periodically).
            if (
                iteration >= self.weighter.options.start_iteration
                and iteration % self.sta_every == 0
                and self.weighter.n_sta_calls > 0
            ):
                zeros = np.zeros(design.n_cells)
                return zeros, zeros, {
                    "wns": self.weighter.last_wns,
                    "tns": self.weighter.last_tns,
                }
            return None

        placer = GlobalPlacer(
            design,
            self.placer_options,
            extra_grad_fn=metrics_hook,
            net_weight_fn=self.weighter,
        )
        return placer.run()
