"""Nonlinear global placement driver (the DREAMPlace substrate).

Implements the wirelength + density optimization of Equation (3) of the
paper: weighted-average wirelength, electrostatic density with a scheduled
penalty weight, Nesterov/Adam optimization, and a density-overflow stopping
criterion.  Two extension hooks make it the shared engine for all three
placers compared in Table 3:

- ``net_weight_fn(iteration, x, y)`` may return updated per-net weights
  (the net-weighting baseline of [24]);
- ``extra_grad_fn(iteration, x, y)`` may return an additional objective
  gradient plus metrics (the differentiable timing objective, Eq. (6)).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..netlist.design import Design
from .density import DensityModel
from .optimizer import make_optimizer
from .wirelength import WAWirelength, hpwl

__all__ = ["PlacerOptions", "PlacerResult", "GlobalPlacer"]

ExtraGradFn = Callable[[int, np.ndarray, np.ndarray], Optional[Tuple]]
NetWeightFn = Callable[[int, np.ndarray, np.ndarray], Optional[np.ndarray]]


def _auto_bins(design: Design) -> int:
    """Grid resolution with bins no finer than the average movable cell.

    Point (cloud-in-cell) density deposition cannot resolve overlap below
    the bin scale, so bins finer than a cell make the density field noisy
    and stall spreading.
    """
    movable = ~design.cell_fixed
    areas = (design.cell_w * design.cell_h)[movable]
    avg_dim = float(np.sqrt(areas.mean())) if len(areas) else 1.0
    xl, yl, xh, yh = design.die
    span = 0.5 * ((xh - xl) + (yh - yl))
    n_bins = 2 ** int(np.floor(np.log2(max(span / max(avg_dim, 1e-9), 8.0))))
    return int(np.clip(n_bins, 8, 256))


@dataclass
class PlacerOptions:
    """Tuning knobs of the global placer."""

    n_bins: Optional[int] = None  # None = auto: bin size ~ avg cell size
    target_density: float = 1.0
    max_iters: int = 500
    min_iters: int = 40
    stop_overflow: float = 0.08
    gamma_base_factor: float = 4.0  # wirelength smoothing, in bin sizes
    lambda_init_ratio: float = 5e-4  # initial density weight vs gradient norms
    lambda_mult: float = 1.05
    lambda_max: float = 1e6
    optimizer: str = "nesterov"
    lr_fraction: float = 0.05  # initial step as fraction of die span
    noise_fraction: float = 0.02  # initial spread of movable cells
    seed: int = 0
    trace_every: int = 1
    verbose: bool = False


@dataclass
class PlacerResult:
    """Final placement plus the per-iteration trace."""

    x: np.ndarray
    y: np.ndarray
    iterations: int
    runtime: float
    stop_reason: str
    trace: List[Dict[str, float]] = field(default_factory=list)
    hpwl: float = 0.0
    overflow: float = 0.0

    def series(self, key: str) -> Tuple[np.ndarray, np.ndarray]:
        """Extract (iteration, value) arrays for one traced metric."""
        its = [t["iteration"] for t in self.trace if key in t]
        vals = [t[key] for t in self.trace if key in t]
        return np.asarray(its), np.asarray(vals)


class GlobalPlacer:
    """Analytical global placer with timing extension hooks."""

    def __init__(
        self,
        design: Design,
        options: Optional[PlacerOptions] = None,
        extra_grad_fn: Optional[ExtraGradFn] = None,
        net_weight_fn: Optional[NetWeightFn] = None,
    ) -> None:
        self.design = design
        self.options = options if options is not None else PlacerOptions()
        self.extra_grad_fn = extra_grad_fn
        self.net_weight_fn = net_weight_fn
        self.wirelength = WAWirelength(design)
        n_bins = self.options.n_bins
        if n_bins is None:
            n_bins = _auto_bins(design)
        self.density = DensityModel(design, n_bins, self.options.target_density)
        self.movable = ~design.cell_fixed
        #: L1 norm of the latest wirelength gradient; extra-gradient hooks
        #: may read this to normalise their own magnitude.
        self.last_wl_grad_l1 = 0.0
        #: Density overflow at the latest iteration (for hook feedback).
        self.last_overflow = 1.0
        # Preconditioner: pins per cell (wirelength Hessian proxy).
        self.cell_pin_count = np.bincount(
            design.pin2cell, minlength=design.n_cells
        ).astype(np.float64)

    # ------------------------------------------------------------------
    def initial_positions(self) -> Tuple[np.ndarray, np.ndarray]:
        """Movable cells near the die center with a small random spread."""
        design = self.design
        rng = np.random.default_rng(self.options.seed)
        xl, yl, xh, yh = design.die
        cx, cy = 0.5 * (xl + xh), 0.5 * (yl + yh)
        x = design.cell_x.copy()
        y = design.cell_y.copy()
        n_mov = int(self.movable.sum())
        span = self.options.noise_fraction
        x[self.movable] = cx + rng.uniform(-span, span, n_mov) * (xh - xl)
        y[self.movable] = cy + rng.uniform(-span, span, n_mov) * (yh - yl)
        return x, y

    def _gamma(self, overflow: float) -> float:
        """Wirelength smoothing schedule: tight when nearly spread."""
        base = self.options.gamma_base_factor * self.density.bin_size
        return base * (0.1 + 0.9 * min(max(overflow, 0.0), 1.0))

    # ------------------------------------------------------------------
    def run(
        self,
        x0: Optional[np.ndarray] = None,
        y0: Optional[np.ndarray] = None,
    ) -> PlacerResult:
        """Run global placement to the overflow stop criterion."""
        design = self.design
        opts = self.options
        start_time = time.perf_counter()

        if x0 is None or y0 is None:
            x, y = self.initial_positions()
        else:
            x, y = x0.copy(), y0.copy()

        n = design.n_cells
        xl, yl, xh, yh = design.die
        die_span = 0.5 * ((xh - xl) + (yh - yl))
        pos = np.concatenate([x, y])
        # Both the iterate and the Nesterov lookahead point are projected
        # into the die: gradients (in particular the timing objective) are
        # evaluated at the lookahead, which must stay physical.  Fixed
        # cells never move (zero gradient), so clipping cannot shift them.
        lo = np.concatenate([np.full(n, xl), np.full(n, yl)])
        hi = np.concatenate([np.full(n, xh), np.full(n, yh)])
        optimizer = make_optimizer(
            opts.optimizer, pos, lr=opts.lr_fraction * die_span,
            bounds=(lo, hi),
        )
        movable2 = np.concatenate([self.movable, self.movable])

        lam = None
        net_weights = np.ones(design.n_nets)
        trace: List[Dict[str, float]] = []
        stop_reason = "max_iters"
        iteration = 0
        overflow = 1.0
        prev_overflow = 1.0
        recent_hpwl: List[float] = []
        best_overflow = np.inf
        best_pos = pos.copy()

        for iteration in range(opts.max_iters):
            pos_eval = optimizer.params
            x_eval = pos_eval[:n]
            y_eval = pos_eval[n:]

            if self.net_weight_fn is not None:
                updated = self.net_weight_fn(iteration, x_eval, y_eval)
                if updated is not None:
                    net_weights = updated

            gamma = self._gamma(overflow)
            _, gwx, gwy = self.wirelength.evaluate(
                x_eval, y_eval, gamma, net_weights
            )
            dres = self.density.evaluate(x_eval, y_eval)
            overflow = dres.overflow

            if lam is None:
                wl_norm = float(np.abs(gwx).sum() + np.abs(gwy).sum())
                d_norm = float(
                    np.abs(dres.grad_x).sum() + np.abs(dres.grad_y).sum()
                )
                lam = opts.lambda_init_ratio * wl_norm / max(d_norm, 1e-12)

            grad_x = gwx + lam * dres.grad_x
            grad_y = gwy + lam * dres.grad_y

            extra_metrics: Dict[str, float] = {}
            if self.extra_grad_fn is not None:
                self.last_wl_grad_l1 = float(
                    np.abs(gwx).sum() + np.abs(gwy).sum()
                )
                self.last_overflow = overflow
                extra = self.extra_grad_fn(iteration, x_eval, y_eval)
                if extra is not None:
                    egx, egy, extra_metrics = extra
                    grad_x = grad_x + egx
                    grad_y = grad_y + egy

            precond = self.cell_pin_count + lam * self.density.area
            precond = np.maximum(precond, 1.0)
            grad = np.concatenate([grad_x / precond, grad_y / precond])
            grad[~movable2] = 0.0
            np.nan_to_num(grad, copy=False)

            pos = optimizer.step(grad)
            np.clip(pos[:n], xl, xh, out=pos[:n])
            np.clip(pos[n:], yl, yh, out=pos[n:])

            # Adaptive density-weight schedule: grow at the full rate only
            # while the overflow is actually shrinking; otherwise creep.
            # Unconditional exponential growth makes the density term
            # arbitrarily stiff and eventually shakes the placement apart.
            if overflow < prev_overflow - 1e-4:
                lam = min(lam * opts.lambda_mult, opts.lambda_max)
            else:
                lam = min(lam * (1.0 + 0.25 * (opts.lambda_mult - 1.0)),
                          opts.lambda_max)
            prev_overflow = overflow

            if overflow < best_overflow:
                best_overflow = overflow
                best_pos = pos.copy()
            elif overflow > best_overflow + 0.4 and iteration > opts.min_iters:
                # The trajectory exploded well past its best point; bail
                # out and report the best iterate seen.
                pos = best_pos
                stop_reason = "diverged"
                break

            current_hpwl = hpwl(design, pos[:n], pos[n:])
            # Divergence guard: Nesterov with Barzilai-Borwein steps can
            # blow up when the density field is noisy.  Normal spreading
            # grows HPWL by a few percent per iteration, so a jump well
            # above the recent median marks a blowup - drop momentum and
            # shrink the step bound, keeping the last stable iterate.
            recent_hpwl.append(current_hpwl)
            if len(recent_hpwl) > 20:
                recent_hpwl.pop(0)
            recent_median = float(np.median(recent_hpwl))
            if (
                len(recent_hpwl) == 20
                and current_hpwl > 4.0 * recent_median
                and hasattr(optimizer, "restart")
            ):
                optimizer.restart()
                pos = optimizer.params
                current_hpwl = hpwl(design, pos[:n], pos[n:])
                recent_hpwl.clear()

            if iteration % opts.trace_every == 0:
                entry = {
                    "iteration": float(iteration),
                    "hpwl": current_hpwl,
                    "overflow": overflow,
                    "lambda": lam,
                }
                entry.update(extra_metrics)
                trace.append(entry)
                if opts.verbose and iteration % 50 == 0:
                    print(
                        f"iter {iteration:4d} hpwl {entry['hpwl']:.3e} "
                        f"overflow {overflow:.3f}"
                    )

            if iteration >= opts.min_iters and overflow < opts.stop_overflow:
                stop_reason = "overflow"
                break

        x_final = pos[:n].copy()
        y_final = pos[n:].copy()
        runtime = time.perf_counter() - start_time
        return PlacerResult(
            x=x_final,
            y=y_final,
            iterations=iteration + 1,
            runtime=runtime,
            stop_reason=stop_reason,
            trace=trace,
            hpwl=hpwl(design, x_final, y_final),
            overflow=overflow,
        )
