"""Nonlinear global placement driver (the DREAMPlace substrate).

Implements the wirelength + density optimization of Equation (3) of the
paper: weighted-average wirelength, electrostatic density with a scheduled
penalty weight, Nesterov/Adam optimization, and a density-overflow stopping
criterion.  Two extension hooks make it the shared engine for all three
placers compared in Table 3:

- ``net_weight_fn(iteration, x, y)`` may return updated per-net weights
  (the net-weighting baseline of [24]);
- ``extra_grad_fn(iteration, x, y)`` may return an additional objective
  gradient plus metrics (the differentiable timing objective, Eq. (6)).

The driver runs inside the guarded runtime of :mod:`repro.runtime`:

- ``PlacerOptions.validate`` runs structural design validation before
  iteration 0 and refuses to start on a design with errors;
- each objective term's gradient passes through a
  :class:`~repro.runtime.guard.NumericalGuard` - a non-finite term is
  quarantined for the iteration (zero contribution, counted and logged)
  instead of being silently ``nan_to_num``-ed, and persistent faults
  escalate through step-shrink retries to checkpoint rollback;
- ``PlacerOptions.checkpoint_every`` serializes the complete optimizer
  state periodically; ``resume_from`` restarts a run from such a file and
  reproduces the remaining trajectory bit for bit;
- seeded faults from ``REPRO_INJECT_FAULT`` (see
  :mod:`repro.runtime.faults`) are armed for the duration of the run so
  the recovery paths above can be exercised deterministically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..netlist.design import Design
from ..runtime.checkpoint import (
    CheckpointManager,
    PlacerCheckpoint,
    load_checkpoint,
)
from ..runtime.faults import FaultInjector, FaultSpec, armed as _faults_armed
from ..runtime.guard import LOGGER, NumericalGuard
from ..runtime.validate import (
    DesignValidationError,
    ValidationReport,
    validate_design,
)
from ..telemetry.events import current_recorder
from ..telemetry.registry import current_heartbeat
from ..telemetry.resources import ResourceSampler
from .density import DensityModel
from .optimizer import make_optimizer
from .wirelength import WAWirelength, hpwl

__all__ = ["PlacerOptions", "PlacerResult", "GlobalPlacer"]

ExtraGradFn = Callable[[int, np.ndarray, np.ndarray], Optional[Tuple]]
NetWeightFn = Callable[[int, np.ndarray, np.ndarray], Optional[np.ndarray]]


def _auto_bins(design: Design) -> int:
    """Grid resolution with bins no finer than the average movable cell.

    Point (cloud-in-cell) density deposition cannot resolve overlap below
    the bin scale, so bins finer than a cell make the density field noisy
    and stall spreading.
    """
    movable = ~design.cell_fixed
    areas = (design.cell_w * design.cell_h)[movable]
    avg_dim = float(np.sqrt(areas.mean())) if len(areas) else 1.0
    xl, yl, xh, yh = design.die
    span = 0.5 * ((xh - xl) + (yh - yl))
    n_bins = 2 ** int(np.floor(np.log2(max(span / max(avg_dim, 1e-9), 8.0))))
    return int(np.clip(n_bins, 8, 256))


@dataclass
class PlacerOptions:
    """Tuning knobs of the global placer."""

    n_bins: Optional[int] = None  # None = auto: bin size ~ avg cell size
    target_density: float = 1.0
    max_iters: int = 500
    min_iters: int = 40
    stop_overflow: float = 0.08
    gamma_base_factor: float = 4.0  # wirelength smoothing, in bin sizes
    lambda_init_ratio: float = 5e-4  # initial density weight vs gradient norms
    lambda_mult: float = 1.05
    lambda_max: float = 1e6
    optimizer: str = "nesterov"
    lr_fraction: float = 0.05  # initial step as fraction of die span
    noise_fraction: float = 0.02  # initial spread of movable cells
    seed: int = 0
    trace_every: int = 1
    verbose: bool = False
    # Density pipeline: "scipy" is the bit-stable reference, "planned"
    # the rfft fast path; fp32 applies to the planned spectral solve.
    density_solver: str = "scipy"
    density_precision: str = "fp64"
    # ------------------------------------------------------------------
    # Guarded runtime (repro.runtime)
    # ------------------------------------------------------------------
    validate: bool = False  # structural design validation before iter 0
    guard: bool = True  # per-term NaN/Inf quarantine (off = legacy nan_to_num)
    guard_retry_limit: int = 3  # consecutive quarantines before escalating
    max_recoveries: int = 2  # step-shrink retries / rollbacks per run
    checkpoint_every: int = 0  # 0 = checkpointing off
    checkpoint_dir: Optional[str] = None  # None = runtime.CHECKPOINT_DIR
    resume_from: Optional[str] = None  # checkpoint path to restart from


@dataclass
class PlacerResult:
    """Final placement plus the per-iteration trace."""

    x: np.ndarray
    y: np.ndarray
    iterations: int
    runtime: float
    stop_reason: str
    trace: List[Dict[str, float]] = field(default_factory=list)
    hpwl: float = 0.0
    overflow: float = 0.0
    #: Per-term non-finite/exception event counts from the numerical guard
    #: (empty when nothing went wrong or the guard was disabled).
    nonfinite_events: Dict[str, int] = field(default_factory=dict)
    #: Number of iterations on which at least one term was quarantined.
    quarantined_iterations: int = 0
    #: Step-shrink retries + checkpoint rollbacks taken during the run.
    recoveries: int = 0
    #: Validation report when ``PlacerOptions.validate`` was on.
    validation: Optional[ValidationReport] = None
    #: Messages from the fault injector (non-empty only under injection).
    fault_log: List[str] = field(default_factory=list)

    def series(self, key: str) -> Tuple[np.ndarray, np.ndarray]:
        """Extract (iteration, value) arrays for one traced metric.

        Always-traced keys: ``hpwl``, ``overflow``, ``lambda``.  Runs
        with the timing objective additionally trace ``tns_smoothed``,
        ``wns_smoothed``, ``tns_frac``, ``wns_frac``, ``lse_saturation``
        and ``rsmt_cache_hit`` (and, with golden-STA sampling on,
        periodic ``wns``/``tns``).  The same keys appear as ``metrics``
        of the telemetry stream's ``iteration`` events.

        Raises :class:`KeyError` naming the available keys when ``key``
        was never traced (a silent empty series usually means a typo).
        """
        its = [t["iteration"] for t in self.trace if key in t]
        if not its:
            available = sorted(
                {k for t in self.trace for k in t} - {"iteration"}
            )
            raise KeyError(
                f"metric {key!r} was never traced; "
                f"available keys: {available}"
            )
        vals = [t[key] for t in self.trace if key in t]
        return np.asarray(its), np.asarray(vals)


class GlobalPlacer:
    """Analytical global placer with timing extension hooks."""

    def __init__(
        self,
        design: Design,
        options: Optional[PlacerOptions] = None,
        extra_grad_fn: Optional[ExtraGradFn] = None,
        net_weight_fn: Optional[NetWeightFn] = None,
        state_providers: Optional[Dict[str, Any]] = None,
        validation_graph: Optional[Any] = None,
    ) -> None:
        self.design = design
        self.options = options if options is not None else PlacerOptions()
        self.extra_grad_fn = extra_grad_fn
        self.net_weight_fn = net_weight_fn
        #: Named objects with ``get_state()``/``set_state()`` whose state
        #: rides along in checkpoints (e.g. the timing objective's Steiner
        #: forest and ramp counters), keeping resumes bit-identical.
        self.state_providers: Dict[str, Any] = dict(state_providers or {})
        #: Pre-built timing graph handed to validation (proves acyclicity
        #: without a second levelisation).
        self.validation_graph = validation_graph
        #: Injection override for tests; None = read ``REPRO_INJECT_FAULT``.
        self.fault_injector: Optional[FaultInjector] = None
        self.wirelength = WAWirelength(design)
        n_bins = self.options.n_bins
        if n_bins is None:
            n_bins = _auto_bins(design)
        self.density = DensityModel(
            design,
            n_bins,
            self.options.target_density,
            solver=self.options.density_solver,
            precision=self.options.density_precision,
        )
        self.movable = ~design.cell_fixed
        #: L1 norm of the latest wirelength gradient; extra-gradient hooks
        #: may read this to normalise their own magnitude.
        self.last_wl_grad_l1 = 0.0
        #: Density overflow at the latest iteration (for hook feedback).
        self.last_overflow = 1.0
        # Preconditioner: pins per cell (wirelength Hessian proxy).
        self.cell_pin_count = np.bincount(
            design.pin2cell, minlength=design.n_cells
        ).astype(np.float64)

    # ------------------------------------------------------------------
    def initial_positions(
        self, rng: Optional[np.random.Generator] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Movable cells near the die center with a small random spread."""
        design = self.design
        if rng is None:
            rng = np.random.default_rng(self.options.seed)
        xl, yl, xh, yh = design.die
        cx, cy = 0.5 * (xl + xh), 0.5 * (yl + yh)
        x = design.cell_x.copy()
        y = design.cell_y.copy()
        n_mov = int(self.movable.sum())
        span = self.options.noise_fraction
        x[self.movable] = cx + rng.uniform(-span, span, n_mov) * (xh - xl)
        y[self.movable] = cy + rng.uniform(-span, span, n_mov) * (yh - yl)
        return x, y

    def _gamma(self, overflow: float) -> float:
        """Wirelength smoothing schedule: tight when nearly spread."""
        base = self.options.gamma_base_factor * self.density.bin_size
        return base * (0.1 + 0.9 * min(max(overflow, 0.0), 1.0))

    # ------------------------------------------------------------------
    def run(
        self,
        x0: Optional[np.ndarray] = None,
        y0: Optional[np.ndarray] = None,
    ) -> PlacerResult:
        """Run global placement to the overflow stop criterion."""
        design = self.design
        opts = self.options
        start_time = time.perf_counter()

        validation: Optional[ValidationReport] = None
        if opts.validate:
            validation = validate_design(design, graph=self.validation_graph)
            if not validation.ok:
                raise DesignValidationError(validation)

        guard = NumericalGuard() if opts.guard else None
        injector = self.fault_injector
        if injector is None:
            injector = FaultInjector(FaultSpec.from_env())
        recorder = current_recorder()
        heartbeat = current_heartbeat()
        # Resource samples feed both the event stream (convergence-vs-RSS
        # plots) and the heartbeat record (live `status` display); skip
        # the sampler entirely when neither consumer is armed.
        sampler = (
            ResourceSampler()
            if recorder is not None or heartbeat is not None
            else None
        )

        n = design.n_cells
        xl, yl, xh, yh = design.die
        die_span = 0.5 * ((xh - xl) + (yh - yl))
        # Both the iterate and the Nesterov lookahead point are projected
        # into the die: gradients (in particular the timing objective) are
        # evaluated at the lookahead, which must stay physical.  Fixed
        # cells never move (zero gradient), so clipping cannot shift them.
        lo = np.concatenate([np.full(n, xl), np.full(n, yl)])
        hi = np.concatenate([np.full(n, xh), np.full(n, yh)])
        movable2 = np.concatenate([self.movable, self.movable])

        manager = CheckpointManager(
            directory=opts.checkpoint_dir,
            prefix=f"{design.name}_{opts.optimizer}",
            every=opts.checkpoint_every,
        )

        rng = np.random.default_rng(opts.seed)
        resume_cp: Optional[PlacerCheckpoint] = None
        if opts.resume_from:
            resume_cp = load_checkpoint(opts.resume_from)

        if resume_cp is not None:
            pos = resume_cp.pos.copy()
            optimizer = make_optimizer(
                opts.optimizer, pos, lr=opts.lr_fraction * die_span,
                bounds=(lo, hi),
            )
            optimizer.set_state(resume_cp.optimizer)
            rng.bit_generator.state = resume_cp.rng_state
            lam = resume_cp.lam
            net_weights = resume_cp.net_weights.copy()
            overflow = float(resume_cp.overflow)
            prev_overflow = float(resume_cp.prev_overflow)
            best_overflow = float(resume_cp.best_overflow)
            best_pos = resume_cp.best_pos.copy()
            recent_hpwl = list(resume_cp.recent_hpwl)
            start_iter = int(resume_cp.iteration)
            if guard is not None:
                guard.set_state(resume_cp.guard_state)
            injector.set_state(resume_cp.injector_state)
            for name, provider in self.state_providers.items():
                if name in resume_cp.extra:
                    provider.set_state(resume_cp.extra[name])
        else:
            if x0 is None or y0 is None:
                x, y = self.initial_positions(rng)
            else:
                x, y = x0.copy(), y0.copy()
            pos = np.concatenate([x, y])
            optimizer = make_optimizer(
                opts.optimizer, pos, lr=opts.lr_fraction * die_span,
                bounds=(lo, hi),
            )
            lam = None
            net_weights = np.ones(design.n_nets)
            overflow = 1.0
            prev_overflow = 1.0
            best_overflow = np.inf
            best_pos = pos.copy()
            recent_hpwl = []
            start_iter = 0

        if recorder is not None:
            if resume_cp is not None:
                # Events the restarted trajectory will re-emit are
                # dropped so the stream keeps one duplicate-free history.
                recorder.truncate_from(start_iter)
            recorder.event(
                "run_start",
                iteration=start_iter,
                design=design.name,
                optimizer=opts.optimizer,
                seed=opts.seed,
                max_iters=opts.max_iters,
                resumed=resume_cp is not None,
            )

        trace: List[Dict[str, float]] = []
        stop_reason = "max_iters"
        iteration = start_iter
        last_iteration = start_iter - 1
        quarantined_iters = 0
        retries = 0  # step-shrink escalations taken
        rollbacks = 0  # checkpoint rollbacks taken

        def make_checkpoint() -> PlacerCheckpoint:
            return PlacerCheckpoint(
                design=design.name,
                iteration=iteration,
                pos=pos.copy(),
                optimizer=optimizer.get_state(),
                lam=lam,
                net_weights=net_weights.copy(),
                overflow=float(overflow),
                prev_overflow=float(prev_overflow),
                best_overflow=float(best_overflow),
                best_pos=best_pos.copy(),
                recent_hpwl=list(recent_hpwl),
                rng_state=rng.bit_generator.state,
                guard_state=guard.get_state() if guard is not None else {},
                injector_state=injector.get_state(),
                extra={
                    name: provider.get_state()
                    for name, provider in self.state_providers.items()
                },
            )

        def restore_checkpoint(cp: PlacerCheckpoint) -> None:
            """Roll the whole optimization back to a saved state."""
            nonlocal pos, lam, net_weights, overflow, prev_overflow
            nonlocal best_overflow, best_pos, recent_hpwl, iteration
            pos = cp.pos.copy()
            optimizer.set_state(cp.optimizer)
            lam = cp.lam
            net_weights = cp.net_weights.copy()
            overflow = float(cp.overflow)
            prev_overflow = float(cp.prev_overflow)
            best_overflow = float(cp.best_overflow)
            best_pos = cp.best_pos.copy()
            recent_hpwl = list(cp.recent_hpwl)
            rng.bit_generator.state = cp.rng_state
            for name, provider in self.state_providers.items():
                if name in cp.extra:
                    provider.set_state(cp.extra[name])
            iteration = int(cp.iteration)

        with _faults_armed(injector):
            while iteration < opts.max_iters:
                last_iteration = iteration
                if heartbeat is not None:
                    # Re-asserting phase="place" also restores it after a
                    # nested stage (rsmt_rebuild) stamped its own phase.
                    heartbeat.update(phase="place", iteration=iteration)
                if sampler is not None:
                    sampled = sampler.maybe_sample()
                    if sampled is not None:
                        if recorder is not None:
                            recorder.event(
                                "resource", iteration=iteration, **sampled
                            )
                        if heartbeat is not None:
                            heartbeat.update(resources=sampled)
                injector.begin_iteration(iteration)
                if manager.enabled:
                    manager.maybe_save(iteration, make_checkpoint)

                pos_eval = optimizer.params
                x_eval = pos_eval[:n]
                y_eval = pos_eval[n:]

                if self.net_weight_fn is not None:
                    updated = self.net_weight_fn(iteration, x_eval, y_eval)
                    if updated is not None:
                        net_weights = updated

                gamma = self._gamma(overflow)
                _, gwx, gwy = self.wirelength.evaluate(
                    x_eval, y_eval, gamma, net_weights
                )
                injector.corrupt_grad("wirelength", gwx, gwy)
                healthy = True
                if guard is not None:
                    healthy &= guard.check_term("wirelength", iteration, gwx, gwy)

                dres = self.density.evaluate(x_eval, y_eval)
                injector.corrupt_grad("density", dres.grad_x, dres.grad_y)
                if guard is None:
                    overflow = dres.overflow
                else:
                    density_ok = guard.check_term(
                        "density", iteration, dres.grad_x, dres.grad_y
                    )
                    healthy &= density_ok
                    if density_ok and np.isfinite(dres.overflow):
                        overflow = dres.overflow
                    # else: quarantined - keep the previous overflow

                if lam is None and (guard is None or healthy):
                    wl_norm = float(np.abs(gwx).sum() + np.abs(gwy).sum())
                    d_norm = float(
                        np.abs(dres.grad_x).sum() + np.abs(dres.grad_y).sum()
                    )
                    lam = opts.lambda_init_ratio * wl_norm / max(d_norm, 1e-12)
                lam_eff = lam if lam is not None else 0.0

                grad_x = gwx + lam_eff * dres.grad_x
                grad_y = gwy + lam_eff * dres.grad_y

                extra_metrics: Dict[str, float] = {}
                if self.extra_grad_fn is not None:
                    self.last_wl_grad_l1 = float(
                        np.abs(gwx).sum() + np.abs(gwy).sum()
                    )
                    self.last_overflow = overflow
                    try:
                        extra = self.extra_grad_fn(iteration, x_eval, y_eval)
                    except Exception as exc:
                        if guard is None:
                            raise
                        guard.record_exception("timing", iteration, exc)
                        healthy = False
                        extra = None
                    if extra is not None:
                        egx, egy, extra_metrics = extra
                        injector.corrupt_grad("timing", egx, egy)
                        if guard is not None:
                            healthy &= guard.check_term(
                                "timing", iteration, egx, egy
                            )
                        grad_x = grad_x + egx
                        grad_y = grad_y + egy

                precond = self.cell_pin_count + lam_eff * self.density.area
                precond = np.maximum(precond, 1.0)
                grad = np.concatenate([grad_x / precond, grad_y / precond])
                grad[~movable2] = 0.0
                if guard is not None:
                    guard.scrub("combined", iteration, grad)
                else:
                    # reprolint: allow[no-silent-nanfix] legacy guard=False path; guarded runs scrub through NumericalGuard above
                    np.nan_to_num(grad, copy=False)

                if guard is not None and not healthy:
                    quarantined_iters += 1
                    if guard.worst_consecutive() >= opts.guard_retry_limit:
                        # Persistent fault: escalate.  First drop momentum
                        # and shrink the step bound (stale Nesterov state is
                        # the usual amplifier), then roll back to the best
                        # checkpoint; out of options, keep quarantining (the
                        # run degrades to its healthy terms).
                        if retries < opts.max_recoveries and hasattr(
                            optimizer, "restart"
                        ):
                            LOGGER.warning(
                                "iteration %d: %d consecutive quarantines; "
                                "dropping momentum and shrinking step bound",
                                iteration, guard.worst_consecutive(),
                            )
                            optimizer.restart()
                            guard.reset_consecutive()
                            retries += 1
                            if recorder is not None:
                                recorder.event(
                                    "recovery",
                                    iteration=iteration,
                                    action="optimizer_restart",
                                )
                        elif (
                            rollbacks < opts.max_recoveries
                            and manager.best_path() is not None
                        ):
                            cp = manager.load_best()
                            LOGGER.warning(
                                "iteration %d: persistent fault; rolling "
                                "back to checkpoint at iteration %d",
                                iteration, cp.iteration,
                            )
                            if recorder is not None:
                                # iteration=None keeps the recovery record
                                # out of reach of iteration truncation.
                                recorder.event(
                                    "recovery",
                                    action="checkpoint_rollback",
                                    fault_iteration=iteration,
                                    target_iteration=cp.iteration,
                                )
                            restore_checkpoint(cp)
                            if hasattr(optimizer, "restart"):
                                optimizer.restart()
                            guard.reset_consecutive()
                            rollbacks += 1
                            if recorder is not None:
                                recorder.truncate_from(iteration)
                            continue

                pos = optimizer.step(grad)
                np.clip(pos[:n], xl, xh, out=pos[:n])
                np.clip(pos[n:], yl, yh, out=pos[n:])

                # Adaptive density-weight schedule: grow at the full rate
                # only while the overflow is actually shrinking; otherwise
                # creep.  Unconditional exponential growth makes the density
                # term arbitrarily stiff and eventually shakes the
                # placement apart.
                if lam is not None:
                    if overflow < prev_overflow - 1e-4:
                        lam = min(lam * opts.lambda_mult, opts.lambda_max)
                    else:
                        lam = min(
                            lam * (1.0 + 0.25 * (opts.lambda_mult - 1.0)),
                            opts.lambda_max,
                        )
                prev_overflow = overflow

                if overflow < best_overflow:
                    best_overflow = overflow
                    best_pos = pos.copy()
                elif (
                    overflow > best_overflow + 0.4
                    and iteration > opts.min_iters
                ):
                    # The trajectory exploded well past its best point.
                    # With checkpoints on hand, roll back and retry with a
                    # shrunken step; otherwise bail out and report the best
                    # iterate seen.
                    cp = manager.load_best() if manager.enabled else None
                    if cp is not None and rollbacks < opts.max_recoveries:
                        LOGGER.warning(
                            "iteration %d: overflow %.3f diverged past best "
                            "%.3f; rolling back to checkpoint at iteration %d",
                            iteration, overflow, best_overflow, cp.iteration,
                        )
                        if recorder is not None:
                            recorder.event(
                                "recovery",
                                action="checkpoint_rollback",
                                fault_iteration=iteration,
                                target_iteration=cp.iteration,
                            )
                        restore_checkpoint(cp)
                        if hasattr(optimizer, "restart"):
                            optimizer.restart()
                        if guard is not None:
                            guard.reset_consecutive()
                        rollbacks += 1
                        if recorder is not None:
                            recorder.truncate_from(iteration)
                        continue
                    pos = best_pos
                    stop_reason = "diverged"
                    if recorder is not None:
                        recorder.event(
                            "recovery",
                            iteration=iteration,
                            action="diverged_stop",
                        )
                    break

                current_hpwl = hpwl(design, pos[:n], pos[n:])
                # Divergence guard: Nesterov with Barzilai-Borwein steps can
                # blow up when the density field is noisy.  Normal spreading
                # grows HPWL by a few percent per iteration, so a jump well
                # above the recent median marks a blowup - drop momentum and
                # shrink the step bound, keeping the last stable iterate.
                recent_hpwl.append(current_hpwl)
                if len(recent_hpwl) > 20:
                    recent_hpwl.pop(0)
                recent_median = float(np.median(recent_hpwl))
                if (
                    len(recent_hpwl) == 20
                    and current_hpwl > 4.0 * recent_median
                    and hasattr(optimizer, "restart")
                ):
                    optimizer.restart()
                    pos = optimizer.params
                    current_hpwl = hpwl(design, pos[:n], pos[n:])
                    recent_hpwl.clear()

                if iteration % opts.trace_every == 0:
                    entry = {
                        "iteration": float(iteration),
                        "hpwl": current_hpwl,
                        "overflow": overflow,
                        "lambda": lam_eff,
                    }
                    entry.update(extra_metrics)
                    trace.append(entry)
                    if recorder is not None:
                        recorder.iteration(
                            iteration,
                            {
                                k: v
                                for k, v in entry.items()
                                if k != "iteration"
                            },
                        )
                    if opts.verbose and iteration % 50 == 0:
                        print(
                            f"iter {iteration:4d} hpwl {entry['hpwl']:.3e} "
                            f"overflow {overflow:.3f}"
                        )

                if (
                    iteration >= opts.min_iters
                    and overflow < opts.stop_overflow
                ):
                    stop_reason = "overflow"
                    break

                iteration += 1

        x_final = pos[:n].copy()
        y_final = pos[n:].copy()
        runtime = time.perf_counter() - start_time
        if sampler is not None:
            # Forced final sample: even a run shorter than the throttle
            # window ends with its true peak on record.
            sampled = sampler.sample()
            if sampled is not None:
                if recorder is not None:
                    recorder.event(
                        "resource", iteration=last_iteration, **sampled
                    )
                if heartbeat is not None:
                    heartbeat.update(resources=sampled, force=True)
        if recorder is not None:
            recorder.event(
                "run_end",
                iteration=last_iteration,
                stop_reason=stop_reason,
                iterations=last_iteration + 1,
                hpwl=hpwl(design, x_final, y_final),
                overflow=overflow,
                runtime=runtime,
                recoveries=retries + rollbacks,
                quarantined_iterations=quarantined_iters,
                nonfinite_events=guard.summary() if guard is not None else {},
            )
        return PlacerResult(
            x=x_final,
            y=y_final,
            iterations=last_iteration + 1,
            runtime=runtime,
            stop_reason=stop_reason,
            trace=trace,
            hpwl=hpwl(design, x_final, y_final),
            overflow=overflow,
            nonfinite_events=guard.summary() if guard is not None else {},
            quarantined_iterations=quarantined_iters,
            recoveries=retries + rollbacks,
            validation=validation,
            fault_log=list(injector.log),
        )
