"""Command-line front end: ``python -m repro.analysis``.

Subcommands / modes:

- ``python -m repro.analysis [paths...]`` - lint (default: src,
  benchmarks), warm-cached at ``<root>/.reprolint-cache.json`` unless
  ``--no-cache``;
- ``python -m repro.analysis explain <rule-id>`` - print the full
  policy text behind a rule;
- ``--changed REF`` - lint only files differing from a git ref (plus
  untracked files), for pre-commit use;
- ``--sarif PATH`` - also emit the findings as SARIF 2.1.0;
- ``--jobs N`` - fan file analysis out over supervised workers.

Exit codes:

- ``0`` - no findings beyond the committed baseline;
- ``1`` - new findings (or ``--write-baseline`` failed);
- ``2`` - the baseline file failed its integrity check (hand-edited).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import List, Optional

from .baseline import BASELINE_FILENAME, Baseline, BaselineIntegrityError
from .cache import CACHE_FILENAME
from .core import (
    DEFAULT_LINT_PATHS,
    META_RULES,
    RULE_REGISTRY,
    Analyzer,
    Report,
    load_rules,
    run_analysis,
)
from .rules import RULES_VERSION

__all__ = ["main", "find_repo_root"]


def find_repo_root(start: Optional[str] = None) -> str:
    """Walk up from ``start`` (default cwd) to the dir holding ``src/repro``."""
    here = os.path.abspath(start or os.getcwd())
    probe = here
    while True:
        if os.path.isdir(os.path.join(probe, "src", "repro")):
            return probe
        parent = os.path.dirname(probe)
        if parent == probe:
            return here
        probe = parent


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="reprolint: semantic-index invariant checks for this repo",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src, benchmarks)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repo root (default: auto-detected from cwd)",
    )
    parser.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="emit the report as JSON to PATH (or stdout if no PATH)",
    )
    parser.add_argument(
        "--sarif",
        default=None,
        metavar="PATH",
        help="also write the new findings as SARIF 2.1.0 to PATH",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=f"baseline file (default: <root>/{BASELINE_FILENAME})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the new baseline and exit",
    )
    parser.add_argument(
        "--changed",
        default=None,
        metavar="REF",
        help="lint only files differing from the given git ref "
        "(plus untracked files); exits 0 immediately if none",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan file analysis out over N supervised worker processes",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help=f"disable the incremental result cache (<root>/{CACHE_FILENAME})",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _explain(rule_id: str) -> int:
    load_rules()
    rule = RULE_REGISTRY.get(rule_id)
    if rule is None:
        if rule_id in META_RULES:
            print(f"{rule_id} (meta rule, emitted by the analyzer itself)")
            print()
            print(META_RULES[rule_id])
            return 0
        known = ", ".join(sorted(RULE_REGISTRY) + sorted(META_RULES))
        print(f"error: unknown rule {rule_id!r}; known rules: {known}",
              file=sys.stderr)
        return 1
    scope = "project-wide" if rule.scope == "project" else "per-file"
    cached = "cached incrementally" if rule.cacheable else "always re-run"
    print(f"{rule.id} ({scope}, {cached})")
    print()
    print(rule.explain())
    return 0


def _changed_files(root: str, ref: str) -> Optional[List[str]]:
    """Repo-relative .py files differing from ``ref`` or untracked.

    Restricted to the default lint roots.  Returns None if git fails
    (not a git checkout, unknown ref) - caller falls back to a full lint.
    """
    def git(*args: str) -> Optional[List[str]]:
        try:
            out = subprocess.run(
                ["git", *args],
                cwd=root,
                capture_output=True,
                text=True,
                timeout=30,
                check=True,
            ).stdout
        except (OSError, subprocess.SubprocessError):
            return None
        return out.splitlines()

    diffed = git("diff", "--name-only", ref)
    if diffed is None:
        return None
    untracked = git("ls-files", "--others", "--exclude-standard") or []
    prefixes = tuple(p + "/" for p in DEFAULT_LINT_PATHS)
    out = sorted(
        {
            rel
            for rel in diffed + untracked
            if rel.endswith(".py")
            and rel.startswith(prefixes)
            and os.path.isfile(os.path.join(root, rel))
        }
    )
    return out


def _print_report(report: Report) -> None:
    for finding in report.new_findings:
        print(f"{finding.location()}: [{finding.rule}] {finding.message}")
        if finding.snippet:
            print(f"    {finding.snippet}")
    summary = (
        f"reprolint v{report.rules_version}: {report.files_checked} files, "
        f"{len(report.new_findings)} new finding(s), "
        f"{len(report.baselined_findings)} baselined, "
        f"{report.suppressed_count} suppressed"
    )
    print(summary)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "explain":
        if len(argv) != 2:
            print("usage: python -m repro.analysis explain <rule-id>",
                  file=sys.stderr)
            return 1
        return _explain(argv[1])

    args = _build_parser().parse_args(argv)

    if args.list_rules:
        load_rules()
        for rule_id in sorted(RULE_REGISTRY):
            print(f"{rule_id}: {RULE_REGISTRY[rule_id].description}")
        for rule_id in sorted(META_RULES):
            print(f"{rule_id} (meta): {META_RULES[rule_id]}")
        return 0

    root = os.path.abspath(args.root) if args.root else find_repo_root()
    baseline_path = args.baseline or os.path.join(root, BASELINE_FILENAME)
    paths = args.paths or None
    cache_path = None if args.no_cache else os.path.join(root, CACHE_FILENAME)

    if args.changed is not None:
        changed = _changed_files(root, args.changed)
        if changed is None:
            print(
                f"warning: could not diff against {args.changed!r}; "
                "linting everything",
                file=sys.stderr,
            )
        elif not changed:
            print(f"reprolint v{RULES_VERSION}: no files changed vs "
                  f"{args.changed}")
            return 0
        else:
            paths = changed
            # A subset lint has a different target list, so it would
            # evict the full-lint cache entry; keep the cache for full
            # runs only.
            cache_path = None

    if args.write_baseline:
        analyzer = Analyzer(root, paths=paths, jobs=args.jobs)
        findings, n_files, _ = analyzer.run()
        baseline = Baseline.from_findings(findings, RULES_VERSION)
        baseline.write(baseline_path)
        print(
            f"wrote {baseline_path} ({len(baseline.entries)} grandfathered "
            f"finding(s) over {n_files} files)"
        )
        return 0

    try:
        report = run_analysis(
            root,
            paths=paths,
            baseline_path=baseline_path,
            cache_path=cache_path,
            jobs=args.jobs,
        )
    except BaselineIntegrityError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.sarif is not None:
        from .sarif import write_sarif

        load_rules()
        write_sarif(
            args.sarif,
            report.new_findings,
            list(RULE_REGISTRY.values()),
            report.rules_version,
        )
    if args.json is not None:
        payload = json.dumps(report.to_dict(), indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
    if args.json != "-":
        _print_report(report)
    return 0 if report.clean else 1
