"""Command-line front end: ``python -m repro.analysis``.

Exit codes:

- ``0`` - no findings beyond the committed baseline;
- ``1`` - new findings (or ``--write-baseline`` failed);
- ``2`` - the baseline file failed its integrity check (hand-edited).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .baseline import BASELINE_FILENAME, Baseline, BaselineIntegrityError
from .core import RULE_REGISTRY, META_RULES, Analyzer, Report, run_analysis
from .rules import RULES_VERSION

__all__ = ["main", "find_repo_root"]


def find_repo_root(start: Optional[str] = None) -> str:
    """Walk up from ``start`` (default cwd) to the dir holding ``src/repro``."""
    here = os.path.abspath(start or os.getcwd())
    probe = here
    while True:
        if os.path.isdir(os.path.join(probe, "src", "repro")):
            return probe
        parent = os.path.dirname(probe)
        if parent == probe:
            return here
        probe = parent


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="reprolint: AST-based invariant checks for this repo",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src, benchmarks)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repo root (default: auto-detected from cwd)",
    )
    parser.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="emit the report as JSON to PATH (or stdout if no PATH)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=f"baseline file (default: <root>/{BASELINE_FILENAME})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the new baseline and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _print_report(report: Report) -> None:
    for finding in report.new_findings:
        print(f"{finding.location()}: [{finding.rule}] {finding.message}")
        if finding.snippet:
            print(f"    {finding.snippet}")
    summary = (
        f"reprolint v{report.rules_version}: {report.files_checked} files, "
        f"{len(report.new_findings)} new finding(s), "
        f"{len(report.baselined_findings)} baselined, "
        f"{report.suppressed_count} suppressed"
    )
    print(summary)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        # Importing rules registers them; Analyzer does so lazily, so
        # force it here for the bare listing.
        from . import rules as _rules  # noqa: F401

        for rule_id in sorted(RULE_REGISTRY):
            print(f"{rule_id}: {RULE_REGISTRY[rule_id].description}")
        for rule_id in sorted(META_RULES):
            print(f"{rule_id} (meta): {META_RULES[rule_id]}")
        return 0

    root = os.path.abspath(args.root) if args.root else find_repo_root()
    baseline_path = args.baseline or os.path.join(root, BASELINE_FILENAME)
    paths = args.paths or None

    if args.write_baseline:
        analyzer = Analyzer(root, paths=paths)
        findings, n_files, _ = analyzer.run()
        baseline = Baseline.from_findings(findings, RULES_VERSION)
        baseline.write(baseline_path)
        print(
            f"wrote {baseline_path} ({len(baseline.entries)} grandfathered "
            f"finding(s) over {n_files} files)"
        )
        return 0

    try:
        report = run_analysis(root, paths=paths, baseline_path=baseline_path)
    except BaselineIntegrityError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.json is not None:
        payload = json.dumps(report.to_dict(), indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
    if args.json != "-":
        _print_report(report)
    return 0 if report.clean else 1
