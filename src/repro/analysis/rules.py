"""The repo-specific reprolint rules.

Each rule encodes one reproducibility contract of the codebase; see
``DESIGN.md`` ("Static analysis & enforced invariants") for the policy
behind each.  Importing this module registers every rule in
:data:`repro.analysis.core.RULE_REGISTRY`.
"""

from __future__ import annotations

import ast
import difflib
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .core import FileContext, Finding, ProjectIndex, Rule, register_rule
from .index import ARRAY_NAMESPACES, NameResolver

__all__ = ["RULES_VERSION"]

#: Bumped whenever a rule is added, removed, or changes what it flags;
#: recorded in baselines, in telemetry run manifests, and in the
#: incremental result cache key.
RULES_VERSION = "2.0"


def _is_numpy(node: ast.AST, resolver: Optional[NameResolver] = None) -> bool:
    # ``xp`` is the backend shim's numpy-compatible namespace
    # (repro.core.backend): every numpy contract these rules police
    # applies unchanged to kernels ported onto it.  With a resolver the
    # name is traced through the module's import table, so a local
    # variable that merely shadows ``np``/``xp`` does not count as the
    # backend; the bare-name fallback survives only for files absent
    # from the semantic index.
    if resolver is not None:
        return resolver.resolve_expr(node) in ARRAY_NAMESPACES
    return isinstance(node, ast.Name) and node.id in ("np", "numpy", "xp")


def _in_tests(ctx: FileContext) -> bool:
    return ctx.relpath.startswith("tests/") or "/tests/" in ctx.relpath


# ----------------------------------------------------------------------
@register_rule
class NoScatterAddAt(Rule):
    """``np.add.at`` is banned in favour of the shared bincount helpers.

    ``repro.core.scatter`` provides bit-identical, order-preserving
    replacements (``scatter_add`` and friends) that are both faster and
    a single audited implementation of the deterministic-scatter
    contract.  Reference implementations are exempt: the equivalence
    tests in ``tests/`` and the scatter micro-benchmark *must* call
    ``np.add.at`` to compare against.
    """

    id = "no-scatter-add-at"
    description = (
        "use repro.core.scatter helpers instead of np.add.at/np.subtract.at"
    )
    cacheable = True

    _UFUNCS = ("add", "subtract")
    _ALLOWED_FILES = (
        "benchmarks/bench_scatter.py",
        # Carries the seed density pipeline verbatim as its baseline.
        "benchmarks/bench_density.py",
    )

    def check(self, ctx: FileContext, index: ProjectIndex) -> Iterable[Finding]:
        if _in_tests(ctx) or ctx.relpath in self._ALLOWED_FILES:
            return
        resolver = index.semantic.resolver(ctx.relpath)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute) or node.attr != "at":
                continue
            inner = node.value
            if (
                isinstance(inner, ast.Attribute)
                and inner.attr in self._UFUNCS
                and _is_numpy(inner.value, resolver)
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"np.{inner.attr}.at is banned; use the deterministic "
                    "bincount helpers in repro.core.scatter (scatter_add, "
                    "scatter_add_2d, scatter_accumulate, ...)",
                )


# ----------------------------------------------------------------------
@register_rule
class NoSilentNanFix(Rule):
    """NaN laundering outside the numerical guard is banned.

    ``np.nan_to_num`` and ``np.errstate(invalid="ignore")`` silently
    convert numerical faults into plausible-looking numbers; the guarded
    runtime (``repro/runtime/guard.py``) is the one place allowed to do
    that, because it quarantines and reports what it fixed.  Anywhere
    else needs an inline suppression explaining why the NaNs are benign.
    """

    id = "no-silent-nanfix"
    description = (
        "np.nan_to_num / np.errstate(invalid='ignore') outside runtime/guard.py"
    )
    cacheable = True

    _ALLOWED_FILES = ("src/repro/runtime/guard.py",)

    def check(self, ctx: FileContext, index: ProjectIndex) -> Iterable[Finding]:
        if ctx.relpath in self._ALLOWED_FILES or _in_tests(ctx):
            return
        resolver = index.semantic.resolver(ctx.relpath)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "nan_to_num"
                and _is_numpy(func.value, resolver)
            ):
                yield self.finding(
                    ctx,
                    node,
                    "np.nan_to_num silently launders non-finite values; route "
                    "them through the numerical guard (repro.runtime.guard) "
                    "instead, or suppress with a reason",
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "errstate"
                and _is_numpy(func.value, resolver)
            ):
                for kw in node.keywords:
                    if (
                        kw.arg == "invalid"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value == "ignore"
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            "np.errstate(invalid='ignore') hides invalid-value "
                            "faults; let the numerical guard see them, or "
                            "suppress with a reason",
                        )
                        break


# ----------------------------------------------------------------------
# The syntactic SeededRng rule lived here through RULES_VERSION 1.x; its
# checks moved into flowrules.DeterminismTaint ("determinism-taint"),
# which additionally traces tainted values into telemetry sinks.


# ----------------------------------------------------------------------
@register_rule
class TelemetryKindLiteral(Rule):
    """Event-kind literals must belong to the telemetry vocabulary.

    Any ``.event("kind", ...)`` call whose kind is a string literal is
    checked against the ``EVENT_KINDS`` tuple extracted statically from
    ``src/repro/telemetry/events.py``, so typos fail lint instead of
    raising mid-run.  The diagnostic mirrors
    :func:`repro.telemetry.events.kind_error_message`.
    """

    id = "telemetry-kind-literal"
    description = "event-kind literals must be members of EVENT_KINDS"

    def check(self, ctx: FileContext, index: ProjectIndex) -> Iterable[Finding]:
        kinds = index.event_kinds
        if not kinds or _in_tests(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "event"):
                continue
            kind_node: Optional[ast.expr] = None
            if node.args:
                kind_node = node.args[0]
            else:
                for kw in node.keywords:
                    if kw.arg == "kind":
                        kind_node = kw.value
                        break
            if not (
                isinstance(kind_node, ast.Constant)
                and isinstance(kind_node.value, str)
            ):
                continue
            kind = kind_node.value
            if kind in kinds:
                continue
            message = f"unknown event kind {kind!r}; expected one of {kinds}"
            close = difflib.get_close_matches(kind, kinds, n=1, cutoff=0.6)
            if close:
                message += f" (did you mean {close[0]!r}?)"
            yield self.finding(ctx, kind_node, message)


# ----------------------------------------------------------------------
@register_rule
class CheckpointCompleteness(Rule):
    """State-provider classes must round-trip everything they mutate.

    A class exposing ``get_state``/``set_state`` participates in
    checkpoint/restart; any attribute it mutates outside ``__init__``
    (i.e. trajectory state) must appear among the keys of the dict
    ``get_state`` returns (matched with leading underscores stripped),
    or a checkpoint-resume will silently diverge from an uninterrupted
    run.  Derived caches that are rebuilt on resume are suppressed
    inline with a reason, on any line that mutates them.
    """

    id = "checkpoint-completeness"
    description = "attributes mutated by state providers must be in get_state"
    cacheable = True

    _EXCLUDED_METHODS = {"__init__", "get_state", "set_state"}

    def check(self, ctx: FileContext, index: ProjectIndex) -> Iterable[Finding]:
        for node in ctx.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                sub.name: sub
                for sub in node.body
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if "get_state" not in methods or "set_state" not in methods:
                continue
            keys = self._state_keys(methods["get_state"])
            if keys is None:
                continue  # get_state too dynamic to analyse statically
            stripped_keys = {k.lstrip("_") for k in keys}
            mutated = self._mutated_attrs(methods)
            for attr in sorted(mutated):
                if attr in keys or attr.lstrip("_") in stripped_keys:
                    continue
                lines = mutated[attr]
                if any(ctx.is_suppressed(line, self.id) for line, _ in lines):
                    continue
                line, method = lines[0]
                yield Finding(
                    rule=self.id,
                    path=ctx.relpath,
                    line=line,
                    col=0,
                    message=(
                        f"{node.name}.{attr} is mutated in {method}() but "
                        "missing from the get_state dict; checkpoint/restart "
                        "will not round-trip it (suppress if it is a derived "
                        "cache rebuilt on resume)"
                    ),
                    snippet=ctx.line_text(line),
                )

    # ------------------------------------------------------------------
    def _state_keys(self, get_state: ast.FunctionDef) -> Optional[Set[str]]:
        """String keys of the dict(s) returned by ``get_state``."""
        keys: Set[str] = set()
        saw_return = False
        for node in ast.walk(get_state):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            saw_return = True
            value = node.value
            if isinstance(value, ast.Dict):
                for key in value.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        keys.add(key.value)
                    else:
                        return None  # computed key: bail out
            elif (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "dict"
            ):
                for kw in value.keywords:
                    if kw.arg is None:
                        return None
                    keys.add(kw.arg)
            else:
                return None
        return keys if saw_return else None

    def _mutated_attrs(
        self, methods: Dict[str, ast.FunctionDef]
    ) -> Dict[str, List[Tuple[int, str]]]:
        """``self.X`` mutation sites outside the excluded methods."""
        out: Dict[str, List[Tuple[int, str]]] = {}

        def record(target: ast.expr, line: int, method: str) -> None:
            # Unwrap subscript mutations: self.x[i] = ... mutates self.x.
            while isinstance(target, ast.Subscript):
                target = target.value
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                out.setdefault(target.attr, []).append((line, method))

        for name, fn in methods.items():
            if name in self._EXCLUDED_METHODS:
                continue
            for node in ast.walk(fn):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        record(target, node.lineno, name)
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    record(node.target, node.lineno, name)
        for sites in out.values():
            sites.sort()
        return out


# ----------------------------------------------------------------------
@register_rule
class BackwardPair(Rule):
    """Forward kernels must declare their adjoint and gradcheck test.

    Module-level functions named ``*_forward*`` under ``core/`` or
    ``sta/`` must carry the ``@differentiable(backward=..., gradcheck=
    ...)`` decorator (:mod:`repro.contracts`) with both arguments as
    string literals.  Whether those strings still *resolve* - to a live
    function and a test that exercises the kernel - is checked by the
    project-scope ``contract-closure`` rule on the semantic index.
    Forward kernels that genuinely have no adjoint (e.g. exact hard-max
    siblings) are suppressed inline with a reason.
    """

    id = "backward-pair"
    description = (
        "forward kernels in core//sta/ must declare backward + gradcheck"
    )
    cacheable = True

    _KERNEL_DIRS = ("src/repro/core/", "src/repro/sta/")

    def check(self, ctx: FileContext, index: ProjectIndex) -> Iterable[Finding]:
        in_kernel_dir = ctx.relpath.startswith(self._KERNEL_DIRS)
        for node in ctx.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            contract = self._differentiable_contract(node)
            if contract is None:
                if in_kernel_dir and "forward" in node.name.split("_"):
                    yield self.finding(
                        ctx,
                        node,
                        f"forward kernel {node.name}() lacks the "
                        "@differentiable(backward=..., gradcheck=...) "
                        "contract decorator (repro.contracts)",
                    )
                continue
            backward, gradcheck, deco = contract
            if backward is None or gradcheck is None:
                yield self.finding(
                    ctx,
                    deco,
                    f"@differentiable on {node.name}() must pass both "
                    "backward= and gradcheck= as string literals",
                )

    # ------------------------------------------------------------------
    @staticmethod
    def _differentiable_contract(node):
        """(backward, gradcheck, decorator-node) if decorated, else None."""
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = None
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            if name != "differentiable":
                continue
            backward = gradcheck = None
            if isinstance(deco, ast.Call):
                for kw in deco.keywords:
                    value = kw.value
                    if not (
                        isinstance(value, ast.Constant)
                        and isinstance(value.value, str)
                    ):
                        # Implicitly concatenated string literals parse as
                        # a single Constant; anything else is unresolvable.
                        continue
                    if kw.arg == "backward":
                        backward = value.value
                    elif kw.arg == "gradcheck":
                        gradcheck = value.value
            return backward, gradcheck, deco
        return None


# ----------------------------------------------------------------------
@register_rule
class BackendShimOnly(Rule):
    """Ported kernel modules reach arrays only through the backend shim.

    The hot kernels (density, wirelength, smoothing, scatter, the FFT
    plans) were ported to the ``xp`` namespace of
    :mod:`repro.core.backend` so the same source runs on NumPy, CuPy or
    torch.  A direct ``import numpy`` / ``scipy.fft`` call inside one of
    them silently pins that kernel back to the host CPU - it keeps
    working under the default backend, which is exactly why it needs a
    lint rule rather than a test.  FFT entry points live on the backend
    object (``get_backend().rfft`` etc.); everything else goes through
    ``xp``.
    """

    id = "backend-shim-only"
    description = (
        "kernel modules must use repro.core.backend (xp / get_backend), "
        "never numpy/scipy directly"
    )
    cacheable = True

    #: The modules ported to the shim.  Extend this list as more kernels
    #: are converted; the rule intentionally does NOT cover the rest of
    #: the codebase, where direct numpy use is normal and correct.
    _KERNEL_MODULES = (
        "src/repro/core/fftplan.py",
        "src/repro/core/scatter.py",
        "src/repro/core/smoothing.py",
        "src/repro/place/density.py",
        "src/repro/place/wirelength.py",
    )
    _FORBIDDEN_ROOTS = ("numpy", "scipy")
    _FORBIDDEN_NAMES = ("np", "numpy", "scipy")

    def check(self, ctx: FileContext, index: ProjectIndex) -> Iterable[Finding]:
        if ctx.relpath not in self._KERNEL_MODULES:
            return
        resolver = index.semantic.resolver(ctx.relpath)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] in self._FORBIDDEN_ROOTS:
                        yield self.finding(
                            ctx,
                            node,
                            f"direct 'import {alias.name}' in a ported "
                            "kernel module; use the xp namespace / "
                            "backend methods from repro.core.backend",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module.split(".")[0] in self._FORBIDDEN_ROOTS:
                    yield self.finding(
                        ctx,
                        node,
                        f"direct 'from {module} import ...' in a ported "
                        "kernel module; use the xp namespace / backend "
                        "methods from repro.core.backend",
                    )
            elif isinstance(node, ast.Attribute):
                if not isinstance(node.value, ast.Name):
                    continue
                if resolver is not None:
                    # Resolve through the import index: a local variable
                    # shadowing ``np`` is not the numpy module.
                    resolved = resolver.resolve(node.value)
                    hit = (
                        resolved is not None
                        and resolved.split(".")[0] in self._FORBIDDEN_ROOTS
                    )
                else:
                    hit = node.value.id in self._FORBIDDEN_NAMES
                if hit:
                    yield self.finding(
                        ctx,
                        node,
                        f"'{node.value.id}.{node.attr}' bypasses the "
                        "backend shim in a ported kernel module; spell "
                        f"it 'xp.{node.attr}'",
                    )


# ----------------------------------------------------------------------
@register_rule
class SupervisedPoolOnly(Rule):
    """Process pools must go through the supervised execution layer.

    A bare ``ProcessPoolExecutor`` has no crash isolation: one SIGKILL'd
    worker breaks the whole pool and discards every completed result.
    ``repro.harness.supervisor`` owns process fan-out (task timeouts,
    bounded deterministic retry, quarantine, partial-result salvage) and
    is the only module allowed to construct pools - it also hosts the
    legacy unsupervised executor kept as the byte-identity reference.
    Tests are exempt (they exercise pool behaviour directly).
    """

    id = "supervised-pool-only"
    description = (
        "construct process pools only in repro.harness.supervisor "
        "(use run_tasks/run_supervised elsewhere)"
    )
    cacheable = True

    _ALLOWED_FILES = ("src/repro/harness/supervisor.py",)

    def check(self, ctx: FileContext, index: ProjectIndex) -> Iterable[Finding]:
        if _in_tests(ctx) or ctx.relpath in self._ALLOWED_FILES:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name == "ProcessPoolExecutor":
                yield self.finding(
                    ctx,
                    node,
                    "bare ProcessPoolExecutor construction is banned "
                    "outside repro.harness.supervisor; fan out through "
                    "repro.harness.parallel.run_tasks (supervised: crash "
                    "isolation, retry, quarantine, salvage)",
                )
