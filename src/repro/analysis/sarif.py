"""SARIF 2.1.0 serialisation of a reprolint report.

SARIF (Static Analysis Results Interchange Format) is the OASIS
standard CI systems ingest for code-scanning annotations; GitHub's
code-scanning upload and most SARIF viewers accept exactly the subset
emitted here: one ``run`` with a ``tool.driver`` describing every
registered rule and one ``result`` per *new* finding (baselined
findings are omitted - the baseline is the repo's accepted debt, and
re-annotating it on every PR is noise).

The output is deterministic: rules sorted by id, results in the
analyzer's (path, line, col, rule) order, ``sort_keys`` JSON.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .core import Finding, Rule

__all__ = ["sarif_report", "write_sarif"]

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def sarif_report(
    findings: Sequence[Finding],
    rules: Sequence[Rule],
    rules_version: str,
) -> Dict[str, object]:
    """The SARIF 2.1.0 log object for ``findings``."""
    rule_objs: List[Dict[str, object]] = []
    rule_index: Dict[str, int] = {}
    for rule in sorted(rules, key=lambda r: r.id):
        rule_index[rule.id] = len(rule_objs)
        rule_objs.append(
            {
                "id": rule.id,
                "shortDescription": {"text": rule.description},
                "fullDescription": {"text": rule.explain()},
                "defaultConfiguration": {"level": "error"},
            }
        )
    results: List[Dict[str, object]] = []
    for finding in findings:
        result: Dict[str, object] = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        results.append(result)
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "version": rules_version,
                        "informationUri": (
                            "https://example.invalid/repro/DESIGN.md"
                        ),
                        "rules": rule_objs,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"description": {"text": "repository root"}}
                },
                "results": results,
            }
        ],
    }


def write_sarif(
    path: str,
    findings: Sequence[Finding],
    rules: Sequence[Rule],
    rules_version: str,
) -> None:
    report = sarif_report(findings, rules, rules_version)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
