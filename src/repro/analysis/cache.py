"""Incremental result cache for the reprolint analyzer.

Lint output is a pure function of (rule set, rule versions, file
contents, lint targets), so it caches perfectly.  The cache keys on two
levels:

- a **project signature** - sha256 over ``RULES_VERSION``, the sorted
  rule ids, the sorted ``(relpath, content-hash)`` pairs of every
  indexed file, and the sorted lint-target list.  When it matches, the
  stored *final* result (post-suppression findings, file count,
  suppression count) is returned verbatim: the warm path hashes file
  bytes and parses **nothing**, which is where the >=3x warm/cold
  speedup gated in ``benchmarks/bench_reprolint.py`` comes from, and
  why warm findings are byte-identical to cold by construction.
- **per-file entries** - for each lint target, its content hash, the
  raw (pre-suppression) findings of every *cacheable* file-scope rule,
  and the suppressions its check phase consumed.  On a partial hit
  (some files changed) the analyzer still parses everything - the
  semantic index needs every AST - but re-runs cacheable file rules
  only on changed files.  Rules whose output depends on *other* files
  (``telemetry-kind-literal`` reads the event vocabulary from
  ``telemetry/events.py``) are marked non-cacheable and always re-run,
  as are the project-scope families.

The cache lives at ``<root>/.reprolint-cache.json`` (gitignored) and is
OFF by default in :func:`repro.analysis.core.run_analysis` - the
telemetry provenance hook runs inside placements and must never write
into the tree - and ON in the CLI (``--no-cache`` opts out).  A stale or
corrupt cache file degrades to a cold run, never to an error.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["CACHE_FILENAME", "ResultCache", "hash_file", "project_signature"]

#: Conventional cache location at the repo root (gitignored).
CACHE_FILENAME = ".reprolint-cache.json"

_FORMAT_VERSION = 1


def hash_file(path: str) -> Optional[str]:
    """sha256 of a file's bytes, or None if unreadable."""
    try:
        with open(path, "rb") as handle:
            return hashlib.sha256(handle.read()).hexdigest()
    except OSError:
        return None


def project_signature(
    rules_version: str,
    rule_ids: Sequence[str],
    file_hashes: Dict[str, Optional[str]],
    targets: Sequence[str],
) -> str:
    """The cache key of one whole-project analyzer configuration."""
    canonical = json.dumps(
        {
            "format": _FORMAT_VERSION,
            "rules_version": rules_version,
            "rules": sorted(rule_ids),
            "files": sorted(
                (rel, digest or "unreadable")
                for rel, digest in file_hashes.items()
            ),
            "targets": sorted(targets),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """On-disk memo of one analyzer run; see the module docstring."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.project_sig: Optional[str] = None
        #: Final result under ``project_sig``: (finding dicts, n_files,
        #: suppressed count).
        self.full: Optional[Dict[str, object]] = None
        #: relpath -> {"hash", "raw": {rule_id: [finding dicts]},
        #:             "used": [[line, rule_id], ...]}
        self.files: Dict[str, Dict[str, object]] = {}
        self._rules_version: Optional[str] = None

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str, rules_version: str) -> "ResultCache":
        """Load the cache at ``path``; any problem yields an empty one."""
        cache = cls(path)
        cache._rules_version = rules_version
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError, ValueError):
            return cache
        if not isinstance(data, dict):
            return cache
        if data.get("format") != _FORMAT_VERSION:
            return cache
        if data.get("rules_version") != rules_version:
            # A rule-set change invalidates everything, including the
            # per-file raw findings.
            return cache
        cache.project_sig = data.get("project_sig")
        full = data.get("full")
        cache.full = full if isinstance(full, dict) else None
        files = data.get("files")
        if isinstance(files, dict):
            cache.files = {
                rel: entry
                for rel, entry in files.items()
                if isinstance(entry, dict) and "hash" in entry
            }
        return cache

    def write(self) -> None:
        """Persist; failures are silent (a cache must never break lint)."""
        payload = {
            "format": _FORMAT_VERSION,
            "rules_version": self._rules_version,
            "project_sig": self.project_sig,
            "full": self.full,
            "files": self.files,
        }
        try:
            tmp = self.path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, self.path)
        except OSError:
            pass

    # ------------------------------------------------------------------
    def full_result(self, sig: str) -> Optional[Dict[str, object]]:
        """The stored final result if the project signature matches."""
        if sig == self.project_sig and isinstance(self.full, dict):
            return self.full
        return None

    def file_entry(
        self, relpath: str, content_hash: Optional[str]
    ) -> Optional[Dict[str, object]]:
        """The per-file entry if the file is byte-identical to cached."""
        if content_hash is None:
            return None
        entry = self.files.get(relpath)
        if entry is not None and entry.get("hash") == content_hash:
            return entry
        return None

    def store(
        self,
        sig: str,
        full: Dict[str, object],
        files: Dict[str, Dict[str, object]],
    ) -> None:
        self.project_sig = sig
        self.full = full
        self.files = files
