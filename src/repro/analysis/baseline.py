"""Baseline files: grandfathered findings with a tamper-evident hash.

A baseline lets reprolint be adopted on a codebase with pre-existing
findings: ``--write-baseline`` records every current finding as a
*fingerprint*, and later runs only fail on findings **not** in the
baseline.  Fingerprints are location-fuzzy on purpose - ``rule`` +
``path`` + a hash of the offending source line + an occurrence counter -
so unrelated edits moving a grandfathered line do not break CI, while a
*new* violation (different line content, or one more occurrence of the
same content) always does.

The file carries an integrity hash over its canonical content.  Editing
the baseline by hand (e.g. deleting entries to "shrink" it, or adding
entries to smuggle a new finding past CI) invalidates the hash and makes
every subsequent run fail with :class:`BaselineIntegrityError` (exit
code 2) until the baseline is regenerated explicitly.  That is the CI
protection against silent baseline edits: the only way to change the
file is ``--write-baseline``, which shows up in review as a whole-file
regeneration.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

from .core import Finding

__all__ = [
    "BASELINE_FILENAME",
    "Baseline",
    "BaselineIntegrityError",
    "fingerprint",
    "fingerprints",
]

#: Conventional baseline location at the repo root.
BASELINE_FILENAME = "reprolint.baseline.json"

_FORMAT_VERSION = 1


class BaselineIntegrityError(RuntimeError):
    """The baseline file was edited outside ``--write-baseline``."""


def fingerprint(finding: Finding, occurrence: int) -> str:
    """Stable identity of one finding, independent of line numbers."""
    snippet_sha = hashlib.sha256(finding.snippet.encode("utf-8")).hexdigest()[:16]
    return f"{finding.rule}:{finding.path}:{snippet_sha}:{occurrence}"


def fingerprints(findings: Sequence[Finding]) -> List[str]:
    """Fingerprints for ``findings``, numbering duplicates in file order."""
    seen: Dict[Tuple[str, str, str], int] = {}
    out: List[str] = []
    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule)):
        snippet_sha = hashlib.sha256(finding.snippet.encode("utf-8")).hexdigest()[:16]
        key = (finding.rule, finding.path, snippet_sha)
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        out.append(f"{finding.rule}:{finding.path}:{snippet_sha}:{occurrence}")
    return out


def _integrity_hash(rules_version: str, entries: Sequence[str]) -> str:
    canonical = json.dumps(
        {
            "version": _FORMAT_VERSION,
            "rules_version": rules_version,
            "entries": sorted(entries),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class Baseline:
    """The set of grandfathered finding fingerprints."""

    def __init__(
        self,
        entries: Sequence[str],
        rules_version: str = "",
        integrity_hash: Optional[str] = None,
    ) -> None:
        self.entries = list(entries)
        self.rules_version = rules_version
        self.integrity_hash = integrity_hash

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "Baseline":
        return cls([], rules_version="", integrity_hash=None)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Load and verify a baseline file; missing file -> empty."""
        if not os.path.exists(path):
            return cls.empty()
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise BaselineIntegrityError(f"unreadable baseline {path}: {exc}")
        entries = data.get("entries", [])
        rules_version = data.get("rules_version", "")
        stored = data.get("integrity", "")
        expected = _integrity_hash(rules_version, entries)
        if stored != expected:
            raise BaselineIntegrityError(
                f"baseline {path} failed its integrity check; it was edited "
                "by hand. Regenerate it with "
                "'python -m repro.analysis --write-baseline' and commit the "
                "result."
            )
        return cls(entries, rules_version=rules_version, integrity_hash=stored)

    # ------------------------------------------------------------------
    @classmethod
    def from_findings(
        cls, findings: Sequence[Finding], rules_version: str
    ) -> "Baseline":
        entries = fingerprints(findings)
        return cls(
            entries,
            rules_version=rules_version,
            integrity_hash=_integrity_hash(rules_version, entries),
        )

    def write(self, path: str) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "rules_version": self.rules_version,
            "entries": sorted(self.entries),
            "integrity": _integrity_hash(self.rules_version, self.entries),
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        self.integrity_hash = payload["integrity"]

    # ------------------------------------------------------------------
    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Partition into (new, grandfathered) against this baseline."""
        if not self.entries:
            return list(findings), []
        allowed = set(self.entries)
        ordered = sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
        new: List[Finding] = []
        grandfathered: List[Finding] = []
        for finding, fp in zip(ordered, fingerprints(ordered)):
            (grandfathered if fp in allowed else new).append(finding)
        return new, grandfathered
