"""Framework core of reprolint: findings, suppressions, rules, analyzer.

The pieces are deliberately small and dependency-free (stdlib ``ast``
only):

- :class:`Finding` - one rule violation at a file/line;
- :class:`FileContext` - a parsed source file plus its inline
  suppression comments (``# reprolint: allow[rule-id] reason``);
- :class:`ProjectIndex` - repo-wide lookup tables (module functions,
  test node ids, the telemetry event-kind vocabulary) plus the
  :class:`repro.analysis.index.SemanticIndex` (import graph, symbol
  tables, call graph) that the whole-program rules run on;
- :class:`Rule` / :data:`RULE_REGISTRY` - the rule plug-in surface.
  Rules declare a ``scope``: ``"file"`` rules run per lint target,
  ``"project"`` rules run once over the semantic index.  File rules
  whose output depends only on their own file set ``cacheable = True``
  and participate in the incremental result cache;
- :class:`Analyzer` - hashes and (on cache miss) parses the lint
  targets, applies every registered rule - optionally fanning file
  analysis out over supervised worker processes - filters suppressed
  findings, and emits the meta findings (``bad-suppression``,
  ``unused-suppression``);
- :class:`Report` - the result bundle the CLI and the telemetry
  provenance hook consume.
"""

from __future__ import annotations

import ast
import inspect
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "Suppression",
    "FileContext",
    "ProjectIndex",
    "Rule",
    "RULE_REGISTRY",
    "register_rule",
    "Analyzer",
    "Report",
    "run_analysis",
    "DEFAULT_LINT_PATHS",
]

#: Directories scanned when the CLI is invoked without explicit paths.
DEFAULT_LINT_PATHS = ("src", "benchmarks")

#: Directories always parsed into the project index (cross-file rules
#: resolve backward kernels and gradcheck tests against these even when
#: they are not lint targets).
INDEX_PATHS = ("src", "tests", "benchmarks")

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "build", "dist"}

#: Matches ``reprolint: allow[<rule-id>] <reason>`` markers placed in a
#: comment on the offending line or on the comment line directly above.
_SUPPRESSION_RE = re.compile(
    r"#\s*reprolint:\s*allow\[(?P<rule>[A-Za-z0-9_-]+)\]\s*(?P<reason>.*)$"
)

#: Meta rules emitted by the analyzer itself; not suppressible.
META_RULES = {
    "bad-suppression": "suppression comment is malformed or names an unknown rule",
    "unused-suppression": "suppression comment matched no finding",
}


@dataclass(frozen=True)
class Finding:
    """One rule violation anchored at a source location."""

    rule: str
    path: str  # repo-relative POSIX path
    line: int
    col: int
    message: str
    snippet: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Finding":
        return cls(
            rule=str(data["rule"]),
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data["col"]),
            message=str(data["message"]),
            snippet=str(data.get("snippet", "")),
        )


@dataclass
class Suppression:
    """One parsed ``# reprolint: allow[...]`` comment."""

    line: int  # line the comment sits on (1-based)
    target_line: int  # line the suppression applies to
    rule: str
    reason: str
    used: bool = False


class FileContext:
    """A source file parsed once: AST, lines, and suppressions."""

    def __init__(self, path: str, relpath: str, source: str) -> None:
        self.path = path
        self.relpath = relpath.replace(os.sep, "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=relpath)
        self.suppressions: List[Suppression] = []
        self.parse_errors: List[str] = []
        self._scan_suppressions()

    # ------------------------------------------------------------------
    def _scan_suppressions(self) -> None:
        # Tokenize so the marker is only honoured in real comments, never
        # inside string literals or docstrings that merely mention it.
        try:
            comments = [
                (tok.start[0], tok.start[1], tok.string)
                for tok in tokenize.generate_tokens(io.StringIO(self.source).readline)
                if tok.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, IndentationError):
            comments = []
        for lineno, col, text in comments:
            match = _SUPPRESSION_RE.search(text)
            if match is None:
                continue
            comment_only = self.lines[lineno - 1][:col].strip() == ""
            target = lineno
            if comment_only:
                # A standalone suppression comment covers the next
                # non-comment, non-blank line.
                for later in range(lineno, len(self.lines)):
                    candidate = self.lines[later].strip()
                    if candidate and not candidate.startswith("#"):
                        target = later + 1
                        break
            self.suppressions.append(
                Suppression(
                    line=lineno,
                    target_line=target,
                    rule=match.group("rule"),
                    reason=match.group("reason").strip(),
                )
            )

    # ------------------------------------------------------------------
    def suppression_for(self, line: int, rule: str) -> Optional[Suppression]:
        """The suppression covering ``rule`` at ``line``, if any."""
        for sup in self.suppressions:
            if sup.target_line == line and sup.rule == rule:
                return sup
        return None

    def is_suppressed(self, line: int, rule: str) -> bool:
        """Check-and-mark: True (and marks used) if covered."""
        sup = self.suppression_for(line, rule)
        if sup is not None and sup.reason:
            sup.used = True
            return True
        return False

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def module_name(self) -> Optional[str]:
        """Dotted module name for files under ``src/`` (else None)."""
        rel = self.relpath
        if not rel.startswith("src/") or not rel.endswith(".py"):
            return None
        parts = rel[len("src/") : -len(".py")].split("/")
        if parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)


class ProjectIndex:
    """Repo-wide lookup tables for cross-file rules."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.files: Dict[str, FileContext] = {}
        self._functions: Optional[Set[str]] = None
        self._event_kinds: Optional[Tuple[str, ...]] = None
        self._semantic = None

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, root: str) -> "ProjectIndex":
        index = cls(root)
        for rel in iter_python_files(root, INDEX_PATHS):
            index.add_file(rel)
        return index

    def add_file(self, relpath: str) -> Optional[FileContext]:
        relpath = relpath.replace(os.sep, "/")
        if relpath in self.files:
            return self.files[relpath]
        path = os.path.join(self.root, relpath)
        try:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
            ctx = FileContext(path, relpath, source)
        except (OSError, SyntaxError, ValueError):
            return None
        self.files[relpath] = ctx
        self._functions = None
        self._semantic = None
        return ctx

    # ------------------------------------------------------------------
    @property
    def semantic(self):
        """The two-pass :class:`~repro.analysis.index.SemanticIndex`.

        Built lazily over every parsed file and invalidated when one is
        added, so rules always resolve names against the full project.
        """
        if self._semantic is None:
            from .index import SemanticIndex

            self._semantic = SemanticIndex.build(self.files)
        return self._semantic

    # ------------------------------------------------------------------
    @property
    def functions(self) -> Set[str]:
        """Dotted names of every function/method under ``src/``."""
        if self._functions is None:
            names: Set[str] = set()
            for ctx in self.files.values():
                module = ctx.module_name()
                if module is None:
                    continue
                for qualname in _iter_qualnames(ctx.tree):
                    names.add(f"{module}.{qualname}")
            self._functions = names
        return self._functions

    def has_function(self, dotted: str) -> bool:
        return dotted in self.functions

    # ------------------------------------------------------------------
    def has_test(self, node_id: str) -> bool:
        """True if a pytest node id (``file::Class::test``) resolves."""
        parts = node_id.split("::")
        relpath = parts[0].replace(os.sep, "/")
        ctx = self.files.get(relpath) or self.add_file(relpath)
        if ctx is None:
            return False
        if len(parts) == 1:
            return True
        qualname = ".".join(parts[1:])
        return qualname in set(_iter_qualnames(ctx.tree))

    # ------------------------------------------------------------------
    @property
    def event_kinds(self) -> Tuple[str, ...]:
        """The telemetry event vocabulary, extracted statically."""
        if self._event_kinds is None:
            kinds: Tuple[str, ...] = ()
            ctx = self.files.get("src/repro/telemetry/events.py") or self.add_file(
                "src/repro/telemetry/events.py"
            )
            if ctx is not None:
                for node in ast.walk(ctx.tree):
                    if not isinstance(node, ast.Assign):
                        continue
                    targets = [
                        t.id for t in node.targets if isinstance(t, ast.Name)
                    ]
                    if "EVENT_KINDS" not in targets:
                        continue
                    if isinstance(node.value, (ast.Tuple, ast.List)):
                        kinds = tuple(
                            elt.value
                            for elt in node.value.elts
                            if isinstance(elt, ast.Constant)
                            and isinstance(elt.value, str)
                        )
            self._event_kinds = kinds
        return self._event_kinds


def _iter_qualnames(tree: ast.Module) -> Iterable[str]:
    """Qualified names of defs: top-level functions, classes, methods."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name
        elif isinstance(node, ast.ClassDef):
            yield node.name
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield f"{node.name}.{sub.name}"


# ----------------------------------------------------------------------
class Rule:
    """Base class for reprolint rules.

    Subclasses set :attr:`id`/:attr:`description` and implement
    :meth:`check` (file scope) or :meth:`check_project` (project scope)
    yielding raw findings; the analyzer applies inline suppressions
    afterwards (rules needing finer-grained suppression logic, e.g. over
    several candidate lines, may consult ``ctx.is_suppressed`` themselves
    and emit nothing).

    ``scope = "file"`` rules run once per lint target; ``"project"``
    rules run once per analysis over the full semantic index and may
    anchor findings in any indexed file.  A file rule whose findings
    depend only on its own file's content sets ``cacheable = True`` and
    is skipped on warm incremental runs; rules that read other files
    through the index (event vocabularies, symbol resolution) must leave
    it False.
    """

    id: str = ""
    description: str = ""
    scope: str = "file"
    cacheable: bool = False

    def check(self, ctx: FileContext, index: ProjectIndex) -> Iterable[Finding]:
        raise NotImplementedError

    def check_project(self, index: ProjectIndex) -> Iterable[Finding]:
        raise NotImplementedError

    def explain(self) -> str:
        """Long-form policy text for ``reprolint explain <rule-id>``."""
        doc = inspect.getdoc(type(self))
        return doc or self.description

    # Helper for subclasses.
    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.id,
            path=ctx.relpath,
            line=line,
            col=col,
            message=message,
            snippet=ctx.line_text(line),
        )


#: ``rule id -> Rule instance``; populated by :func:`register_rule`.
RULE_REGISTRY: Dict[str, Rule] = {}


def register_rule(cls):
    """Class decorator adding a rule (instantiated) to the registry."""
    instance = cls()
    if not instance.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if instance.id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {instance.id!r}")
    RULE_REGISTRY[instance.id] = instance
    return cls


def load_rules() -> None:
    """Import every rule module, populating :data:`RULE_REGISTRY`."""
    from . import rules as _rules  # noqa: F401
    from . import flowrules as _flowrules  # noqa: F401


# ----------------------------------------------------------------------
def iter_python_files(root: str, paths: Sequence[str]) -> List[str]:
    """Repo-relative ``.py`` files under ``paths`` (sorted, deduped)."""
    out: Set[str] = set()
    for target in paths:
        full = os.path.join(root, target)
        if os.path.isfile(full) and full.endswith(".py"):
            out.add(os.path.relpath(full, root))
            continue
        for dirpath, dirnames, filenames in os.walk(full):
            dirnames[:] = sorted(
                d for d in dirnames if d not in _SKIP_DIRS and not d.startswith(".")
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    out.add(os.path.relpath(os.path.join(dirpath, name), root))
    return sorted(rel.replace(os.sep, "/") for rel in out)


@dataclass
class Report:
    """Outcome of one analyzer run."""

    root: str
    rules_version: str
    files_checked: int
    new_findings: List[Finding] = field(default_factory=list)
    baselined_findings: List[Finding] = field(default_factory=list)
    suppressed_count: int = 0
    baseline_hash: Optional[str] = None

    @property
    def clean(self) -> bool:
        return not self.new_findings

    def to_dict(self) -> Dict[str, object]:
        return {
            "rules_version": self.rules_version,
            "files_checked": self.files_checked,
            "clean": self.clean,
            "new_findings": [f.to_dict() for f in self.new_findings],
            "baselined_findings": [f.to_dict() for f in self.baselined_findings],
            "suppressed_count": self.suppressed_count,
            "baseline_hash": self.baseline_hash,
        }


def _analyze_shard(args: Tuple[str, Tuple[str, ...]]):
    """Worker entrypoint for ``--jobs`` fan-out: lint one file shard.

    Runs in a spawned process (via
    :func:`repro.harness.supervisor.supervised_map`), so it rebuilds the
    project index from disk and returns plain JSON-able data: per file,
    the raw pre-suppression findings of every file-scope rule plus the
    suppressions consumed during the check phase (the parent replays the
    marks into its own contexts - worker state dies with the worker).
    """
    root, rels = args
    analyzer = Analyzer(root)
    index = analyzer.index
    out = []
    for rel in rels:
        ctx = index.files.get(rel) or index.add_file(rel)
        if ctx is None:
            out.append((rel, None, []))
            continue
        per_rule, _, used_all = analyzer._run_file_rules(ctx)
        out.append(
            (
                rel,
                {rid: [f.to_dict() for f in fs] for rid, fs in per_rule.items()},
                used_all,
            )
        )
    return out


class Analyzer:
    """Run every registered rule over the lint targets.

    ``cache_path`` enables the incremental result cache
    (:mod:`repro.analysis.cache`); ``jobs > 1`` fans file-scope rule
    execution out over supervised worker processes.
    """

    def __init__(
        self,
        root: str,
        paths: Optional[Sequence[str]] = None,
        rules: Optional[Dict[str, Rule]] = None,
        cache_path: Optional[str] = None,
        jobs: int = 1,
    ) -> None:
        load_rules()
        self.root = os.path.abspath(root)
        self.paths = list(paths) if paths else [
            p for p in DEFAULT_LINT_PATHS if os.path.exists(os.path.join(root, p))
        ]
        self.rules = dict(rules) if rules is not None else dict(RULE_REGISTRY)
        self.cache_path = cache_path
        self.jobs = max(1, int(jobs))
        # Parsed lazily: the warm full-hit cache path never needs it.
        self._index: Optional[ProjectIndex] = None

    @property
    def index(self) -> ProjectIndex:
        if self._index is None:
            self._index = ProjectIndex.build(self.root)
        return self._index

    # ------------------------------------------------------------------
    def _rule_groups(self):
        file_rules = [r for r in self.rules.values() if r.scope == "file"]
        return (
            [r for r in file_rules if r.cacheable],
            [r for r in file_rules if not r.cacheable],
            [r for r in self.rules.values() if r.scope == "project"],
        )

    def _run_file_rules(self, ctx: FileContext):
        """All file-scope rules on one context.

        Returns ``(per_rule_findings, used_cacheable, used_all)`` where
        the ``used_*`` lists are ``[line, rule-id]`` pairs of
        suppressions consumed *during the check phase* (only
        self-suppressing rules do that); ``used_cacheable`` is the
        snapshot after the cacheable rules and is what the cache stores.
        """
        cacheable, uncacheable, _ = self._rule_groups()
        per_rule: Dict[str, List[Finding]] = {}
        for rule in cacheable:
            per_rule[rule.id] = list(rule.check(ctx, self.index))
        used_cacheable = [
            [sup.target_line, sup.rule] for sup in ctx.suppressions if sup.used
        ]
        for rule in uncacheable:
            per_rule[rule.id] = list(rule.check(ctx, self.index))
        used_all = [
            [sup.target_line, sup.rule] for sup in ctx.suppressions if sup.used
        ]
        return per_rule, used_cacheable, used_all

    @staticmethod
    def _replay_used(ctx: FileContext, used: Iterable[Sequence[object]]) -> None:
        for pair in used:
            line, rule_id = int(pair[0]), str(pair[1])
            for sup in ctx.suppressions:
                if sup.target_line == line and sup.rule == rule_id:
                    sup.used = True

    # ------------------------------------------------------------------
    def run(self) -> Tuple[List[Finding], int, int]:
        """All unsuppressed findings, files-checked count, and the number
        of honoured suppression comments."""
        from .rules import RULES_VERSION

        targets = iter_python_files(self.root, self.paths)

        cache = sig = hashes = None
        if self.cache_path:
            from .cache import ResultCache, hash_file, project_signature

            cache = ResultCache.load(self.cache_path, RULES_VERSION)
            hashes = {
                rel: hash_file(os.path.join(self.root, rel))
                for rel in iter_python_files(self.root, INDEX_PATHS)
            }
            for rel in targets:  # targets outside INDEX_PATHS still key
                if rel not in hashes:
                    hashes[rel] = hash_file(os.path.join(self.root, rel))
            sig = project_signature(
                RULES_VERSION, sorted(self.rules), hashes, targets
            )
            hit = cache.full_result(sig)
            if hit is not None:
                findings = [
                    Finding.from_dict(d) for d in hit.get("findings", [])
                ]
                return findings, int(hit["files_checked"]), int(hit["suppressed"])

        raw: List[Finding] = []
        parse_failures: List[Finding] = []
        file_entries: Dict[str, Dict[str, object]] = {}
        cacheable, uncacheable, project_rules = self._rule_groups()
        cacheable_ids = {r.id for r in cacheable}

        shard_results: Dict[str, Tuple[Optional[Dict], List]] = {}
        if self.jobs > 1 and len(targets) > 1:
            shard_results = self._fan_out(targets)

        for rel in targets:
            ctx = self.index.files.get(rel) or self.index.add_file(rel)
            if ctx is None:
                parse_failures.append(
                    Finding(
                        rule="parse-error",
                        path=rel,
                        line=1,
                        col=0,
                        message="file could not be parsed",
                    )
                )
                continue
            if rel in shard_results:
                per_dicts, used_all = shard_results[rel]
                per_rule = {
                    rid: [Finding.from_dict(d) for d in ds]
                    for rid, ds in (per_dicts or {}).items()
                }
                self._replay_used(ctx, used_all)
                used_cacheable = [
                    pair for pair in used_all if pair[1] in cacheable_ids
                ]
            else:
                entry = (
                    cache.file_entry(rel, hashes.get(rel))
                    if cache is not None
                    else None
                )
                if entry is not None:
                    per_rule = {
                        rid: [Finding.from_dict(d) for d in ds]
                        for rid, ds in entry.get("raw", {}).items()
                    }
                    used_cacheable = list(entry.get("used", []))
                    self._replay_used(ctx, used_cacheable)
                    for rule in uncacheable:
                        per_rule[rule.id] = list(rule.check(ctx, self.index))
                else:
                    per_rule, used_cacheable, _ = self._run_file_rules(ctx)
            for findings in per_rule.values():
                raw.extend(findings)
            if cache is not None:
                file_entries[rel] = {
                    "hash": hashes.get(rel),
                    "raw": {
                        rid: [f.to_dict() for f in per_rule.get(rid, [])]
                        for rid in sorted(cacheable_ids)
                    },
                    "used": used_cacheable,
                }

        for rule in project_rules:
            raw.extend(rule.check_project(self.index))

        findings = list(parse_failures)
        for finding in raw:
            ctx = self.index.files.get(finding.path)
            if ctx is not None:
                sup = ctx.suppression_for(finding.line, finding.rule)
                if sup is not None and sup.reason:
                    sup.used = True
                    continue
            findings.append(finding)

        suppressed = 0
        for rel in targets:
            ctx = self.index.files.get(rel)
            if ctx is None:
                continue
            findings.extend(self._meta_findings(ctx))
            suppressed += sum(1 for sup in ctx.suppressions if sup.used)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

        if cache is not None and sig is not None:
            cache.store(
                sig,
                {
                    "findings": [f.to_dict() for f in findings],
                    "files_checked": len(targets),
                    "suppressed": suppressed,
                },
                file_entries,
            )
            cache.write()
        return findings, len(targets), suppressed

    # ------------------------------------------------------------------
    def _fan_out(self, targets: Sequence[str]):
        """Shard targets over supervised worker processes.

        Degrades silently to the serial path on any fan-out failure -
        multi-process lint is an optimisation, never a correctness
        dependency.
        """
        try:
            from ..harness.supervisor import supervised_map
        except Exception:
            return {}
        n_shards = min(self.jobs, len(targets))
        shards = [
            (self.root, tuple(targets[i::n_shards])) for i in range(n_shards)
        ]
        try:
            results = supervised_map(_analyze_shard, shards, jobs=self.jobs)
        except Exception:
            return {}
        out: Dict[str, Tuple[Optional[Dict], List]] = {}
        for shard in results:
            if shard is None:
                continue
            for rel, per_dicts, used_all in shard:
                out[rel] = (per_dicts, used_all)
        return out

    # ------------------------------------------------------------------
    def _meta_findings(self, ctx: FileContext) -> List[Finding]:
        """Malformed and unused suppression comments are findings too."""
        out: List[Finding] = []
        known = set(self.rules) | set(META_RULES)
        for sup in ctx.suppressions:
            if sup.rule not in known:
                out.append(
                    Finding(
                        rule="bad-suppression",
                        path=ctx.relpath,
                        line=sup.line,
                        col=0,
                        message=f"suppression names unknown rule {sup.rule!r}",
                        snippet=ctx.line_text(sup.line),
                    )
                )
            elif not sup.reason:
                out.append(
                    Finding(
                        rule="bad-suppression",
                        path=ctx.relpath,
                        line=sup.line,
                        col=0,
                        message=(
                            f"suppression of {sup.rule!r} has no reason; write "
                            "'# reprolint: allow[rule-id] why it is safe'"
                        ),
                        snippet=ctx.line_text(sup.line),
                    )
                )
            elif not sup.used:
                out.append(
                    Finding(
                        rule="unused-suppression",
                        path=ctx.relpath,
                        line=sup.line,
                        col=0,
                        message=(
                            f"suppression of {sup.rule!r} matched no finding; "
                            "delete it"
                        ),
                        snippet=ctx.line_text(sup.line),
                    )
                )
        return out


def run_analysis(
    root: str,
    paths: Optional[Sequence[str]] = None,
    baseline_path: Optional[str] = None,
    cache_path: Optional[str] = None,
    jobs: int = 1,
) -> Report:
    """Lint ``root`` and split findings against the committed baseline.

    The incremental cache is OFF unless ``cache_path`` is given: this
    function also runs inside placements (telemetry provenance) and must
    never write files into the tree.  The CLI passes the conventional
    cache path explicitly.

    Raises :class:`repro.analysis.baseline.BaselineIntegrityError` if the
    baseline file exists but fails its integrity check (hand-edited).
    """
    from .baseline import Baseline
    from .rules import RULES_VERSION

    analyzer = Analyzer(root, paths=paths, cache_path=cache_path, jobs=jobs)
    findings, n_files, suppressed = analyzer.run()
    baseline = Baseline.load(baseline_path) if baseline_path else Baseline.empty()
    new, grandfathered = baseline.split(findings)
    return Report(
        root=analyzer.root,
        rules_version=RULES_VERSION,
        files_checked=n_files,
        new_findings=new,
        baselined_findings=grandfathered,
        suppressed_count=suppressed,
        baseline_hash=baseline.integrity_hash,
    )
