"""Reprolint provenance for telemetry run manifests.

:func:`analysis_provenance` runs the analyzer over the repo the process
was launched from and condenses the result into a small dict stamped
into every run manifest (see :mod:`repro.telemetry.manifest`), so
``python -m repro.harness compare`` can flag results produced from a
tree with unbaselined lint findings ("dirty" runs) or under a different
rule set.  It must never break a placement run: any failure degrades to
an ``{"error": ...}`` payload.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

__all__ = ["analysis_provenance"]

_CACHE: Optional[Dict[str, Any]] = None


def analysis_provenance(root: Optional[str] = None) -> Dict[str, Any]:
    """Summary of the repo's reprolint state (cached per process).

    Keys: ``rules_version``, ``finding_count`` (total, incl. baselined),
    ``new_finding_count``, ``suppressed_count``, ``baseline_hash``,
    ``clean`` - or a single ``error`` key if analysis itself failed.
    """
    global _CACHE
    if _CACHE is not None and root is None:
        return dict(_CACHE)
    try:
        from .baseline import BASELINE_FILENAME
        from .cli import find_repo_root
        from .core import run_analysis

        repo_root = root or find_repo_root(os.path.dirname(__file__))
        report = run_analysis(
            repo_root,
            baseline_path=os.path.join(repo_root, BASELINE_FILENAME),
        )
        result: Dict[str, Any] = {
            "rules_version": report.rules_version,
            "finding_count": len(report.new_findings)
            + len(report.baselined_findings),
            "new_finding_count": len(report.new_findings),
            "suppressed_count": report.suppressed_count,
            "baseline_hash": report.baseline_hash,
            "clean": report.clean,
        }
    except Exception as exc:  # noqa: BLE001 - must never break a run
        result = {"error": f"{type(exc).__name__}: {exc}"}
    if root is None:
        _CACHE = dict(result)
    return result
