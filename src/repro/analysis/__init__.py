"""reprolint: semantic-index invariant checks for the reproduction codebase.

A small static-analysis framework built around a two-pass semantic
index (:mod:`repro.analysis.index`: import graph, per-module symbol
tables, approximate call graph) plus the repo-specific rules that keep
the paper's reproducibility contracts honest: deterministic scatters,
guarded numerics, closed telemetry vocabularies, checkpoint
completeness, declared forward/backward kernel pairs, and the
whole-program families in :mod:`repro.analysis.flowrules` (dtype-flow,
spawn-safety, determinism-taint, contract-closure).

Entry points:

- ``python -m repro.analysis [--json] [--sarif PATH] [--changed REF]
  [--jobs N] [paths...]`` - lint the repo (incrementally cached), exit
  non-zero on findings not covered by the committed baseline;
- ``python -m repro.analysis explain <rule-id>`` - the policy behind a
  rule;
- :func:`repro.analysis.run_analysis` - programmatic equivalent;
- :func:`repro.analysis.provenance.analysis_provenance` - the summary
  dict stamped into telemetry run manifests.

See ``DESIGN.md`` ("Static analysis & enforced invariants") for the rule
catalogue and the suppression/baseline policy.
"""

from .core import (
    Analyzer,
    FileContext,
    Finding,
    ProjectIndex,
    Report,
    Rule,
    RULE_REGISTRY,
    register_rule,
    run_analysis,
)
from .baseline import (
    Baseline,
    BaselineIntegrityError,
    fingerprint,
)
from .index import SemanticIndex
from .rules import RULES_VERSION

__all__ = [
    "Analyzer",
    "Baseline",
    "BaselineIntegrityError",
    "FileContext",
    "Finding",
    "ProjectIndex",
    "Report",
    "Rule",
    "RULE_REGISTRY",
    "RULES_VERSION",
    "SemanticIndex",
    "fingerprint",
    "register_rule",
    "run_analysis",
]
