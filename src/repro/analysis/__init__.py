"""reprolint: AST-based invariant checks for the reproduction codebase.

A small static-analysis framework plus the repo-specific rules that keep
the paper's reproducibility contracts honest: deterministic scatters,
guarded numerics, seeded randomness, closed telemetry vocabularies,
checkpoint completeness, and declared forward/backward kernel pairs.

Entry points:

- ``python -m repro.analysis [--json] [paths...]`` - lint the repo,
  exit non-zero on findings not covered by the committed baseline;
- :func:`repro.analysis.run_analysis` - programmatic equivalent;
- :func:`repro.analysis.provenance.analysis_provenance` - the summary
  dict stamped into telemetry run manifests.

See ``DESIGN.md`` ("Static analysis & enforced invariants") for the rule
catalogue and the suppression/baseline policy.
"""

from .core import (
    Analyzer,
    FileContext,
    Finding,
    ProjectIndex,
    Report,
    Rule,
    RULE_REGISTRY,
    register_rule,
    run_analysis,
)
from .baseline import (
    Baseline,
    BaselineIntegrityError,
    fingerprint,
)
from .rules import RULES_VERSION

__all__ = [
    "Analyzer",
    "Baseline",
    "BaselineIntegrityError",
    "FileContext",
    "Finding",
    "ProjectIndex",
    "Report",
    "Rule",
    "RULE_REGISTRY",
    "RULES_VERSION",
    "fingerprint",
    "register_rule",
    "run_analysis",
]
