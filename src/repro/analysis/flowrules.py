"""Whole-program reprolint rules over the semantic index.

These are the v2 rule families that per-file pattern matching cannot
express: they consume :class:`repro.analysis.index.SemanticIndex`
(import graph, symbol tables, approximate call graph) via
``index.semantic``.

- ``dtype-flow`` - float64 creep into the fp32-capable kernels;
- ``spawn-safety`` - module-level state written on spawn-worker paths;
- ``determinism-taint`` - clock/entropy/set-order values flowing into
  telemetry manifests and gated metrics (replaces the old purely
  syntactic ``seeded-rng`` rule, whose checks live on here);
- ``contract-closure`` - every ``@differentiable`` string resolves to a
  live symbol and a gradcheck test that still exercises the kernel.

Importing this module registers the rules (see
:func:`repro.analysis.core.load_rules`).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .core import FileContext, Finding, ProjectIndex, Rule, register_rule
from .index import ARRAY_NAMESPACES, NameResolver

__all__ = ["SPAWN_SAFE_GLOBALS"]


def _in_tests(ctx: FileContext) -> bool:
    return ctx.relpath.startswith("tests/") or "/tests/" in ctx.relpath


def _resolves_to_array_ns(resolver: Optional[NameResolver], node: ast.AST) -> bool:
    """True if ``node`` denotes the numpy/``xp`` namespace *by import*.

    This is the semantic replacement for the old bare-name ``np``/``xp``
    match: a local variable that merely shadows the name resolves to
    None and is not treated as the backend.
    """
    if resolver is None:
        return False
    return resolver.resolve_expr(node) in ARRAY_NAMESPACES


def _resolved(resolver: Optional[NameResolver], node: ast.AST) -> Optional[str]:
    if resolver is None:
        return None
    return resolver.resolve_expr(node)


# ----------------------------------------------------------------------
@register_rule
class DtypeFlow(Rule):
    """Float64 must not leak into the fp32-capable kernel modules.

    The planned spectral path (``precision="fp32"``) keeps its tables,
    scratch and transforms in float32/complex64; a single float64 array
    entering the pipeline silently promotes everything downstream and
    destroys the fast path while producing plausible numbers.  Inside
    the kernel modules this rule runs a small intraprocedural dtype
    inference on every function except ``__init__`` (the documented
    double-precision table-construction zone, where tables are built in
    float64 and ``.astype``'d to the plan dtype once):

    - fresh-array constructors (``xp.zeros``, ``full``, ``arange``, ...)
      without ``dtype=`` allocate float64 implicitly - flagged unless
      the result is ``.astype``'d later in the same function;
    - ``xp.asarray``/``xp.array`` of float-literal content without
      ``dtype=`` materialises float64 - flagged (python float *scalars*
      in arithmetic are weak under NEP 50 and do not promote fp32
      arrays, so bare literals in expressions are fine);
    - ``.astype(float64)`` and ``dtype=float64`` *parameter defaults*
      are explicit float64 introductions on a potentially fp32-reachable
      path - flagged; intentional precision boundaries carry an inline
      suppression naming the contract.

    An explicit ``dtype=`` keyword (including ``dtype=xp.float64``) is
    always accepted: the rule polices *silent* promotion, not deliberate
    precision choices that review can see.
    """

    id = "dtype-flow"
    description = (
        "implicit float64 allocation/cast in the fp32-capable kernel modules"
    )
    scope = "file"
    cacheable = True

    #: The modules with an fp32 execution mode.  ``core/scatter.py`` is
    #: dtype-polymorphic by construction (pure take/bincount) and is
    #: policed by backend-shim-only instead.
    _KERNEL_MODULES = (
        "src/repro/core/fftplan.py",
        "src/repro/core/smoothing.py",
        "src/repro/place/density.py",
        "src/repro/place/wirelength.py",
    )
    _FRESH_CONSTRUCTORS = (
        "zeros",
        "ones",
        "empty",
        "full",
        "arange",
        "linspace",
        "eye",
        "identity",
    )
    _CONTENT_CONSTRUCTORS = ("asarray", "array", "ascontiguousarray")

    def check(self, ctx: FileContext, index: ProjectIndex) -> Iterable[Finding]:
        if ctx.relpath not in self._KERNEL_MODULES:
            return
        resolver = index.semantic.resolver(ctx.relpath)
        for qualname, fn in self._functions(ctx.tree):
            if fn.name == "__init__":
                continue
            yield from self._check_function(ctx, resolver, qualname, fn)

    @staticmethod
    def _functions(tree: ast.Module):
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node.name, node
            elif isinstance(node, ast.ClassDef):
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        yield f"{node.name}.{sub.name}", sub

    def _check_function(self, ctx, resolver, qualname, fn):
        # Pass 1: names sanitised by a later ``.astype(...)`` in this
        # function - allocating double and casting down is the accepted
        # idiom for reductions that want float64 accumulation.
        astyped: Set[str] = set()
        assigned_from: Dict[int, str] = {}
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
                and isinstance(node.func.value, ast.Name)
            ):
                astyped.add(node.func.value.id)
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        assigned_from[id(node.value)] = target.id

        # Pass 2: float64-introducing sites.
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                yield from self._check_call(
                    ctx, resolver, qualname, node, astyped, assigned_from
                )
        for default in list(fn.args.defaults) + [
            d for d in fn.args.kw_defaults if d is not None
        ]:
            if self._is_float64_attr(resolver, default):
                yield self.finding(
                    ctx,
                    default,
                    f"{qualname}() defaults a parameter to float64; in an "
                    "fp32-capable kernel the default must come from the plan "
                    "dtype (or be an explicit argument at the call site)",
                )

    def _check_call(self, ctx, resolver, qualname, call, astyped, assigned_from):
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        # ``value.astype(float64)``: explicit promotion.
        if func.attr == "astype" and call.args:
            if self._is_float64_attr(resolver, call.args[0]):
                yield self.finding(
                    ctx,
                    call,
                    f".astype(float64) in {qualname}() promotes an "
                    "fp32-reachable value to double; keep the plan dtype, or "
                    "suppress with the precision-boundary contract it "
                    "implements",
                )
            return
        if not _resolves_to_array_ns(resolver, func.value):
            return
        has_dtype = any(kw.arg == "dtype" for kw in call.keywords)
        if func.attr in self._FRESH_CONSTRUCTORS and not has_dtype:
            target = assigned_from.get(id(call))
            if target is not None and target in astyped:
                return  # allocated double, cast down later: sanitised
            yield self.finding(
                ctx,
                call,
                f"xp.{func.attr}(...) without dtype= in {qualname}() "
                "allocates float64 and silently widens the fp32 path; pass "
                "the plan dtype (or an explicit dtype=xp.float64 where the "
                "float64 boundary is the contract)",
            )
        elif func.attr in self._CONTENT_CONSTRUCTORS and not has_dtype:
            if self._has_float_literal(call):
                yield self.finding(
                    ctx,
                    call,
                    f"xp.{func.attr}(...) of float-literal content without "
                    f"dtype= in {qualname}() materialises a float64 array; "
                    "pass the plan dtype explicitly",
                )

    @staticmethod
    def _is_float64_attr(resolver, node: ast.AST) -> bool:
        if isinstance(node, ast.Constant) and node.value == "float64":
            return True
        resolved = _resolved(resolver, node)
        return resolved is not None and (
            resolved.endswith(".float64") and
            any(resolved.startswith(ns + ".") for ns in ARRAY_NAMESPACES)
        )

    @staticmethod
    def _has_float_literal(call: ast.Call) -> bool:
        for arg in call.args:
            for node in ast.walk(arg):
                if isinstance(node, ast.Constant) and isinstance(
                    node.value, float
                ):
                    return True
        return False


# ----------------------------------------------------------------------
#: Module-level state that spawn workers are *allowed* to write, with the
#: audit rationale.  Every entry is per-process by construction: a spawn
#: worker gets a fresh module copy, mutates only its own, and nothing
#: reads the value back across the process boundary.  An attribute write
#: under an allowed prefix (e.g. ``PROFILER.enabled``) is covered by the
#: prefix entry.
SPAWN_SAFE_GLOBALS = {
    # The worker marks itself as in-worker so nested fan-out is refused;
    # written exactly once per process before any task runs.
    "repro.harness.supervisor._IN_WORKER": "per-process worker marker",
    # Per-process design-bundle memo; workers warm their own copy on
    # spawn (that is the point of _preload_designs).
    "repro.netlist.cache._MEMO": "per-process design cache",
    "repro.netlist.cache._CODE_VERSION": "per-process cache-key memo",
    # The profiler is per-process observability; records are exported
    # through the task result, never shared memory.
    "repro.perf.PROFILER": "per-process profiler state",
    # Telemetry context slots: each worker installs its own recorder /
    # heartbeat registration for the task it runs.
    "repro.telemetry.events._CURRENT": "per-process recorder slot",
    "repro.telemetry.registry._CURRENT": "per-process heartbeat slot",
    # Cached os.sysconf page size; idempotent scalar.
    "repro.telemetry.resources._PAGE_SIZE": "idempotent sysconf memo",
}


@register_rule
class SpawnSafety(Rule):
    """Spawn-worker code must not write unaudited module-level state.

    Worker entrypoints are discovered syntactically (functions passed as
    ``target=`` to a ``Process`` or ``initializer=`` to a pool) and the
    approximate call graph is closed over them.  Any function in that
    closure writing module-level state - ``global`` rebinding, attribute
    assignment on a module-level object, subscript stores or mutating
    method calls (``append``/``update``/``clear``/...) on module-level
    containers - is flagged unless the state is in the audited
    :data:`SPAWN_SAFE_GLOBALS` allowlist.

    Module globals are per-process under the spawn start method, so such
    writes are not data races in the classic sense; the failure mode is
    subtler and worse: state mutated in a worker silently diverges from
    the parent's copy, and code that later reads it in the parent (or in
    a fork-started context) sees different values per process.  The
    allowlist records exactly which globals are *designed* to be
    per-process, with the audit rationale next to each entry.
    """

    id = "spawn-safety"
    description = (
        "unaudited module-level state written on a spawn-worker call path"
    )
    scope = "project"

    _MUTATORS = {
        "append",
        "appendleft",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
    }

    def check_project(self, index: ProjectIndex) -> Iterable[Finding]:
        sem = index.semantic
        closure = sem.call_closure(sorted(sem.spawn_entrypoints))
        for canonical in sorted(closure):
            entry = sem.functions.get(canonical)
            if entry is None:
                continue
            relpath, info = entry
            if relpath.startswith("tests/") or "/tests/" in relpath:
                continue
            ctx = index.files.get(relpath)
            resolver = sem.resolver(relpath)
            if ctx is None or resolver is None:
                continue
            yield from self._check_function(
                ctx, resolver, sem, canonical, info.node
            )

    def _check_function(self, ctx, resolver, sem, canonical, fn):
        seen: Set[Tuple[int, str]] = set()
        for node in ast.walk(fn):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                written = self._written_global(resolver, target)
                if written is not None and sem.is_module_global(written):
                    yield from self._flag(
                        ctx, canonical, node, written, seen
                    )
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in self._MUTATORS:
                    resolved = _resolved(resolver, node.func.value)
                    if resolved is not None and sem.is_module_global(resolved):
                        yield from self._flag(
                            ctx, canonical, node, resolved, seen
                        )

    @staticmethod
    def _written_global(resolver, target: ast.AST) -> Optional[str]:
        """Canonical name of the module-level state a store hits, if any."""
        # Unwrap subscript stores: X[k] = v mutates X.
        while isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, (ast.Name, ast.Attribute)):
            return _resolved(resolver, target)
        return None

    def _allowed(self, canonical_state: str) -> bool:
        for allowed in SPAWN_SAFE_GLOBALS:
            if canonical_state == allowed or canonical_state.startswith(
                allowed + "."
            ):
                return True
        return False

    def _flag(self, ctx, canonical_fn, node, state, seen):
        if self._allowed(state):
            return
        key = (node.lineno, state)
        if key in seen:
            return
        seen.add(key)
        yield self.finding(
            ctx,
            node,
            f"{canonical_fn}() is reachable from a spawn-worker entrypoint "
            f"and writes module-level state {state!r}; per-process divergence "
            "is invisible until it bites - pass the state through the task "
            "payload, or audit it into SPAWN_SAFE_GLOBALS with a rationale",
        )


# ----------------------------------------------------------------------
@register_rule
class DeterminismTaint(Rule):
    """Nondeterministic values must not flow into gated telemetry sinks.

    The CI byte-identity gates compare manifests and metric records
    across runs; anything derived from wall clocks, OS entropy, or set
    iteration order breaks them one flaky build at a time.  This rule
    runs an intraprocedural taint analysis per function:

    - **sources**: ``time.time``/``time.time_ns``/``monotonic``/
      ``perf_counter``, ``datetime.now``/``utcnow``/``today`` (clock);
      ``os.urandom`` and unseeded ``default_rng()`` (entropy); iteration
      of set displays/constructors into ordered containers (order);
    - **sanitizers**: ``sorted(...)`` clears order taint;
    - **sinks**: ``.event(...)`` telemetry calls,
      ``append_record``/``write_manifest``, and
      ``RunManifest``/``RunRecord`` construction.

    Wall-clock-*class* fields (``ts``, ``runtime_s``, ``setup_s``, ...)
    are exempt at the sink: the comparator in
    ``repro.telemetry.compare`` never gates on them, so timestamps may
    flow there freely.  Everything else - metrics, ids, counts - must be
    derived deterministically.

    The old syntactic ``seeded-rng`` checks live on here as standalone
    findings: process-global ``np.random`` state and ``default_rng()``
    without a seed are flagged wherever they appear (sink or not), now
    resolved through the import index instead of bare-name matching.
    """

    id = "determinism-taint"
    description = (
        "clock/entropy/set-order values flowing into telemetry sinks; "
        "global np.random state; unseeded default_rng()"
    )
    scope = "file"
    cacheable = True

    _CLOCK_FUNCS = {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
    _ENTROPY_FUNCS = {"os.urandom"}
    #: Sink fields the comparator never gates on (wall-clock class); see
    #: repro.telemetry.compare.GATED_METRICS for what *is* gated.
    _EXEMPT_FIELDS = {
        "ts",
        "ts_mono",
        "anchor_ts",
        "timestamp",
        "started_at",
        "finished_at",
        "runtime",
        "runtime_s",
        "setup_s",
        "elapsed_s",
        "duration_s",
        "wall_s",
        "delay_s",
        "time_s",
    }
    _SINK_ATTRS = {"event"}
    _SINK_NAMES = {"append_record", "write_manifest", "RunManifest", "RunRecord"}

    _GLOBAL_STATE = {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "exponential",
        "get_state",
        "set_state",
        "RandomState",
    }

    def check(self, ctx: FileContext, index: ProjectIndex) -> Iterable[Finding]:
        if _in_tests(ctx):
            return
        resolver = index.semantic.resolver(ctx.relpath)
        yield from self._standalone(ctx, resolver)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, resolver, node)

    # -- standalone RNG hygiene (the seeded-rng heritage) ---------------
    def _standalone(self, ctx, resolver):
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                inner = node.value
                if (
                    isinstance(inner, ast.Attribute)
                    and inner.attr == "random"
                    and _resolves_to_array_ns(resolver, inner.value)
                    and node.attr in self._GLOBAL_STATE
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"np.random.{node.attr} uses process-global RNG state; "
                        "thread an explicitly seeded np.random.default_rng "
                        "through instead",
                    )
            if isinstance(node, ast.Call) and self._is_unseeded_rng(node):
                yield self.finding(
                    ctx,
                    node,
                    "default_rng() without a seed draws OS entropy and is "
                    "not reproducible; pass an explicit seed",
                )

    @staticmethod
    def _is_unseeded_rng(call: ast.Call) -> bool:
        if call.args or call.keywords:
            return False
        func = call.func
        if isinstance(func, ast.Name):
            return func.id == "default_rng"
        return isinstance(func, ast.Attribute) and func.attr == "default_rng"

    # -- intraprocedural taint ------------------------------------------
    def _check_function(self, ctx, resolver, fn):
        tainted: Dict[str, str] = {}
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                kind = self._expr_taint(resolver, node.value, tainted)
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if kind is not None:
                            tainted[target.id] = kind
                        else:
                            tainted.pop(target.id, None)
            elif isinstance(node, ast.Call):
                yield from self._check_sink(ctx, resolver, node, tainted)

    def _check_sink(self, ctx, resolver, call, tainted):
        func = call.func
        is_sink = False
        sink_name = None
        if isinstance(func, ast.Attribute) and func.attr in self._SINK_ATTRS:
            is_sink, sink_name = True, func.attr
        else:
            resolved = _resolved(resolver, func)
            leaf = resolved.split(".")[-1] if resolved else None
            bare = func.id if isinstance(func, ast.Name) else None
            if leaf in self._SINK_NAMES or bare in self._SINK_NAMES:
                is_sink, sink_name = True, leaf or bare
        if not is_sink:
            return
        for arg in call.args:
            kind = self._expr_taint(resolver, arg, tainted)
            if kind is not None:
                yield self._taint_finding(ctx, arg, kind, sink_name, None)
        for kw in call.keywords:
            if kw.arg is not None and kw.arg in self._EXEMPT_FIELDS:
                continue
            kind = self._expr_taint(resolver, kw.value, tainted)
            if kind is not None:
                yield self._taint_finding(ctx, kw.value, kind, sink_name, kw.arg)

    def _taint_finding(self, ctx, node, kind, sink, field):
        where = f"field {field!r} of" if field else "an argument of"
        return self.finding(
            ctx,
            node,
            f"{kind}-tainted value flows into {where} telemetry sink "
            f"{sink}(); gated comparisons will differ across runs - derive "
            "it deterministically (or route wall-clock data through the "
            "exempt ts/runtime fields)",
        )

    def _expr_taint(
        self, resolver, expr: ast.AST, tainted: Dict[str, str]
    ) -> Optional[str]:
        """Taint kind of an expression, or None if clean."""
        if isinstance(expr, ast.Name):
            return tainted.get(expr.id)
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id == "sorted":
                # sorted() is the order sanitizer; clock/entropy taint in
                # the sorted values still flows through.
                kinds = [
                    self._expr_taint(resolver, a, tainted) for a in expr.args
                ]
                kinds = [k for k in kinds if k is not None and k != "order"]
                return kinds[0] if kinds else None
            resolved = _resolved(resolver, func)
            if resolved in self._CLOCK_FUNCS:
                return "clock"
            if resolved in self._ENTROPY_FUNCS or self._is_unseeded_rng(expr):
                return "entropy"
            if self._is_set_expr(func, expr):
                return "order"
            for sub in list(expr.args) + [kw.value for kw in expr.keywords]:
                kind = self._expr_taint(resolver, sub, tainted)
                if kind is not None:
                    return kind
            # A method call on a tainted receiver stays tainted:
            # os.urandom(8).hex(), datetime.now().isoformat(), ...
            if isinstance(func, ast.Attribute):
                return self._expr_taint(resolver, func.value, tainted)
            return None
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
            for comp in expr.generators:
                if self._is_set_valued(comp.iter, tainted):
                    return "order"
            kind = self._expr_taint(resolver, expr.elt, tainted)
            return kind
        if isinstance(expr, ast.Set):
            return None  # a set itself is fine; *ordering* it taints
        for child in ast.iter_child_nodes(expr):
            kind = self._expr_taint(resolver, child, tainted)
            if kind is not None:
                return kind
        return None

    @staticmethod
    def _is_set_expr(func: ast.AST, call: ast.Call) -> bool:
        """``list(<set-ish>)``: ordering a set without sorting."""
        if not (isinstance(func, ast.Name) and func.id in ("list", "tuple")):
            return False
        return bool(call.args) and DeterminismTaint._is_set_valued(
            call.args[0], {}
        )

    @staticmethod
    def _is_set_valued(expr: ast.AST, tainted: Dict[str, str]) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            return expr.func.id in ("set", "frozenset")
        if isinstance(expr, ast.Name):
            return tainted.get(expr.id) == "order"
        return False


# ----------------------------------------------------------------------
@register_rule
class ContractClosure(Rule):
    """Every ``@differentiable`` contract string must close the loop.

    ``backward-pair`` checks the decorator is *present* and well-formed;
    this rule checks the strings still *mean* something after renames:

    - the declared ``backward=`` dotted name must resolve - through
      import aliases - to a function in the semantic index;
    - the declared ``gradcheck=`` pytest node id must resolve to a real
      test function under ``tests/``;
    - the gradcheck's test file must still reference the forward or
      backward kernel by name, so renaming a kernel (and fixing the
      decorator) cannot leave the gradcheck silently exercising nothing.

    Together with ``repro.contracts.KERNEL_REGISTRY`` (the runtime view
    of the same decorators), this keeps the differentiability contracts
    of the paper's kernels verifiable from either side.
    """

    id = "contract-closure"
    description = (
        "@differentiable backward=/gradcheck= strings must resolve to live "
        "symbols and a test that references the kernel"
    )
    scope = "project"

    def check_project(self, index: ProjectIndex) -> Iterable[Finding]:
        sem = index.semantic
        for site in sem.contracts:
            if not site.relpath.startswith("src/"):
                continue
            ctx = index.files.get(site.relpath)
            if ctx is None:
                continue
            if site.backward is None or site.gradcheck is None:
                continue  # malformed decorators are backward-pair findings
            name = site.qualname
            backward_ok = sem.resolve_symbol(site.backward) is not None
            if not backward_ok:
                yield self.finding(
                    ctx,
                    site.node,
                    f"{name}() declares backward {site.backward!r}, which "
                    "does not resolve to any function in the project index",
                )
            if not index.has_test(site.gradcheck):
                yield self.finding(
                    ctx,
                    site.node,
                    f"{name}() declares gradcheck {site.gradcheck!r}, which "
                    "does not resolve to a test in the suite",
                )
                continue
            test_rel = site.gradcheck.split("::")[0]
            tctx = index.files.get(test_rel) or index.add_file(test_rel)
            if tctx is None:
                continue
            leaves = {name.split(".")[-1], site.backward.split(".")[-1]}
            pattern = re.compile(
                r"\b(" + "|".join(re.escape(leaf) for leaf in leaves) + r")\b"
            )
            if not pattern.search(tctx.source):
                yield self.finding(
                    ctx,
                    site.node,
                    f"gradcheck {site.gradcheck!r} of {name}() never "
                    f"references {sorted(leaves)}; the test no longer "
                    "exercises this kernel (renamed without updating the "
                    "gradcheck?)",
                )
