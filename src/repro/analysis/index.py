"""The project-wide semantic index behind the v2 whole-program rules.

Per-file AST pattern matching cannot see across modules: it keys on bare
names (any local ``np`` looked like numpy), it cannot tell which
functions a spawned worker actually reaches, and it cannot resolve a
``@differentiable(backward="...")`` string to the function it names.
:class:`SemanticIndex` is the two-pass fix.  Pass one walks every parsed
file and extracts per-module facts:

- the **import table** (local alias -> canonical dotted name, relative
  imports resolved against the module's package);
- the **symbol table** (functions, classes, methods, module-level
  assignments, and which module-level names are *mutable* containers);
- per-function **local binding sets** (parameters, assignments, loop and
  ``with`` targets, ...), so a name use resolves through real Python
  scoping instead of string matching;
- the approximate **call graph** (``Name`` calls through the import
  table, ``module.fn`` attribute calls, ``self.method`` within a class);
- every ``@differentiable`` **contract site** and every spawn-worker
  **entrypoint** (functions passed as ``target=`` to a ``Process`` or
  ``initializer=`` to a pool).

Pass two is the rules in :mod:`repro.analysis.flowrules`, which run
closures and dataflow over these tables.  Everything here is resolved
*statically* - the index never imports the code it describes.

The call graph is deliberately an under-approximation: an attribute call
on an object of unknown type contributes no edge.  For lint that is the
right bias - closures stay small and findings stay explainable - and the
seeded counterexamples in ``tests/test_analysis_engine.py`` pin exactly
what is and is not resolved.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "ARRAY_NAMESPACES",
    "ContractSite",
    "FunctionInfo",
    "ModuleInfo",
    "NameResolver",
    "SemanticIndex",
]

#: Canonical names a resolved array-namespace alias may map to; rules
#: that police "numpy contracts" accept any of them.  ``xp`` is the
#: backend shim's numpy-compatible proxy (repro.core.backend).
ARRAY_NAMESPACES = ("numpy", "repro.core.backend.xp")

_MUTABLE_LITERALS = (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)


class ContractSite:
    """One ``@differentiable(backward=..., gradcheck=...)`` decorator."""

    __slots__ = ("relpath", "qualname", "forward", "backward", "gradcheck", "node")

    def __init__(self, relpath, qualname, forward, backward, gradcheck, node):
        self.relpath = relpath
        self.qualname = qualname  # e.g. "lse_max" or "Cls.method"
        self.forward = forward  # canonical dotted name of the forward
        self.backward = backward  # declared string (may be None)
        self.gradcheck = gradcheck  # declared string (may be None)
        self.node = node  # the decorator AST node


class FunctionInfo:
    """One function/method: its node, locals, and outgoing call edges."""

    __slots__ = ("qualname", "node", "locals", "globals_declared", "calls")

    def __init__(self, qualname: str, node: ast.AST) -> None:
        self.qualname = qualname
        self.node = node
        #: Names bound in this function's scope (shadow module names).
        self.locals: Set[str] = set()
        #: Names declared ``global`` (writes go to module scope).
        self.globals_declared: Set[str] = set()
        #: Canonical dotted names of resolved callees.
        self.calls: Set[str] = set()


class ModuleInfo:
    """Extracted facts of one source file."""

    def __init__(self, relpath: str, module: Optional[str]) -> None:
        self.relpath = relpath
        #: Dotted module name for files under ``src/`` else None.
        self.module = module
        #: local alias -> canonical dotted name ("np" -> "numpy").
        self.imports: Dict[str, str] = {}
        #: qualname -> FunctionInfo for every def (incl. methods).
        self.functions: Dict[str, FunctionInfo] = {}
        #: Top-level class names -> list of method names.
        self.classes: Dict[str, List[str]] = {}
        #: Module-level assigned names -> first assignment lineno.
        self.module_assigns: Dict[str, int] = {}
        #: Module-level names bound to mutable container literals/calls.
        self.mutable_globals: Set[str] = set()
        self.contracts: List[ContractSite] = []


def _canonical(module: Optional[str], qualname: str, relpath: str) -> str:
    """Canonical name of a def: dotted under src/, path-anchored else."""
    if module:
        return f"{module}.{qualname}"
    return f"{relpath}::{qualname}"


def _resolve_relative(module: Optional[str], level: int, target: str) -> Optional[str]:
    """Absolute dotted module for a ``from ...x import y`` statement."""
    if level == 0:
        return target or None
    if module is None:
        return None
    # The package containing this module: drop the final component
    # (``repro.place.density`` lives in package ``repro.place``), then
    # one more component per extra dot.
    parts = module.split(".")[:-1]
    for _ in range(level - 1):
        if not parts:
            return None
        parts = parts[:-1]
    if target:
        parts = parts + target.split(".")
    return ".".join(parts) if parts else None


def _collect_locals(fn: ast.AST, info: FunctionInfo) -> None:
    """Names bound inside ``fn`` (excluding nested function bodies)."""
    args = fn.args
    for a in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        info.locals.add(a.arg)

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                info.locals.add(child.name)
                continue  # nested scope: its bindings are its own
            if isinstance(child, ast.Global):
                info.globals_declared.update(child.names)
                continue
            if isinstance(child, (ast.Import, ast.ImportFrom)):
                for alias in child.names:
                    info.locals.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(child, ast.Assign):
                for target in child.targets:
                    _bind_target(target, info.locals)
            elif isinstance(child, (ast.AnnAssign, ast.AugAssign)):
                _bind_target(child.target, info.locals)
            elif isinstance(child, ast.For):
                _bind_target(child.target, info.locals)
            elif isinstance(child, ast.withitem) and child.optional_vars:
                _bind_target(child.optional_vars, info.locals)
            elif isinstance(child, ast.ExceptHandler) and child.name:
                info.locals.add(child.name)
            elif isinstance(child, ast.NamedExpr):
                _bind_target(child.target, info.locals)
            elif isinstance(child, ast.comprehension):
                # Pre-3.12 comprehension scoping nuances do not matter
                # for shadow detection; a comprehension target named
                # ``np`` shadows the import inside the expression.
                _bind_target(child.target, info.locals)
            visit(child)

    visit(fn)
    info.locals -= info.globals_declared


def _bind_target(target: ast.AST, out: Set[str]) -> None:
    if isinstance(target, ast.Name):
        out.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            _bind_target(elt, out)
    elif isinstance(target, ast.Starred):
        _bind_target(target.value, out)


def attribute_chain(node: ast.AST) -> Optional[Tuple[str, List[str]]]:
    """``a.b.c`` -> ("a", ["b", "c"]); None if the root is not a Name."""
    attrs: List[str] = []
    while isinstance(node, ast.Attribute):
        attrs.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        return node.id, list(reversed(attrs))
    return None


class NameResolver:
    """Scope-aware name resolution for one file.

    Precomputes, for every :class:`ast.Name` and call-root in the file,
    the stack of enclosing function scopes, so :meth:`resolve` can apply
    real shadowing rules: a parameter or local named ``np`` hides the
    numpy import; a ``global`` declaration punches through to module
    scope.
    """

    def __init__(self, mod: ModuleInfo, tree: ast.Module) -> None:
        self.mod = mod
        #: id(Name node) -> tuple of enclosing FunctionInfo (outer->inner).
        self._scope_of: Dict[int, Tuple[FunctionInfo, ...]] = {}
        self._walk(tree, (), None)

    def _walk(
        self,
        node: ast.AST,
        stack: Tuple[FunctionInfo, ...],
        cls: Optional[str],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{cls}.{child.name}" if cls else child.name
                info = self.mod.functions.get(qual)
                if info is None or info.node is not child:
                    # Nested defs / redefinitions: index by identity.
                    info = FunctionInfo(qual, child)
                    _collect_locals(child, info)
                self._walk(child, stack + (info,), None)
            elif isinstance(child, ast.ClassDef):
                self._walk(child, stack, child.name if not cls else f"{cls}.{child.name}")
            else:
                if isinstance(child, ast.Name):
                    self._scope_of[id(child)] = stack
                self._walk(child, stack, cls)

    # ------------------------------------------------------------------
    def enclosing(self, name_node: ast.Name) -> Tuple[FunctionInfo, ...]:
        return self._scope_of.get(id(name_node), ())

    def is_shadowed(self, name_node: ast.Name) -> bool:
        """True if a local binding hides the module-level meaning."""
        name = name_node.id
        for info in reversed(self.enclosing(name_node)):
            if name in info.globals_declared:
                return False
            if name in info.locals:
                return True
        return False

    def resolve(self, name_node: ast.Name) -> Optional[str]:
        """Canonical dotted name of a Name use, or None.

        Locals resolve to None (unknown); module imports resolve through
        the import table; module-level defs and assignments resolve to
        their canonical name.
        """
        if self.is_shadowed(name_node):
            return None
        name = name_node.id
        mod = self.mod
        if name in mod.imports:
            return mod.imports[name]
        if name in mod.functions or name in mod.classes:
            return _canonical(mod.module, name, mod.relpath)
        if name in mod.module_assigns:
            return _canonical(mod.module, name, mod.relpath)
        return None

    def resolve_expr(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of a Name/Attribute chain, or None."""
        chain = attribute_chain(node)
        if chain is None:
            return None
        root_name, attrs = chain
        # Find the root Name node to honour shadowing.
        inner = node
        while isinstance(inner, ast.Attribute):
            inner = inner.value
        root = self.resolve(inner)  # type: ignore[arg-type]
        if root is None:
            return None
        return ".".join([root] + attrs) if attrs else root


class SemanticIndex:
    """All modules' extracted facts plus cross-module resolution."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}  # relpath -> info
        self._by_module: Dict[str, ModuleInfo] = {}  # dotted -> info
        self._resolvers: Dict[str, NameResolver] = {}
        #: canonical function name -> (relpath, FunctionInfo)
        self.functions: Dict[str, Tuple[str, FunctionInfo]] = {}
        #: Canonical names of spawn-worker entrypoints (Process target=
        #: / pool initializer=) discovered syntactically.
        self.spawn_entrypoints: Set[str] = set()
        self.contracts: List[ContractSite] = []

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, files: Dict[str, "object"]) -> "SemanticIndex":
        """Build from ``relpath -> FileContext`` (repro.analysis.core)."""
        index = cls()
        for relpath, ctx in sorted(files.items()):
            index._add_module(relpath, ctx)
        for relpath, ctx in sorted(files.items()):
            index._link_module(relpath, ctx)
        return index

    # -- pass 1: per-module symbol extraction ---------------------------
    def _add_module(self, relpath: str, ctx) -> None:
        mod = ModuleInfo(relpath, ctx.module_name())
        tree = ctx.tree
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    mod.imports.setdefault(local, target)
            elif isinstance(node, ast.ImportFrom):
                base = _resolve_relative(mod.module, node.level, node.module or "")
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    mod.imports.setdefault(local, f"{base}.{alias.name}")
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(mod, node.name, node)
            elif isinstance(node, ast.ClassDef):
                methods: List[str] = []
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qual = f"{node.name}.{sub.name}"
                        methods.append(sub.name)
                        self._add_function(mod, qual, sub)
                mod.classes[node.name] = methods
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        mod.module_assigns.setdefault(target.id, node.lineno)
                        if self._is_mutable_value(node.value):
                            mod.mutable_globals.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                mod.module_assigns.setdefault(node.target.id, node.lineno)
                if node.value is not None and self._is_mutable_value(node.value):
                    mod.mutable_globals.add(node.target.id)
        self.modules[relpath] = mod
        if mod.module:
            self._by_module[mod.module] = mod

    def _add_function(self, mod: ModuleInfo, qualname: str, node) -> None:
        info = FunctionInfo(qualname, node)
        _collect_locals(node, info)
        mod.functions[qualname] = info

    @staticmethod
    def _is_mutable_value(value: ast.AST) -> bool:
        if isinstance(value, _MUTABLE_LITERALS):
            return True
        if isinstance(value, ast.Call):
            chain = attribute_chain(value.func)
            if chain is not None:
                name = (chain[0] if not chain[1] else chain[1][-1])
                return name in ("dict", "list", "set", "deque", "defaultdict", "OrderedDict")
        return False

    # -- pass 2: cross-module linking -----------------------------------
    def _link_module(self, relpath: str, ctx) -> None:
        mod = self.modules[relpath]
        resolver = NameResolver(mod, ctx.tree)
        self._resolvers[relpath] = resolver
        for qual, info in mod.functions.items():
            canonical = _canonical(mod.module, qual, relpath)
            self.functions[canonical] = (relpath, info)
            cls_name = qual.split(".")[0] if "." in qual else None
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                callee = self._resolve_callee(mod, resolver, cls_name, node.func)
                if callee:
                    info.calls.add(callee)
                self._scan_spawn_call(resolver, node)
            self._scan_contract(mod, resolver, qual, info.node)
        # Module-level code can also spawn / declare contracts.
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                self._scan_spawn_call(resolver, node)

    def _resolve_callee(self, mod, resolver, cls_name, func) -> Optional[str]:
        if isinstance(func, ast.Name):
            return resolver.resolve(func)
        if isinstance(func, ast.Attribute):
            # self.method() -> this class's method.
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and cls_name is not None
            ):
                return _canonical(mod.module, f"{cls_name}.{func.attr}", mod.relpath)
            return resolver.resolve_expr(func)
        return None

    _SPAWN_CTORS = ("Process", "ProcessPoolExecutor", "Pool")
    _SPAWN_KWARGS = ("target", "initializer")

    def _scan_spawn_call(self, resolver: NameResolver, call: ast.Call) -> None:
        chain = attribute_chain(call.func)
        if chain is None:
            return
        name = chain[1][-1] if chain[1] else chain[0]
        if name not in self._SPAWN_CTORS:
            return
        for kw in call.keywords:
            if kw.arg in self._SPAWN_KWARGS:
                target = resolver.resolve_expr(kw.value)
                if target:
                    self.spawn_entrypoints.add(target)

    def _scan_contract(self, mod, resolver, qual, node) -> None:
        for deco in getattr(node, "decorator_list", ()):
            target = deco.func if isinstance(deco, ast.Call) else deco
            resolved = resolver.resolve_expr(target)
            leaf = None
            chain = attribute_chain(target)
            if chain is not None:
                leaf = chain[1][-1] if chain[1] else chain[0]
            if leaf != "differentiable" and (
                resolved is None or not resolved.endswith(".differentiable")
            ):
                continue
            backward = gradcheck = None
            if isinstance(deco, ast.Call):
                for kw in deco.keywords:
                    if isinstance(kw.value, ast.Constant) and isinstance(
                        kw.value.value, str
                    ):
                        if kw.arg == "backward":
                            backward = kw.value.value
                        elif kw.arg == "gradcheck":
                            gradcheck = kw.value.value
            self.contracts.append(
                ContractSite(
                    mod.relpath,
                    qual,
                    _canonical(mod.module, qual, mod.relpath),
                    backward,
                    gradcheck,
                    deco,
                )
            )

    # ------------------------------------------------------------------
    def resolver(self, relpath: str) -> Optional[NameResolver]:
        return self._resolvers.get(relpath)

    def module(self, dotted: str) -> Optional[ModuleInfo]:
        return self._by_module.get(dotted)

    def resolve_symbol(self, dotted: str, _depth: int = 0) -> Optional[str]:
        """Follow import aliases to the defining module's canonical name.

        ``repro.place.xp`` (re-exported) resolves to
        ``repro.core.backend.xp``; a name already canonical returns
        itself; unknown names return None.
        """
        if _depth > 8:
            return None
        if dotted in self.functions:
            return dotted
        # Longest module prefix.
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            mod = self._by_module.get(prefix)
            if mod is None:
                continue
            rest = parts[cut:]
            head = rest[0]
            if head in mod.imports:
                rebased = ".".join([mod.imports[head]] + rest[1:])
                return self.resolve_symbol(rebased, _depth + 1)
            qual = ".".join(rest)
            if qual in mod.functions:
                return f"{prefix}.{qual}"
            if head in mod.classes or head in mod.module_assigns:
                return dotted
            return None
        return None

    def has_symbol(self, dotted: str) -> bool:
        return self.resolve_symbol(dotted) is not None

    def is_module_global(self, dotted: str) -> bool:
        """True if ``dotted`` roots at a module-level assignment of an
        indexed project module (``pkg.mod.NAME`` or an attribute path
        beneath one).  Imported third-party modules (``os.remove``) are
        not project globals and return False.
        """
        if "::" in dotted:
            relpath, _, rest = dotted.partition("::")
            mod = self.modules.get(relpath)
            return (
                mod is not None
                and rest.split(".")[0] in mod.module_assigns
            )
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod = self._by_module.get(".".join(parts[:cut]))
            if mod is not None:
                return parts[cut] in mod.module_assigns
        return False

    # ------------------------------------------------------------------
    def call_closure(self, roots: Iterable[str]) -> Set[str]:
        """Canonical names of functions reachable from ``roots``.

        Edges follow the approximate call graph; callees that resolve
        through import aliases are rebased onto their defining module
        before lookup.  Roots themselves are included when they resolve.
        """
        seen: Set[str] = set()
        stack: List[str] = []
        for root in roots:
            resolved = self.resolve_symbol(root)
            if resolved is not None:
                stack.append(resolved)
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            entry = self.functions.get(name)
            if entry is None:
                continue
            _, info = entry
            for callee in info.calls:
                resolved = self.resolve_symbol(callee)
                if resolved is not None and resolved not in seen:
                    stack.append(resolved)
        return seen

    def function_node(self, canonical: str):
        """(relpath, FunctionInfo) for a canonical name, or None."""
        resolved = self.resolve_symbol(canonical)
        if resolved is None:
            return None
        return self.functions.get(resolved)
