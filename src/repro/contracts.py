"""Differentiability contracts: forward kernels declare their adjoints.

The paper's engine is a collection of hand-derived forward/backward kernel
pairs (Eqs. 7-12); nothing in pure Python ties a forward kernel to the
backward pass that must mirror it, or to the gradcheck test that proves
the pair consistent.  The :func:`differentiable` decorator records that
link in :data:`KERNEL_REGISTRY`, and the ``backward-pair`` rule of
``repro.analysis`` (reprolint) statically enforces that

- every forward kernel in ``core/`` and ``sta/`` carries the decorator,
- the declared backward function exists, and
- the declared gradcheck test exists in the test suite.

The decorator is deliberately inert at runtime (it only registers) so
kernels pay nothing for being tagged.
"""

from __future__ import annotations

from typing import Callable, Dict

__all__ = ["KERNEL_REGISTRY", "differentiable"]

#: ``qualified forward name -> {"backward": ..., "gradcheck": ...}``.
KERNEL_REGISTRY: Dict[str, Dict[str, str]] = {}


def differentiable(backward: str, gradcheck: str) -> Callable:
    """Tag a forward kernel with its backward pair and gradcheck test.

    Parameters
    ----------
    backward:
        Fully qualified dotted path of the adjoint kernel
        (``"repro.core.net_prop.net_backward_level"``).
    gradcheck:
        Pytest node id of the finite-difference test that covers the pair
        (``"tests/test_elmore_grad.py::TestElmoreBackward::test_..."``).
    """

    def decorate(fn: Callable) -> Callable:
        contract = {"backward": backward, "gradcheck": gradcheck}
        KERNEL_REGISTRY[f"{fn.__module__}.{fn.__qualname__}"] = contract
        fn.__differentiable__ = contract
        return fn

    return decorate
