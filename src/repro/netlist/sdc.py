"""SDC (Synopsys Design Constraints) subset reader/writer.

Supports the commands the timers consume, in the single-ideal-clock setting
of the paper's evaluation:

- ``create_clock -name NAME -period P [get_ports PORT]``
- ``set_input_delay D -clock NAME [get_ports PORT ...]``
- ``set_output_delay D -clock NAME [get_ports PORT ...]``
- ``set_input_transition S [get_ports PORT ...]``
- ``set_load C [get_ports PORT ...]``

Port lists accept ``[get_ports {a b c}]``, ``[all_inputs]`` and
``[all_outputs]`` (the latter two resolve against a provided design).
The parser fills a :class:`~repro.netlist.design.Constraints` object; the
writer emits text that parses back to an equivalent object.
"""

from __future__ import annotations

import re
import shlex
from typing import List, Optional, Sequence

from .design import Constraints, Design

__all__ = ["parse_sdc", "write_sdc", "read_sdc_file", "write_sdc_file", "SDCError"]


class SDCError(ValueError):
    """Raised on malformed SDC input."""


_BRACKET_RE = re.compile(r"\[([^\[\]]*)\]")


def _logical_lines(text: str) -> List[str]:
    """Join backslash continuations and strip comments/empties."""
    joined = text.replace("\\\n", " ")
    lines = []
    for raw in joined.splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            lines.append(line)
    return lines


def _resolve_ports(
    expr: str, design: Optional[Design]
) -> List[str]:
    """Resolve a bracketed port expression to a list of port names."""
    expr = expr.strip()
    if expr.startswith("get_ports"):
        rest = expr[len("get_ports"):].strip()
        rest = rest.strip("{}")
        return rest.split()
    if expr == "all_inputs":
        if design is None:
            raise SDCError("all_inputs requires a design to resolve against")
        return [
            design.cell_name[i]
            for i in range(design.n_cells)
            if design.cell_types[design.cell_type[i]].name == "<PORT_IN>"
        ]
    if expr == "all_outputs":
        if design is None:
            raise SDCError("all_outputs requires a design to resolve against")
        return [
            design.cell_name[i]
            for i in range(design.n_cells)
            if design.cell_types[design.cell_type[i]].name == "<PORT_OUT>"
        ]
    raise SDCError(f"unsupported port expression [{expr}]")


def _split_command(line: str, design: Optional[Design]) -> tuple:
    """Split an SDC line into tokens; bracket groups become port lists."""
    ports: List[List[str]] = []

    def replace(match: "re.Match") -> str:
        ports.append(_resolve_ports(match.group(1), design))
        return f"@PORTS{len(ports) - 1}@"

    flat = _BRACKET_RE.sub(replace, line)
    tokens = shlex.split(flat)
    resolved: List[object] = []
    for token in tokens:
        m = re.fullmatch(r"@PORTS(\d+)@", token)
        resolved.append(ports[int(m.group(1))] if m else token)
    return resolved[0], resolved[1:]


def parse_sdc(
    text: str,
    design: Optional[Design] = None,
    constraints: Optional[Constraints] = None,
) -> Constraints:
    """Parse SDC text into a :class:`Constraints` object."""
    c = constraints if constraints is not None else Constraints()
    for line in _logical_lines(text):
        command, args = _split_command(line, design)
        if command == "create_clock":
            i = 0
            while i < len(args):
                arg = args[i]
                if arg == "-name":
                    i += 2
                elif arg == "-period":
                    c.clock_period = float(args[i + 1])
                    i += 2
                elif isinstance(arg, list):
                    if arg:
                        c.clock_port = arg[0]
                    i += 1
                else:
                    i += 1
        elif command in ("set_input_delay", "set_output_delay"):
            value = None
            port_list: Sequence[str] = []
            i = 0
            while i < len(args):
                arg = args[i]
                if arg == "-clock":
                    i += 2
                elif isinstance(arg, list):
                    port_list = arg
                    i += 1
                else:
                    value = float(arg)
                    i += 1
            if value is None:
                raise SDCError(f"{command} without a delay value: {line!r}")
            target = (
                c.input_delays if command == "set_input_delay" else c.output_delays
            )
            for port in port_list:
                target[port] = value
        elif command in ("set_input_transition", "set_load"):
            value = None
            port_list = []
            for arg in args:
                if isinstance(arg, list):
                    port_list = arg
                else:
                    value = float(arg)
            if value is None:
                raise SDCError(f"{command} without a value: {line!r}")
            target = (
                c.input_slews if command == "set_input_transition" else c.output_loads
            )
            for port in port_list:
                target[port] = value
        else:
            raise SDCError(f"unsupported SDC command {command!r}")
    return c


def write_sdc(constraints: Constraints, clock_name: str = "core_clk") -> str:
    """Serialise constraints to SDC text."""
    c = constraints
    lines = [
        f"create_clock -name {clock_name} -period {c.clock_period!r} "
        f"[get_ports {c.clock_port}]"
    ]
    for port, delay in sorted(c.input_delays.items()):
        lines.append(
            f"set_input_delay {delay!r} -clock {clock_name} [get_ports {port}]"
        )
    for port, delay in sorted(c.output_delays.items()):
        lines.append(
            f"set_output_delay {delay!r} -clock {clock_name} [get_ports {port}]"
        )
    for port, slew in sorted(c.input_slews.items()):
        lines.append(f"set_input_transition {slew!r} [get_ports {port}]")
    for port, load in sorted(c.output_loads.items()):
        lines.append(f"set_load {load!r} [get_ports {port}]")
    return "\n".join(lines) + "\n"


def read_sdc_file(path: str, design: Optional[Design] = None) -> Constraints:
    """Read and parse an SDC file."""
    with open(path) as handle:
        return parse_sdc(handle.read(), design)


def write_sdc_file(constraints: Constraints, path: str) -> None:
    """Write constraints to an SDC file."""
    with open(path, "w") as handle:
        handle.write(write_sdc(constraints))
