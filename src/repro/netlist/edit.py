"""Netlist editing: rebuild designs with modifications (ECO operations).

:class:`Design` is a frozen array-of-structs view, so edits work by
reconstructing through :class:`DesignBuilder`: :func:`clone_design`
reproduces a design exactly (useful on its own and as the editing
substrate), and :func:`insert_buffer` performs the classic timing ECO -
splitting a net by driving a chosen subset of its sinks through a new
buffer cell placed at a given location.  The timing-driven buffering
optimizer in :mod:`repro.place.buffering` builds on these.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .design import Design, DesignBuilder, PORT_IN_TYPE, PORT_OUT_TYPE

__all__ = ["clone_design", "insert_buffer"]


def _pin_ref(design: Design, pin: int) -> str:
    """Builder-style reference ("cell/pin" or bare port name) of a pin."""
    cell = int(design.pin2cell[pin])
    type_name = design.cell_types[design.cell_type[cell]].name
    if type_name in (PORT_IN_TYPE, PORT_OUT_TYPE):
        return design.cell_name[cell]
    return design.pin_name[pin]


def _builder_from(design: Design) -> DesignBuilder:
    """A builder pre-loaded with every cell (and position) of a design."""
    builder = DesignBuilder(
        design.name,
        design.library,
        die=design.die,
        row_height=design.row_height,
        constraints=design.constraints,
    )
    for ci in range(design.n_cells):
        type_name = design.cell_types[design.cell_type[ci]].name
        x = float(design.cell_x[ci])
        y = float(design.cell_y[ci])
        if type_name == PORT_IN_TYPE:
            builder.add_input(design.cell_name[ci], x=x, y=y)
        elif type_name == PORT_OUT_TYPE:
            builder.add_output(design.cell_name[ci], x=x, y=y)
        else:
            builder.add_cell(
                design.cell_name[ci],
                type_name,
                x=x,
                y=y,
                fixed=bool(design.cell_fixed[ci]),
            )
    return builder


def clone_design(design: Design) -> Design:
    """Reconstruct an identical design (same cells, nets, positions)."""
    builder = _builder_from(design)
    for ni in range(design.n_nets):
        refs = [_pin_ref(design, int(p)) for p in design.net_pins(ni)]
        builder.add_net(design.net_name[ni], refs)
    return builder.build()


def insert_buffer(
    design: Design,
    net: int,
    moved_sinks: Sequence[int],
    position: Tuple[float, float],
    buffer_type: str = "BUF_X2",
    name: Optional[str] = None,
) -> Design:
    """Drive ``moved_sinks`` of ``net`` through a new buffer at ``position``.

    The original net keeps its driver, the remaining sinks, and the
    buffer's input; a new net connects the buffer output to the moved
    sinks.  Returns the rebuilt design (cell positions preserved; the new
    buffer is movable and may need legalization).

    Raises ``ValueError`` for clock nets, empty or complete sink subsets,
    or sinks that are not on the net.
    """
    if design.net_is_clock[net]:
        raise ValueError("refusing to buffer the clock net")
    pins = design.net_pins(net)
    driver = int(design.net_driver[net])
    sinks = set(int(p) for p in pins if p != driver)
    moved = set(int(p) for p in moved_sinks)
    if not moved:
        raise ValueError("no sinks selected for buffering")
    if not moved <= sinks:
        raise ValueError("moved sinks must be sink pins of the net")
    if moved == sinks and len(sinks) == 1:
        # Repeater on a 2-pin net is allowed (splits the wire).
        pass

    buffer_cell = design.library[buffer_type]
    in_pin = buffer_cell.input_pins[0].name
    out_pin = buffer_cell.output_pins[0].name
    if name is None:
        base = f"eco_buf{design.n_cells}"
        name = base
        k = 0
        existing = set(design.cell_name)
        while name in existing:
            k += 1
            name = f"{base}_{k}"

    builder = _builder_from(design)
    builder.add_cell(name, buffer_type, x=position[0], y=position[1])

    for ni in range(design.n_nets):
        refs = [_pin_ref(design, int(p)) for p in design.net_pins(ni)]
        if ni == net:
            keep = [
                _pin_ref(design, int(p))
                for p in design.net_pins(ni)
                if int(p) not in moved
            ]
            builder.add_net(design.net_name[ni], keep + [f"{name}/{in_pin}"])
        else:
            builder.add_net(design.net_name[ni], refs)
    builder.add_net(
        f"{design.net_name[net]}_buf",
        [f"{name}/{out_pin}"] + [_pin_ref(design, p) for p in sorted(moved)],
    )
    return builder.build()
