"""Liberty (.lib) subset writer and parser.

Supports the slice of the Liberty format that NLDM timing needs: the
``library``/``cell``/``pin``/``timing`` group hierarchy, simple and complex
attributes, ``index_1``/``index_2``/``values`` tables, unateness, timing
types (combinational, rising_edge, setup_rising, hold_rising), pin
capacitance/direction, and a ``wire_load`` group for the per-unit RC used by
the Elmore model.

The module round-trips the synthetic library of
:func:`repro.netlist.library.default_library`: ``parse_liberty(write_liberty
(lib))`` reproduces every LUT bit-exactly, which the test-suite asserts.
Cell geometry, which standard Liberty does not carry, is emitted as the
vendor-style attributes ``repro_width``/``repro_height`` (with ``area`` kept
consistent).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from .library import (
    ArcKind,
    CellType,
    Library,
    PinDirection,
    PinSpec,
    TimingArc,
    Unateness,
    WireModel,
)
from .lut import LUT

__all__ = [
    "LibertyGroup",
    "LibertyError",
    "parse_liberty",
    "parse_liberty_groups",
    "write_liberty",
    "read_liberty_file",
    "write_liberty_file",
]


class LibertyError(ValueError):
    """Raised on malformed Liberty input."""


# ----------------------------------------------------------------------
# Generic group tree
# ----------------------------------------------------------------------
@dataclass
class LibertyGroup:
    """A generic Liberty group: ``kind (args) { attrs; subgroups }``."""

    kind: str
    args: List[str] = field(default_factory=list)
    attrs: Dict[str, Union[str, float]] = field(default_factory=dict)
    complex_attrs: Dict[str, List[List[str]]] = field(default_factory=dict)
    groups: List["LibertyGroup"] = field(default_factory=list)

    def subgroups(self, kind: str) -> List["LibertyGroup"]:
        return [g for g in self.groups if g.kind == kind]

    def first(self, kind: str) -> Optional["LibertyGroup"]:
        for g in self.groups:
            if g.kind == kind:
                return g
        return None

    def get_float(self, name: str, default: float = 0.0) -> float:
        value = self.attrs.get(name, default)
        try:
            return float(value)
        except (TypeError, ValueError):
            raise LibertyError(f"attribute {name!r} is not numeric: {value!r}")


_TOKEN_RE = re.compile(
    r"""
    \s+
    | /\*.*?\*/
    | //[^\n]*
    | \\\n
    | (?P<string>"(?:[^"\\]|\\.)*")
    | (?P<punct>[{}();:,])
    | (?P<word>[^\s{}();:,"]+)
    """,
    re.VERBOSE | re.DOTALL,
)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise LibertyError(f"unexpected character at offset {pos}: {text[pos]!r}")
        pos = m.end()
        if m.lastgroup == "string":
            tokens.append(m.group("string"))
        elif m.lastgroup in ("punct", "word"):
            tokens.append(m.group(m.lastgroup))
    return tokens


def _unquote(token: str) -> str:
    if len(token) >= 2 and token[0] == '"' and token[-1] == '"':
        return token[1:-1].replace("\\\n", " ").replace('\\"', '"')
    return token


class _Parser:
    def __init__(self, tokens: List[str]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise LibertyError("unexpected end of input")
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise LibertyError(f"expected {token!r}, got {got!r}")

    def parse_group(self) -> LibertyGroup:
        kind = self.next()
        self.expect("(")
        args: List[str] = []
        while self.peek() != ")":
            token = self.next()
            if token != ",":
                args.append(_unquote(token))
        self.expect(")")
        self.expect("{")
        group = LibertyGroup(kind=kind, args=args)
        while True:
            token = self.peek()
            if token is None:
                raise LibertyError(f"unterminated group {kind!r}")
            if token == "}":
                self.next()
                if self.peek() == ";":
                    self.next()
                return group
            self._parse_statement(group)

    def _parse_statement(self, group: LibertyGroup) -> None:
        name = self.next()
        token = self.peek()
        if token == ":":
            self.next()
            parts = []
            while self.peek() not in (";", "}", None):
                parts.append(_unquote(self.next()))
            if self.peek() == ";":
                self.next()
            group.attrs[name] = " ".join(parts)
        elif token == "(":
            # Complex attribute or subgroup: decide by what follows ')'.
            depth = 0
            k = self.pos
            while k < len(self.tokens):
                if self.tokens[k] == "(":
                    depth += 1
                elif self.tokens[k] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                k += 1
            follower = self.tokens[k + 1] if k + 1 < len(self.tokens) else None
            if follower == "{":
                self.pos -= 1
                group.groups.append(self.parse_group())
            else:
                self.next()  # '('
                args: List[str] = []
                while self.peek() != ")":
                    token = self.next()
                    if token != ",":
                        args.append(_unquote(token))
                self.expect(")")
                if self.peek() == ";":
                    self.next()
                group.complex_attrs.setdefault(name, []).append(args)
        else:
            raise LibertyError(f"unexpected token {token!r} after {name!r}")


def parse_liberty_groups(text: str) -> LibertyGroup:
    """Parse Liberty text into its generic group tree (root = ``library``)."""
    parser = _Parser(_tokenize(text))
    root = parser.parse_group()
    if root.kind != "library":
        raise LibertyError(f"top-level group is {root.kind!r}, expected 'library'")
    if parser.peek() is not None:
        raise LibertyError(f"trailing tokens after library group: {parser.peek()!r}")
    return root


# ----------------------------------------------------------------------
# Group tree -> Library
# ----------------------------------------------------------------------
def _values_to_array(args: List[List[str]]) -> np.ndarray:
    rows = []
    for arg_list in args:
        for arg in arg_list:
            rows.append([float(v) for v in arg.replace(",", " ").split()])
    return np.asarray(rows, dtype=np.float64)


def _parse_lut(table: LibertyGroup) -> LUT:
    index_1 = table.complex_attrs.get("index_1")
    index_2 = table.complex_attrs.get("index_2")
    values = table.complex_attrs.get("values")
    if values is None:
        raise LibertyError(f"table {table.kind!r} missing values()")
    matrix = _values_to_array(values)
    x = _values_to_array(index_1).ravel() if index_1 else np.array([0.0])
    y = _values_to_array(index_2).ravel() if index_2 else np.array([0.0])
    return LUT(x, y, matrix.reshape(len(x), len(y)), name=table.kind)


_TIMING_TYPE_TO_KIND = {
    "combinational": ArcKind.COMBINATIONAL,
    "rising_edge": ArcKind.CLOCK_TO_Q,
    "setup_rising": ArcKind.SETUP,
    "hold_rising": ArcKind.HOLD,
}
_KIND_TO_TIMING_TYPE = {v: k for k, v in _TIMING_TYPE_TO_KIND.items()}

_SENSE_TO_UNATENESS = {
    "positive_unate": Unateness.POSITIVE,
    "negative_unate": Unateness.NEGATIVE,
    "non_unate": Unateness.NON_UNATE,
}


def _parse_timing(pin_name: str, timing: LibertyGroup) -> TimingArc:
    related = str(timing.attrs.get("related_pin", "")).strip()
    if not related:
        raise LibertyError(f"timing group under pin {pin_name!r} has no related_pin")
    kind = _TIMING_TYPE_TO_KIND.get(
        str(timing.attrs.get("timing_type", "combinational")).strip(),
        ArcKind.COMBINATIONAL,
    )
    sense = _SENSE_TO_UNATENESS.get(
        str(timing.attrs.get("timing_sense", "non_unate")).strip(),
        Unateness.NON_UNATE,
    )
    luts: Dict[str, Optional[LUT]] = {}
    for table_kind in (
        "cell_rise",
        "cell_fall",
        "rise_transition",
        "fall_transition",
        "rise_constraint",
        "fall_constraint",
    ):
        table = timing.first(table_kind)
        luts[table_kind] = _parse_lut(table) if table is not None else None
    return TimingArc(
        from_pin=related,
        to_pin=pin_name,
        kind=kind,
        unateness=sense,
        **luts,
    )


def _parse_cell(group: LibertyGroup, row_height: float) -> CellType:
    name = group.args[0] if group.args else "<anon>"
    area = group.get_float("area", 0.0)
    height = group.get_float("repro_height", row_height)
    width = group.get_float("repro_width", area / height if height > 0 else 0.0)
    is_sequential = group.first("ff") is not None
    pins: List[PinSpec] = []
    arcs: List[TimingArc] = []
    function = ""
    for pin_group in group.subgroups("pin"):
        pin_name = pin_group.args[0]
        direction = PinDirection(str(pin_group.attrs.get("direction", "input")).strip())
        max_cap = pin_group.attrs.get("max_capacitance")
        pins.append(
            PinSpec(
                name=pin_name,
                direction=direction,
                capacitance=pin_group.get_float("capacitance", 0.0),
                is_clock=str(pin_group.attrs.get("clock", "false")).strip() == "true",
                max_capacitance=float(max_cap) if max_cap is not None else None,
            )
        )
        if "function" in pin_group.attrs and direction is PinDirection.OUTPUT:
            function = str(pin_group.attrs["function"]).strip()
        for timing in pin_group.subgroups("timing"):
            arcs.append(_parse_timing(pin_name, timing))
    return CellType(
        name=name,
        width=width,
        height=height,
        pins=pins,
        arcs=arcs,
        is_sequential=is_sequential,
        function=function,
    )


def parse_liberty(text: str) -> Library:
    """Parse Liberty text into a :class:`~repro.netlist.library.Library`."""
    root = parse_liberty_groups(text)
    lib = Library(name=root.args[0] if root.args else "unnamed")
    lib.time_unit = str(root.attrs.get("time_unit", "1ps")).strip()
    lib.default_input_slew = (
        float(root.attrs["default_input_slew"])
        if "default_input_slew" in root.attrs
        else lib.default_input_slew
    )
    wire_group = root.first("wire_load")
    if wire_group is not None:
        lib.wire = WireModel(
            res_per_um=wire_group.get_float("resistance", lib.wire.res_per_um),
            cap_per_um=wire_group.get_float("capacitance", lib.wire.cap_per_um),
        )
    row_height = 2.0
    for cell_group in root.subgroups("cell"):
        if "repro_height" in cell_group.attrs:
            row_height = cell_group.get_float("repro_height", row_height)
            break
    for cell_group in root.subgroups("cell"):
        lib.add(_parse_cell(cell_group, row_height))
    return lib


def read_liberty_file(path: str) -> Library:
    """Read and parse a Liberty file."""
    with open(path) as handle:
        return parse_liberty(handle.read())


# ----------------------------------------------------------------------
# Library -> Liberty text
# ----------------------------------------------------------------------
def _fmt(value: float) -> str:
    # repr() of a float is the shortest string that round-trips exactly,
    # which keeps write->parse LUT round-trips bit-exact.
    return repr(float(value))


def _emit_lut(lines: List[str], indent: str, kind: str, lut: LUT) -> None:
    lines.append(f"{indent}{kind} (lut_{lut.values.shape[0]}x{lut.values.shape[1]}) {{")
    inner = indent + "  "
    lines.append(
        f'{inner}index_1 ("{", ".join(_fmt(v) for v in lut.x)}");'
    )
    lines.append(
        f'{inner}index_2 ("{", ".join(_fmt(v) for v in lut.y)}");'
    )
    rows = ", \\\n".join(
        f'{inner}  "{", ".join(_fmt(v) for v in row)}"' for row in lut.values
    )
    lines.append(f"{inner}values ( \\\n{rows});")
    lines.append(f"{indent}}}")


_SENSE_FROM_UNATENESS = {v: k for k, v in _SENSE_TO_UNATENESS.items()}


def write_liberty(lib: Library) -> str:
    """Serialise a :class:`Library` to Liberty text."""
    lines: List[str] = [f"library ({lib.name}) {{"]
    lines.append(f'  time_unit : "{lib.time_unit}";')
    lines.append(f'  capacitive_load_unit (1, ff);')
    lines.append(f"  default_input_slew : {_fmt(lib.default_input_slew)};")
    lines.append('  wire_load ("default") {')
    lines.append(f"    resistance : {_fmt(lib.wire.res_per_um)};")
    lines.append(f"    capacitance : {_fmt(lib.wire.cap_per_um)};")
    lines.append("  }")
    for cell in lib:
        lines.append(f"  cell ({cell.name}) {{")
        lines.append(f"    area : {_fmt(cell.area)};")
        lines.append(f"    repro_width : {_fmt(cell.width)};")
        lines.append(f"    repro_height : {_fmt(cell.height)};")
        if cell.is_sequential:
            lines.append('    ff (IQ, IQN) {')
            lines.append('      clocked_on : "CK";')
            lines.append('      next_state : "D";')
            lines.append("    }")
        arcs_by_pin: Dict[str, List[TimingArc]] = {}
        for arc in cell.arcs:
            arcs_by_pin.setdefault(arc.to_pin, []).append(arc)
        for pin in cell.pins:
            lines.append(f"    pin ({pin.name}) {{")
            lines.append(f"      direction : {pin.direction.value};")
            if pin.direction is PinDirection.INPUT:
                lines.append(f"      capacitance : {_fmt(pin.capacitance)};")
            if pin.is_clock:
                lines.append("      clock : true;")
            if pin.max_capacitance is not None:
                lines.append(f"      max_capacitance : {_fmt(pin.max_capacitance)};")
            if pin.direction is PinDirection.OUTPUT and cell.function:
                lines.append(f'      function : "{cell.function}";')
            for arc in arcs_by_pin.get(pin.name, []):
                lines.append("      timing () {")
                lines.append(f'        related_pin : "{arc.from_pin}";')
                lines.append(f"        timing_type : {_KIND_TO_TIMING_TYPE[arc.kind]};")
                if arc.kind.is_delay_arc:
                    lines.append(
                        f"        timing_sense : {_SENSE_FROM_UNATENESS[arc.unateness]};"
                    )
                for kind_name in (
                    "cell_rise",
                    "cell_fall",
                    "rise_transition",
                    "fall_transition",
                    "rise_constraint",
                    "fall_constraint",
                ):
                    lut = getattr(arc, kind_name)
                    if lut is not None:
                        _emit_lut(lines, "        ", kind_name, lut)
                lines.append("      }")
            lines.append("    }")
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines) + "\n"


def write_liberty_file(lib: Library, path: str) -> None:
    """Serialise a library to a ``.lib`` file."""
    with open(path, "w") as handle:
        handle.write(write_liberty(lib))
