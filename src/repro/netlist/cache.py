"""Content-keyed on-disk cache of generated design bundles.

Generating a midiblue-scale design and levelizing its timing graph costs
seconds; the suite runner used to pay that cost *per task per process*,
which is why ``BENCH_placer.json`` once recorded a 0.99x parallel
"speedup".  This module makes design construction happen once, ever:

- a **bundle** is the immutable design state every run needs - the
  :class:`~repro.netlist.design.Design` (netlist CSRs, library with its
  NLDM LUTs, constraints) plus the levelized
  :class:`~repro.sta.graph.TimingGraph` (banked LUT tables, arc tables
  sorted by level) built from it;
- bundles are pickled to ``benchmarks/.design_cache/`` (override with
  ``REPRO_DESIGN_CACHE`` or an explicit ``cache_dir=``), keyed by the
  full :class:`~repro.netlist.generator.GeneratorSpec` (generator name,
  every parameter, seed) *and* a hash of the generator source, so any
  change to the generator code or a single knob invalidates the entry;
- files carry a magic header and a SHA-256 payload checksum: a
  truncated, corrupted or stale-format file is detected, reported as a
  miss and regenerated in place (atomic ``os.replace``), never trusted;
- a per-process memo returns the same bundle object for repeated loads,
  which is what makes the suite runner's workers *warm*: the process
  unpickles a design once and every subsequent task reuses it (designs
  are never mutated by runs - the placers copy the coordinate arrays).

Pickle round-trips NumPy float arrays bit-exactly, so a cache hit is
bit-identical to regeneration; ``tests/test_netlist_cache.py`` holds that
contract.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..perf import PROFILER
from .design import Design
from .generator import GeneratorSpec, generate_design

__all__ = [
    "DEFAULT_CACHE_DIR",
    "CACHE_ENV_VAR",
    "DesignBundle",
    "CacheInfo",
    "cache_dir",
    "design_cache_key",
    "generator_code_version",
    "load_bundle",
    "ensure_cached",
    "clear_memo",
]

#: Default cache location (relative to the working directory, matching
#: where the benchmark scripts run from).
DEFAULT_CACHE_DIR = os.path.join("benchmarks", ".design_cache")

#: Environment override for the cache directory.
CACHE_ENV_VAR = "REPRO_DESIGN_CACHE"

#: Bundle file magic + format version.  Bump when the payload layout
#: changes; old files then read as misses and are regenerated.
_MAGIC = b"RDCB0001"

_CHECKSUM_BYTES = hashlib.sha256(b"").digest_size


@dataclass
class DesignBundle:
    """Immutable per-design state shared by every run on that design."""

    design: Design
    #: Levelized timing graph (arc tables + banked NLDM LUTs).  Built at
    #: generation time so warm consumers skip the per-run rebuild.
    graph: Any  # TimingGraph; typed loosely to avoid a sta import cycle
    #: Cache key the bundle was stored under.
    key: str = ""
    #: JSON-ready snapshot of the producing GeneratorSpec.
    spec: Dict[str, Any] = field(default_factory=dict)


@dataclass
class CacheInfo:
    """Provenance of one bundle load (recorded in telemetry manifests)."""

    key: str
    path: str
    hit: bool
    #: True when an existing file failed validation and was regenerated.
    corrupt_recovered: bool = False
    #: Seconds spent generating + levelizing (miss) / unpickling (hit).
    setup_s: float = 0.0
    #: Load was served from the per-process memo (no disk touched).
    memo_hit: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


#: Per-process bundle memo: (cache key) -> DesignBundle.
_MEMO: Dict[str, DesignBundle] = {}

_CODE_VERSION: Optional[str] = None


def cache_dir(explicit: Optional[str] = None) -> str:
    """Resolve the cache directory: explicit > env override > default."""
    if explicit:
        return explicit
    return os.environ.get(CACHE_ENV_VAR) or DEFAULT_CACHE_DIR


def generator_code_version() -> str:
    """Hash of the generator source: code changes invalidate the cache."""
    global _CODE_VERSION
    if _CODE_VERSION is None:
        from . import generator as _generator_module

        with open(_generator_module.__file__, "rb") as handle:
            _CODE_VERSION = hashlib.sha256(handle.read()).hexdigest()[:16]
    return _CODE_VERSION


def _spec_snapshot(spec: GeneratorSpec) -> Dict[str, Any]:
    """JSON-stable view of every generator knob."""
    return asdict(spec)


def design_cache_key(spec: GeneratorSpec) -> str:
    """Content key: generator name + every param + seed + code version."""
    payload = json.dumps(
        {
            "spec": _spec_snapshot(spec),
            "generator_code": generator_code_version(),
            "format": _MAGIC.decode("ascii"),
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


def _bundle_path(directory: str, spec: GeneratorSpec, key: str) -> str:
    return os.path.join(directory, f"{spec.name}-{key[:16]}.bundle.pkl")


def _build_bundle(spec: GeneratorSpec, key: str) -> DesignBundle:
    from ..sta.graph import TimingGraph

    design = generate_design(spec)
    return DesignBundle(
        design=design,
        graph=TimingGraph(design),
        key=key,
        spec=_spec_snapshot(spec),
    )


def _read_bundle(path: str, key: str) -> Optional[DesignBundle]:
    """Load + verify one bundle file; ``None`` on any validation failure."""
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError:
        return None
    header = len(_MAGIC) + _CHECKSUM_BYTES
    if len(blob) <= header or not blob.startswith(_MAGIC):
        return None
    checksum = blob[len(_MAGIC):header]
    payload = blob[header:]
    if hashlib.sha256(payload).digest() != checksum:
        return None
    try:
        bundle = pickle.loads(payload)
    except Exception:
        return None
    if not isinstance(bundle, DesignBundle) or bundle.key != key:
        return None
    return bundle


def _write_bundle(path: str, bundle: DesignBundle) -> None:
    """Atomic write: concurrent writers race benignly to identical bytes."""
    payload = pickle.dumps(bundle, protocol=pickle.HIGHEST_PROTOCOL)
    blob = _MAGIC + hashlib.sha256(payload).digest() + payload
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as handle:
        handle.write(blob)
    os.replace(tmp, path)


def load_bundle(
    spec: GeneratorSpec,
    directory: Optional[str] = None,
    memoize: bool = True,
) -> Tuple[DesignBundle, CacheInfo]:
    """The bundle for ``spec``: memo > disk > generate-and-store.

    Returns ``(bundle, info)`` where ``info`` records the key, hit/miss,
    corruption recovery, and the setup wall-clock spent.
    """
    key = design_cache_key(spec)
    base = cache_dir(directory)
    path = _bundle_path(base, spec, key)
    if memoize and key in _MEMO:
        return _MEMO[key], CacheInfo(
            key=key, path=path, hit=True, memo_hit=True
        )

    with PROFILER.stage("netlist.design_cache"):
        t0 = time.perf_counter()
        existed = os.path.exists(path)
        bundle = _read_bundle(path, key)
        hit = bundle is not None
        if bundle is None:
            bundle = _build_bundle(spec, key)
            _write_bundle(path, bundle)
        info = CacheInfo(
            key=key,
            path=path,
            hit=hit,
            corrupt_recovered=existed and not hit,
            setup_s=time.perf_counter() - t0,
        )
    if memoize:
        _MEMO[key] = bundle
    return bundle, info


def ensure_cached(
    spec: GeneratorSpec, directory: Optional[str] = None
) -> CacheInfo:
    """Populate the on-disk entry without keeping the bundle in memory.

    Used by the suite runner's parent process before fanning out, so
    spawned workers always hit a valid file instead of racing to
    generate the same design.
    """
    _, info = load_bundle(spec, directory=directory, memoize=False)
    return info


def clear_memo() -> None:
    """Drop the per-process memo (tests; frees large bundles)."""
    _MEMO.clear()
