"""Two-dimensional lookup tables in the NLDM (non-linear delay model) style.

A :class:`LUT` is an ``N x M`` value matrix with two monotonically increasing
index vectors.  Queries are answered by bilinear interpolation inside the
table and by linear extrapolation outside of it, exactly as a conventional
STA engine treats Liberty ``values`` groups (and as Figure 6 of the paper
describes).  The scalar implementation here is the reference model; the
batched, differentiable kernel used by the placer lives in
:mod:`repro.core.lut_grad` and is tested against this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["LUT"]


def _segment_index(axis: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Return the index of the interpolation segment for each query point.

    The result ``i`` satisfies ``axis[i] <= q < axis[i + 1]`` for in-range
    queries and is clamped to the first/last segment otherwise, which yields
    linear extrapolation when used with the standard interpolation formula.
    """
    idx = np.searchsorted(axis, query, side="right") - 1
    return np.clip(idx, 0, max(len(axis) - 2, 0))


@dataclass
class LUT:
    """A 2-D lookup table ``values[i, j]`` indexed by ``(x[i], y[j])``.

    In NLDM delay/slew tables ``x`` is the input transition (slew) axis and
    ``y`` is the output load (capacitance) axis.  Degenerate tables with a
    single row and/or column behave as constants along that axis.
    """

    x: np.ndarray
    y: np.ndarray
    values: np.ndarray
    name: str = field(default="")

    def __post_init__(self) -> None:
        self.x = np.atleast_1d(np.asarray(self.x, dtype=np.float64))
        self.y = np.atleast_1d(np.asarray(self.y, dtype=np.float64))
        self.values = np.asarray(self.values, dtype=np.float64).reshape(
            len(self.x), len(self.y)
        )
        if len(self.x) > 1 and np.any(np.diff(self.x) <= 0):
            raise ValueError(f"LUT {self.name!r}: x axis must be increasing")
        if len(self.y) > 1 and np.any(np.diff(self.y) <= 0):
            raise ValueError(f"LUT {self.name!r}: y axis must be increasing")

    @property
    def shape(self) -> tuple:
        return self.values.shape

    @classmethod
    def constant(cls, value: float, name: str = "") -> "LUT":
        """A 1x1 table that returns ``value`` for every query."""
        return cls(np.array([0.0]), np.array([0.0]), np.array([[value]]), name)

    def lookup(self, x, y):
        """Bilinearly interpolate (or linearly extrapolate) at ``(x, y)``.

        Both arguments broadcast; the result has the broadcast shape.
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        x, y = np.broadcast_arrays(x, y)
        out, _, _ = self.lookup_with_grad(x, y)
        return out if out.shape else float(out)

    def lookup_with_grad(self, x, y):
        """Return ``(value, d value/d x, d value/d y)`` at the query points.

        Within an interpolation cell the surface is bilinear, so the partial
        derivatives are themselves 1-D interpolations (Figure 6 of the
        paper).  On cell boundaries the right-sided derivative is returned.
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        x, y = np.broadcast_arrays(x, y)

        if len(self.x) == 1 and len(self.y) == 1:
            v = np.full(x.shape, self.values[0, 0])
            z = np.zeros_like(v)
            return v, z, z

        if len(self.x) == 1:
            j = _segment_index(self.y, y)
            y0, y1 = self.y[j], self.y[j + 1]
            v0, v1 = self.values[0, j], self.values[0, j + 1]
            t = (y - y0) / (y1 - y0)
            val = v0 + t * (v1 - v0)
            return val, np.zeros_like(val), (v1 - v0) / (y1 - y0)

        if len(self.y) == 1:
            i = _segment_index(self.x, x)
            x0, x1 = self.x[i], self.x[i + 1]
            v0, v1 = self.values[i, 0], self.values[i + 1, 0]
            t = (x - x0) / (x1 - x0)
            val = v0 + t * (v1 - v0)
            return val, (v1 - v0) / (x1 - x0), np.zeros_like(val)

        i = _segment_index(self.x, x)
        j = _segment_index(self.y, y)
        x0, x1 = self.x[i], self.x[i + 1]
        y0, y1 = self.y[j], self.y[j + 1]
        q00 = self.values[i, j]
        q01 = self.values[i, j + 1]
        q10 = self.values[i + 1, j]
        q11 = self.values[i + 1, j + 1]
        tx = (x - x0) / (x1 - x0)
        ty = (y - y0) / (y1 - y0)
        # Two 1-D interpolations along y, then one along x.
        v0 = q00 + ty * (q01 - q00)
        v1 = q10 + ty * (q11 - q10)
        val = v0 + tx * (v1 - v0)
        dval_dx = (v1 - v0) / (x1 - x0)
        d0 = (q01 - q00) / (y1 - y0)
        d1 = (q11 - q10) / (y1 - y0)
        dval_dy = d0 + tx * (d1 - d0)
        return val, dval_dx, dval_dy

    def __eq__(self, other) -> bool:
        if not isinstance(other, LUT):
            return NotImplemented
        return (
            self.values.shape == other.values.shape
            and np.allclose(self.x, other.x)
            and np.allclose(self.y, other.y)
            and np.allclose(self.values, other.values)
        )

    def __repr__(self) -> str:
        return f"LUT({self.name!r}, shape={self.values.shape})"
