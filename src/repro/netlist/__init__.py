"""Circuit data model: library, design, parsers, and benchmark generation."""

from .lut import LUT
from .library import (
    ArcKind,
    CellType,
    FALL,
    Library,
    PinDirection,
    PinSpec,
    RISE,
    TimingArc,
    Unateness,
    WireModel,
    default_library,
)
from .design import Constraints, Design, DesignBuilder
from .liberty import (
    LibertyError,
    parse_liberty,
    read_liberty_file,
    write_liberty,
    write_liberty_file,
)
from .sdc import SDCError, parse_sdc, read_sdc_file, write_sdc, write_sdc_file
from .bookshelf import (
    BookshelfData,
    load_placement,
    read_bookshelf,
    save_placement,
    write_bookshelf,
)
from .generator import GeneratorSpec, generate_design, make_chain_design
from .verilog import (
    VerilogError,
    parse_verilog,
    read_verilog_file,
    write_verilog,
    write_verilog_file,
)
from .def_io import (
    DefData,
    DefError,
    apply_def_placement,
    parse_def,
    read_def_file,
    write_def,
    write_def_file,
)
from .bundle import load_design_bundle, save_design
from .cache import (
    CacheInfo,
    DesignBundle,
    design_cache_key,
    ensure_cached,
    load_bundle,
)
from .edit import clone_design, insert_buffer

__all__ = [
    "LUT",
    "ArcKind",
    "CellType",
    "FALL",
    "Library",
    "PinDirection",
    "PinSpec",
    "RISE",
    "TimingArc",
    "Unateness",
    "WireModel",
    "default_library",
    "Constraints",
    "Design",
    "DesignBuilder",
    "LibertyError",
    "parse_liberty",
    "read_liberty_file",
    "write_liberty",
    "write_liberty_file",
    "SDCError",
    "parse_sdc",
    "read_sdc_file",
    "write_sdc",
    "write_sdc_file",
    "BookshelfData",
    "load_placement",
    "read_bookshelf",
    "save_placement",
    "write_bookshelf",
    "GeneratorSpec",
    "generate_design",
    "make_chain_design",
    "VerilogError",
    "parse_verilog",
    "read_verilog_file",
    "write_verilog",
    "write_verilog_file",
    "DefData",
    "DefError",
    "apply_def_placement",
    "parse_def",
    "read_def_file",
    "write_def",
    "write_def_file",
    "load_design_bundle",
    "save_design",
    "CacheInfo",
    "DesignBundle",
    "design_cache_key",
    "ensure_cached",
    "load_bundle",
    "clone_design",
    "insert_buffer",
]
