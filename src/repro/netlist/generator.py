"""Synthetic benchmark generation.

The ICCAD 2015 contest designs evaluated by the paper are proprietary, so
the benchmark suite here is generated: layered sequential netlists with
deep combinational paths, realistic fanout distributions, a single ideal
clock, and die areas sized to a target utilisation.  The statistical knobs
(cell count, logic depth, fanout mix, FF fraction) are what the paper's
algorithms are sensitive to; see DESIGN.md for the substitution rationale.

Two entry points:

- :func:`generate_design` - fully parameterised generator.
- :func:`make_chain_design` - a tiny inverter/buffer chain for unit tests.

Two construction engines sit behind :func:`generate_design`, selected by
``GeneratorSpec.engine``:

- ``"reference"`` (default) - the original scalar generator.  Its signal
  pool re-scans every candidate driver per connection, which is O(n^2) in
  cell count: perfect for the ~1-2.5k-cell miniblue suite, hopeless past
  ~10k cells.  Every published miniblue design keeps using this engine so
  their netlists (and all downstream metrics) stay bit-identical.
- ``"vectorized"`` - an O(n) layered engine for the midiblue designs
  (50k-500k cells): cell types, per-layer driver picks and lookback
  connections are all drawn as NumPy batches, and the dangling-output
  sweep works on arrays.  Same structural guarantees as the reference
  engine (strictly layer-forward connections, hence acyclic; every net
  driven and sunk; single ideal clock), different - but equally
  deterministic - netlists.

The miniblue/midiblue suites (Table 2 equivalent) are defined in
:mod:`repro.harness.suite` on top of :func:`generate_design`.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .design import Constraints, Design, DesignBuilder
from .library import Library, PinDirection, default_library

__all__ = ["GeneratorSpec", "generate_design", "make_chain_design"]


@dataclass
class GeneratorSpec:
    """Knobs for :func:`generate_design`."""

    name: str = "synthetic"
    n_cells: int = 1000
    depth: int = 16
    ff_fraction: float = 0.12
    n_inputs: int = 24
    n_outputs: int = 24
    utilization: float = 0.70
    max_fanout: int = 8
    n_high_fanout_nets: int = 4
    high_fanout: int = 16
    clock_period: Optional[float] = None
    period_tightness: float = 0.75
    seed: int = 0
    #: Construction engine: "reference" (scalar, bit-stable for the
    #: existing miniblue suite) or "vectorized" (O(n), for 50k+ cells).
    engine: str = "reference"
    comb_type_weights: Dict[str, float] = field(
        default_factory=lambda: {
            "INV_X1": 0.14,
            "INV_X2": 0.05,
            "BUF_X1": 0.06,
            "NAND2_X1": 0.18,
            "NOR2_X1": 0.11,
            "AND2_X1": 0.13,
            "OR2_X1": 0.11,
            "XOR2_X1": 0.09,
            "MUX2_X1": 0.08,
            "INV_X4": 0.03,
            "BUF_X2": 0.02,
        }
    )


def _estimate_clock_period(spec: GeneratorSpec) -> float:
    """Heuristic period: depth x typical loaded stage delay x tightness.

    A fanout-loaded stage of the default library costs roughly 28-40 ps
    (base delay + drive resistance x a few input caps + wire).  Tightness
    below 1.0 makes the initial placement violate setup, which is the
    regime the paper's experiments operate in.
    """
    stage_delay = 55.0
    ff_overhead = 60.0
    return spec.period_tightness * (spec.depth * stage_delay + ff_overhead)


class _SignalPool:
    """Tracks driver pins available for connection and their fanout."""

    def __init__(self, rng: np.random.Generator, max_fanout: int) -> None:
        self.rng = rng
        self.max_fanout = max_fanout
        self.signals: List[str] = []  # pin refs like "u3/Y" or port names
        self.level: List[int] = []
        self.fanout: List[int] = []

    def add(self, ref: str, level: int) -> None:
        self.signals.append(ref)
        self.level.append(level)
        self.fanout.append(0)

    def pick(self, min_level: int, max_level: int, prefer_unused: bool = True) -> int:
        """Pick a signal index with level in [min_level, max_level]."""
        candidates = [
            i
            for i, lv in enumerate(self.level)
            if min_level <= lv <= max_level and self.fanout[i] < self.max_fanout
        ]
        if not candidates:
            candidates = [
                i for i, lv in enumerate(self.level) if min_level <= lv <= max_level
            ]
        if not candidates:
            candidates = list(range(len(self.signals)))
        if prefer_unused:
            unused = [i for i in candidates if self.fanout[i] == 0]
            if unused and self.rng.random() < 0.6:
                candidates = unused
        weights = np.array([1.0 / (1.0 + self.fanout[i]) ** 2 for i in candidates])
        weights /= weights.sum()
        choice = int(self.rng.choice(len(candidates), p=weights))
        idx = candidates[choice]
        self.fanout[idx] += 1
        return idx

    def unused(self) -> List[int]:
        return [i for i, f in enumerate(self.fanout) if f == 0]


def generate_design(spec: GeneratorSpec, library: Optional[Library] = None) -> Design:
    """Generate a synthetic sequential design from a :class:`GeneratorSpec`."""
    lib = library if library is not None else default_library()
    if spec.engine == "reference":
        return _generate_reference(spec, lib)
    if spec.engine == "vectorized":
        return _generate_vectorized(spec, lib)
    raise ValueError(
        f"unknown generator engine {spec.engine!r}; "
        "expected 'reference' or 'vectorized'"
    )


def _make_constraints(
    spec: GeneratorSpec,
    rng: np.random.Generator,
    pi_names: Sequence[str],
    po_names: Sequence[str],
) -> Constraints:
    """Clock period plus randomized per-port boundary conditions.

    Draw order (per-PI delay then slew, per-PO delay then load) is part of
    the reference engine's bit-stability contract - do not reorder.
    """
    period = (
        spec.clock_period
        if spec.clock_period is not None
        else _estimate_clock_period(spec)
    )
    constraints = Constraints(clock_period=period, clock_port="clk")
    for name in pi_names:
        constraints.input_delays[name] = float(rng.uniform(0.0, 0.1 * period))
        constraints.input_slews[name] = float(rng.uniform(10.0, 40.0))
    for name in po_names:
        constraints.output_delays[name] = float(rng.uniform(0.0, 0.1 * period))
        constraints.output_loads[name] = float(rng.uniform(2.0, 8.0))
    return constraints


def _emit_design(
    spec: GeneratorSpec,
    lib: Library,
    constraints: Constraints,
    cell_list: Sequence[Tuple[str, str]],
    nets: Dict[str, List[str]],
    pi_names: Sequence[str],
    po_names: Sequence[str],
    collector_po: Optional[str],
    ff_names: Sequence[str],
) -> Design:
    """Die sizing from the *actual* cell list, then emission.

    Shared by both engines: everything engine-specific (connectivity,
    randomness) is already frozen into ``cell_list``/``nets``.
    """
    total_area = float(sum(lib[t].area for _, t in cell_list))
    die_area = total_area / spec.utilization
    row_h = lib["DFF_X1"].height
    side = math.sqrt(die_area)
    n_rows = max(int(round(side / row_h)), 4)
    height = n_rows * row_h
    width = die_area / height
    die = (0.0, 0.0, round(width, 3), round(height, 3))
    xl, yl, xh, yh = die

    builder = DesignBuilder(
        spec.name, lib, die=die, row_height=row_h, constraints=constraints
    )
    builder.add_input("clk", x=xl, y=yl)
    for i, name in enumerate(pi_names):
        frac = (i + 1) / (spec.n_inputs + 1)
        builder.add_input(name, x=xl, y=yl + frac * (yh - yl))
    for i, name in enumerate(po_names):
        frac = (i + 1) / (spec.n_outputs + 1)
        builder.add_output(name, x=xh, y=yl + frac * (yh - yl))
    if collector_po is not None:
        builder.add_output(collector_po, x=xh, y=yh)
    for name, type_name in cell_list:
        builder.add_cell(name, type_name)

    net_counter = 0
    for driver_ref, sinks in nets.items():
        builder.add_net(f"n{net_counter}", [driver_ref] + sinks)
        net_counter += 1
    builder.add_net("clknet", ["clk"] + [f"{name}/CK" for name in ff_names])
    return builder.build()


def _generate_reference(spec: GeneratorSpec, lib: Library) -> Design:
    """The original scalar engine (bit-stable for the miniblue suite)."""
    rng = np.random.default_rng(spec.seed)

    n_ff = max(int(spec.n_cells * spec.ff_fraction), 2)
    n_comb = max(spec.n_cells - n_ff, spec.depth)

    type_names = list(spec.comb_type_weights)
    type_probs = np.array([spec.comb_type_weights[t] for t in type_names])
    type_probs = type_probs / type_probs.sum()

    # ------------------------------------------------------------------
    # Phase 1: construct the netlist structure (no coordinates yet).
    # ------------------------------------------------------------------
    cell_list: List[Tuple[str, str]] = []  # (instance name, cell type)
    pi_names = [f"in{i}" for i in range(spec.n_inputs)]
    po_names = [f"out{i}" for i in range(spec.n_outputs)]
    constraints = _make_constraints(spec, rng, pi_names, po_names)

    pool = _SignalPool(rng, spec.max_fanout)
    for name in pi_names:
        pool.add(name, 0)
    ff_names = [f"ff{i}" for i in range(n_ff)]
    for name in ff_names:
        cell_list.append((name, "DFF_X1"))
        pool.add(f"{name}/Q", 0)

    # Layered combinational fabric.
    per_layer = [n_comb // spec.depth] * spec.depth
    for i in range(n_comb - sum(per_layer)):
        per_layer[i % spec.depth] += 1

    nets: Dict[str, List[str]] = {}  # driver ref -> sink refs

    def connect(input_ref: str, min_level: int, max_level: int) -> None:
        idx = pool.pick(min_level, max_level)
        nets.setdefault(pool.signals[idx], []).append(input_ref)

    cell_counter = 0
    for layer in range(1, spec.depth + 1):
        for _ in range(per_layer[layer - 1]):
            type_name = type_names[int(rng.choice(len(type_names), p=type_probs))]
            ctype = lib[type_name]
            cell_name = f"u{cell_counter}"
            cell_counter += 1
            cell_list.append((cell_name, type_name))
            input_pins = [p.name for p in ctype.input_pins]
            # First input comes from the previous layer to guarantee depth;
            # the rest reach back further for reconvergence.
            connect(f"{cell_name}/{input_pins[0]}", layer - 1, layer - 1)
            for pin_name in input_pins[1:]:
                lo = max(0, layer - 1 - int(rng.integers(0, 4)))
                connect(f"{cell_name}/{pin_name}", lo, layer - 1)
            out_pin = ctype.output_pins[0].name
            pool.add(f"{cell_name}/{out_pin}", layer)

    # Endpoint hookup: FF D pins and POs consume late-layer signals.
    for name in ff_names:
        connect(f"{name}/D", max(1, spec.depth - 3), spec.depth)
    for name in po_names:
        connect(name, max(1, spec.depth - 2), spec.depth)

    # A few deliberately high-fanout nets (enable/select-style signals).
    for _ in range(spec.n_high_fanout_nets):
        idx = int(rng.integers(0, len(pool.signals)))
        driver_ref = pool.signals[idx]
        if "/" not in driver_ref:
            continue
        extra = nets.setdefault(driver_ref, [])
        for _k in range(spec.high_fanout):
            buf_name = f"hf{cell_counter}"
            cell_counter += 1
            cell_list.append((buf_name, "BUF_X1"))
            extra.append(f"{buf_name}/A")
            pool.add(f"{buf_name}/Y", pool.level[idx] + 1)

    # Sweep dangling outputs into a PO via shared collector gates so every
    # net has at least one sink.
    dangling = [pool.signals[i] for i in pool.unused() if "/" in pool.signals[i]]
    collector_inputs: List[str] = list(dangling)
    while len(collector_inputs) > 1:
        next_round: List[str] = []
        for i in range(0, len(collector_inputs) - 1, 2):
            gate = f"col{cell_counter}"
            cell_counter += 1
            cell_list.append((gate, "NAND2_X1"))
            nets.setdefault(collector_inputs[i], []).append(f"{gate}/A")
            nets.setdefault(collector_inputs[i + 1], []).append(f"{gate}/B")
            next_round.append(f"{gate}/Y")
        if len(collector_inputs) % 2 == 1:
            next_round.append(collector_inputs[-1])
        collector_inputs = next_round
    collector_po = f"col_out{cell_counter}" if collector_inputs else None
    if collector_po is not None:
        constraints.output_delays[collector_po] = 0.0
        constraints.output_loads[collector_po] = 4.0
        nets.setdefault(collector_inputs[0], []).append(collector_po)

    return _emit_design(
        spec, lib, constraints, cell_list, nets,
        pi_names, po_names, collector_po, ff_names,
    )


def _generate_vectorized(spec: GeneratorSpec, lib: Library) -> Design:
    """O(n) layered engine for midiblue-scale designs (50k-500k cells).

    Connectivity is drawn as NumPy batches per layer instead of per pin:

    - each layer's first inputs cover the previous layer via a shuffled
      assignment (every previous-layer output picks up a sink before any
      gets a second one), so few signals dangle;
    - remaining inputs reach back up to 4 layers for reconvergence,
      sampled uniformly from the contiguous signal-id block of the chosen
      level range (signals are appended in level order, so a level range
      is always one contiguous id interval);
    - the dangling-output sweep, FF/PO endpoint hookups and high-fanout
      nets mirror the reference engine but operate on id arrays.

    Strictly layer-forward drivers make the netlist acyclic by
    construction; the collector tree guarantees every net has a sink.
    """
    rng = np.random.default_rng(spec.seed)

    n_ff = max(int(spec.n_cells * spec.ff_fraction), 2)
    n_comb = max(spec.n_cells - n_ff, spec.depth)

    type_names = list(spec.comb_type_weights)
    type_probs = np.array([spec.comb_type_weights[t] for t in type_names])
    type_probs = type_probs / type_probs.sum()
    type_in_pins = [
        [p.name for p in lib[t].input_pins] for t in type_names
    ]
    type_out_pin = [lib[t].output_pins[0].name for t in type_names]
    type_n_in = np.array([len(pins) for pins in type_in_pins])

    pi_names = [f"in{i}" for i in range(spec.n_inputs)]
    po_names = [f"out{i}" for i in range(spec.n_outputs)]
    constraints = _make_constraints(spec, rng, pi_names, po_names)

    cell_list: List[Tuple[str, str]] = []
    ff_names = [f"ff{i}" for i in range(n_ff)]
    cell_list.extend((name, "DFF_X1") for name in ff_names)

    # Signals are appended level block by level block: level L's driver
    # ids occupy [level_start[L], level_start[L + 1]).
    sig_refs: List[str] = list(pi_names)
    sig_refs.extend(f"{name}/Q" for name in ff_names)
    level_start: List[int] = [0, len(sig_refs)]

    per_layer = [n_comb // spec.depth] * spec.depth
    for i in range(n_comb - sum(per_layer)):
        per_layer[i % spec.depth] += 1

    # Edges accumulate as (driver signal id array, sink pin-ref list)
    # chunks; flattened once at the end.
    edge_driver: List[np.ndarray] = []
    edge_sinks: List[List[str]] = []

    cell_counter = 0
    for layer in range(1, spec.depth + 1):
        k = per_layer[layer - 1]
        t_idx = rng.choice(len(type_names), size=k, p=type_probs)
        names = [f"u{cell_counter + i}" for i in range(k)]
        cell_counter += k
        cell_list.extend(
            (names[i], type_names[t_idx[i]]) for i in range(k)
        )

        # First input: cover the previous layer before any repeats.
        prev_lo, prev_hi = level_start[layer - 1], level_start[layer]
        perm = rng.permutation(np.arange(prev_lo, prev_hi, dtype=np.int64))
        if k <= perm.size:
            first = perm[:k]
        else:
            first = np.concatenate(
                [perm, prev_lo + rng.integers(0, perm.size, size=k - perm.size)]
            )
        edge_driver.append(first)
        edge_sinks.append(
            [f"{names[i]}/{type_in_pins[t_idx[i]][0]}" for i in range(k)]
        )

        # Later inputs reach back up to 4 levels for reconvergence.
        starts = np.asarray(level_start, dtype=np.int64)
        hi = level_start[layer]
        for slot in range(1, int(type_n_in[t_idx].max(initial=1))):
            which = np.nonzero(type_n_in[t_idx] > slot)[0]
            if which.size == 0:
                continue
            lo_level = np.maximum(
                0, layer - 1 - rng.integers(0, 4, size=which.size)
            )
            lo = starts[lo_level]
            picks = lo + np.minimum(
                np.floor(rng.random(which.size) * (hi - lo)).astype(np.int64),
                hi - lo - 1,
            )
            edge_driver.append(picks)
            edge_sinks.append(
                [f"{names[i]}/{type_in_pins[t_idx[i]][slot]}" for i in which]
            )

        sig_refs.extend(f"{names[i]}/{type_out_pin[t_idx[i]]}" for i in range(k))
        level_start.append(len(sig_refs))

    # Endpoint hookup: FF D pins and POs consume late-layer signals.
    for sinks, lo_level in (
        ([f"{name}/D" for name in ff_names], max(1, spec.depth - 3)),
        (list(po_names), max(1, spec.depth - 2)),
    ):
        lo, hi = level_start[lo_level], len(sig_refs)
        edge_driver.append(lo + rng.integers(0, hi - lo, size=len(sinks)))
        edge_sinks.append(sinks)

    # A few deliberately high-fanout nets (enable/select-style signals).
    for _ in range(spec.n_high_fanout_nets):
        idx = int(rng.integers(0, len(sig_refs)))
        if "/" not in sig_refs[idx]:
            continue
        buf_names = [f"hf{cell_counter + i}" for i in range(spec.high_fanout)]
        cell_counter += spec.high_fanout
        cell_list.extend((name, "BUF_X1") for name in buf_names)
        edge_driver.append(np.full(spec.high_fanout, idx, dtype=np.int64))
        edge_sinks.append([f"{name}/A" for name in buf_names])
        # Buffer outputs register as signals; unused ones are swept below.
        sig_refs.extend(f"{name}/Y" for name in buf_names)

    # Sweep dangling cell outputs into a PO via shared collector gates so
    # every net has at least one sink (port signals may legally dangle).
    driver_ids = (
        np.concatenate(edge_driver)
        if edge_driver
        else np.empty(0, dtype=np.int64)
    )
    fanout = np.bincount(driver_ids, minlength=len(sig_refs))
    is_cell_out = np.array(["/" in ref for ref in sig_refs])
    dangling_ids = np.nonzero((fanout == 0) & is_cell_out)[0]

    ref_edges: List[Tuple[str, str]] = []  # (driver ref, sink ref)
    collector_inputs: List[str] = [sig_refs[i] for i in dangling_ids.tolist()]
    while len(collector_inputs) > 1:
        n_pairs = len(collector_inputs) // 2
        gate_names = [f"col{cell_counter + i}" for i in range(n_pairs)]
        cell_counter += n_pairs
        cell_list.extend((name, "NAND2_X1") for name in gate_names)
        for j, gate in enumerate(gate_names):
            ref_edges.append((collector_inputs[2 * j], f"{gate}/A"))
            ref_edges.append((collector_inputs[2 * j + 1], f"{gate}/B"))
        next_round = [f"{gate}/Y" for gate in gate_names]
        if len(collector_inputs) % 2 == 1:
            next_round.append(collector_inputs[-1])
        collector_inputs = next_round

    collector_po = f"col_out{cell_counter}" if collector_inputs else None
    if collector_po is not None:
        constraints.output_delays[collector_po] = 0.0
        constraints.output_loads[collector_po] = 4.0
        ref_edges.append((collector_inputs[0], collector_po))

    # Group sinks by driver, preserving first-appearance net order.
    nets: Dict[str, List[str]] = {}
    driver_refs = [sig_refs[i] for i in driver_ids.tolist()]
    all_sinks = itertools.chain.from_iterable(edge_sinks)
    for driver_ref, sink_ref in zip(driver_refs, all_sinks):
        nets.setdefault(driver_ref, []).append(sink_ref)
    for driver_ref, sink_ref in ref_edges:
        nets.setdefault(driver_ref, []).append(sink_ref)

    return _emit_design(
        spec, lib, constraints, cell_list, nets,
        pi_names, po_names, collector_po, ff_names,
    )


def make_chain_design(
    n_stages: int = 4,
    cell: str = "INV_X1",
    library: Optional[Library] = None,
    clock_period: float = 200.0,
    die: Tuple[float, float, float, float] = (0.0, 0.0, 60.0, 20.0),
    spread: bool = True,
) -> Design:
    """A PI -> chain of gates -> FF -> PO design for unit tests.

    The chain is ``in0 -> g0 -> g1 -> ... -> ff0/D`` with ``ff0/Q -> out0``,
    plus a clock port.  With ``spread=True`` the cells are pre-placed on a
    horizontal line so wire delays are nonzero and deterministic.
    """
    lib = library if library is not None else default_library()
    constraints = Constraints(clock_period=clock_period, clock_port="clk")
    builder = DesignBuilder("chain", lib, die=die, constraints=constraints)
    xl, yl, xh, yh = die
    y_mid = 0.5 * (yl + yh)
    builder.add_input("clk", x=xl, y=yl)
    builder.add_input("in0", x=xl, y=y_mid)
    builder.add_output("out0", x=xh, y=y_mid)

    gate_names = []
    for i in range(n_stages):
        name = f"g{i}"
        x = xl + (i + 1) * (xh - xl) / (n_stages + 3) if spread else None
        builder.add_cell(name, cell, x=x, y=y_mid)
        gate_names.append(name)
    builder.add_cell(
        "ff0",
        "DFF_X1",
        x=xl + (n_stages + 1) * (xh - xl) / (n_stages + 3) if spread else None,
        y=y_mid,
    )

    in_pin = lib[cell].input_pins[0].name
    out_pin = lib[cell].output_pins[0].name
    prev = "in0"
    for i, name in enumerate(gate_names):
        builder.add_net(f"n{i}", [prev, f"{name}/{in_pin}"])
        prev = f"{name}/{out_pin}"
    builder.add_net("n_d", [prev, "ff0/D"])
    builder.add_net("n_q", ["ff0/Q", "out0"])
    builder.add_net("clknet", ["clk", "ff0/CK"])
    return builder.build()
