"""Bookshelf placement-format reader/writer.

Implements the UCLA Bookshelf files used by academic placement contests:
``.aux``, ``.nodes``, ``.nets``, ``.pl`` and ``.scl``.  A
:class:`~repro.netlist.design.Design` can be exported with
:func:`write_bookshelf` and placements can be round-tripped with
:func:`save_placement` / :func:`load_placement`.  :func:`read_bookshelf`
parses a full Bookshelf bundle into a raw :class:`BookshelfData` structure
(Bookshelf carries no cell-library or timing information, so it cannot by
itself reconstruct a timing-capable :class:`Design`).

Bookshelf stores lower-left corners; :class:`Design` uses cell centers.
The conversion happens at the boundary of this module.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .design import Design

__all__ = [
    "BookshelfData",
    "BookshelfRow",
    "read_bookshelf",
    "write_bookshelf",
    "save_placement",
    "load_placement",
]


@dataclass
class BookshelfRow:
    """One ``CoreRow`` of the ``.scl`` file."""

    y: float
    height: float
    x: float
    num_sites: int
    site_width: float = 1.0


@dataclass
class BookshelfData:
    """Raw contents of a Bookshelf bundle."""

    name: str = ""
    node_name: List[str] = field(default_factory=list)
    node_width: List[float] = field(default_factory=list)
    node_height: List[float] = field(default_factory=list)
    node_terminal: List[bool] = field(default_factory=list)
    node_x: List[float] = field(default_factory=list)
    node_y: List[float] = field(default_factory=list)
    node_fixed: List[bool] = field(default_factory=list)
    net_name: List[str] = field(default_factory=list)
    net_pins: List[List[Tuple[str, str, float, float]]] = field(default_factory=list)
    rows: List[BookshelfRow] = field(default_factory=list)

    @property
    def num_nodes(self) -> int:
        return len(self.node_name)

    @property
    def num_nets(self) -> int:
        return len(self.net_name)

    @property
    def num_pins(self) -> int:
        return sum(len(p) for p in self.net_pins)


def _data_lines(path: str) -> List[str]:
    """Non-comment, non-empty lines of a Bookshelf file (header dropped)."""
    lines = []
    with open(path) as handle:
        for raw in handle:
            line = raw.split("#", 1)[0].strip()
            if not line or line.startswith("UCLA"):
                continue
            lines.append(line)
    return lines


def _parse_nodes(path: str, data: BookshelfData) -> None:
    for line in _data_lines(path):
        if line.startswith(("NumNodes", "NumTerminals")):
            continue
        parts = line.split()
        data.node_name.append(parts[0])
        data.node_width.append(float(parts[1]))
        data.node_height.append(float(parts[2]))
        data.node_terminal.append(len(parts) > 3 and parts[3] == "terminal")
        data.node_x.append(0.0)
        data.node_y.append(0.0)
        data.node_fixed.append(False)


def _parse_nets(path: str, data: BookshelfData) -> None:
    current: Optional[List[Tuple[str, str, float, float]]] = None
    for line in _data_lines(path):
        if line.startswith(("NumNets", "NumPins")):
            continue
        if line.startswith("NetDegree"):
            _, rest = line.split(":", 1)
            parts = rest.split()
            name = parts[1] if len(parts) > 1 else f"net{len(data.net_name)}"
            current = []
            data.net_name.append(name)
            data.net_pins.append(current)
            continue
        if current is None:
            raise ValueError(f"{path}: pin line before any NetDegree: {line!r}")
        parts = line.replace(":", " ").split()
        node, direction = parts[0], parts[1]
        xoff = float(parts[2]) if len(parts) > 2 else 0.0
        yoff = float(parts[3]) if len(parts) > 3 else 0.0
        current.append((node, direction, xoff, yoff))


def _parse_pl(path: str, data: BookshelfData) -> None:
    index = {n: i for i, n in enumerate(data.node_name)}
    for line in _data_lines(path):
        parts = line.replace(":", " ").split()
        if parts[0] not in index:
            continue
        i = index[parts[0]]
        data.node_x[i] = float(parts[1])
        data.node_y[i] = float(parts[2])
        data.node_fixed[i] = line.rstrip().endswith("/FIXED")


def _parse_scl(path: str, data: BookshelfData) -> None:
    row: Dict[str, float] = {}
    for line in _data_lines(path):
        key = line.split()[0].lower()
        if key == "corerow":
            row = {}
        elif key == "end":
            if row:
                data.rows.append(
                    BookshelfRow(
                        y=row.get("coordinate", 0.0),
                        height=row.get("height", 0.0),
                        x=row.get("subroworigin", 0.0),
                        num_sites=int(row.get("numsites", 0)),
                        site_width=row.get("sitewidth", 1.0),
                    )
                )
            row = {}
        elif ":" in line:
            # "SubrowOrigin : 0 NumSites : 100" may share a line; after
            # stripping colons, keys and numeric values alternate.
            tokens = line.replace(":", " ").split()
            k = 0
            while k + 1 < len(tokens):
                try:
                    row[tokens[k].lower()] = float(tokens[k + 1])
                    k += 2
                except ValueError:
                    k += 1


def read_bookshelf(aux_path: str) -> BookshelfData:
    """Read a Bookshelf bundle via its ``.aux`` file."""
    directory = os.path.dirname(os.path.abspath(aux_path))
    with open(aux_path) as handle:
        content = handle.read()
    if ":" not in content:
        raise ValueError(f"{aux_path}: malformed .aux file")
    files = content.split(":", 1)[1].split()
    data = BookshelfData(name=os.path.splitext(os.path.basename(aux_path))[0])
    by_ext = {os.path.splitext(f)[1]: os.path.join(directory, f) for f in files}
    if ".nodes" in by_ext:
        _parse_nodes(by_ext[".nodes"], data)
    if ".nets" in by_ext:
        _parse_nets(by_ext[".nets"], data)
    if ".pl" in by_ext:
        _parse_pl(by_ext[".pl"], data)
    if ".scl" in by_ext:
        _parse_scl(by_ext[".scl"], data)
    return data


# ----------------------------------------------------------------------
# Design -> Bookshelf
# ----------------------------------------------------------------------
def write_bookshelf(design: Design, directory: str, name: Optional[str] = None) -> str:
    """Export a design (with its stored placement) as a Bookshelf bundle.

    Returns the path of the written ``.aux`` file.
    """
    name = name or design.name
    os.makedirs(directory, exist_ok=True)

    def path(ext: str) -> str:
        return os.path.join(directory, f"{name}.{ext}")

    n_terminals = int(np.count_nonzero(design.cell_fixed))
    with open(path("nodes"), "w") as handle:
        handle.write("UCLA nodes 1.0\n")
        handle.write(f"NumNodes : {design.n_cells}\n")
        handle.write(f"NumTerminals : {n_terminals}\n")
        for i in range(design.n_cells):
            terminal = "\tterminal" if design.cell_fixed[i] else ""
            handle.write(
                f"\t{design.cell_name[i]}\t{design.cell_w[i]:g}"
                f"\t{design.cell_h[i]:g}{terminal}\n"
            )

    with open(path("nets"), "w") as handle:
        handle.write("UCLA nets 1.0\n")
        handle.write(f"NumNets : {design.n_nets}\n")
        handle.write(f"NumPins : {design.n_pins}\n")
        for ni in range(design.n_nets):
            pins = design.net_pins(ni)
            handle.write(f"NetDegree : {len(pins)} {design.net_name[ni]}\n")
            for p in pins:
                direction = "O" if design.pin_dir[p] == 1 else "I"
                handle.write(
                    f"\t{design.cell_name[design.pin2cell[p]]} {direction} : "
                    f"{design.pin_offset_x[p]:g} {design.pin_offset_y[p]:g}\n"
                )

    save_placement(design, design.cell_x, design.cell_y, path("pl"))

    xl, yl, xh, yh = design.die
    row_h = design.row_height
    n_rows = max(int((yh - yl) / row_h), 1)
    with open(path("scl"), "w") as handle:
        handle.write("UCLA scl 1.0\n")
        handle.write(f"NumRows : {n_rows}\n")
        for r in range(n_rows):
            handle.write("CoreRow Horizontal\n")
            handle.write(f"  Coordinate : {yl + r * row_h:g}\n")
            handle.write(f"  Height : {row_h:g}\n")
            handle.write("  Sitewidth : 1\n")
            handle.write("  Sitespacing : 1\n")
            handle.write(f"  SubrowOrigin : {xl:g} NumSites : {int(xh - xl)}\n")
            handle.write("End\n")

    aux = path("aux")
    with open(aux, "w") as handle:
        handle.write(
            f"RowBasedPlacement : {name}.nodes {name}.nets {name}.pl {name}.scl\n"
        )
    return aux


def save_placement(design: Design, x: np.ndarray, y: np.ndarray, path: str) -> None:
    """Write a ``.pl`` file from cell-center coordinates."""
    with open(path, "w") as handle:
        handle.write("UCLA pl 1.0\n")
        for i in range(design.n_cells):
            llx = x[i] - 0.5 * design.cell_w[i]
            lly = y[i] - 0.5 * design.cell_h[i]
            fixed = " /FIXED" if design.cell_fixed[i] else ""
            handle.write(f"{design.cell_name[i]}\t{llx:.6f}\t{lly:.6f}\t: N{fixed}\n")


def load_placement(design: Design, path: str) -> Tuple[np.ndarray, np.ndarray]:
    """Read a ``.pl`` file back into cell-center coordinate arrays."""
    x = design.cell_x.copy()
    y = design.cell_y.copy()
    for line in _data_lines(path):
        parts = line.replace(":", " ").split()
        name = parts[0]
        if name not in design._cell_index:
            continue
        i = design.cell_index(name)
        x[i] = float(parts[1]) + 0.5 * design.cell_w[i]
        y[i] = float(parts[2]) + 0.5 * design.cell_h[i]
    return x, y
