"""DEF (Design Exchange Format) subset reader/writer.

The ICCAD 2015 kit carries placements as DEF; this module supports the
slice needed to round-trip our designs: ``DESIGN``, ``UNITS``, ``DIEAREA``,
``ROW``, ``COMPONENTS`` (with ``PLACED``/``FIXED`` and orientation N), and
``PINS`` (port locations).  Nets live in the Verilog netlist, so the
``NETS`` section is optional on read and omitted on write.

DEF stores lower-left corners in database units; :class:`Design` uses
micron cell centers.  The conversion happens at this module's boundary
with the ``UNITS DISTANCE MICRONS`` factor (default 1000).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .design import Design, PORT_IN_TYPE, PORT_OUT_TYPE

__all__ = [
    "DefError",
    "DefData",
    "parse_def",
    "write_def",
    "read_def_file",
    "write_def_file",
    "apply_def_placement",
]


class DefError(ValueError):
    """Raised on malformed DEF input."""


@dataclass
class DefData:
    """Raw contents of a DEF file (units already divided out: microns)."""

    design: str = ""
    units: int = 1000
    die: Tuple[float, float, float, float] = (0.0, 0.0, 0.0, 0.0)
    rows: List[Tuple[str, float, float, int]] = field(default_factory=list)
    # component name -> (cell type, llx, lly, fixed)
    components: Dict[str, Tuple[str, float, float, bool]] = field(
        default_factory=dict
    )
    # pin (port) name -> (x, y, direction)
    pins: Dict[str, Tuple[float, float, str]] = field(default_factory=dict)


def _tokens(text: str) -> List[str]:
    text = re.sub(r"#[^\n]*", " ", text)
    return text.split()


def parse_def(text: str) -> DefData:
    """Parse DEF text into a :class:`DefData` structure."""
    toks = _tokens(text)
    data = DefData()
    i = 0
    n = len(toks)

    def expect_number(k: int) -> float:
        try:
            return float(toks[k])
        except (IndexError, ValueError):
            raise DefError(f"expected a number near token {k}: {toks[k:k+3]}")

    while i < n:
        tok = toks[i]
        if tok == "DESIGN" and i + 1 < n and toks[i + 1] != "DESIGN":
            data.design = toks[i + 1]
            i += 2
        elif tok == "UNITS":
            # UNITS DISTANCE MICRONS <n> ;
            data.units = int(expect_number(i + 3))
            i += 4
        elif tok == "DIEAREA":
            # DIEAREA ( x1 y1 ) ( x2 y2 ) ;
            nums = []
            j = i + 1
            while toks[j] != ";":
                if toks[j] not in ("(", ")"):
                    nums.append(float(toks[j]))
                j += 1
            if len(nums) < 4:
                raise DefError("DIEAREA needs two points")
            u = data.units
            data.die = (nums[0] / u, nums[1] / u, nums[2] / u, nums[3] / u)
            i = j + 1
        elif tok == "ROW":
            # ROW name site x y orient DO nx BY ny STEP sx sy ;
            name = toks[i + 1]
            x = float(toks[i + 3]) / data.units
            y = float(toks[i + 4]) / data.units
            j = i
            count = 0
            while toks[j] != ";":
                if toks[j] == "DO":
                    count = int(toks[j + 1])
                j += 1
            data.rows.append((name, x, y, count))
            i = j + 1
        elif tok == "COMPONENTS":
            i += 3  # skip keyword, count, ';'
            while toks[i] != "END":
                if toks[i] != "-":
                    raise DefError(f"expected '-' in COMPONENTS, got {toks[i]!r}")
                name = toks[i + 1]
                ctype = toks[i + 2]
                fixed = False
                x = y = 0.0
                j = i + 3
                while toks[j] != ";":
                    if toks[j] in ("PLACED", "FIXED"):
                        fixed = toks[j] == "FIXED"
                        x = float(toks[j + 2]) / data.units
                        y = float(toks[j + 3]) / data.units
                    j += 1
                data.components[name] = (ctype, x, y, fixed)
                i = j + 1
            i += 2  # END COMPONENTS
        elif tok == "PINS":
            i += 3  # skip keyword, count, ';'
            while toks[i] != "END":
                if toks[i] != "-":
                    raise DefError(f"expected '-' in PINS, got {toks[i]!r}")
                name = toks[i + 1]
                direction = "INPUT"
                x = y = 0.0
                j = i + 2
                while toks[j] != ";":
                    if toks[j] == "DIRECTION":
                        direction = toks[j + 1]
                    if toks[j] in ("PLACED", "FIXED"):
                        x = float(toks[j + 2]) / data.units
                        y = float(toks[j + 3]) / data.units
                    j += 1
                data.pins[name] = (x, y, direction)
                i = j + 1
            i += 2
        elif tok == "NETS":
            # Skip the optional nets section entirely.
            while toks[i] != "END":
                i += 1
            i += 2
        else:
            i += 1
    return data


def write_def(
    design: Design,
    cell_x: Optional[np.ndarray] = None,
    cell_y: Optional[np.ndarray] = None,
    units: int = 1000,
) -> str:
    """Serialise a design (with the given placement) as DEF text."""
    x = design.cell_x if cell_x is None else cell_x
    y = design.cell_y if cell_y is None else cell_y
    xl, yl, xh, yh = design.die

    def dbu(v: float) -> int:
        return int(round(v * units))

    lines = [
        "VERSION 5.8 ;",
        "DIVIDERCHAR \"/\" ;",
        "BUSBITCHARS \"[]\" ;",
        f"DESIGN {design.name} ;",
        f"UNITS DISTANCE MICRONS {units} ;",
        f"DIEAREA ( {dbu(xl)} {dbu(yl)} ) ( {dbu(xh)} {dbu(yh)} ) ;",
    ]
    n_rows = max(int((yh - yl) / design.row_height), 1)
    for r in range(n_rows):
        ry = yl + r * design.row_height
        lines.append(
            f"ROW core_row_{r} core {dbu(xl)} {dbu(ry)} N "
            f"DO {int(xh - xl)} BY 1 STEP {units} 0 ;"
        )

    comps = []
    ports_in: List[int] = []
    ports_out: List[int] = []
    for ci in range(design.n_cells):
        tname = design.cell_types[design.cell_type[ci]].name
        if tname == PORT_IN_TYPE:
            ports_in.append(ci)
        elif tname == PORT_OUT_TYPE:
            ports_out.append(ci)
        else:
            comps.append(ci)

    lines.append(f"COMPONENTS {len(comps)} ;")
    for ci in comps:
        llx = dbu(x[ci] - 0.5 * design.cell_w[ci])
        lly = dbu(y[ci] - 0.5 * design.cell_h[ci])
        kind = "FIXED" if design.cell_fixed[ci] else "PLACED"
        tname = design.cell_types[design.cell_type[ci]].name
        lines.append(
            f"- {design.cell_name[ci]} {tname} + {kind} ( {llx} {lly} ) N ;"
        )
    lines.append("END COMPONENTS")

    lines.append(f"PINS {len(ports_in) + len(ports_out)} ;")
    for ci, direction in [(c, "INPUT") for c in ports_in] + [
        (c, "OUTPUT") for c in ports_out
    ]:
        lines.append(
            f"- {design.cell_name[ci]} + NET {design.cell_name[ci]} "
            f"+ DIRECTION {direction} + FIXED ( {dbu(x[ci])} {dbu(y[ci])} ) N ;"
        )
    lines.append("END PINS")
    lines.append("END DESIGN")
    return "\n".join(lines) + "\n"


def apply_def_placement(
    design: Design, data: DefData
) -> Tuple[np.ndarray, np.ndarray]:
    """Apply a DEF placement onto a design; returns center coordinates."""
    x = design.cell_x.copy()
    y = design.cell_y.copy()
    for ci in range(design.n_cells):
        name = design.cell_name[ci]
        if name in data.components:
            _, llx, lly, _ = data.components[name]
            x[ci] = llx + 0.5 * design.cell_w[ci]
            y[ci] = lly + 0.5 * design.cell_h[ci]
        elif name in data.pins:
            px, py, _ = data.pins[name]
            x[ci] = px
            y[ci] = py
    return x, y


def read_def_file(path: str) -> DefData:
    """Read and parse a DEF file."""
    with open(path) as handle:
        return parse_def(handle.read())


def write_def_file(
    design: Design,
    path: str,
    cell_x: Optional[np.ndarray] = None,
    cell_y: Optional[np.ndarray] = None,
) -> None:
    """Write a design's placement to a DEF file."""
    with open(path, "w") as handle:
        handle.write(write_def(design, cell_x, cell_y))
