"""Flattened placement/timing design model.

A :class:`Design` is the frozen, array-of-structs view of a netlist that all
kernels (placement, routing, both timers) operate on: cells, pins and nets
are plain NumPy arrays with CSR-style connectivity.  Designs are constructed
through :class:`DesignBuilder`, which offers a small, explicit API
(``add_cell`` / ``add_input`` / ``add_output`` / ``add_net``).

Top-level ports are modelled as zero-area fixed cells with a single pin:
an input port drives the chip through its output pin ``O`` and an output
port is a sink through its input pin ``I``.  This keeps every kernel free
of special cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .library import (
    CellType,
    Library,
    PinDirection,
    PinSpec,
)

__all__ = ["Constraints", "Design", "DesignBuilder", "PORT_IN_TYPE", "PORT_OUT_TYPE"]

#: Reserved type names for the synthetic port cells.
PORT_IN_TYPE = "<PORT_IN>"
PORT_OUT_TYPE = "<PORT_OUT>"


def _make_port_types() -> Tuple[CellType, CellType]:
    pin_in = CellType(
        PORT_IN_TYPE,
        0.0,
        0.0,
        [PinSpec("O", PinDirection.OUTPUT)],
    )
    pin_out = CellType(
        PORT_OUT_TYPE,
        0.0,
        0.0,
        [PinSpec("I", PinDirection.INPUT, capacitance=2.0)],
    )
    return pin_in, pin_out


@dataclass
class Constraints:
    """SDC-style timing constraints for a single-clock design.

    The clock is ideal (zero insertion delay and skew), matching the
    evaluation setting of the paper.  All times in picoseconds, loads in
    femtofarads.
    """

    clock_period: float = 1000.0
    clock_port: str = "clk"
    input_delays: Dict[str, float] = field(default_factory=dict)
    output_delays: Dict[str, float] = field(default_factory=dict)
    input_slews: Dict[str, float] = field(default_factory=dict)
    output_loads: Dict[str, float] = field(default_factory=dict)
    default_input_delay: float = 0.0
    default_output_delay: float = 0.0
    default_input_slew: float = 20.0
    default_output_load: float = 4.0

    def input_delay(self, port: str) -> float:
        return self.input_delays.get(port, self.default_input_delay)

    def output_delay(self, port: str) -> float:
        return self.output_delays.get(port, self.default_output_delay)

    def input_slew(self, port: str) -> float:
        return self.input_slews.get(port, self.default_input_slew)

    def output_load(self, port: str) -> float:
        return self.output_loads.get(port, self.default_output_load)


class Design:
    """Frozen array view of a netlist placed on a die.

    Do not instantiate directly; use :class:`DesignBuilder`.
    All coordinates refer to cell *centers*.
    """

    def __init__(
        self,
        name: str,
        library: Library,
        die: Tuple[float, float, float, float],
        row_height: float,
        cell_types: List[CellType],
        cell_name: List[str],
        cell_type: np.ndarray,
        cell_x: np.ndarray,
        cell_y: np.ndarray,
        cell_fixed: np.ndarray,
        pin_name: List[str],
        pin2cell: np.ndarray,
        pin_offset_x: np.ndarray,
        pin_offset_y: np.ndarray,
        pin_dir: np.ndarray,
        pin_cap: np.ndarray,
        pin_is_clock: np.ndarray,
        pin2net: np.ndarray,
        net_name: List[str],
        net2pin_start: np.ndarray,
        net2pin: np.ndarray,
        net_driver: np.ndarray,
        net_is_clock: np.ndarray,
        constraints: Constraints,
    ) -> None:
        self.name = name
        self.library = library
        self.die = die
        self.row_height = row_height
        self.cell_types = cell_types
        self.cell_name = cell_name
        self.cell_type = cell_type
        self.cell_x = cell_x
        self.cell_y = cell_y
        self.cell_fixed = cell_fixed
        self.pin_name = pin_name
        self.pin2cell = pin2cell
        self.pin_offset_x = pin_offset_x
        self.pin_offset_y = pin_offset_y
        self.pin_dir = pin_dir  # 0 = input (sink), 1 = output (driver)
        self.pin_cap = pin_cap
        self.pin_is_clock = pin_is_clock
        self.pin2net = pin2net
        self.net_name = net_name
        self.net2pin_start = net2pin_start
        self.net2pin = net2pin
        self.net_driver = net_driver
        self.net_is_clock = net_is_clock
        self.constraints = constraints

        self.cell_w = np.array([cell_types[t].width for t in cell_type], float)
        self.cell_h = np.array([cell_types[t].height for t in cell_type], float)
        self.cell_is_port = np.array(
            [cell_types[t].name in (PORT_IN_TYPE, PORT_OUT_TYPE) for t in cell_type]
        )
        self._cell_index = {n: i for i, n in enumerate(cell_name)}
        self._net_index = {n: i for i, n in enumerate(net_name)}

    # ------------------------------------------------------------------
    # Sizes and lookups
    # ------------------------------------------------------------------
    @property
    def n_cells(self) -> int:
        return len(self.cell_name)

    @property
    def n_pins(self) -> int:
        return len(self.pin2cell)

    @property
    def n_nets(self) -> int:
        return len(self.net_name)

    @property
    def n_movable(self) -> int:
        return int(np.count_nonzero(~self.cell_fixed))

    def cell_index(self, name: str) -> int:
        return self._cell_index[name]

    def net_index(self, name: str) -> int:
        return self._net_index[name]

    def net_pins(self, net: int) -> np.ndarray:
        """Pin indices of a net (driver first is *not* guaranteed)."""
        return self.net2pin[self.net2pin_start[net] : self.net2pin_start[net + 1]]

    def net_degree(self, net: int) -> int:
        return int(self.net2pin_start[net + 1] - self.net2pin_start[net])

    @property
    def net_degrees(self) -> np.ndarray:
        return np.diff(self.net2pin_start)

    def cell_type_of(self, cell: int) -> CellType:
        return self.cell_types[self.cell_type[cell]]

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def pin_positions(
        self, cell_x: Optional[np.ndarray] = None, cell_y: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Pin coordinates for the given (default: stored) cell centers."""
        x = self.cell_x if cell_x is None else cell_x
        y = self.cell_y if cell_y is None else cell_y
        return (
            x[self.pin2cell] + self.pin_offset_x,
            y[self.pin2cell] + self.pin_offset_y,
        )

    @property
    def movable_area(self) -> float:
        m = ~self.cell_fixed
        return float(np.sum(self.cell_w[m] * self.cell_h[m]))

    @property
    def die_area(self) -> float:
        xl, yl, xh, yh = self.die
        return (xh - xl) * (yh - yl)

    def stats(self) -> Dict[str, int]:
        """Benchmark statistics in the style of Table 2."""
        return {
            "cells": self.n_cells,
            "nets": self.n_nets,
            "pins": self.n_pins,
        }

    def __repr__(self) -> str:
        return (
            f"Design({self.name!r}, cells={self.n_cells}, nets={self.n_nets}, "
            f"pins={self.n_pins})"
        )


class DesignBuilder:
    """Incrementally assemble a :class:`Design`.

    Example::

        b = DesignBuilder("adder", library, die=(0, 0, 100, 100))
        b.add_input("a", x=0.0, y=10.0)
        b.add_input("clk", x=0.0, y=0.0)
        b.add_output("y", x=100.0, y=10.0)
        b.add_cell("u1", "INV_X1")
        b.add_net("n_a", ["a", "u1/A"])
        b.add_net("n_y", ["u1/Y", "y"])
        design = b.build()
    """

    def __init__(
        self,
        name: str,
        library: Library,
        die: Tuple[float, float, float, float] = (0.0, 0.0, 100.0, 100.0),
        row_height: Optional[float] = None,
        constraints: Optional[Constraints] = None,
    ) -> None:
        self.name = name
        self.library = library
        self.die = die
        self.row_height = row_height if row_height is not None else 2.0
        self.constraints = constraints if constraints is not None else Constraints()
        port_in, port_out = _make_port_types()
        self._types: List[CellType] = [port_in, port_out]
        self._type_index: Dict[str, int] = {PORT_IN_TYPE: 0, PORT_OUT_TYPE: 1}
        self._cells: List[Tuple[str, int, float, float, bool]] = []
        self._cell_index: Dict[str, int] = {}
        self._nets: List[Tuple[str, List[str]]] = []
        self._net_index: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def _type_id(self, type_name: str) -> int:
        if type_name not in self._type_index:
            self._type_index[type_name] = len(self._types)
            self._types.append(self.library[type_name])
        return self._type_index[type_name]

    def _add(self, name: str, type_id: int, x, y, fixed: bool) -> None:
        if name in self._cell_index:
            raise ValueError(f"duplicate cell {name!r}")
        self._cell_index[name] = len(self._cells)
        self._cells.append((name, type_id, x, y, fixed))

    def add_cell(
        self,
        name: str,
        type_name: str,
        x: Optional[float] = None,
        y: Optional[float] = None,
        fixed: bool = False,
    ) -> None:
        """Add a standard-cell instance (unplaced unless x/y given)."""
        self._add(name, self._type_id(type_name), x, y, fixed)

    def add_input(self, name: str, x: Optional[float] = None, y: Optional[float] = None) -> None:
        """Add a fixed top-level input port (a zero-area driver cell)."""
        self._add(name, 0, x, y, True)

    def add_output(self, name: str, x: Optional[float] = None, y: Optional[float] = None) -> None:
        """Add a fixed top-level output port (a zero-area sink cell)."""
        self._add(name, 1, x, y, True)

    def add_net(self, name: str, pins: Sequence[str]) -> None:
        """Connect pins; each pin is ``"cell/pin"`` or a bare port name."""
        if name in self._net_index:
            raise ValueError(f"duplicate net {name!r}")
        self._net_index[name] = len(self._nets)
        self._nets.append((name, list(pins)))

    # ------------------------------------------------------------------
    def _resolve_pin_ref(self, ref: str) -> Tuple[int, str]:
        """Turn ``"cell/pin"`` or a port name into (cell index, pin name)."""
        if "/" in ref:
            cell_name, pin_name = ref.rsplit("/", 1)
        else:
            cell_name = ref
            if cell_name not in self._cell_index:
                raise KeyError(f"unknown port {ref!r}")
            type_id = self._cells[self._cell_index[cell_name]][1]
            pin_name = "O" if type_id == 0 else "I"
        if cell_name not in self._cell_index:
            raise KeyError(f"unknown cell {cell_name!r} in pin ref {ref!r}")
        return self._cell_index[cell_name], pin_name

    def build(self) -> Design:
        """Freeze the builder into an immutable :class:`Design`."""
        rng = np.random.default_rng(0)
        xl, yl, xh, yh = self.die

        n_cells = len(self._cells)
        cell_name = [c[0] for c in self._cells]
        cell_type = np.array([c[1] for c in self._cells], dtype=np.int64)
        cell_x = np.empty(n_cells)
        cell_y = np.empty(n_cells)
        cell_fixed = np.array([c[4] for c in self._cells])
        for i, (_, _, x, y, _) in enumerate(self._cells):
            cell_x[i] = 0.5 * (xl + xh) if x is None else x
            cell_y[i] = 0.5 * (yl + yh) if y is None else y
        # Unplaced fixed ports are scattered on the boundary deterministically.
        for i, (_, tid, x, y, _) in enumerate(self._cells):
            if tid in (0, 1) and x is None and y is None:
                t = rng.uniform(0.0, 4.0)
                side = int(t)
                frac = t - side
                if side == 0:
                    cell_x[i], cell_y[i] = xl + frac * (xh - xl), yl
                elif side == 1:
                    cell_x[i], cell_y[i] = xh, yl + frac * (yh - yl)
                elif side == 2:
                    cell_x[i], cell_y[i] = xl + frac * (xh - xl), yh
                else:
                    cell_x[i], cell_y[i] = xl, yl + frac * (yh - yl)

        # Flatten pins cell by cell.
        pin_name: List[str] = []
        pin2cell: List[int] = []
        pin_offset_x: List[float] = []
        pin_offset_y: List[float] = []
        pin_dir: List[int] = []
        pin_cap: List[float] = []
        pin_is_clock: List[bool] = []
        pin_lookup: Dict[Tuple[int, str], int] = {}
        for ci in range(n_cells):
            ctype = self._types[cell_type[ci]]
            for pi, spec in enumerate(ctype.pins):
                pin_lookup[(ci, spec.name)] = len(pin_name)
                pin_name.append(f"{cell_name[ci]}/{spec.name}")
                pin2cell.append(ci)
                # Spread pin offsets across the cell so trees are nondegenerate.
                n_cell_pins = len(ctype.pins)
                frac = (pi + 1) / (n_cell_pins + 1)
                pin_offset_x.append((frac - 0.5) * ctype.width)
                pin_offset_y.append(0.0)
                pin_dir.append(1 if spec.direction is PinDirection.OUTPUT else 0)
                pin_cap.append(spec.capacitance)
                pin_is_clock.append(spec.is_clock)

        n_pins = len(pin_name)
        pin2net = np.full(n_pins, -1, dtype=np.int64)

        net_name = [n[0] for n in self._nets]
        net2pin_start = np.zeros(len(self._nets) + 1, dtype=np.int64)
        net2pin: List[int] = []
        net_driver = np.full(len(self._nets), -1, dtype=np.int64)
        net_is_clock = np.zeros(len(self._nets), dtype=bool)
        clock_port = self.constraints.clock_port
        for ni, (nname, refs) in enumerate(self._nets):
            for ref in refs:
                ci, pname = self._resolve_pin_ref(ref)
                key = (ci, pname)
                if key not in pin_lookup:
                    raise KeyError(f"cell {cell_name[ci]!r} has no pin {pname!r}")
                p = pin_lookup[key]
                if pin2net[p] != -1:
                    raise ValueError(f"pin {pin_name[p]!r} connected to two nets")
                pin2net[p] = ni
                net2pin.append(p)
                if pin_dir[p] == 1:
                    if net_driver[ni] != -1:
                        raise ValueError(f"net {nname!r} has multiple drivers")
                    net_driver[ni] = p
                    if cell_name[ci] == clock_port:
                        net_is_clock[ni] = True
            net2pin_start[ni + 1] = len(net2pin)

        return Design(
            name=self.name,
            library=self.library,
            die=self.die,
            row_height=self.row_height,
            cell_types=self._types,
            cell_name=cell_name,
            cell_type=cell_type,
            cell_x=cell_x,
            cell_y=cell_y,
            cell_fixed=cell_fixed,
            pin_name=pin_name,
            pin2cell=np.array(pin2cell, dtype=np.int64),
            pin_offset_x=np.array(pin_offset_x),
            pin_offset_y=np.array(pin_offset_y),
            pin_dir=np.array(pin_dir, dtype=np.int8),
            pin_cap=np.array(pin_cap),
            pin_is_clock=np.array(pin_is_clock, dtype=bool),
            pin2net=pin2net,
            net_name=net_name,
            net2pin_start=net2pin_start,
            net2pin=np.array(net2pin, dtype=np.int64),
            net_driver=net_driver,
            net_is_clock=net_is_clock,
            constraints=self.constraints,
        )
