"""Gate-level structural Verilog reader/writer.

The ICCAD 2015 kit the paper evaluates on ships its netlists as flat
structural Verilog.  This module supports that subset: one module with
``input``/``output``/``wire`` declarations and named-port instantiations::

    module top (a, b, clk, z);
      input a, b, clk;
      output z;
      wire n1, n2;
      NAND2_X1 u1 ( .A(a), .B(b), .Y(n1) );
      DFF_X1 ff0 ( .D(n1), .CK(clk), .Q(n2) );
      ...
    endmodule

:func:`write_verilog` emits a design; :func:`parse_verilog` reads one back
against a :class:`~repro.netlist.library.Library` (cell types must
resolve).  Ports become the zero-area port cells of the design model;
positions are not part of Verilog and default to the die boundary, so a
placement is typically restored separately (Bookshelf ``.pl`` or DEF).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .design import Constraints, Design, DesignBuilder, PORT_IN_TYPE, PORT_OUT_TYPE
from .library import Library, PinDirection

__all__ = [
    "VerilogError",
    "parse_verilog",
    "write_verilog",
    "read_verilog_file",
    "write_verilog_file",
]


class VerilogError(ValueError):
    """Raised on malformed or unsupported Verilog input."""


_IDENT = r"[A-Za-z_\\][A-Za-z0-9_$\[\]\.\\]*"


def _strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    text = re.sub(r"//[^\n]*", " ", text)
    return text


def _split_statements(text: str) -> List[str]:
    return [s.strip() for s in text.split(";") if s.strip()]


def _expand_names(decl: str) -> List[str]:
    return [n.strip() for n in decl.split(",") if n.strip()]


_INSTANCE_RE = re.compile(
    rf"^(?P<type>{_IDENT})\s+(?P<name>{_IDENT})\s*\((?P<ports>.*)\)\s*$",
    re.DOTALL,
)
_PORT_CONN_RE = re.compile(
    rf"\.\s*(?P<pin>{_IDENT})\s*\(\s*(?P<net>{_IDENT})?\s*\)"
)


def parse_verilog(
    text: str,
    library: Library,
    die: Tuple[float, float, float, float] = (0.0, 0.0, 100.0, 100.0),
    constraints: Optional[Constraints] = None,
    row_height: Optional[float] = None,
) -> Design:
    """Parse flat structural Verilog into a :class:`Design`.

    ``constraints.clock_port`` decides which input is the clock; without
    explicit constraints a port named ``clk``/``clock`` (if any) is used.
    """
    text = _strip_comments(text)
    m = re.search(
        r"module\s+(" + _IDENT + r")\s*\((.*?)\)\s*;(.*?)endmodule",
        text,
        re.DOTALL,
    )
    if m is None:
        raise VerilogError("no module ... endmodule block found")
    module_name, _header_ports, body = m.group(1), m.group(2), m.group(3)

    inputs: List[str] = []
    outputs: List[str] = []
    wires: List[str] = []
    instances: List[Tuple[str, str, Dict[str, str]]] = []
    aliases: Dict[str, str] = {}  # lhs net is electrically rhs net

    for statement in _split_statements(body):
        keyword = statement.split(None, 1)[0] if statement.split() else ""
        if keyword == "input":
            inputs.extend(_expand_names(statement[len("input"):]))
        elif keyword == "output":
            outputs.extend(_expand_names(statement[len("output"):]))
        elif keyword == "wire":
            wires.extend(_expand_names(statement[len("wire"):]))
        elif keyword == "assign":
            # Only simple net aliases (assign a = b) are structural.
            m_assign = re.fullmatch(
                rf"assign\s+({_IDENT})\s*=\s*({_IDENT})", statement.strip()
            )
            if m_assign is None:
                raise VerilogError(
                    f"unsupported statement (only 'assign a = b' aliases "
                    f"are structural): {statement[:40]!r}"
                )
            aliases[m_assign.group(1)] = m_assign.group(2)
        elif keyword in ("parameter", "supply0", "supply1"):
            raise VerilogError(f"unsupported statement: {statement[:40]!r}")
        else:
            inst = _INSTANCE_RE.match(statement)
            if inst is None:
                raise VerilogError(f"cannot parse statement: {statement[:60]!r}")
            type_name = inst.group("type")
            if type_name not in library:
                raise VerilogError(f"unknown cell type {type_name!r}")
            conns: Dict[str, str] = {}
            for pm in _PORT_CONN_RE.finditer(inst.group("ports")):
                if pm.group("net"):
                    conns[pm.group("pin")] = pm.group("net")
            instances.append((type_name, inst.group("name"), conns))

    if constraints is None:
        clock = next(
            (p for p in inputs if p.lower() in ("clk", "clock", "iccad_clk")),
            inputs[0] if inputs else "clk",
        )
        constraints = Constraints(clock_port=clock)

    builder = DesignBuilder(
        module_name,
        library,
        die=die,
        row_height=row_height,
        constraints=constraints,
    )
    xl, yl, xh, yh = die
    for i, port in enumerate(inputs):
        frac = (i + 1) / (len(inputs) + 1)
        builder.add_input(port, x=xl, y=yl + frac * (yh - yl))
    for i, port in enumerate(outputs):
        frac = (i + 1) / (len(outputs) + 1)
        builder.add_output(port, x=xh, y=yl + frac * (yh - yl))
    for type_name, inst_name, _ in instances:
        builder.add_cell(inst_name, type_name)

    # Group connections by net name, resolving assign aliases to their
    # electrical root so aliased nets merge.
    def resolve(name: str) -> str:
        seen = set()
        while name in aliases:
            if name in seen:
                raise VerilogError(f"cyclic assign chain through {name!r}")
            seen.add(name)
            name = aliases[name]
        return name

    net_pins: Dict[str, List[str]] = {}
    for port in inputs + outputs:
        net_pins.setdefault(resolve(port), []).append(port)
    for type_name, inst_name, conns in instances:
        ctype = library[type_name]
        for pin_name, net_name in conns.items():
            ctype.pin(pin_name)  # validates the pin exists
            net_pins.setdefault(resolve(net_name), []).append(
                f"{inst_name}/{pin_name}"
            )

    for net_name, refs in net_pins.items():
        if len(refs) >= 2:
            builder.add_net(net_name, refs)
    return builder.build()


def write_verilog(design: Design) -> str:
    """Serialise a design as flat structural Verilog."""
    inputs: List[str] = []
    outputs: List[str] = []
    for ci in range(design.n_cells):
        tname = design.cell_types[design.cell_type[ci]].name
        if tname == PORT_IN_TYPE:
            inputs.append(design.cell_name[ci])
        elif tname == PORT_OUT_TYPE:
            outputs.append(design.cell_name[ci])

    # Net name per pin (ports connect by their own name).  A net touching
    # several ports cannot be expressed structurally; the extra ports are
    # tied in with `assign` aliases.
    port_cells = set(inputs) | set(outputs)
    net_of_pin: Dict[int, str] = {}
    wires: List[str] = []
    assigns: List[Tuple[str, str]] = []
    for ni in range(design.n_nets):
        pins = design.net_pins(ni)
        port_names = []
        for p in pins:
            cname = design.cell_name[design.pin2cell[p]]
            if cname in port_cells:
                port_names.append(cname)
        net_name = port_names[0] if port_names else design.net_name[ni]
        if not port_names:
            wires.append(net_name)
        for extra in port_names[1:]:
            assigns.append((extra, net_name))
        for p in pins:
            net_of_pin[int(p)] = net_name

    lines = [f"module {design.name} ("]
    lines.append("  " + ", ".join(inputs + outputs))
    lines.append(");")
    if inputs:
        lines.append(f"  input {', '.join(inputs)};")
    if outputs:
        lines.append(f"  output {', '.join(outputs)};")
    if wires:
        lines.append(f"  wire {', '.join(wires)};")
    for lhs, rhs in assigns:
        lines.append(f"  assign {lhs} = {rhs};")
    lines.append("")

    pin_index = {name: i for i, name in enumerate(design.pin_name)}
    for ci in range(design.n_cells):
        ctype = design.cell_types[design.cell_type[ci]]
        if ctype.name in (PORT_IN_TYPE, PORT_OUT_TYPE):
            continue
        conns = []
        for spec in ctype.pins:
            p = pin_index[f"{design.cell_name[ci]}/{spec.name}"]
            if p in net_of_pin:
                conns.append(f".{spec.name}({net_of_pin[p]})")
        lines.append(
            f"  {ctype.name} {design.cell_name[ci]} ( {', '.join(conns)} );"
        )
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def read_verilog_file(path: str, library: Library, **kwargs) -> Design:
    """Read and parse a Verilog file."""
    with open(path) as handle:
        return parse_verilog(handle.read(), library, **kwargs)


def write_verilog_file(design: Design, path: str) -> None:
    """Write a design to a Verilog file."""
    with open(path, "w") as handle:
        handle.write(write_verilog(design))
