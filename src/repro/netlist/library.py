"""Standard-cell library model with NLDM timing arcs.

The library mirrors the parts of a Liberty file that the placer and the
timers consume: cell geometry, pin directions and capacitances, and timing
arcs characterised by 2-D lookup tables (cell_rise / cell_fall /
rise_transition / fall_transition for delay arcs, rise_constraint /
fall_constraint for setup/hold checks).

Units follow the paper's ICCAD 2015 setting: time in picoseconds,
capacitance in femtofarads, resistance in kilo-ohms (so R*C is directly in
ps), distance in micrometres.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .lut import LUT

__all__ = [
    "PinDirection",
    "Unateness",
    "ArcKind",
    "PinSpec",
    "TimingArc",
    "CellType",
    "WireModel",
    "Library",
    "RISE",
    "FALL",
]

#: Transition encoding used throughout the arrays of both timers.
RISE = 0
FALL = 1


class PinDirection(enum.Enum):
    """Signal direction of a cell pin."""

    INPUT = "input"
    OUTPUT = "output"


class Unateness(enum.Enum):
    """Unateness of a delay arc: how input transitions map to output ones."""

    POSITIVE = "positive_unate"
    NEGATIVE = "negative_unate"
    NON_UNATE = "non_unate"

    def transition_sources(self, out_transition: int) -> Tuple[int, ...]:
        """Input transitions that can cause ``out_transition`` at the output."""
        if self is Unateness.POSITIVE:
            return (out_transition,)
        if self is Unateness.NEGATIVE:
            return (1 - out_transition,)
        return (RISE, FALL)


class ArcKind(enum.Enum):
    """Kind of a library timing arc."""

    COMBINATIONAL = "combinational"
    CLOCK_TO_Q = "rising_edge"
    SETUP = "setup_rising"
    HOLD = "hold_rising"

    @property
    def is_delay_arc(self) -> bool:
        """Whether the arc propagates delay (as opposed to a timing check)."""
        return self in (ArcKind.COMBINATIONAL, ArcKind.CLOCK_TO_Q)


@dataclass
class PinSpec:
    """Static description of a pin on a library cell."""

    name: str
    direction: PinDirection
    capacitance: float = 0.0
    is_clock: bool = False
    max_capacitance: Optional[float] = None


@dataclass
class TimingArc:
    """A timing arc between two pins of the same cell.

    Delay arcs carry four LUTs (delay and output transition per output
    edge); check arcs carry two constraint LUTs indexed by
    (constrained-pin slew, clock slew).
    """

    from_pin: str
    to_pin: str
    kind: ArcKind
    unateness: Unateness = Unateness.POSITIVE
    cell_rise: Optional[LUT] = None
    cell_fall: Optional[LUT] = None
    rise_transition: Optional[LUT] = None
    fall_transition: Optional[LUT] = None
    rise_constraint: Optional[LUT] = None
    fall_constraint: Optional[LUT] = None

    def delay_lut(self, transition: int) -> LUT:
        """Delay LUT for the given output transition (RISE/FALL)."""
        lut = self.cell_rise if transition == RISE else self.cell_fall
        if lut is None:
            raise ValueError(f"arc {self.from_pin}->{self.to_pin} has no delay LUT")
        return lut

    def transition_lut(self, transition: int) -> LUT:
        """Output-slew LUT for the given output transition (RISE/FALL)."""
        lut = self.rise_transition if transition == RISE else self.fall_transition
        if lut is None:
            raise ValueError(f"arc {self.from_pin}->{self.to_pin} has no slew LUT")
        return lut

    def constraint_lut(self, transition: int) -> LUT:
        """Constraint LUT for the given data transition (RISE/FALL)."""
        lut = self.rise_constraint if transition == RISE else self.fall_constraint
        if lut is None:
            raise ValueError(
                f"arc {self.from_pin}->{self.to_pin} has no constraint LUT"
            )
        return lut


@dataclass
class CellType:
    """A library cell: geometry, pins and timing arcs."""

    name: str
    width: float
    height: float
    pins: List[PinSpec] = field(default_factory=list)
    arcs: List[TimingArc] = field(default_factory=list)
    is_sequential: bool = False
    function: str = ""

    def __post_init__(self) -> None:
        self._pin_index: Dict[str, int] = {p.name: i for i, p in enumerate(self.pins)}

    def pin(self, name: str) -> PinSpec:
        """Look up a pin spec by name."""
        try:
            return self.pins[self._pin_index[name]]
        except KeyError:
            raise KeyError(f"cell {self.name!r} has no pin {name!r}") from None

    @property
    def input_pins(self) -> List[PinSpec]:
        return [p for p in self.pins if p.direction is PinDirection.INPUT]

    @property
    def output_pins(self) -> List[PinSpec]:
        return [p for p in self.pins if p.direction is PinDirection.OUTPUT]

    @property
    def area(self) -> float:
        return self.width * self.height

    def delay_arcs(self) -> List[TimingArc]:
        return [a for a in self.arcs if a.kind.is_delay_arc]

    def check_arcs(self) -> List[TimingArc]:
        return [a for a in self.arcs if not a.kind.is_delay_arc]


@dataclass
class WireModel:
    """Per-unit-length RC parameters for Elmore interconnect modelling.

    With distance in um, ``res_per_um`` in kOhm/um and ``cap_per_um`` in
    fF/um, a wire segment of length L contributes ``res_per_um * L`` kOhm of
    series resistance and ``cap_per_um * L`` fF of capacitance (lumped half
    at each end), so Elmore products come out in picoseconds.
    """

    res_per_um: float = 0.008
    cap_per_um: float = 0.35


@dataclass
class Library:
    """A collection of :class:`CellType` plus global wire/slew parameters."""

    name: str = "repro_lib"
    cells: Dict[str, CellType] = field(default_factory=dict)
    wire: WireModel = field(default_factory=WireModel)
    default_input_slew: float = 20.0
    time_unit: str = "1ps"
    cap_unit: str = "1ff"

    def add(self, cell: CellType) -> CellType:
        """Register a cell type; returns it for chaining."""
        if cell.name in self.cells:
            raise ValueError(f"duplicate cell {cell.name!r}")
        self.cells[cell.name] = cell
        return cell

    def __getitem__(self, name: str) -> CellType:
        return self.cells[name]

    def __contains__(self, name: str) -> bool:
        return name in self.cells

    def __iter__(self):
        return iter(self.cells.values())

    def __len__(self) -> int:
        return len(self.cells)


def _table_axes(
    slew_axis: np.ndarray, load_axis: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    return np.asarray(slew_axis, float), np.asarray(load_axis, float)


def make_delay_tables(
    base_delay: float,
    drive_res: float,
    slew_coeff: float,
    slew_base: float,
    slew_load_coeff: float,
    slew_axis=None,
    load_axis=None,
    curvature: float = 0.004,
) -> Tuple[LUT, LUT, LUT, LUT]:
    """Characterise a delay arc into four NLDM LUTs.

    The underlying analytic model is affine in load with a mild quadratic
    term (so bilinear interpolation is genuinely exercised):

    ``delay(slew, load) = base + drive_res * load + slew_coeff * slew
    + curvature * sqrt(slew * load)``

    ``out_slew(slew, load) = slew_base + slew_load_coeff * load
    + 0.1 * slew``

    Fall tables are characterised 8% slower than rise tables, a typical
    N/P-strength asymmetry.
    """
    if slew_axis is None:
        slew_axis = np.array([2.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0])
    if load_axis is None:
        load_axis = np.array([0.5, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0])
    sx, ly = _table_axes(slew_axis, load_axis)
    s, l = np.meshgrid(sx, ly, indexing="ij")

    def delay(scale: float) -> np.ndarray:
        return scale * (
            base_delay + drive_res * l + slew_coeff * s + curvature * np.sqrt(s * l)
        )

    def out_slew(scale: float) -> np.ndarray:
        return scale * (slew_base + slew_load_coeff * l + 0.10 * s)

    return (
        LUT(sx, ly, delay(1.00), "cell_rise"),
        LUT(sx, ly, delay(1.08), "cell_fall"),
        LUT(sx, ly, out_slew(1.00), "rise_transition"),
        LUT(sx, ly, out_slew(1.08), "fall_transition"),
    )


def make_constraint_tables(
    setup_base: float, slew_coeff: float = 0.05, slew_axis=None
) -> Tuple[LUT, LUT]:
    """Characterise a setup-check arc indexed by (data slew, clock slew)."""
    if slew_axis is None:
        slew_axis = np.array([2.0, 16.0, 64.0, 256.0])
    sx = np.asarray(slew_axis, float)
    d, c = np.meshgrid(sx, sx, indexing="ij")
    values = setup_base + slew_coeff * d + 0.02 * c
    return (
        LUT(sx, sx, values, "rise_constraint"),
        LUT(sx, sx, values * 1.05, "fall_constraint"),
    )


def default_library(row_height: float = 2.0) -> Library:
    """Build the synthetic standard-cell library used by the benchmarks.

    The library contains the usual suspects (INV/BUF/NAND2/NOR2/AND2/OR2/
    XOR2/MUX2/DFF) with drive strengths and input capacitances chosen so
    that fanout and wire loading dominate path delay the same way they do in
    the ICCAD 2015 kit: a fanout-of-4 inverter stage costs ~15-25 ps.
    """
    lib = Library(name="repro_lib")
    h = row_height

    def comb(
        name: str,
        n_inputs: int,
        width: float,
        in_cap: float,
        base: float,
        rdrive: float,
        unate: Unateness,
        function: str,
    ) -> CellType:
        pins = [
            PinSpec(chr(ord("A") + i), PinDirection.INPUT, capacitance=in_cap)
            for i in range(n_inputs)
        ]
        pins.append(PinSpec("Y", PinDirection.OUTPUT, max_capacitance=120.0))
        arcs = []
        for i in range(n_inputs):
            # Later inputs of a stack are slightly slower, as in real cells.
            tables = make_delay_tables(
                base_delay=base * (1.0 + 0.12 * i),
                drive_res=rdrive,
                slew_coeff=0.085,
                slew_base=base * 0.8,
                slew_load_coeff=rdrive * 0.9,
            )
            arcs.append(
                TimingArc(
                    from_pin=chr(ord("A") + i),
                    to_pin="Y",
                    kind=ArcKind.COMBINATIONAL,
                    unateness=unate,
                    cell_rise=tables[0],
                    cell_fall=tables[1],
                    rise_transition=tables[2],
                    fall_transition=tables[3],
                )
            )
        cell = CellType(name, width, h, pins, arcs, function=function)
        return lib.add(cell)

    neg = Unateness.NEGATIVE
    pos = Unateness.POSITIVE
    non = Unateness.NON_UNATE
    comb("INV_X1", 1, 1.0, 1.6, 8.0, 2.8, neg, "!A")
    comb("INV_X2", 1, 1.5, 3.0, 7.0, 1.5, neg, "!A")
    comb("INV_X4", 1, 2.5, 5.8, 6.5, 0.8, neg, "!A")
    comb("BUF_X1", 1, 1.5, 1.5, 16.0, 2.6, pos, "A")
    comb("BUF_X2", 1, 2.0, 2.8, 14.0, 1.4, pos, "A")
    comb("NAND2_X1", 2, 1.5, 1.8, 10.0, 3.0, neg, "!(A & B)")
    comb("NOR2_X1", 2, 1.5, 1.8, 12.0, 3.4, neg, "!(A | B)")
    comb("AND2_X1", 2, 2.0, 1.7, 18.0, 2.9, pos, "A & B")
    comb("OR2_X1", 2, 2.0, 1.7, 19.0, 3.1, pos, "A | B")
    comb("XOR2_X1", 2, 3.0, 2.4, 24.0, 3.3, non, "A ^ B")
    comb("MUX2_X1", 3, 3.5, 2.0, 22.0, 3.0, non, "S ? B : A")

    # D flip-flop with a rising-edge CK->Q delay arc and a setup check.
    dff_pins = [
        PinSpec("D", PinDirection.INPUT, capacitance=2.0),
        PinSpec("CK", PinDirection.INPUT, capacitance=1.2, is_clock=True),
        PinSpec("Q", PinDirection.OUTPUT, max_capacitance=120.0),
    ]
    ck2q = make_delay_tables(
        base_delay=35.0,
        drive_res=2.2,
        slew_coeff=0.02,
        slew_base=26.0,
        slew_load_coeff=2.0,
    )
    setup = make_constraint_tables(setup_base=12.0)
    hold = make_constraint_tables(setup_base=3.0, slew_coeff=0.02)
    dff_arcs = [
        TimingArc(
            "CK",
            "Q",
            ArcKind.CLOCK_TO_Q,
            Unateness.NON_UNATE,
            cell_rise=ck2q[0],
            cell_fall=ck2q[1],
            rise_transition=ck2q[2],
            fall_transition=ck2q[3],
        ),
        TimingArc(
            "CK",
            "D",
            ArcKind.SETUP,
            Unateness.NON_UNATE,
            rise_constraint=setup[0],
            fall_constraint=setup[1],
        ),
        TimingArc(
            "CK",
            "D",
            ArcKind.HOLD,
            Unateness.NON_UNATE,
            rise_constraint=hold[0],
            fall_constraint=hold[1],
        ),
    ]
    lib.add(CellType("DFF_X1", 4.0, h, dff_pins, dff_arcs, is_sequential=True))
    return lib
