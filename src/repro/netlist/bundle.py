"""Complete design-bundle persistence (ICCAD 2015 kit style).

The contest distributes each benchmark as Verilog netlist + Liberty
libraries + SDC constraints + DEF placement.  :func:`save_design` writes
the same four files (plus a small manifest) for any :class:`Design`, and
:func:`load_design_bundle` reconstructs a fully timing-capable design from
them - the only persistence path in this package that round-trips
*everything*: library, netlist, constraints, geometry and placement.

This is the portable *interchange* format (text files, tool-readable,
diff-able).  For the fast content-keyed performance cache the suite
runner uses to warm its workers (pickled Design + prebuilt TimingGraph,
checksummed, keyed by generator spec), see :mod:`repro.netlist.cache` -
the two serve different purposes and neither replaces the other.
"""

from __future__ import annotations

import json
import os
from typing import Optional, Tuple

import numpy as np

from .def_io import apply_def_placement, read_def_file, write_def_file
from .design import Design
from .liberty import read_liberty_file, write_liberty_file
from .sdc import read_sdc_file, write_sdc_file
from .verilog import read_verilog_file, write_verilog_file

__all__ = ["save_design", "load_design_bundle"]

_MANIFEST = "design.json"


def save_design(
    design: Design,
    directory: str,
    cell_x: Optional[np.ndarray] = None,
    cell_y: Optional[np.ndarray] = None,
) -> str:
    """Write a full bundle (.v/.lib/.sdc/.def + manifest) to a directory.

    Returns the manifest path.  ``cell_x``/``cell_y`` override the stored
    placement (e.g. to persist a placer result).
    """
    os.makedirs(directory, exist_ok=True)
    name = design.name
    write_verilog_file(design, os.path.join(directory, f"{name}.v"))
    write_liberty_file(design.library, os.path.join(directory, f"{name}.lib"))
    write_sdc_file(design.constraints, os.path.join(directory, f"{name}.sdc"))
    write_def_file(
        design, os.path.join(directory, f"{name}.def"), cell_x, cell_y
    )
    manifest = {
        "name": name,
        "verilog": f"{name}.v",
        "liberty": f"{name}.lib",
        "sdc": f"{name}.sdc",
        "def": f"{name}.def",
        "die": list(design.die),
        "row_height": design.row_height,
    }
    path = os.path.join(directory, _MANIFEST)
    with open(path, "w") as handle:
        json.dump(manifest, handle, indent=2)
    return path


def load_design_bundle(directory: str) -> Tuple[Design, np.ndarray, np.ndarray]:
    """Reconstruct a design (plus its placement) from a saved bundle.

    Returns ``(design, x, y)`` where the coordinate arrays hold the DEF
    placement (also already applied as the design's stored positions).
    """
    manifest_path = os.path.join(directory, _MANIFEST)
    with open(manifest_path) as handle:
        manifest = json.load(handle)

    library = read_liberty_file(os.path.join(directory, manifest["liberty"]))
    constraints = read_sdc_file(os.path.join(directory, manifest["sdc"]))
    design = read_verilog_file(
        os.path.join(directory, manifest["verilog"]),
        library,
        die=tuple(manifest["die"]),
        constraints=constraints,
        row_height=manifest["row_height"],
    )
    def_data = read_def_file(os.path.join(directory, manifest["def"]))
    x, y = apply_def_placement(design, def_data)
    design.cell_x = x.copy()
    design.cell_y = y.copy()
    return design, x, y
