"""Rectilinear Steiner minimal tree construction.

This is the FLUTE substitute of the reproduction (the paper notes FLUTE is
replaceable by any RSMT generator).  Strategy by net degree:

- degree 2: a single edge;
- degree 3: the median point (the exact RSMT for three terminals);
- degree 4..``max_steiner_degree``: iterated 1-Steiner over the Hanan grid
  (Kahng-Robins), inserting the candidate with the best exact MST-length
  gain until no candidate helps;
- larger nets: plain rectilinear minimum spanning tree (no Steiner points).

Every Steiner point is a Hanan point ``(x of pin i, y of pin j)`` and
records ``(i, j)`` as its coordinate owners, which is what makes the tree
differentiable with respect to pin locations (Figure 4 of the paper).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..netlist.design import Design
from ..perf import PROFILER
from .tree import Forest, RoutingTree

__all__ = [
    "build_rsmt",
    "build_trees",
    "build_trees_for_nets",
    "build_forest",
    "build_forest_from_pins",
    "rmst_length",
]


def _prim_edges(x: np.ndarray, y: np.ndarray) -> Tuple[List[Tuple[int, int]], float]:
    """Rectilinear MST via vectorised Prim; returns (edges, total length)."""
    n = len(x)
    if n <= 1:
        return [], 0.0
    in_tree = np.zeros(n, dtype=bool)
    best_dist = np.full(n, np.inf)
    best_src = np.zeros(n, dtype=np.int64)
    in_tree[0] = True
    dist0 = np.abs(x - x[0]) + np.abs(y - y[0])
    better = dist0 < best_dist
    best_dist[better] = dist0[better]
    best_src[better] = 0
    best_dist[0] = np.inf
    edges: List[Tuple[int, int]] = []
    total = 0.0
    for _ in range(n - 1):
        v = int(np.argmin(best_dist))
        total += float(best_dist[v])
        edges.append((int(best_src[v]), v))
        in_tree[v] = True
        dist_v = np.abs(x - x[v]) + np.abs(y - y[v])
        better = (dist_v < best_dist) & ~in_tree
        best_dist[better] = dist_v[better]
        best_src[better] = v
        best_dist[v] = np.inf
    return edges, total


def rmst_length(x: np.ndarray, y: np.ndarray) -> float:
    """Length of the rectilinear MST over the given points."""
    return _prim_edges(np.asarray(x, float), np.asarray(y, float))[1]


def _prim_lengths_batch(
    x: np.ndarray, y: np.ndarray, cand_x: np.ndarray, cand_y: np.ndarray
) -> np.ndarray:
    """MST length of (base points + one candidate) for every candidate.

    Runs Prim simultaneously over ``C`` point sets that share the same
    ``n`` base points and differ only in one extra point each; all state
    is vectorised across candidates, which is what makes the iterated
    1-Steiner pass affordable in pure NumPy.
    """
    n = len(x)
    c = len(cand_x)
    if c == 0:
        return np.zeros(0)
    # Node layout per candidate set: 0..n-1 base points, n = candidate.
    xs = np.broadcast_to(x, (c, n))
    ys = np.broadcast_to(y, (c, n))
    all_x = np.concatenate([xs, cand_x[:, None]], axis=1)  # (C, n+1)
    all_y = np.concatenate([ys, cand_y[:, None]], axis=1)

    rows = np.arange(c)
    in_tree = np.zeros((c, n + 1), dtype=bool)
    in_tree[:, 0] = True
    # Seed from node 0.
    best_dist = np.abs(all_x - all_x[:, :1]) + np.abs(all_y - all_y[:, :1])
    best_dist[:, 0] = np.inf
    total = np.zeros(c)
    for _ in range(n):
        v = np.argmin(best_dist, axis=1)
        total += best_dist[rows, v]
        in_tree[rows, v] = True
        vx = all_x[rows, v][:, None]
        vy = all_y[rows, v][:, None]
        dv = np.abs(all_x - vx) + np.abs(all_y - vy)
        best_dist = np.minimum(best_dist, dv)
        best_dist[in_tree] = np.inf
    return total


def _root_edges(
    n: int, edges: Sequence[Tuple[int, int]], root: int
) -> np.ndarray:
    """Convert an undirected edge list into parent pointers toward root."""
    adjacency: List[List[int]] = [[] for _ in range(n)]
    for a, b in edges:
        adjacency[a].append(b)
        adjacency[b].append(a)
    parent = np.full(n, -1, dtype=np.int64)
    seen = np.zeros(n, dtype=bool)
    seen[root] = True
    stack = [root]
    while stack:
        u = stack.pop()
        for v in adjacency[u]:
            if not seen[v]:
                seen[v] = True
                parent[v] = u
                stack.append(v)
    if not seen.all():
        raise ValueError("edge list does not span all nodes")
    return parent


def _median3_tree(
    x: np.ndarray, y: np.ndarray, pins: np.ndarray, root: int
) -> RoutingTree:
    """Exact RSMT for three terminals: connect all pins to the median point."""
    mx = float(np.median(x))
    my = float(np.median(y))
    owner_mx = int(np.argsort(x)[1])
    owner_my = int(np.argsort(y)[1])
    coincident = np.nonzero((x == mx) & (y == my))[0]
    if len(coincident) > 0:
        # The median point is an existing pin: star topology around it.
        hub = int(coincident[0])
        parent = np.full(3, hub, dtype=np.int64)
        parent[hub] = -1
        tree = RoutingTree(
            x=x.copy(),
            y=y.copy(),
            parent=parent,
            pins=pins.copy(),
            owner_x=np.arange(3),
            owner_y=np.arange(3),
            root=hub,
        )
        return _reroot(tree, root)
    xs = np.concatenate([x, [mx]])
    ys = np.concatenate([y, [my]])
    parent = np.array([3, 3, 3, -1], dtype=np.int64)
    tree = RoutingTree(
        x=xs,
        y=ys,
        parent=parent,
        pins=np.concatenate([pins, [-1]]),
        owner_x=np.array([0, 1, 2, owner_mx], dtype=np.int64),
        owner_y=np.array([0, 1, 2, owner_my], dtype=np.int64),
        root=3,
    )
    return _reroot(tree, root)


def _reroot(tree: RoutingTree, new_root: int) -> RoutingTree:
    """Re-root a tree at a different node by flipping parent pointers."""
    if new_root == tree.root:
        return tree
    parent = tree.parent.copy()
    path = [new_root]
    while parent[path[-1]] >= 0:
        path.append(int(parent[path[-1]]))
    for child, par in zip(path, path[1:]):
        parent[par] = child
    parent[new_root] = -1
    tree.parent = parent
    tree.root = new_root
    return tree


def _iterated_one_steiner(
    x: np.ndarray,
    y: np.ndarray,
    max_candidates: int,
    tol: float = 1e-9,
) -> Tuple[np.ndarray, np.ndarray, List[Tuple[int, int]]]:
    """Insert Hanan-grid Steiner points while they shorten the MST.

    Returns the augmented coordinates and the (x-owner, y-owner) pin index
    pair for each inserted Steiner point.  Construction is a pure function
    of the coordinates (candidate pruning is deterministic), which the
    incremental timer relies on: rebuilding an unmoved net must reproduce
    the identical tree.
    """
    n_pins = len(x)
    xs = x.copy()
    ys = y.copy()
    owners: List[Tuple[int, int]] = []
    _, current_len = _prim_edges(xs, ys)
    max_inserts = max(n_pins - 2, 0)
    for _ in range(max_inserts):
        # Hanan candidates from pin coordinates only (owners must be pins).
        cand_i, cand_j = np.meshgrid(
            np.arange(n_pins), np.arange(n_pins), indexing="ij"
        )
        cand_i = cand_i.ravel()
        cand_j = cand_j.ravel()
        cx = x[cand_i]
        cy = y[cand_j]
        # Drop candidates coincident with existing nodes.
        keep = ~(
            (cx[:, None] == xs[None, :]) & (cy[:, None] == ys[None, :])
        ).any(axis=1)
        cand_i, cand_j, cx, cy = cand_i[keep], cand_j[keep], cx[keep], cy[keep]
        if len(cx) == 0:
            break
        if len(cx) > max_candidates:
            # Deterministic pruning: a useful Steiner point sits close to
            # several existing nodes, so rank candidates by the sum of
            # their three smallest node distances.
            dist = np.abs(cx[:, None] - xs[None, :]) + np.abs(
                cy[:, None] - ys[None, :]
            )
            k = min(3, dist.shape[1])
            score = np.sort(dist, axis=1)[:, :k].sum(axis=1)
            pick = np.argsort(score, kind="stable")[:max_candidates]
            cand_i, cand_j, cx, cy = cand_i[pick], cand_j[pick], cx[pick], cy[pick]
        new_lens = _prim_lengths_batch(xs, ys, cx, cy)
        best = int(np.argmin(new_lens))
        best_len = float(new_lens[best])
        if current_len - best_len <= tol:
            break
        xs = np.concatenate([xs, [cx[best]]])
        ys = np.concatenate([ys, [cy[best]]])
        owners.append((int(cand_i[best]), int(cand_j[best])))
        current_len = best_len
    return xs, ys, owners


def _prune_leaf_steiners(
    xs: np.ndarray,
    ys: np.ndarray,
    edges: Sequence[Tuple[int, int]],
    n_pins: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Remove Steiner nodes of degree <= 1, iterating to a fixed point.

    Returns the remapped coordinates/edges plus the *original* index of
    each surviving node (pins always survive and keep their order).

    The peel is fully vectorised: degrees come from ``np.bincount`` and
    membership tests are boolean-mask lookups, so one iteration is O(E)
    (a chain of S dangling Steiner points still needs S iterations, one
    per peeled layer, but never the quadratic list scans the original
    implementation performed).  The returned ``edges`` is an ``(E, 2)``
    int array in the same order as the input.
    """
    n = len(xs)
    edge_arr = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    original = np.arange(n, dtype=np.int64)
    while True:
        degree = np.bincount(edge_arr.ravel(), minlength=n)
        removed = (original >= n_pins) & (degree <= 1)
        if not removed.any():
            break
        edge_keep = ~(removed[edge_arr[:, 0]] | removed[edge_arr[:, 1]])
        keep = np.nonzero(~removed)[0]
        remap_step = np.full(n, -1, dtype=np.int64)
        remap_step[keep] = np.arange(len(keep))
        xs = xs[keep]
        ys = ys[keep]
        original = original[keep]
        edge_arr = remap_step[edge_arr[edge_keep]]
        n = len(xs)
    return xs, ys, edge_arr, original


def _assemble_tree(
    x: np.ndarray,
    y: np.ndarray,
    pins: np.ndarray,
    driver_local: int,
    xs: np.ndarray,
    ys: np.ndarray,
    owners: List[Tuple[int, int]],
    edges: Optional[Sequence[Tuple[int, int]]] = None,
) -> RoutingTree:
    """Shared tail of RSMT construction: MST edges -> prune -> root.

    ``xs``/``ys`` are the pin coordinates plus any inserted Steiner
    points (in insertion order, owners parallel to the Steiner suffix).
    ``edges`` may carry a precomputed MST edge list (the batched path
    extracts edges for a whole bucket at once); when omitted the scalar
    Prim kernel runs here.
    """
    n = len(x)
    if edges is None:
        edges, _ = _prim_edges(xs, ys)
    xs, ys, edges, original = _prune_leaf_steiners(xs, ys, edges, n)
    n_total = len(xs)
    n_steiner = n_total - n
    owner_x = np.arange(n_total, dtype=np.int64)
    owner_y = np.arange(n_total, dtype=np.int64)
    for v in range(n, n_total):
        k = int(original[v]) - n  # index into the insertion-order owner list
        owner_x[v] = owners[k][0]
        owner_y[v] = owners[k][1]
    parent = _root_edges(n_total, edges, driver_local)
    return RoutingTree(
        x=xs,
        y=ys,
        parent=parent,
        pins=np.concatenate([pins, np.full(n_steiner, -1, dtype=np.int64)]),
        owner_x=owner_x,
        owner_y=owner_y,
        root=driver_local,
    )


def build_rsmt(
    pin_x: np.ndarray,
    pin_y: np.ndarray,
    pin_ids: np.ndarray,
    driver_local: int = 0,
    max_steiner_degree: int = 24,
    max_candidates: int = 64,
) -> RoutingTree:
    """Build a rooted RSMT over one net's pins.

    Parameters
    ----------
    pin_x, pin_y:
        Pin coordinates.
    pin_ids:
        Global pin indices (stored in the tree's ``pins`` array).
    driver_local:
        Local index of the driver pin; the tree is rooted there.
    max_steiner_degree:
        Nets larger than this use a plain rectilinear MST.
    """
    x = np.asarray(pin_x, dtype=np.float64)
    y = np.asarray(pin_y, dtype=np.float64)
    pins = np.asarray(pin_ids, dtype=np.int64)
    n = len(x)
    if n == 0:
        raise ValueError("cannot route an empty net")
    if n == 1:
        return RoutingTree(
            x=x.copy(),
            y=y.copy(),
            parent=np.array([-1], dtype=np.int64),
            pins=pins.copy(),
            owner_x=np.zeros(1, dtype=np.int64),
            owner_y=np.zeros(1, dtype=np.int64),
            root=0,
        )
    if n == 2:
        parent = np.full(2, -1, dtype=np.int64)
        parent[1 - driver_local] = driver_local
        return RoutingTree(
            x=x.copy(),
            y=y.copy(),
            parent=parent,
            pins=pins.copy(),
            owner_x=np.arange(2),
            owner_y=np.arange(2),
            root=driver_local,
        )
    if n == 3:
        return _median3_tree(x, y, pins, driver_local)

    if n <= max_steiner_degree:
        xs, ys, owners = _iterated_one_steiner(x, y, max_candidates)
    else:
        xs, ys, owners = x.copy(), y.copy(), []

    return _assemble_tree(x, y, pins, driver_local, xs, ys, owners)


def _routable_nets(
    design: Design, net_ids: Iterable[int], include_clock: bool
) -> List[int]:
    """Filter to nets that get a tree (>= 2 pins, driven, non-clock)."""
    out = []
    for ni in net_ids:
        if (
            design.net_degree(ni) >= 2
            and design.net_driver[ni] >= 0
            and (include_clock or not design.net_is_clock[ni])
        ):
            out.append(int(ni))
    return out


def build_trees_for_nets(
    design: Design,
    px: np.ndarray,
    py: np.ndarray,
    net_ids: Sequence[int],
    max_steiner_degree: int = 24,
    max_candidates: int = 64,
    include_clock: bool = False,
    batched: bool = True,
) -> Dict[int, RoutingTree]:
    """Route a subset of nets from explicit *pin* coordinates.

    This is the entry point of the dirty-net incremental rebuild path
    (and of checkpoint restoration, which replays each net's tree from
    the pin coordinates it was last built at).  Unroutable nets in
    ``net_ids`` are silently skipped.  With ``batched=True`` nets are
    degree-bucketed through :mod:`repro.route.batch`; the scalar path is
    kept as the reference implementation and for candidate-pruned
    degrees.
    """
    ids = _routable_nets(design, net_ids, include_clock)
    if not ids:
        return {}
    pins_list = [design.net_pins(ni) for ni in ids]
    drivers = [
        int(np.nonzero(pins == design.net_driver[ni])[0][0])
        for ni, pins in zip(ids, pins_list)
    ]
    if batched:
        from .batch import build_rsmt_batch

        trees = build_rsmt_batch(
            [px[p] for p in pins_list],
            [py[p] for p in pins_list],
            pins_list,
            drivers,
            max_steiner_degree=max_steiner_degree,
            max_candidates=max_candidates,
        )
    else:
        trees = [
            build_rsmt(
                px[pins],
                py[pins],
                pins,
                driver_local=drv,
                max_steiner_degree=max_steiner_degree,
                max_candidates=max_candidates,
            )
            for pins, drv in zip(pins_list, drivers)
        ]
    return dict(zip(ids, trees))


def build_trees(
    design: Design,
    cell_x: Optional[np.ndarray] = None,
    cell_y: Optional[np.ndarray] = None,
    max_steiner_degree: int = 24,
    include_clock: bool = False,
    batched: bool = True,
) -> List[Optional[RoutingTree]]:
    """Build routing trees for every timing net of a design.

    Clock nets are skipped by default (the evaluation uses an ideal clock),
    as are driverless and single-pin nets; those entries are ``None``.
    ``batched=False`` forces the scalar per-net reference path (the
    batched kernels produce bit-identical trees; the flag exists for
    benchmarking and equivalence testing).
    """
    px, py = design.pin_positions(cell_x, cell_y)
    by_net = build_trees_for_nets(
        design,
        px,
        py,
        range(design.n_nets),
        max_steiner_degree=max_steiner_degree,
        include_clock=include_clock,
        batched=batched,
    )
    return [by_net.get(ni) for ni in range(design.n_nets)]


def build_forest(
    design: Design,
    cell_x: Optional[np.ndarray] = None,
    cell_y: Optional[np.ndarray] = None,
    **kwargs,
) -> Forest:
    """Convenience wrapper: route every timing net and flatten to a Forest."""
    with PROFILER.stage("route.build_forest"):
        trees = build_trees(design, cell_x, cell_y, **kwargs)
        return Forest(trees, design.n_pins)


def build_forest_from_pins(
    design: Design, px: np.ndarray, py: np.ndarray, **kwargs
) -> Forest:
    """Route every timing net from explicit per-pin coordinates.

    Used by checkpoint restoration: a dirty-net incremental forest is a
    mixture of trees built at different iterations, but each tree is a
    pure function of its own pins' coordinates at build time, so a
    per-pin coordinate snapshot reconstructs the exact forest.
    """
    with PROFILER.stage("route.build_forest"):
        by_net = build_trees_for_nets(
            design, px, py, range(design.n_nets), **kwargs
        )
        trees = [by_net.get(ni) for ni in range(design.n_nets)]
        return Forest(trees, design.n_pins)
