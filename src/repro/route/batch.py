"""Degree-bucketed batched RSMT kernels.

The scalar :func:`repro.route.rsmt.build_rsmt` builds one tree at a time
with a per-net Python Prim loop; on the miniblue suite that loop is the
dominant cost of every Steiner-forest rebuild.  The kernels here bucket
nets by degree and build whole buckets at once on rectangular
``(n_nets_in_bucket, degree)`` coordinate arrays:

- degree 2: a single HPWL segment per net (pure array construction);
- degree 3: the closed-form median point, with the coincident-pin and
  re-rooting cases resolved by vectorised masks;
- degree 4..k (while ``degree**2 <= max_candidates``): a batched iterated
  1-Steiner pass that evaluates every Hanan candidate of every active net
  in one Prim sweep over ``(n_active * degree**2, nodes)`` arrays;
- larger nets (plain rectilinear MST) run through the same batched Prim,
  grouped by degree.

Nets whose candidate set would be pruned (``degree**2 > max_candidates``)
fall back to the scalar path so the deterministic pruning heuristic stays
byte-identical; they are a negligible fraction of real netlists.

Every kernel reproduces the scalar construction *exactly* (same floating
point operations in the same order, same tie-breaking), so the batched
and scalar paths emit bit-identical trees - the equivalence suite in
``tests/test_rsmt_batch.py`` enforces this per degree.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .tree import RoutingTree

__all__ = ["build_rsmt_batch", "batched_prim", "batched_one_steiner"]


# ----------------------------------------------------------------------
# Batched Prim kernels
# ----------------------------------------------------------------------
def batched_prim(
    X: np.ndarray, Y: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Rectilinear MST over every row of ``(B, n)`` coordinate arrays.

    Returns ``(src, dst, total)`` where ``src``/``dst`` are ``(B, n-1)``
    edge endpoint arrays in Prim insertion order and ``total`` is the
    per-row MST length.  Bit-identical to running the scalar
    :func:`repro.route.rsmt._prim_edges` on each row (same seed node,
    same strict-improvement updates, same argmin tie-breaking).
    """
    B, n = X.shape
    if n <= 1:
        return (
            np.zeros((B, 0), dtype=np.int64),
            np.zeros((B, 0), dtype=np.int64),
            np.zeros(B),
        )
    rows = np.arange(B)
    in_tree = np.zeros((B, n), dtype=bool)
    in_tree[:, 0] = True
    best_dist = np.abs(X - X[:, :1]) + np.abs(Y - Y[:, :1])
    best_src = np.zeros((B, n), dtype=np.int64)
    best_dist[:, 0] = np.inf
    src = np.zeros((B, n - 1), dtype=np.int64)
    dst = np.zeros((B, n - 1), dtype=np.int64)
    total = np.zeros(B)
    for step in range(n - 1):
        v = np.argmin(best_dist, axis=1)
        total += best_dist[rows, v]
        src[:, step] = best_src[rows, v]
        dst[:, step] = v
        in_tree[rows, v] = True
        dv = np.abs(X - X[rows, v][:, None]) + np.abs(Y - Y[rows, v][:, None])
        better = (dv < best_dist) & ~in_tree
        best_dist = np.where(better, dv, best_dist)
        best_src = np.where(better, v[:, None], best_src)
        best_dist[rows, v] = np.inf
    return src, dst, total


def _batched_candidate_lengths(
    base_x: np.ndarray,
    base_y: np.ndarray,
    cand_x: np.ndarray,
    cand_y: np.ndarray,
) -> np.ndarray:
    """MST length of (row's base points + one candidate) per (row, cand).

    ``base_x``/``base_y`` are ``(A, n)``; ``cand_x``/``cand_y`` are
    ``(A, C)``.  Returns ``(A, C)`` lengths.  This is the 2-D analogue of
    :func:`repro.route.rsmt._prim_lengths_batch` (which batches over
    candidates of a single net); flattening (net, candidate) pairs into
    rows keeps the state rectangular, and the per-row arithmetic is
    bit-identical to the 1-D kernel.
    """
    A, n = base_x.shape
    C = cand_x.shape[1]
    if C == 0 or A == 0:
        return np.zeros((A, C))
    R = A * C
    all_x = np.concatenate(
        [
            np.broadcast_to(base_x[:, None, :], (A, C, n)).reshape(R, n),
            cand_x.reshape(R, 1),
        ],
        axis=1,
    )
    all_y = np.concatenate(
        [
            np.broadcast_to(base_y[:, None, :], (A, C, n)).reshape(R, n),
            cand_y.reshape(R, 1),
        ],
        axis=1,
    )
    rows = np.arange(R)
    in_tree = np.zeros((R, n + 1), dtype=bool)
    in_tree[:, 0] = True
    best_dist = np.abs(all_x - all_x[:, :1]) + np.abs(all_y - all_y[:, :1])
    best_dist[:, 0] = np.inf
    total = np.zeros(R)
    for _ in range(n):
        v = np.argmin(best_dist, axis=1)
        total += best_dist[rows, v]
        in_tree[rows, v] = True
        vx = all_x[rows, v][:, None]
        vy = all_y[rows, v][:, None]
        dv = np.abs(all_x - vx) + np.abs(all_y - vy)
        best_dist = np.minimum(best_dist, dv)
        best_dist[in_tree] = np.inf
    return total.reshape(A, C)


# ----------------------------------------------------------------------
# Batched iterated 1-Steiner
# ----------------------------------------------------------------------
def batched_one_steiner(
    X: np.ndarray, Y: np.ndarray, tol: float = 1e-9
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Iterated 1-Steiner over a bucket of same-degree nets.

    ``X``/``Y`` are ``(B, d)`` pin coordinates.  Returns padded node
    arrays ``(XS, YS)`` of shape ``(B, d + d - 2)``, per-net inserted
    counts ``n_ins`` and the ``(B, d-2)`` owner-index arrays for the
    inserted Steiner points (in insertion order).

    Candidates coincident with existing nodes are masked to ``+inf``
    instead of dropped, which preserves the scalar path's first-minimum
    tie-breaking (kept candidates keep their raveled Hanan-grid order).
    Only valid while ``d * d`` does not exceed the scalar path's
    ``max_candidates`` (no pruning), which the caller enforces.
    """
    B, d = X.shape
    T = max(d - 2, 0)
    XS = np.zeros((B, d + T))
    YS = np.zeros((B, d + T))
    XS[:, :d] = X
    YS[:, :d] = Y
    n_ins = np.zeros(B, dtype=np.int64)
    own_i = np.zeros((B, T), dtype=np.int64)
    own_j = np.zeros((B, T), dtype=np.int64)
    if B == 0 or T == 0:
        return XS, YS, n_ins, own_i, own_j

    # Hanan candidates in the scalar path's raveled (i-major) order.
    ci = np.repeat(np.arange(d), d)
    cj = np.tile(np.arange(d), d)
    _, _, cur_len = batched_prim(X, Y)
    active = np.ones(B, dtype=bool)
    for t in range(T):
        idx = np.nonzero(active)[0]
        if len(idx) == 0:
            break
        nodes_x = XS[idx, : d + t]
        nodes_y = YS[idx, : d + t]
        CX = X[idx][:, ci]  # (A, d*d)
        CY = Y[idx][:, cj]
        coincide = (
            (CX[:, :, None] == nodes_x[:, None, :])
            & (CY[:, :, None] == nodes_y[:, None, :])
        ).any(axis=2)
        lens = _batched_candidate_lengths(nodes_x, nodes_y, CX, CY)
        lens[coincide] = np.inf
        best = np.argmin(lens, axis=1)
        arow = np.arange(len(idx))
        best_len = lens[arow, best]
        # reprolint: allow[no-silent-nanfix] padding lanes of the degree-bucketed batch carry NaN lengths that are masked out of `improves` before use
        with np.errstate(invalid="ignore"):
            improves = (cur_len[idx] - best_len) > tol
        stopped = idx[~improves]
        active[stopped] = False
        ins = idx[improves]
        if len(ins) == 0:
            break
        sel = best[improves]
        XS[ins, d + t] = CX[arow[improves], sel]
        YS[ins, d + t] = CY[arow[improves], sel]
        own_i[ins, t] = ci[sel]
        own_j[ins, t] = cj[sel]
        n_ins[ins] += 1
        cur_len[ins] = best_len[improves]
    return XS, YS, n_ins, own_i, own_j


# ----------------------------------------------------------------------
# Closed-form buckets
# ----------------------------------------------------------------------
def _deg2_trees(
    X: np.ndarray,
    Y: np.ndarray,
    pins: np.ndarray,
    drivers: np.ndarray,
) -> List[RoutingTree]:
    """All degree-2 nets: one HPWL segment each, rooted at the driver."""
    B = len(X)
    parent = np.full((B, 2), -1, dtype=np.int64)
    parent[np.arange(B), 1 - drivers] = drivers
    owners = np.arange(2)
    out = []
    for k in range(B):
        out.append(
            RoutingTree(
                x=X[k],
                y=Y[k],
                parent=parent[k],
                pins=pins[k],
                owner_x=owners.copy(),
                owner_y=owners.copy(),
                root=int(drivers[k]),
            )
        )
    return out


def _deg3_trees(
    X: np.ndarray,
    Y: np.ndarray,
    pins: np.ndarray,
    drivers: np.ndarray,
) -> List[RoutingTree]:
    """All degree-3 nets: exact RSMT via the median point, vectorised.

    Reproduces :func:`repro.route.rsmt._median3_tree` (including its
    re-rooting at the driver) case by case: when the median point
    coincides with a pin the tree is a star around that pin, otherwise a
    4th Steiner node is inserted whose coordinate owners are the pins of
    median x and median y rank.
    """
    B = len(X)
    order_x = np.argsort(X, axis=1)
    order_y = np.argsort(Y, axis=1)
    # np.median of 3 elements is the middle order statistic.
    rows = np.arange(B)
    mx = X[rows, order_x[:, 1]]
    my = Y[rows, order_y[:, 1]]
    owner_mx = order_x[:, 1]
    owner_my = order_y[:, 1]
    coincide = (X == mx[:, None]) & (Y == my[:, None])
    has_hub = coincide.any(axis=1)
    hub = np.argmax(coincide, axis=1)

    base_owners = np.arange(3)
    out = []
    for k in range(B):
        r = int(drivers[k])
        if has_hub[k]:
            h = int(hub[k])
            parent = np.full(3, h, dtype=np.int64)
            # Star rooted at the hub, re-rooted at the driver: flipping
            # the (driver -> hub) pointer is the whole path reversal.
            parent[h] = r if r != h else -1
            parent[r] = -1
            out.append(
                RoutingTree(
                    x=X[k].copy(),
                    y=Y[k].copy(),
                    parent=parent,
                    pins=pins[k],
                    owner_x=base_owners.copy(),
                    owner_y=base_owners.copy(),
                    root=r,
                )
            )
        else:
            parent = np.full(4, 3, dtype=np.int64)
            parent[3] = r
            parent[r] = -1
            out.append(
                RoutingTree(
                    x=np.concatenate([X[k], mx[k : k + 1]]),
                    y=np.concatenate([Y[k], my[k : k + 1]]),
                    parent=parent,
                    pins=np.concatenate([pins[k], [-1]]),
                    owner_x=np.array([0, 1, 2, owner_mx[k]], dtype=np.int64),
                    owner_y=np.array([0, 1, 2, owner_my[k]], dtype=np.int64),
                    root=r,
                )
            )
    return out


# ----------------------------------------------------------------------
# Bucket dispatcher
# ----------------------------------------------------------------------
def build_rsmt_batch(
    px: Sequence[np.ndarray],
    py: Sequence[np.ndarray],
    pin_ids: Sequence[np.ndarray],
    driver_locals: Sequence[int],
    max_steiner_degree: int = 24,
    max_candidates: int = 64,
) -> List[RoutingTree]:
    """Build RSMTs for many nets at once, bucketed by degree.

    The inputs are parallel per-net sequences (coordinates, global pin
    ids, local driver index); the output list matches the input order.
    Results are bit-identical to calling
    :func:`repro.route.rsmt.build_rsmt` per net.
    """
    # Import here to avoid a circular module dependency (rsmt dispatches
    # into this module for its batched path).
    from .rsmt import _assemble_tree, build_rsmt

    n_nets = len(px)
    out: List[Optional[RoutingTree]] = [None] * n_nets
    buckets: Dict[int, List[int]] = {}
    for k in range(n_nets):
        d = len(px[k])
        if d <= 1 or (
            max_candidates < d * d and d <= max_steiner_degree and d > 3
        ):
            # Degenerate nets and nets subject to the scalar path's
            # deterministic candidate pruning: scalar fallback.
            out[k] = build_rsmt(
                px[k],
                py[k],
                pin_ids[k],
                driver_local=int(driver_locals[k]),
                max_steiner_degree=max_steiner_degree,
                max_candidates=max_candidates,
            )
            continue
        buckets.setdefault(d, []).append(k)

    for d, members in buckets.items():
        X = np.stack([np.asarray(px[k], dtype=np.float64) for k in members])
        Y = np.stack([np.asarray(py[k], dtype=np.float64) for k in members])
        # np.array (copying) so tree.pins never aliases design CSR slices.
        P = [np.array(pin_ids[k], dtype=np.int64) for k in members]
        drv = np.array([driver_locals[k] for k in members], dtype=np.int64)
        if d == 2:
            trees = _deg2_trees(X, Y, P, drv)
        elif d == 3:
            trees = _deg3_trees(X, Y, P, drv)
        else:
            if d <= max_steiner_degree:
                XS, YS, n_ins, own_i, own_j = batched_one_steiner(X, Y)
            else:
                T = 0
                XS, YS = X, Y
                n_ins = np.zeros(len(members), dtype=np.int64)
                own_i = own_j = np.zeros((len(members), T), dtype=np.int64)
            trees = _finalize_bucket(
                X, Y, P, drv, XS, YS, n_ins, own_i, own_j, _assemble_tree
            )
        for k, tree in zip(members, trees):
            out[k] = tree
    return out  # type: ignore[return-value]


def _finalize_bucket(
    X: np.ndarray,
    Y: np.ndarray,
    P: List[np.ndarray],
    drv: np.ndarray,
    XS: np.ndarray,
    YS: np.ndarray,
    n_ins: np.ndarray,
    own_i: np.ndarray,
    own_j: np.ndarray,
    assemble,
) -> List[RoutingTree]:
    """Final MST + prune + root for a bucket with per-net Steiner counts.

    Nets are regrouped by total node count so the final Prim pass stays
    rectangular; pruning/rooting are per-net (cheap after batching the
    length computations).
    """
    B, d = X.shape
    trees: List[Optional[RoutingTree]] = [None] * B
    for m in np.unique(n_ins):
        sel = np.nonzero(n_ins == m)[0]
        n_total = d + int(m)
        src, dst, _ = batched_prim(XS[sel, :n_total], YS[sel, :n_total])
        for row, k in enumerate(sel):
            edges = list(zip(src[row].tolist(), dst[row].tolist()))
            owners = [
                (int(own_i[k, t]), int(own_j[k, t])) for t in range(int(m))
            ]
            trees[k] = assemble(
                X[k],
                Y[k],
                P[k],
                int(drv[k]),
                XS[k, :n_total],
                YS[k, :n_total],
                owners,
                edges,
            )
    return trees  # type: ignore[return-value]
