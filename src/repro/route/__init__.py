"""Rectilinear Steiner tree routing substrate (FLUTE substitute)."""

from .tree import Forest, RoutingTree
from .batch import build_rsmt_batch
from .rsmt import (
    build_forest,
    build_forest_from_pins,
    build_rsmt,
    build_trees,
    build_trees_for_nets,
    rmst_length,
)

__all__ = [
    "Forest",
    "RoutingTree",
    "build_forest",
    "build_forest_from_pins",
    "build_rsmt",
    "build_rsmt_batch",
    "build_trees",
    "build_trees_for_nets",
    "rmst_length",
]
