"""Rectilinear Steiner tree routing substrate (FLUTE substitute)."""

from .tree import Forest, RoutingTree
from .rsmt import build_forest, build_rsmt, build_trees, rmst_length

__all__ = [
    "Forest",
    "RoutingTree",
    "build_forest",
    "build_rsmt",
    "build_trees",
    "rmst_length",
]
