"""Routing-tree data structures.

A :class:`RoutingTree` is a rooted rectilinear tree over one net: its nodes
are the net's pins plus router-inserted Steiner points, with parent pointers
toward the driver.  Every node records which pin *owns* each of its
coordinates (Figure 4 of the paper): a Steiner point created on the Hanan
grid copies its x from one pin and its y from another, so under small pin
perturbations it moves with those pins and gradients on Steiner coordinates
are routed to the owning pins.

A :class:`Forest` flattens many trees into contiguous arrays with a global
depth ordering, which is what the vectorised Elmore kernels (both the golden
and the differentiable timer) consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.scatter import scatter_add

__all__ = ["RoutingTree", "Forest"]


@dataclass
class RoutingTree:
    """A rooted rectilinear Steiner tree for a single net.

    Attributes
    ----------
    x, y:
        Node coordinates.  Nodes ``0..n_pins-1`` are the net pins in the
        order given at construction; the rest are Steiner points.
    parent:
        Parent node index per node; the root (driver) has parent ``-1``.
    pins:
        Global pin index per node (``-1`` for Steiner points).
    owner_x, owner_y:
        Local node index of the *pin* node owning each coordinate.  Pin
        nodes own themselves.
    root:
        Local index of the driver node.
    """

    x: np.ndarray
    y: np.ndarray
    parent: np.ndarray
    pins: np.ndarray
    owner_x: np.ndarray
    owner_y: np.ndarray
    root: int

    @property
    def n_nodes(self) -> int:
        return len(self.x)

    @property
    def n_pins(self) -> int:
        return int(np.count_nonzero(self.pins >= 0))

    def edge_lengths(self) -> np.ndarray:
        """Rectilinear length of the edge to each node's parent (0 at root)."""
        lengths = np.zeros(self.n_nodes)
        has_parent = self.parent >= 0
        p = self.parent[has_parent]
        lengths[has_parent] = np.abs(self.x[has_parent] - self.x[p]) + np.abs(
            self.y[has_parent] - self.y[p]
        )
        return lengths

    def wirelength(self) -> float:
        """Total rectilinear wirelength of the tree."""
        return float(self.edge_lengths().sum())

    def depths(self) -> np.ndarray:
        """Distance (in edges) of each node from the root."""
        depth = np.full(self.n_nodes, -1, dtype=np.int64)
        depth[self.root] = 0
        # Parent pointers form a DAG toward the root; iterate until settled.
        pending = True
        while pending:
            pending = False
            for v in range(self.n_nodes):
                if depth[v] < 0 and self.parent[v] >= 0 and depth[self.parent[v]] >= 0:
                    depth[v] = depth[self.parent[v]] + 1
                    pending = True
        return depth

    def validate(self) -> None:
        """Raise AssertionError if the tree structure is inconsistent."""
        assert self.parent[self.root] == -1, "root must have no parent"
        assert (self.parent != np.arange(self.n_nodes)).all(), "self-loop"
        depth = self.depths()
        assert (depth >= 0).all(), "tree is disconnected"
        for arr in (self.owner_x, self.owner_y):
            assert ((arr >= 0) & (arr < self.n_nodes)).all()
            assert (self.pins[arr] >= 0).all(), "owners must be pin nodes"
        pin_nodes = np.nonzero(self.pins >= 0)[0]
        assert (self.owner_x[pin_nodes] == pin_nodes).all()
        assert (self.owner_y[pin_nodes] == pin_nodes).all()


class Forest:
    """Flattened array view of the routing trees of many nets.

    Node arrays are concatenated across trees; ``node_net`` maps each node
    back to its net.  ``order_by_depth`` groups node indices by tree depth
    so bottom-up/top-down dynamic-programming passes can be executed as a
    short sequence of vectorised scatter/gather steps (one per depth level),
    mirroring the paper's GPU kernel structure.
    """

    def __init__(self, trees: Sequence[Optional[RoutingTree]], n_pins_total: int) -> None:
        self.trees = list(trees)
        self.n_pins_total = n_pins_total

        # Flattening is fully vectorised: per-tree arrays are gathered
        # into Python lists once and concatenated in C, per-node fields
        # are rebased with np.repeat'ed offsets, and depths/levels come
        # from a whole-forest frontier propagation instead of a per-tree
        # O(n^2) Python loop.  (The per-net RSMT kernels are batched in
        # repro.route.batch; flattening must not become the new scalar
        # bottleneck.)
        live = [
            (ni, t) for ni, t in enumerate(self.trees) if t is not None
        ]
        sizes = np.zeros(len(self.trees), dtype=np.int64)
        for ni, t in live:
            sizes[ni] = t.n_nodes
        self.node_offset = np.concatenate(
            [[0], np.cumsum(sizes)]
        ).astype(np.int64)
        total = int(self.node_offset[-1])
        self.n_nodes = total

        if live:
            live_ids = np.array([ni for ni, _ in live], dtype=np.int64)
            live_sizes = sizes[live_ids]
            bases = np.repeat(self.node_offset[live_ids], live_sizes)
            parent = np.concatenate([t.parent for _, t in live])
            hp = parent >= 0
            parent[hp] += bases[hp]
            self.parent = parent
            self.node_net = np.repeat(live_ids, live_sizes)
            self.node_pin = np.concatenate([t.pins for _, t in live])
            owner_x = np.concatenate([t.owner_x for _, t in live]) + bases
            owner_y = np.concatenate([t.owner_y for _, t in live]) + bases
            self.owner_x_pin = self.node_pin[owner_x]
            self.owner_y_pin = self.node_pin[owner_y]
            self.is_root = np.zeros(total, dtype=bool)
            roots = self.node_offset[live_ids] + np.array(
                [t.root for _, t in live], dtype=np.int64
            )
            self.is_root[roots] = True
        else:
            self.parent = np.full(total, -1, dtype=np.int64)
            self.node_net = np.full(total, -1, dtype=np.int64)
            self.node_pin = np.full(total, -1, dtype=np.int64)
            self.owner_x_pin = np.full(total, -1, dtype=np.int64)
            self.owner_y_pin = np.full(total, -1, dtype=np.int64)
            self.is_root = np.zeros(total, dtype=bool)

        self.has_parent = self.parent >= 0
        self.depth = self._compute_depths()
        self._rebuild_levels()
        # Map: for each global pin that appears in some tree, its node index.
        self.pin_node = np.full(n_pins_total, -1, dtype=np.int64)
        pin_mask = self.node_pin >= 0
        self.pin_node[self.node_pin[pin_mask]] = np.nonzero(pin_mask)[0]
        self.is_steiner = ~pin_mask

    def _compute_depths(self) -> np.ndarray:
        """Whole-forest depth via vectorised frontier propagation."""
        depth = np.where(self.is_root, 0, -1).astype(np.int64)
        safe_parent = np.maximum(self.parent, 0)
        while True:
            newly = (
                (depth < 0) & self.has_parent & (depth[safe_parent] >= 0)
            )
            if not newly.any():
                break
            depth[newly] = depth[safe_parent[newly]] + 1
        return depth

    def _rebuild_levels(self) -> None:
        """Group node indices by depth (levels[d] ascending within d)."""
        depth = self.depth
        self.max_depth = int(depth.max()) if self.n_nodes else 0
        counts = np.bincount(depth, minlength=self.max_depth + 1)
        order = np.argsort(depth, kind="stable")
        self.levels: List[np.ndarray] = np.split(
            order, np.cumsum(counts[:-1])
        )

    def splice(self, updates: "dict[int, RoutingTree]") -> "Forest":
        """Replace the trees of a few nets, reusing the flattened arrays.

        The dirty-net incremental rebuild path calls this between full
        RSMT rebuilds.  When every replacement has the same node count as
        the tree it replaces (the common case - net degree is fixed, only
        Steiner counts can drift), the per-net slices are patched in
        place and only the depth/level grouping is recomputed; otherwise
        the forest is reflattened from the updated tree list.  Returns
        the updated forest (``self`` when patched in place).
        """
        if not updates:
            return self
        sizes_match = all(
            self.trees[ni] is not None
            and tree.n_nodes == self.trees[ni].n_nodes
            for ni, tree in updates.items()
        )
        if not sizes_match:
            trees = list(self.trees)
            for ni, tree in updates.items():
                trees[ni] = tree
            return Forest(trees, self.n_pins_total)

        for ni, tree in updates.items():
            self.trees[ni] = tree
            base = int(self.node_offset[ni])
            n = tree.n_nodes
            sl = slice(base, base + n)
            parent = tree.parent.copy()
            hp = parent >= 0
            parent[hp] += base
            self.parent[sl] = parent
            self.node_pin[sl] = tree.pins
            self.owner_x_pin[sl] = tree.pins[tree.owner_x]
            self.owner_y_pin[sl] = tree.pins[tree.owner_y]
            self.is_root[sl] = False
            self.is_root[base + tree.root] = True
            pin_mask = tree.pins >= 0
            self.pin_node[tree.pins[pin_mask]] = (
                base + np.nonzero(pin_mask)[0]
            )
            self.is_steiner[sl] = ~pin_mask
        self.has_parent = self.parent >= 0
        self.depth = self._compute_depths()
        self._rebuild_levels()
        return self

    def node_coords(
        self, pin_x: np.ndarray, pin_y: np.ndarray
    ) -> tuple:
        """Node coordinates given current global pin coordinates.

        Pin nodes sit at their pin; Steiner nodes copy x/y from their owner
        pins (the Figure 4 update rule used during tree reuse).
        """
        x = pin_x[self.owner_x_pin]
        y = pin_y[self.owner_y_pin]
        return x, y

    def scatter_coord_grad(
        self, grad_node_x: np.ndarray, grad_node_y: np.ndarray
    ) -> tuple:
        """Accumulate node-coordinate gradients onto global pins.

        Steiner-node gradients go to the owning pins (Figure 4); pin-node
        gradients go to the pins themselves.
        """
        grad_pin_x = scatter_add(self.owner_x_pin, grad_node_x, self.n_pins_total)
        grad_pin_y = scatter_add(self.owner_y_pin, grad_node_y, self.n_pins_total)
        return grad_pin_x, grad_pin_y

    def edge_lengths(self, node_x: np.ndarray, node_y: np.ndarray) -> np.ndarray:
        """Rectilinear edge length to parent per node (0 for roots)."""
        lengths = np.zeros(self.n_nodes)
        hp = self.has_parent
        p = self.parent[hp]
        lengths[hp] = np.abs(node_x[hp] - node_x[p]) + np.abs(node_y[hp] - node_y[p])
        return lengths

    def total_wirelength(self, pin_x: np.ndarray, pin_y: np.ndarray) -> float:
        """Total Steiner wirelength over all routed nets."""
        x, y = self.node_coords(pin_x, pin_y)
        return float(self.edge_lengths(x, y).sum())
