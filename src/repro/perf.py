"""Lightweight per-stage instrumentation for the timing hot paths.

Every kernel stage of the differentiable timer, the golden routing pass
and the incremental engine is wrapped in a named :meth:`Timer.stage`
context.  When profiling is off (the default) the context manager is a
shared no-op singleton, so the overhead on the hot path is a single
attribute check per stage.  When on, each stage accumulates wall-clock
time and an invocation counter, queryable as a plain dict via
:meth:`Timer.stats` or rendered as a table via :meth:`Timer.report`.

Profiling is enabled either explicitly (``Timer(enabled=True)``,
``PROFILER.enable()``, the harness ``--profile`` flag) or globally via the
``REPRO_PROFILE`` environment variable (any non-empty value other than
``0``/``false``/``off``).  Library code shares the module-level
:data:`PROFILER` instance so one switch captures every layer of a run.
"""

from __future__ import annotations

import os
import time
from typing import Dict

__all__ = ["Timer", "PROFILER", "get_profiler", "profile_enabled_by_env"]


def profile_enabled_by_env() -> bool:
    """True when the ``REPRO_PROFILE`` environment variable turns us on."""
    value = os.environ.get("REPRO_PROFILE", "")
    return value.lower() not in ("", "0", "false", "off")


class _NullStage:
    """Shared do-nothing context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_STAGE = _NullStage()


class _Stage:
    """Times one ``with`` block and accumulates into its timer."""

    __slots__ = ("_timer", "_name", "_t0")

    def __init__(self, timer: "Timer", name: str) -> None:
        self._timer = timer
        self._name = name

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self._timer.add(self._name, time.perf_counter() - self._t0)
        return False


class Timer:
    """Per-stage wall-time accumulator with invocation counters."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = bool(enabled) or profile_enabled_by_env()
        self._total: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all accumulated stage data (the on/off state is kept)."""
        self._total.clear()
        self._calls.clear()

    # ------------------------------------------------------------------
    def stage(self, name: str):
        """Context manager timing one named stage (no-op when disabled)."""
        if not self.enabled:
            return _NULL_STAGE
        return _Stage(self, name)

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Record ``seconds`` of wall time against ``name`` directly."""
        self._total[name] = self._total.get(name, 0.0) + seconds
        self._calls[name] = self._calls.get(name, 0) + calls

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Dict[str, float]]:
        """Snapshot: ``{stage: {calls, total_s, mean_s}}``."""
        return {
            name: {
                "calls": self._calls[name],
                "total_s": self._total[name],
                "mean_s": self._total[name] / max(self._calls[name], 1),
            }
            for name in self._total
        }

    def report(self, title: str = "per-kernel breakdown") -> str:
        """Render the accumulated stages as an aligned text table."""
        stats = self.stats()
        lines = [
            f"# {title}",
            f"{'stage':<32} {'calls':>8} {'total(s)':>10} {'mean(ms)':>10}",
        ]
        for name in sorted(stats, key=lambda n: -stats[n]["total_s"]):
            s = stats[name]
            lines.append(
                f"{name:<32} {s['calls']:>8d} {s['total_s']:>10.4f} "
                f"{1e3 * s['mean_s']:>10.4f}"
            )
        if not stats:
            lines.append("(no stages recorded)")
        return "\n".join(lines)


#: Shared default profiler; library hot paths time against this instance.
PROFILER = Timer()


def get_profiler() -> Timer:
    """The module-level shared :class:`Timer`."""
    return PROFILER
