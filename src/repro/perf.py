"""Hierarchical per-stage instrumentation for the timing hot paths.

Every kernel stage of the differentiable timer, the golden routing pass
and the incremental engine is wrapped in a named :meth:`Timer.stage`
context.  When profiling is off (the default) the context manager is a
shared no-op singleton, so the overhead on the hot path is a single
attribute check per stage.  When on, nested ``stage`` contexts build a
*call tree*: each span accumulates wall-clock time, an invocation
counter, and optional named counters (:meth:`Timer.incr`), with
self-time (time not attributed to child spans) derived per node.

Accumulation is thread-safe: each thread keeps its own span stack
(``threading.local``) while all threads merge into one shared tree under
a lock, so two threads timing the same stage name sum their calls and
seconds instead of corrupting each other.

Three read-out shapes are offered:

- :meth:`Timer.stats` - flat ``{stage: {calls, total_s, mean_s}}``
  aggregated over every tree position of a name (the historical API;
  every pre-existing call site keeps working);
- :meth:`Timer.tree` - the nested span tree as plain dicts (JSON-ready,
  embedded in telemetry run manifests);
- :meth:`Timer.span_report` - an indented table with total vs self time.

Profiling is enabled either explicitly (``Timer(enabled=True)``,
``PROFILER.enable()``, the harness ``--profile`` flag, a telemetry run)
or globally via the ``REPRO_PROFILE`` environment variable (any
non-empty value other than ``0``/``false``/``off``).  Library code
shares the module-level :data:`PROFILER` instance so one switch captures
every layer of a run.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Timer",
    "PROFILER",
    "get_profiler",
    "profile_enabled_by_env",
    "format_span_tree",
    "merge_span_trees",
    "span_tree_to_trace_events",
    "write_chrome_trace",
]


def profile_enabled_by_env() -> bool:
    """True when the ``REPRO_PROFILE`` environment variable turns us on."""
    value = os.environ.get("REPRO_PROFILE", "")
    return value.lower() not in ("", "0", "false", "off")


class _NullStage:
    """Shared do-nothing context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_STAGE = _NullStage()


class _SpanNode:
    """One position in the span tree: a stage name under a parent path."""

    __slots__ = ("name", "total_s", "calls", "counters", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total_s = 0.0
        self.calls = 0
        self.counters: Dict[str, int] = {}
        self.children: Dict[str, "_SpanNode"] = {}

    def self_s(self) -> float:
        return self.total_s - sum(c.total_s for c in self.children.values())

    def as_dict(self) -> Dict[str, object]:
        children = sorted(
            self.children.values(), key=lambda c: -c.total_s
        )
        return {
            "name": self.name,
            "calls": self.calls,
            "total_s": self.total_s,
            "self_s": self.self_s(),
            "counters": dict(self.counters),
            "children": [c.as_dict() for c in children],
        }


class _Stage:
    """Times one ``with`` block and accumulates into its timer's tree."""

    __slots__ = ("_timer", "_name", "_t0")

    def __init__(self, timer: "Timer", name: str) -> None:
        self._timer = timer
        self._name = name

    def __enter__(self):
        self._timer._push(self._name)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self._timer._pop(self._name, time.perf_counter() - self._t0)
        return False


class Timer:
    """Hierarchical per-stage wall-time accumulator with counters."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = bool(enabled) or profile_enabled_by_env()
        self._lock = threading.Lock()
        self._root = _SpanNode("")
        self._tls = threading.local()

    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all accumulated span data (the on/off state is kept)."""
        with self._lock:
            self._root = _SpanNode("")

    # ------------------------------------------------------------------
    # Per-thread span stack.  Stacks hold *names*; the tree node is
    # resolved (and created) under the lock at accumulation time, so a
    # concurrent reset() never leaves a thread holding a stale node.
    # ------------------------------------------------------------------
    def _stack(self) -> List[str]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def _push(self, name: str) -> None:
        self._stack().append(name)

    def _pop(self, name: str, seconds: float) -> None:
        stack = self._stack()
        if stack and stack[-1] == name:
            stack.pop()
        self._accumulate(tuple(stack) + (name,), seconds, 1)

    def _node_at(self, path: Tuple[str, ...]) -> _SpanNode:
        node = self._root
        for name in path:
            child = node.children.get(name)
            if child is None:
                child = _SpanNode(name)
                node.children[name] = child
            node = child
        return node

    def _accumulate(
        self, path: Tuple[str, ...], seconds: float, calls: int
    ) -> None:
        with self._lock:
            node = self._node_at(path)
            node.total_s += seconds
            node.calls += calls

    # ------------------------------------------------------------------
    def stage(self, name: str):
        """Context manager timing one named stage (no-op when disabled).

        Nested ``stage`` contexts - including across the existing call
        sites, which already nest naturally - build the span tree.
        """
        if not self.enabled:
            return _NULL_STAGE
        return _Stage(self, name)

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Record ``seconds`` of wall time against ``name`` directly.

        The span is attached under the calling thread's current stage
        (or at the top level outside any stage).  Thread-safe.
        """
        self._accumulate(tuple(self._stack()) + (name,), seconds, calls)

    def incr(self, counter: str, n: int = 1) -> None:
        """Bump a named counter on the calling thread's current span.

        No-op when profiling is disabled (counters ride on the span
        tree, which only exists while profiling).
        """
        if not self.enabled:
            return
        path = tuple(self._stack())
        with self._lock:
            node = self._node_at(path)
            node.counters[counter] = node.counters.get(counter, 0) + n

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Dict[str, float]]:
        """Flat snapshot ``{stage: {calls, total_s, mean_s}}``.

        A name appearing at several tree positions (e.g. a shared helper
        stage under different parents) is aggregated, matching the
        behaviour of the historical flat profiler.
        """
        totals: Dict[str, float] = {}
        calls: Dict[str, int] = {}

        def walk(node: _SpanNode) -> None:
            for child in node.children.values():
                totals[child.name] = totals.get(child.name, 0.0) + child.total_s
                calls[child.name] = calls.get(child.name, 0) + child.calls
                walk(child)

        with self._lock:
            walk(self._root)
        return {
            name: {
                "calls": calls[name],
                "total_s": totals[name],
                "mean_s": totals[name] / max(calls[name], 1),
            }
            for name in totals
        }

    def tree(self) -> Dict[str, object]:
        """The span tree as nested plain dicts (JSON-serializable).

        The synthetic root aggregates every top-level span; each node
        carries ``name``/``calls``/``total_s``/``self_s``/``counters``
        and a ``children`` list sorted by descending total time.
        """
        with self._lock:
            out = self._root.as_dict()
        out["name"] = "run"
        out["total_s"] = sum(c["total_s"] for c in out["children"])
        out["self_s"] = 0.0
        return out

    def counters(self) -> Dict[str, int]:
        """All counters aggregated by name across the whole tree."""
        out: Dict[str, int] = {}

        def walk(node: _SpanNode) -> None:
            for name, n in node.counters.items():
                out[name] = out.get(name, 0) + n
            for child in node.children.values():
                walk(child)

        with self._lock:
            walk(self._root)
        return out

    # ------------------------------------------------------------------
    def report(self, title: str = "per-kernel breakdown") -> str:
        """Render the flat per-stage aggregate as an aligned text table."""
        stats = self.stats()
        lines = [
            f"# {title}",
            f"{'stage':<32} {'calls':>8} {'total(s)':>10} {'mean(ms)':>10}",
        ]
        for name in sorted(stats, key=lambda n: -stats[n]["total_s"]):
            s = stats[name]
            lines.append(
                f"{name:<32} {s['calls']:>8d} {s['total_s']:>10.4f} "
                f"{1e3 * s['mean_s']:>10.4f}"
            )
        if not stats:
            lines.append("(no stages recorded)")
        return "\n".join(lines)

    def span_report(self, title: str = "span tree") -> str:
        """Render the hierarchical span tree with total vs self time."""
        return format_span_tree(self.tree(), title)


def format_span_tree(tree: Dict[str, object], title: str = "span tree") -> str:
    """Render a :meth:`Timer.tree`-shaped dict as an indented table."""
    lines = [
        f"# {title}",
        f"{'span':<44} {'calls':>8} {'total(s)':>10} {'self(s)':>10}",
    ]

    def walk(node: Dict[str, object], depth: int) -> None:
        label = "  " * depth + str(node["name"])
        lines.append(
            f"{label:<44} {node['calls']:>8d} {node['total_s']:>10.4f} "
            f"{node['self_s']:>10.4f}"
        )
        for key, value in sorted(dict(node.get("counters", {})).items()):
            lines.append(f"{'  ' * (depth + 1) + '#' + key:<44} {value:>8d}")
        for child in node.get("children", []):
            walk(child, depth + 1)

    children = tree.get("children", [])
    for child in children:
        walk(child, 0)
    if not children:
        lines.append("(no spans recorded)")
    return "\n".join(lines)


def merge_span_trees(
    trees: List[Dict[str, object]], name: str = "run"
) -> Dict[str, object]:
    """Merge several :meth:`Timer.tree`-shaped dicts into one aggregate.

    Used by the process-parallel suite runner: each worker returns its
    own span tree, and the parent folds them into a single hierarchical
    profile.  Nodes are matched by name per tree level; ``calls``,
    ``total_s`` and counters are summed, ``self_s`` is re-derived, and
    children are re-sorted by descending total time.
    """

    def merge_children(
        groups: List[List[Dict[str, object]]]
    ) -> List[Dict[str, object]]:
        by_name: Dict[str, List[Dict[str, object]]] = {}
        for children in groups:
            for child in children:
                by_name.setdefault(str(child["name"]), []).append(child)
        merged = []
        for child_name, nodes in by_name.items():
            total = sum(float(n.get("total_s", 0.0)) for n in nodes)
            counters: Dict[str, int] = {}
            for n in nodes:
                for key, value in dict(n.get("counters", {})).items():
                    counters[key] = counters.get(key, 0) + int(value)
            children = merge_children(
                [list(n.get("children", [])) for n in nodes]
            )
            merged.append(
                {
                    "name": child_name,
                    "calls": sum(int(n.get("calls", 0)) for n in nodes),
                    "total_s": total,
                    "self_s": total
                    - sum(float(c["total_s"]) for c in children),
                    "counters": counters,
                    "children": children,
                }
            )
        merged.sort(key=lambda n: -float(n["total_s"]))
        return merged

    children = merge_children([list(t.get("children", [])) for t in trees])
    return {
        "name": name,
        "calls": sum(int(t.get("calls", 0)) for t in trees),
        "total_s": sum(float(c["total_s"]) for c in children),
        "self_s": 0.0,
        "counters": {},
        "children": children,
    }


# ----------------------------------------------------------------------
# Chrome/Perfetto trace export
# ----------------------------------------------------------------------
def span_tree_to_trace_events(
    tree: Dict[str, object],
    pid: int = 1,
    tid: int = 1,
    t0_us: float = 0.0,
) -> List[Dict[str, object]]:
    """Convert a :meth:`Timer.tree`-shaped dict to ``trace_event`` spans.

    Span trees are *aggregates* - total seconds per tree position, not a
    timeline - so the export synthesizes one: every node becomes a
    single complete (``"X"``) event whose duration is its accumulated
    total time, with siblings laid out back-to-back from the parent's
    start.  Opened in ``chrome://tracing`` or Perfetto the flame chart
    then reads as "share of parent time", the zoomable equivalent of
    :func:`format_span_tree`'s table.  Per-node call counts, self time
    and counters ride along in ``args``.

    Timestamps/durations are microseconds, per the ``trace_event`` spec.
    """
    events: List[Dict[str, object]] = []

    def walk(node: Dict[str, object], start_us: float) -> None:
        duration_us = max(float(node.get("total_s", 0.0)), 0.0) * 1e6
        args: Dict[str, object] = {
            "calls": int(node.get("calls", 0)),
            "self_s": float(node.get("self_s", 0.0)),
        }
        counters = dict(node.get("counters", {}) or {})
        if counters:
            args["counters"] = counters
        events.append(
            {
                "name": str(node.get("name", "")) or "run",
                "ph": "X",
                "cat": "span",
                "ts": round(start_us, 3),
                "dur": round(duration_us, 3),
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
        child_start = start_us
        for child in node.get("children", []):
            walk(child, child_start)
            child_start += max(float(child.get("total_s", 0.0)), 0.0) * 1e6

    walk(tree, float(t0_us))
    return events


def write_chrome_trace(
    path: str,
    named_trees: List[Tuple[str, Dict[str, object]]],
    pid: int = 1,
) -> str:
    """Write span trees as one Chrome ``trace_event`` JSON object file.

    Each ``(name, tree)`` pair gets its own track (``tid``) labelled via
    an ``"M"``-phase ``thread_name`` metadata event - a suite export puts
    every run on its own track plus one for the merged aggregate.  The
    file is the JSON-object flavour of the format
    (``{"traceEvents": [...], "displayTimeUnit": "ms"}``), loadable by
    ``chrome://tracing`` and https://ui.perfetto.dev.
    """
    trace_events: List[Dict[str, object]] = []
    for tid, (name, tree) in enumerate(named_trees, start=1):
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )
        trace_events.extend(
            span_tree_to_trace_events(tree, pid=pid, tid=tid)
        )
    payload = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
    os.replace(tmp, path)
    return path


#: Shared default profiler; library hot paths time against this instance.
PROFILER = Timer()


def get_profiler() -> Timer:
    """The module-level shared :class:`Timer`."""
    return PROFILER
