"""Deterministic, seeded fault injection for the guarded placement runtime.

The robustness layer (:mod:`repro.runtime.guard`, checkpoint rollback) is
only trustworthy if its recovery paths demonstrably fire.  This module
injects three kinds of faults into a running placement, each matching a
real failure mode of the differentiable STA stack:

``grad_nan``
    NaN written into a chosen objective-term gradient (``wirelength``,
    ``density`` or ``timing``) at a chosen iteration - the classic
    poisoned-gradient scenario the numerical guard quarantines.
``lut_corrupt``
    NLDM LUT bank entries overwritten with NaN for exactly one iteration
    (the bank is restored at the start of the next iteration), emulating a
    transient bad table read that poisons every timing arc.
``timer_exc``
    A :class:`FaultInjectionError` raised from the middle of the
    differentiable timer's backward pass, emulating a kernel crash.

Faults are *armed* only for the duration of a guarded placer run (see
:func:`armed` / :func:`current_injector`), so unit tests of the timer
kernels, gradcheck, etc. are never perturbed even when the environment
variable is set process-wide.  Each fault fires exactly once per armed
run, at the first opportunity at or after its trigger iteration, which
keeps injection deterministic and checkpoint/resume-safe (the fired state
is part of the placer checkpoint).

Specs are parsed from the ``REPRO_INJECT_FAULT`` environment variable::

    REPRO_INJECT_FAULT="grad_nan:timing@10"   # NaN timing gradient, iter 10
    REPRO_INJECT_FAULT="grad_nan:density@0"   # NaN density gradient, iter 0
    REPRO_INJECT_FAULT="lut_corrupt@20"       # corrupt LUT bank at iter 20
    REPRO_INJECT_FAULT="timer_exc@15"         # raise in backward at iter 15
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

__all__ = [
    "ENV_VAR",
    "FAULT_KINDS",
    "GRAD_TERMS",
    "FaultInjectionError",
    "FaultSpec",
    "FaultInjector",
    "armed",
    "current_injector",
]

#: Environment variable holding the fault spec.
ENV_VAR = "REPRO_INJECT_FAULT"

#: Supported fault kinds.
FAULT_KINDS = ("grad_nan", "lut_corrupt", "timer_exc")

#: Objective terms a ``grad_nan`` fault may target.
GRAD_TERMS = ("wirelength", "density", "timing")


class FaultInjectionError(RuntimeError):
    """The synthetic exception raised by a ``timer_exc`` fault."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault: what to break, where, and when.

    ``iteration`` is a trigger threshold: the fault fires at the first
    opportunity at or after that placer iteration (a ``grad_nan:timing``
    fault cannot fire before the timing term activates, for example).
    """

    kind: str
    term: str = "timing"
    iteration: int = 10
    seed: int = 0

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse ``kind[:term][@iteration]`` (see the module docstring)."""
        spec = text.strip()
        iteration = 10
        if "@" in spec:
            spec, _, it = spec.partition("@")
            iteration = int(it)
        kind, _, term = spec.partition(":")
        kind = kind.strip()
        term = term.strip() or "timing"
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
            )
        if kind == "grad_nan" and term not in GRAD_TERMS:
            raise ValueError(
                f"unknown gradient term {term!r}; expected one of {GRAD_TERMS}"
            )
        return cls(kind=kind, term=term, iteration=iteration)

    @classmethod
    def from_env(cls) -> Optional["FaultSpec"]:
        """The spec in ``REPRO_INJECT_FAULT``, or None when unset/empty."""
        text = os.environ.get(ENV_VAR, "").strip()
        if not text or text.lower() in ("0", "false", "off"):
            return None
        return cls.parse(text)


class FaultInjector:
    """Applies one :class:`FaultSpec` to a running placement, exactly once.

    An injector with ``spec=None`` is inert: every ``maybe_*`` call is a
    cheap no-op, so the placer can call into it unconditionally.
    """

    def __init__(self, spec: Optional[FaultSpec] = None) -> None:
        self.spec = spec
        self.fired = False
        self.fired_iteration: Optional[int] = None
        self.log: List[str] = []
        self._iteration = -1
        self._lut_backup = None  # (bank, values copy) while corruption live

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        return self.spec is not None

    def begin_iteration(self, iteration: int) -> None:
        """Placer hook: marks the current iteration; lifts transient faults
        (a corrupted LUT bank is restored here, one iteration after it was
        corrupted)."""
        # reprolint: allow[checkpoint-completeness] transient marker, re-set by the placer hook on the first resumed iteration
        self._iteration = iteration
        if self._lut_backup is not None:
            self.restore()

    def _due(self, kind: str) -> bool:
        return (
            self.spec is not None
            and self.spec.kind == kind
            and not self.fired
            and self._iteration >= self.spec.iteration
        )

    def _mark_fired(self, message: str) -> None:
        self.fired = True
        self.fired_iteration = self._iteration
        self.log.append(f"iteration {self._iteration}: {message}")

    # ------------------------------------------------------------------
    def corrupt_grad(self, term: str, gx: np.ndarray, gy: np.ndarray) -> bool:
        """Write seeded NaNs into a term gradient if a matching fault is due."""
        if not self._due("grad_nan") or self.spec.term != term:
            return False
        rng = np.random.default_rng(self.spec.seed)
        k = max(1, len(gx) // 16)
        idx = rng.choice(len(gx), size=min(k, len(gx)), replace=False)
        gx[idx] = np.nan
        gy[idx[: max(1, len(idx) // 2)]] = np.nan
        self._mark_fired(f"injected NaN into {term} gradient ({len(idx)} cells)")
        return True

    def corrupt_lutbank(self, bank) -> bool:
        """Overwrite seeded LUT bank entries with NaN if a fault is due.

        The original values are kept and written back by the next
        :meth:`begin_iteration` (or by :meth:`restore` when the armed
        context exits), making the corruption transient.
        """
        if not self._due("lut_corrupt") or not len(bank.values):
            return False
        rng = np.random.default_rng(self.spec.seed)
        # reprolint: allow[checkpoint-completeness] holds a live LutBank reference restored within one iteration; never outlives the process
        self._lut_backup = (bank, bank.values.copy())
        flat = bank.values.reshape(-1)
        idx = rng.choice(len(flat), size=max(1, len(flat) // 8), replace=False)
        flat[idx] = np.nan
        self._mark_fired(f"corrupted {len(idx)} NLDM LUT entries")
        return True

    def maybe_raise(self, stage: str) -> None:
        """Raise :class:`FaultInjectionError` from ``stage`` if a fault is due."""
        if not self._due("timer_exc"):
            return
        self._mark_fired(f"raised FaultInjectionError in {stage}")
        raise FaultInjectionError(
            f"injected timer exception in {stage} "
            f"(iteration {self._iteration})"
        )

    def restore(self) -> None:
        """Undo any live transient corruption (LUT bank values)."""
        if self._lut_backup is not None:
            bank, values = self._lut_backup
            bank.values[...] = values
            self._lut_backup = None

    # ------------------------------------------------------------------
    # Checkpoint support: the fired state must survive a resume so that a
    # resumed run does not re-fire a fault the original run already took.
    # ------------------------------------------------------------------
    def get_state(self) -> Dict[str, object]:
        return {
            "fired": self.fired,
            "fired_iteration": self.fired_iteration,
        }

    def set_state(self, state: Dict[str, object]) -> None:
        self.fired = bool(state.get("fired", False))
        self.fired_iteration = state.get("fired_iteration")


#: The injector armed by the currently running guarded placement, if any.
_CURRENT: Optional[FaultInjector] = None


def current_injector() -> Optional[FaultInjector]:
    """The armed injector of the enclosing placer run, or None."""
    return _CURRENT


@contextmanager
def armed(injector: FaultInjector):
    """Arm ``injector`` for the duration of the block (placer run scope).

    Any transient corruption still live when the block exits is restored,
    so state shared across runs (the LUT bank) never leaks a fault.
    """
    global _CURRENT
    previous = _CURRENT
    _CURRENT = injector
    try:
        yield injector
    finally:
        injector.restore()
        _CURRENT = previous
