"""Deterministic, seeded fault injection for the guarded placement runtime.

The robustness layer (:mod:`repro.runtime.guard`, checkpoint rollback) is
only trustworthy if its recovery paths demonstrably fire.  This module
injects two families of faults:

**In-process faults** perturb a running placement, each matching a real
failure mode of the differentiable STA stack:

``grad_nan``
    NaN written into a chosen objective-term gradient (``wirelength``,
    ``density`` or ``timing``) at a chosen iteration - the classic
    poisoned-gradient scenario the numerical guard quarantines.
``lut_corrupt``
    NLDM LUT bank entries overwritten with NaN for exactly one iteration
    (the bank is restored at the start of the next iteration), emulating a
    transient bad table read that poisons every timing arc.
``timer_exc``
    A :class:`FaultInjectionError` raised from the middle of the
    differentiable timer's backward pass, emulating a kernel crash.

**Process-level faults** break a supervised suite worker
(:mod:`repro.harness.supervisor`) mid-task, each matching one entry of
the supervisor's failure taxonomy:

``worker_kill[:task]``
    SIGKILL the worker process while it executes suite task ``task``
    (default 0) - the supervisor must respawn the worker and retry only
    that task (taxonomy ``crash``).
``worker_hang[:task][@seconds]``
    The worker sleeps ``seconds`` (default 3600) mid-task, tripping the
    supervisor's per-task wall-clock timeout (taxonomy ``timeout``).
    The sleep is bounded so an unsupervised run eventually errors
    instead of hanging forever.
``task_exc[:task][@n]``
    Raise :class:`FaultInjectionError` from the task body on its first
    ``n`` attempts (default 1; large ``n`` forces quarantine) -
    taxonomy ``exception``.
``bundle_corrupt_midrun[:task]``
    Corrupt the task's on-disk design bundle, drop the in-process memo,
    and raise :class:`BundleCorruptionError` - taxonomy ``cache-corrupt``;
    the retry must heal through the cache's checksum-validated
    regeneration path.

Process faults fire on the task's **first attempt only** (except
``task_exc@n``), so a single bounded retry always recovers and the
injected schedule is deterministic.  The process-killing kinds
(``worker_kill``, ``worker_hang``) additionally fire only inside a
spawned suite worker (``in_worker=True``), never in the parent or a
serial in-process run.

In-process faults are *armed* only for the duration of a guarded placer
run (see :func:`armed` / :func:`current_injector`), so unit tests of the
timer kernels, gradcheck, etc. are never perturbed even when the
environment variable is set process-wide.  Each fault fires exactly once
per armed run, at the first opportunity at or after its trigger
iteration, which keeps injection deterministic and checkpoint/resume-safe
(the fired state is part of the placer checkpoint).

Specs are parsed from the ``REPRO_INJECT_FAULT`` environment variable::

    REPRO_INJECT_FAULT="grad_nan:timing@10"   # NaN timing gradient, iter 10
    REPRO_INJECT_FAULT="lut_corrupt@20"       # corrupt LUT bank at iter 20
    REPRO_INJECT_FAULT="timer_exc@15"         # raise in backward at iter 15
    REPRO_INJECT_FAULT="worker_kill:1"        # SIGKILL worker on task 1
    REPRO_INJECT_FAULT="worker_hang:0@600"    # hang 600s on task 0
    REPRO_INJECT_FAULT="task_exc:0@99"        # poison task 0, 99 attempts
    REPRO_INJECT_FAULT="bundle_corrupt_midrun:0"
"""

from __future__ import annotations

import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

__all__ = [
    "ENV_VAR",
    "FAULT_KINDS",
    "PROCESS_FAULT_KINDS",
    "GRAD_TERMS",
    "FaultInjectionError",
    "BundleCorruptionError",
    "FaultSpec",
    "ProcessFaultSpec",
    "FaultInjector",
    "armed",
    "current_injector",
    "maybe_inject_process_fault",
]

#: Environment variable holding the fault spec.
ENV_VAR = "REPRO_INJECT_FAULT"

#: Supported in-process fault kinds.
FAULT_KINDS = ("grad_nan", "lut_corrupt", "timer_exc")

#: Supported process-level fault kinds (supervised suite workers).
PROCESS_FAULT_KINDS = (
    "worker_kill",
    "worker_hang",
    "task_exc",
    "bundle_corrupt_midrun",
)

#: Objective terms a ``grad_nan`` fault may target.
GRAD_TERMS = ("wirelength", "density", "timing")


class FaultInjectionError(RuntimeError):
    """The synthetic exception raised by ``timer_exc``/``task_exc`` faults."""


class BundleCorruptionError(RuntimeError):
    """Synthetic mid-run design-bundle corruption (``bundle_corrupt_midrun``).

    Emulates discovering a corrupt cached bundle *after* the design was
    handed to a run - too late for the cache's transparent regeneration,
    so the task must fail and be retried (the retry heals through the
    cache's checksum validation).  The supervisor classifies it as
    ``cache-corrupt``.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault: what to break, where, and when.

    ``iteration`` is a trigger threshold: the fault fires at the first
    opportunity at or after that placer iteration (a ``grad_nan:timing``
    fault cannot fire before the timing term activates, for example).
    """

    kind: str
    term: str = "timing"
    iteration: int = 10
    seed: int = 0

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse ``kind[:term][@iteration]`` (see the module docstring)."""
        spec = text.strip()
        iteration = 10
        if "@" in spec:
            spec, _, it = spec.partition("@")
            iteration = int(it)
        kind, _, term = spec.partition(":")
        kind = kind.strip()
        term = term.strip() or "timing"
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
            )
        if kind == "grad_nan" and term not in GRAD_TERMS:
            raise ValueError(
                f"unknown gradient term {term!r}; expected one of {GRAD_TERMS}"
            )
        return cls(kind=kind, term=term, iteration=iteration)

    @classmethod
    def from_env(cls) -> Optional["FaultSpec"]:
        """The spec in ``REPRO_INJECT_FAULT``, or None when unset/empty.

        Process-level specs (``worker_kill``, ...) are *not* errors here:
        they target the suite supervisor, so the in-process injector
        treats them as "no fault armed".
        """
        text = os.environ.get(ENV_VAR, "").strip()
        if not text or text.lower() in ("0", "false", "off"):
            return None
        if _spec_kind(text) in PROCESS_FAULT_KINDS:
            return None
        return cls.parse(text)


def _spec_kind(text: str) -> str:
    """The bare kind of a ``kind[:x][@y]`` spec string."""
    return text.partition("@")[0].partition(":")[0].strip()


@dataclass(frozen=True)
class ProcessFaultSpec:
    """One parsed process-level fault: which suite task to break, and how.

    ``param`` is kind-specific: hang duration in seconds for
    ``worker_hang`` (default 3600), number of poisoned attempts for
    ``task_exc`` (default 1); unused otherwise.
    """

    kind: str
    task_index: int = 0
    param: float = 0.0

    @classmethod
    def parse(cls, text: str) -> "ProcessFaultSpec":
        """Parse ``kind[:task_index][@param]`` (see the module docstring)."""
        spec = text.strip()
        param = 0.0
        if "@" in spec:
            spec, _, raw = spec.partition("@")
            param = float(raw)
        kind, _, idx = spec.partition(":")
        kind = kind.strip()
        if kind not in PROCESS_FAULT_KINDS:
            raise ValueError(
                f"unknown process fault kind {kind!r}; expected one of "
                f"{PROCESS_FAULT_KINDS}"
            )
        task_index = int(idx) if idx.strip() else 0
        return cls(kind=kind, task_index=task_index, param=param)

    @classmethod
    def from_env(cls) -> Optional["ProcessFaultSpec"]:
        """The process-level spec in ``REPRO_INJECT_FAULT``, or None.

        In-process specs (``grad_nan``, ...) read as "no process fault"
        so both injector families can share the one environment variable.
        """
        text = os.environ.get(ENV_VAR, "").strip()
        if not text or text.lower() in ("0", "false", "off"):
            return None
        if _spec_kind(text) not in PROCESS_FAULT_KINDS:
            return None
        return cls.parse(text)

    # ------------------------------------------------------------------
    @property
    def hang_seconds(self) -> float:
        return self.param if self.param > 0 else 3600.0

    @property
    def poisoned_attempts(self) -> int:
        return int(self.param) if self.param > 0 else 1


def _corrupt_bundle_file(path: str) -> None:
    """Flip payload bytes so the cache's checksum validation rejects it."""
    try:
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.seek(max(size // 2, 0))
            handle.write(b"\xde\xad\xbe\xef")
    except OSError:
        pass  # missing/unwritable file: the raised error alone suffices


def maybe_inject_process_fault(
    task_index: int,
    attempt: int,
    in_worker: bool = False,
    bundle_path: Optional[str] = None,
) -> None:
    """Fire the armed process-level fault for ``(task_index, attempt)``.

    Called by the supervised task executor mid-task (after design setup,
    before the solve).  Faults target exactly one task index and fire on
    attempt 1 only (``task_exc@n`` poisons the first ``n`` attempts), so
    every injection is deterministic and a bounded retry recovers.  The
    process-killing kinds require ``in_worker=True``: a serial in-process
    run must never SIGKILL or stall the parent.
    """
    spec = ProcessFaultSpec.from_env()
    if spec is None or spec.task_index != task_index:
        return
    if spec.kind == "task_exc":
        if attempt <= spec.poisoned_attempts:
            raise FaultInjectionError(
                f"injected task exception in task {task_index} "
                f"(attempt {attempt})"
            )
        return
    if attempt != 1:
        return
    if spec.kind == "worker_kill":
        if in_worker:
            os.kill(os.getpid(), signal.SIGKILL)
        return
    if spec.kind == "worker_hang":
        if in_worker:
            time.sleep(spec.hang_seconds)
            raise FaultInjectionError(
                f"worker hang on task {task_index} elapsed without a "
                "supervisor timeout kill"
            )
        return
    if spec.kind == "bundle_corrupt_midrun":
        if bundle_path:
            _corrupt_bundle_file(bundle_path)
            # Drop the per-process memo so the retry re-reads the (now
            # corrupt) file and exercises checksum-validated regeneration.
            from ..netlist.cache import clear_memo

            clear_memo()
        raise BundleCorruptionError(
            f"injected design-bundle corruption mid-run on task {task_index}"
        )


class FaultInjector:
    """Applies one :class:`FaultSpec` to a running placement, exactly once.

    An injector with ``spec=None`` is inert: every ``maybe_*`` call is a
    cheap no-op, so the placer can call into it unconditionally.
    """

    def __init__(self, spec: Optional[FaultSpec] = None) -> None:
        self.spec = spec
        self.fired = False
        self.fired_iteration: Optional[int] = None
        self.log: List[str] = []
        self._iteration = -1
        self._lut_backup = None  # (bank, values copy) while corruption live

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        return self.spec is not None

    def begin_iteration(self, iteration: int) -> None:
        """Placer hook: marks the current iteration; lifts transient faults
        (a corrupted LUT bank is restored here, one iteration after it was
        corrupted)."""
        # reprolint: allow[checkpoint-completeness] transient marker, re-set by the placer hook on the first resumed iteration
        self._iteration = iteration
        if self._lut_backup is not None:
            self.restore()

    def _due(self, kind: str) -> bool:
        return (
            self.spec is not None
            and self.spec.kind == kind
            and not self.fired
            and self._iteration >= self.spec.iteration
        )

    def _mark_fired(self, message: str) -> None:
        self.fired = True
        self.fired_iteration = self._iteration
        self.log.append(f"iteration {self._iteration}: {message}")

    # ------------------------------------------------------------------
    def corrupt_grad(self, term: str, gx: np.ndarray, gy: np.ndarray) -> bool:
        """Write seeded NaNs into a term gradient if a matching fault is due."""
        if not self._due("grad_nan") or self.spec.term != term:
            return False
        rng = np.random.default_rng(self.spec.seed)
        k = max(1, len(gx) // 16)
        idx = rng.choice(len(gx), size=min(k, len(gx)), replace=False)
        gx[idx] = np.nan
        gy[idx[: max(1, len(idx) // 2)]] = np.nan
        self._mark_fired(f"injected NaN into {term} gradient ({len(idx)} cells)")
        return True

    def corrupt_lutbank(self, bank) -> bool:
        """Overwrite seeded LUT bank entries with NaN if a fault is due.

        The original values are kept and written back by the next
        :meth:`begin_iteration` (or by :meth:`restore` when the armed
        context exits), making the corruption transient.
        """
        if not self._due("lut_corrupt") or not len(bank.values):
            return False
        rng = np.random.default_rng(self.spec.seed)
        # reprolint: allow[checkpoint-completeness] holds a live LutBank reference restored within one iteration; never outlives the process
        self._lut_backup = (bank, bank.values.copy())
        flat = bank.values.reshape(-1)
        idx = rng.choice(len(flat), size=max(1, len(flat) // 8), replace=False)
        flat[idx] = np.nan
        self._mark_fired(f"corrupted {len(idx)} NLDM LUT entries")
        return True

    def maybe_raise(self, stage: str) -> None:
        """Raise :class:`FaultInjectionError` from ``stage`` if a fault is due."""
        if not self._due("timer_exc"):
            return
        self._mark_fired(f"raised FaultInjectionError in {stage}")
        raise FaultInjectionError(
            f"injected timer exception in {stage} "
            f"(iteration {self._iteration})"
        )

    def restore(self) -> None:
        """Undo any live transient corruption (LUT bank values)."""
        if self._lut_backup is not None:
            bank, values = self._lut_backup
            bank.values[...] = values
            self._lut_backup = None

    # ------------------------------------------------------------------
    # Checkpoint support: the fired state must survive a resume so that a
    # resumed run does not re-fire a fault the original run already took.
    # ------------------------------------------------------------------
    def get_state(self) -> Dict[str, object]:
        return {
            "fired": self.fired,
            "fired_iteration": self.fired_iteration,
        }

    def set_state(self, state: Dict[str, object]) -> None:
        self.fired = bool(state.get("fired", False))
        self.fired_iteration = state.get("fired_iteration")


#: The injector armed by the currently running guarded placement, if any.
_CURRENT: Optional[FaultInjector] = None


def current_injector() -> Optional[FaultInjector]:
    """The armed injector of the enclosing placer run, or None."""
    return _CURRENT


@contextmanager
def armed(injector: FaultInjector):
    """Arm ``injector`` for the duration of the block (placer run scope).

    Any transient corruption still live when the block exits is restored,
    so state shared across runs (the LUT bank) never leaks a fault.
    """
    global _CURRENT
    previous = _CURRENT
    _CURRENT = injector
    try:
        yield injector
    finally:
        injector.restore()
        _CURRENT = previous
