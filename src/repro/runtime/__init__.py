"""Guarded placement runtime: validation, numerical guards, checkpointing.

The robustness subsystem wired through the placer stack:

- :mod:`repro.runtime.validate` - structural design validation (dangling
  pins, multi-driver nets, combinational cycles, zero-area cells,
  degenerate NLDM tables, out-of-die pins) before iteration 0;
- :mod:`repro.runtime.guard` - per-term NaN/Inf detection that
  quarantines a poisoned objective term for the iteration and escalates
  persistent faults;
- :mod:`repro.runtime.checkpoint` - periodic full-state serialization
  with restart-from-best-checkpoint on divergence and ``--resume``;
- :mod:`repro.runtime.faults` - deterministic seeded fault injection
  (``REPRO_INJECT_FAULT``) used to prove the recovery paths fire.
"""

from .checkpoint import (
    CHECKPOINT_DIR,
    CheckpointManager,
    PlacerCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from .faults import (
    ENV_VAR as FAULT_ENV_VAR,
    BundleCorruptionError,
    FaultInjectionError,
    FaultInjector,
    FaultSpec,
    ProcessFaultSpec,
    maybe_inject_process_fault,
)
from .guard import NumericalGuard
from .validate import (
    DesignValidationError,
    ValidationIssue,
    ValidationReport,
    validate_design,
)

__all__ = [
    "CHECKPOINT_DIR",
    "CheckpointManager",
    "PlacerCheckpoint",
    "load_checkpoint",
    "save_checkpoint",
    "FAULT_ENV_VAR",
    "BundleCorruptionError",
    "FaultInjectionError",
    "FaultInjector",
    "FaultSpec",
    "ProcessFaultSpec",
    "maybe_inject_process_fault",
    "NumericalGuard",
    "DesignValidationError",
    "ValidationIssue",
    "ValidationReport",
    "validate_design",
]
