"""Per-term numerical fault detection for the global placer.

The placement objective is a sum of independently computed terms
(wirelength, density, timing).  A NaN/Inf in any one of them - a blown-up
LUT extrapolation, an overflowed Elmore product, an injected fault -
poisons the combined gradient and silently corrupts the Nesterov
trajectory.  The previous behaviour (``np.nan_to_num`` on the combined
gradient) hid such events entirely.

:class:`NumericalGuard` instead checks each term's gradient the moment it
is produced.  A non-finite term is *quarantined* for that iteration: its
contribution is zeroed, a per-term counter is incremented, and the event
is logged through the ``repro.runtime`` logger.  Consecutive quarantines
of the same term signal a persistent fault and are used by the placer to
escalate (step-shrink retry, then checkpoint rollback).  Exceptions
raised by a term (a timer crash mid-backward) are recorded the same way.

Guard checks run inside the ``runtime.guard`` PROFILER stage so their
overhead shows up in ``--profile`` dumps.
"""

from __future__ import annotations

import logging
from typing import Dict, Optional

import numpy as np

from ..perf import PROFILER
from ..telemetry.events import current_recorder

__all__ = ["NumericalGuard", "LOGGER"]

LOGGER = logging.getLogger("repro.runtime")


class NumericalGuard:
    """Detects and quarantines non-finite objective-term gradients."""

    def __init__(self, log: bool = True) -> None:
        self.log = log
        #: term -> number of iterations on which the term was quarantined.
        self.quarantine_counts: Dict[str, int] = {}
        #: term -> number of exceptions caught from the term's evaluation.
        self.exception_counts: Dict[str, int] = {}
        #: term -> current run of consecutive quarantined iterations.
        self.consecutive: Dict[str, int] = {}
        #: total non-finite scalar entries seen across all checks.
        self.nonfinite_entries = 0

    # ------------------------------------------------------------------
    def check_term(self, term: str, iteration: int, *arrays: np.ndarray) -> bool:
        """Validate one term's gradient arrays; quarantine on any NaN/Inf.

        Returns True when the term is healthy.  On failure every array is
        zeroed **in place** (the term contributes nothing this iteration),
        the event is counted against ``term`` and logged, and False is
        returned.
        """
        with PROFILER.stage("runtime.guard"):
            bad = 0
            for a in arrays:
                finite = np.isfinite(a)
                if not finite.all():
                    bad += int(a.size - np.count_nonzero(finite))
            if bad == 0:
                self.consecutive[term] = 0
                return True
            self.nonfinite_entries += bad
            for a in arrays:
                a[...] = 0.0
        self._record(term)
        recorder = current_recorder()
        if recorder is not None:
            recorder.event(
                "quarantine", iteration=iteration, term=term, bad_entries=bad
            )
        if self.log:
            LOGGER.warning(
                "iteration %d: %d non-finite entries in %s gradient; "
                "term quarantined for this iteration (%d total)",
                iteration, bad, term, self.quarantine_counts[term],
            )
        return False

    def record_exception(self, term: str, iteration: int, exc: BaseException) -> None:
        """Count an exception raised while evaluating ``term`` (quarantined)."""
        self.exception_counts[term] = self.exception_counts.get(term, 0) + 1
        self._record(term)
        recorder = current_recorder()
        if recorder is not None:
            recorder.event(
                "term_exception",
                iteration=iteration,
                term=term,
                error=f"{type(exc).__name__}: {exc}",
            )
        if self.log:
            LOGGER.warning(
                "iteration %d: %s evaluation raised %s: %s; "
                "term quarantined for this iteration",
                iteration, term, type(exc).__name__, exc,
            )

    def scrub(self, term: str, iteration: int, grad: np.ndarray) -> int:
        """Final safety net on the combined gradient: zero + count NaN/Inf.

        Unlike :meth:`check_term` this replaces only the offending entries
        (the healthy terms' contributions survive).  Returns the number of
        entries replaced.
        """
        with PROFILER.stage("runtime.guard"):
            finite = np.isfinite(grad)
            bad = int(grad.size - np.count_nonzero(finite))
            if bad:
                grad[~finite] = 0.0
        if bad:
            self.nonfinite_entries += bad
            self._record(term)
            if self.log:
                LOGGER.warning(
                    "iteration %d: %d non-finite entries survived into the "
                    "combined gradient; zeroed",
                    iteration, bad,
                )
        return bad

    def _record(self, term: str) -> None:
        self.quarantine_counts[term] = self.quarantine_counts.get(term, 0) + 1
        self.consecutive[term] = self.consecutive.get(term, 0) + 1

    # ------------------------------------------------------------------
    def worst_consecutive(self) -> int:
        """Longest current run of consecutive quarantines over all terms."""
        return max(self.consecutive.values(), default=0)

    def reset_consecutive(self) -> None:
        """Clear the consecutive counters (after an escalation action)."""
        for term in self.consecutive:
            self.consecutive[term] = 0

    @property
    def total_quarantines(self) -> int:
        return sum(self.quarantine_counts.values())

    def summary(self) -> Dict[str, int]:
        """Flat per-term event counts for :class:`PlacerResult` reporting."""
        out = dict(self.quarantine_counts)
        for term, n in self.exception_counts.items():
            out[f"{term}_exceptions"] = n
        return out

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def get_state(self) -> Dict[str, object]:
        return {
            "quarantine_counts": dict(self.quarantine_counts),
            "exception_counts": dict(self.exception_counts),
            "consecutive": dict(self.consecutive),
            "nonfinite_entries": self.nonfinite_entries,
        }

    def set_state(self, state: Optional[Dict[str, object]]) -> None:
        if not state:
            return
        self.quarantine_counts = dict(state.get("quarantine_counts", {}))
        self.exception_counts = dict(state.get("exception_counts", {}))
        self.consecutive = dict(state.get("consecutive", {}))
        self.nonfinite_entries = int(state.get("nonfinite_entries", 0))
