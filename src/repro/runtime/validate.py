"""Structural design validation run before placement iteration 0.

A malformed netlist does not crash the placer - it silently corrupts it:
a dangling pin contributes a frozen gradient, a multi-driver net makes
the timing graph ambiguous, a combinational cycle deadlocks levelisation,
a zero-area cell breaks the density model's area accounting, and a
degenerate NLDM table poisons every delay query through it.  The checks
here catch all of these up front and report them as a typed
:class:`ValidationReport` instead of a failure hundreds of iterations in.

Checks (``check`` field of each issue):

- ``dangling_pin``       unconnected input pins (error) / output pins (warning)
- ``undriven_net``       nets with sinks but no driver pin
- ``multi_driver_net``   nets driven by more than one output pin
- ``degenerate_net``     single-pin nets (warning; skipped by the timers)
- ``zero_area_cell``     non-port cells with zero or negative area
- ``nldm_lut``           missing/non-finite/degenerate NLDM LUT corners
- ``pin_outside_die``    pins placed outside the die (error for fixed cells)
- ``combinational_cycle`` cycles in the propagation DAG (via levelisation)

Run by :class:`~repro.place.placer.GlobalPlacer` when
``PlacerOptions.validate`` is set, and by the harness ``--validate`` mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..netlist.design import Design
from ..netlist.library import FALL, RISE, ArcKind
from ..netlist.lut import LUT
from ..perf import PROFILER
from ..sta.graph import CombinationalCycleError, TimingGraph

__all__ = [
    "ValidationIssue",
    "ValidationReport",
    "DesignValidationError",
    "validate_design",
]

#: Cap on per-check example messages; further offenders are summarised.
_MAX_EXAMPLES = 8

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class ValidationIssue:
    """One finding: which check fired, how bad, and on what."""

    check: str
    severity: str  # "error" | "warning"
    message: str

    def __str__(self) -> str:
        return f"[{self.severity.upper():7s}] {self.check}: {self.message}"


@dataclass
class ValidationReport:
    """All findings of one :func:`validate_design` run."""

    design: str
    issues: List[ValidationIssue] = field(default_factory=list)
    #: Checks that ran (a check with no issues passed cleanly).
    checks_run: List[str] = field(default_factory=list)

    @property
    def errors(self) -> List[ValidationIssue]:
        return [i for i in self.issues if i.severity == ERROR]

    @property
    def warnings(self) -> List[ValidationIssue]:
        return [i for i in self.issues if i.severity == WARNING]

    @property
    def ok(self) -> bool:
        """True when no *errors* were found (warnings do not fail a run)."""
        return not self.errors

    def counts(self) -> Dict[str, int]:
        """Issue counts per check name."""
        out: Dict[str, int] = {}
        for issue in self.issues:
            out[issue.check] = out.get(issue.check, 0) + 1
        return out

    def add(self, check: str, severity: str, message: str) -> None:
        self.issues.append(ValidationIssue(check, severity, message))

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise DesignValidationError(self)

    def format(self) -> str:
        """Human-readable multi-line report."""
        verdict = "PASS" if self.ok else "FAIL"
        lines = [
            f"validation of {self.design!r}: {verdict} "
            f"({len(self.errors)} errors, {len(self.warnings)} warnings, "
            f"{len(self.checks_run)} checks)"
        ]
        lines.extend(f"  {issue}" for issue in self.issues)
        return "\n".join(lines)


class DesignValidationError(RuntimeError):
    """Raised when a run refuses to start on a design that failed validation."""

    def __init__(self, report: ValidationReport) -> None:
        self.report = report
        super().__init__(report.format())


# ----------------------------------------------------------------------
# Individual checks
# ----------------------------------------------------------------------
def _capped(report, check, severity, messages: List[str]) -> None:
    """Emit at most ``_MAX_EXAMPLES`` issues, summarising the remainder."""
    for message in messages[:_MAX_EXAMPLES]:
        report.add(check, severity, message)
    if len(messages) > _MAX_EXAMPLES:
        report.add(
            check, severity,
            f"... and {len(messages) - _MAX_EXAMPLES} more",
        )


def _check_pins(design: Design, report: ValidationReport) -> None:
    report.checks_run.append("dangling_pin")
    dangling = np.nonzero(design.pin2net < 0)[0]
    errors: List[str] = []
    warnings: List[str] = []
    for p in dangling.tolist():
        name = design.pin_name[p]
        if design.pin_is_clock[p]:
            errors.append(f"clock pin {name!r} is unconnected")
        elif design.pin_dir[p] == 0:
            errors.append(f"input pin {name!r} is not connected to any net")
        else:
            warnings.append(f"output pin {name!r} drives no net")
    _capped(report, "dangling_pin", ERROR, errors)
    _capped(report, "dangling_pin", WARNING, warnings)


def _check_nets(design: Design, report: ValidationReport) -> None:
    report.checks_run.extend(
        ["undriven_net", "multi_driver_net", "degenerate_net"]
    )
    undriven: List[str] = []
    multi: List[str] = []
    degenerate: List[str] = []
    for ni in range(design.n_nets):
        pins = design.net_pins(ni)
        drivers = pins[design.pin_dir[pins] == 1]
        if design.net_degree(ni) < 2:
            degenerate.append(
                f"net {design.net_name[ni]!r} has {design.net_degree(ni)} pins"
            )
        if len(drivers) == 0 and design.net_degree(ni) >= 1:
            if not design.net_is_clock[ni]:
                undriven.append(
                    f"net {design.net_name[ni]!r} has "
                    f"{design.net_degree(ni)} sinks but no driver"
                )
        elif len(drivers) > 1:
            names = ", ".join(design.pin_name[p] for p in drivers[:4].tolist())
            multi.append(
                f"net {design.net_name[ni]!r} has {len(drivers)} drivers "
                f"({names})"
            )
    _capped(report, "undriven_net", ERROR, undriven)
    _capped(report, "multi_driver_net", ERROR, multi)
    _capped(report, "degenerate_net", WARNING, degenerate)


def _check_cells(design: Design, report: ValidationReport) -> None:
    report.checks_run.append("zero_area_cell")
    area = design.cell_w * design.cell_h
    bad = np.nonzero(~design.cell_is_port & (area <= 0.0))[0]
    _capped(
        report, "zero_area_cell", ERROR,
        [
            f"cell {design.cell_name[c]!r} "
            f"({design.cell_type_of(c).name}) has area "
            f"{area[c]:.3g}"
            for c in bad.tolist()
        ],
    )


def _check_lut(lut: Optional[LUT], where: str, problems: Dict[str, List[str]]) -> None:
    if lut is None:
        problems[ERROR].append(f"{where}: missing LUT")
        return
    if lut.values.size == 0 or len(lut.x) == 0 or len(lut.y) == 0:
        problems[ERROR].append(f"{where}: empty LUT {lut.name!r}")
        return
    if not np.all(np.isfinite(lut.values)):
        problems[ERROR].append(
            f"{where}: LUT {lut.name!r} has non-finite values"
        )
    if not np.all(np.isfinite(lut.x)) or not np.all(np.isfinite(lut.y)):
        problems[ERROR].append(
            f"{where}: LUT {lut.name!r} has non-finite index corners"
        )
    if (len(lut.x) > 1 and np.any(np.diff(lut.x) <= 0)) or (
        len(lut.y) > 1 and np.any(np.diff(lut.y) <= 0)
    ):
        problems[ERROR].append(
            f"{where}: LUT {lut.name!r} axes are not strictly increasing"
        )
    if len(lut.x) < 2 and len(lut.y) < 2:
        problems[WARNING].append(
            f"{where}: LUT {lut.name!r} is a single corner "
            f"(constant extrapolation everywhere)"
        )


def _check_library(design: Design, report: ValidationReport) -> None:
    report.checks_run.append("nldm_lut")
    problems: Dict[str, List[str]] = {ERROR: [], WARNING: []}
    used_types = set(np.unique(design.cell_type).tolist())
    for ti in sorted(used_types):
        ctype = design.cell_types[ti]
        for arc in ctype.arcs:
            where = f"{ctype.name}.{arc.from_pin}->{arc.to_pin}"
            if arc.kind.is_delay_arc:
                for t in (RISE, FALL):
                    _check_lut(arc.delay_lut(t), f"{where} delay", problems)
                    _check_lut(
                        arc.transition_lut(t), f"{where} slew", problems
                    )
            elif arc.kind in (ArcKind.SETUP, ArcKind.HOLD):
                for t in (RISE, FALL):
                    _check_lut(
                        arc.constraint_lut(t),
                        f"{where} {arc.kind.name.lower()}",
                        problems,
                    )
    _capped(report, "nldm_lut", ERROR, problems[ERROR])
    _capped(report, "nldm_lut", WARNING, problems[WARNING])


def _check_geometry(design: Design, report: ValidationReport) -> None:
    report.checks_run.append("pin_outside_die")
    xl, yl, xh, yh = design.die
    px, py = design.pin_positions()
    tol = 1e-6 * max(xh - xl, yh - yl, 1.0)
    outside = (
        (px < xl - tol) | (px > xh + tol) | (py < yl - tol) | (py > yh + tol)
    )
    errors: List[str] = []
    warnings: List[str] = []
    for p in np.nonzero(outside)[0].tolist():
        ci = int(design.pin2cell[p])
        message = (
            f"pin {design.pin_name[p]!r} at ({px[p]:.2f}, {py[p]:.2f}) "
            f"is outside the die {design.die}"
        )
        if design.cell_fixed[ci]:
            errors.append(message + " (fixed cell)")
        else:
            warnings.append(message + " (movable; will be re-initialised)")
    _capped(report, "pin_outside_die", ERROR, errors)
    _capped(report, "pin_outside_die", WARNING, warnings)


def _check_cycles(
    design: Design, report: ValidationReport, graph: Optional[TimingGraph]
) -> None:
    report.checks_run.append("combinational_cycle")
    if graph is not None:
        return  # the graph levelised successfully: acyclic by construction
    try:
        TimingGraph(design)
    except CombinationalCycleError as exc:
        report.add("combinational_cycle", ERROR, str(exc))
    except Exception as exc:  # malformed designs may fail earlier stages
        report.add(
            "combinational_cycle", ERROR,
            f"timing graph construction failed: {type(exc).__name__}: {exc}",
        )


# ----------------------------------------------------------------------
def validate_design(
    design: Design,
    graph: Optional[TimingGraph] = None,
    check_graph: bool = True,
) -> ValidationReport:
    """Run every structural check; never raises on a bad design.

    ``graph`` may pass an already-constructed :class:`TimingGraph` to
    prove acyclicity without a second levelisation; with ``check_graph``
    False the (comparatively expensive) cycle check is skipped entirely.
    """
    with PROFILER.stage("runtime.validate"):
        report = ValidationReport(design=design.name)
        _check_pins(design, report)
        _check_nets(design, report)
        _check_cells(design, report)
        _check_library(design, report)
        _check_geometry(design, report)
        if check_graph:
            _check_cycles(design, report, graph)
    return report
