"""Checkpoint/restart for the global placer.

A :class:`PlacerCheckpoint` captures the *complete* optimization state at
the top of one placer iteration: positions, optimizer internals (Nesterov
momentum, Barzilai-Borwein step bounds), the density-penalty weight, net
weights, divergence-guard history, RNG state, guard counters, the fault
injector's fired flag, and any extension state registered by the flow
(e.g. the timing objective's Steiner-forest coordinates and ramp
counters).  Restoring a checkpoint and rerunning therefore reproduces the
remaining trajectory bit for bit - the property the resume tests assert.

Checkpoints are plain pickles of numpy arrays and scalars written to
``benchmarks/results/checkpoints/`` by default.  They are trusted local
artifacts of your own runs; do not load checkpoints from untrusted
sources (pickle executes code on load).

:class:`CheckpointManager` owns the periodic-save policy: every
``every`` iterations, keeping the ``keep`` most recent files plus the
*best* one (lowest density overflow), which is the rollback target when a
run diverges.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..perf import PROFILER
from ..telemetry.events import current_recorder

__all__ = [
    "CHECKPOINT_DIR",
    "PlacerCheckpoint",
    "CheckpointManager",
    "save_checkpoint",
    "load_checkpoint",
]

#: Default checkpoint destination (relative to the working directory).
CHECKPOINT_DIR = os.path.join("benchmarks", "results", "checkpoints")

#: Format marker stored in every checkpoint file.
_FORMAT_VERSION = 1


@dataclass
class PlacerCheckpoint:
    """Full placer state as of the *top* of ``iteration`` (pre-gradient)."""

    design: str
    iteration: int
    pos: np.ndarray
    optimizer: Dict[str, Any]
    lam: Optional[float]
    net_weights: np.ndarray
    overflow: float
    prev_overflow: float
    best_overflow: float
    best_pos: np.ndarray
    recent_hpwl: List[float]
    rng_state: Dict[str, Any]
    guard_state: Dict[str, Any] = field(default_factory=dict)
    injector_state: Dict[str, Any] = field(default_factory=dict)
    #: Extension state keyed by provider name (e.g. ``timing_objective``).
    extra: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    version: int = _FORMAT_VERSION


def save_checkpoint(checkpoint: PlacerCheckpoint, path: str) -> str:
    """Serialize a checkpoint to ``path`` (parent directories created)."""
    with PROFILER.stage("runtime.checkpoint.save"):
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            pickle.dump(checkpoint, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)  # atomic: a killed run never leaves half a file
    return path


def load_checkpoint(path: str) -> PlacerCheckpoint:
    """Load a checkpoint written by :func:`save_checkpoint`."""
    with PROFILER.stage("runtime.checkpoint.load"):
        with open(path, "rb") as handle:
            checkpoint = pickle.load(handle)
    if not isinstance(checkpoint, PlacerCheckpoint):
        raise ValueError(f"{path!r} is not a placer checkpoint")
    if checkpoint.version != _FORMAT_VERSION:
        raise ValueError(
            f"checkpoint {path!r} has format version {checkpoint.version}; "
            f"this build reads version {_FORMAT_VERSION}"
        )
    return checkpoint


class CheckpointManager:
    """Periodic checkpointing with retention and a best-state rollback target."""

    def __init__(
        self,
        directory: Optional[str] = None,
        prefix: str = "placer",
        every: int = 0,
        keep: int = 3,
    ) -> None:
        self.directory = directory if directory is not None else CHECKPOINT_DIR
        self.prefix = prefix
        self.every = int(every)
        self.keep = max(int(keep), 1)
        #: (iteration, overflow, path) of checkpoints written this run.
        self.saved: List[Tuple[int, float, str]] = []

    @property
    def enabled(self) -> bool:
        return self.every > 0

    def path_for(self, iteration: int) -> str:
        return os.path.join(
            self.directory, f"{self.prefix}_iter{iteration:06d}.ckpt"
        )

    # ------------------------------------------------------------------
    def maybe_save(
        self, iteration: int, make: Callable[[], PlacerCheckpoint]
    ) -> Optional[str]:
        """Save on the period (skipping iteration 0); returns the path."""
        if not self.enabled or iteration == 0 or iteration % self.every:
            return None
        checkpoint = make()
        path = save_checkpoint(checkpoint, self.path_for(iteration))
        self.saved.append((iteration, float(checkpoint.overflow), path))
        self._prune()
        recorder = current_recorder()
        if recorder is not None:
            recorder.event(
                "checkpoint",
                iteration=iteration,
                action="save",
                path=path,
                overflow=float(checkpoint.overflow),
            )
        return path

    def _prune(self) -> None:
        """Drop old files beyond ``keep``, always sparing the best one."""
        if len(self.saved) <= self.keep:
            return
        protected = {self.best_path(), self.latest_path()}
        for iteration, overflow, path in self.saved[: -self.keep]:
            if path in protected:
                continue
            self.saved.remove((iteration, overflow, path))
            try:
                os.remove(path)
            except OSError:
                pass

    # ------------------------------------------------------------------
    def latest_path(self) -> Optional[str]:
        return self.saved[-1][2] if self.saved else None

    def best_path(self) -> Optional[str]:
        """Checkpoint with the lowest recorded overflow (rollback target)."""
        if not self.saved:
            return None
        return min(self.saved, key=lambda rec: rec[1])[2]

    def load_best(self) -> Optional[PlacerCheckpoint]:
        path = self.best_path()
        return load_checkpoint(path) if path else None
