"""repro: a reproduction of "Differentiable-Timing-Driven Global Placement".

Guo & Lin, DAC 2022 - a differentiable static timing analysis engine whose
smoothed TNS/WNS gradients drive a DREAMPlace-style nonlinear global
placer.  See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results.

Subpackages
-----------
- ``repro.netlist``: circuit data model, Liberty/SDC/Bookshelf I/O,
  synthetic benchmark generation.
- ``repro.route``: rectilinear Steiner tree construction (FLUTE
  substitute) with differentiable Steiner-point ownership.
- ``repro.sta``: golden (exact) static timing analysis.
- ``repro.core``: the paper's contribution - the differentiable timer and
  the timing-driven placement flow.
- ``repro.place``: nonlinear global placement substrate, net-weighting
  baseline, legalization.
- ``repro.harness``: benchmark suite and experiment reproduction.
- ``repro.perf``: per-stage wall-time instrumentation of the hot paths.
- ``repro.runtime``: guarded placement runtime - design validation,
  numerical fault quarantine, checkpoint/restart, fault injection.
"""

__version__ = "1.0.0"

from . import core, harness, netlist, perf, place, route, runtime, sta

__all__ = [
    "core",
    "harness",
    "netlist",
    "perf",
    "place",
    "route",
    "runtime",
    "sta",
    "__version__",
]
