"""Top-level command-line interface.

Subcommands::

    python -m repro generate --cells 800 --depth 14 --seed 1 --out DIR
        Generate a synthetic benchmark and save it as a full design
        bundle (.v/.lib/.sdc/.def + manifest).

    python -m repro place --bundle DIR --mode ours [--max-iters 600]
        Load a bundle, run one of the three placers (dreamplace /
        netweight / ours), legalize, save the placement back as DEF and
        print the timing report.

    python -m repro sta --bundle DIR [--hold] [--propagated-clock]
        Analyse a bundle's stored placement and print the timing report
        with the slack histogram.

    python -m repro bench ...
        Forwarded to ``python -m repro.harness`` (Table 2/3, Figure 8).
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np


def _cmd_generate(args) -> int:
    from .netlist import GeneratorSpec, generate_design, save_design

    spec = GeneratorSpec(
        name=args.name,
        n_cells=args.cells,
        depth=args.depth,
        seed=args.seed,
        utilization=args.utilization,
    )
    design = generate_design(spec)
    manifest = save_design(design, args.out)
    print(f"generated {design}")
    print(f"bundle written to {os.path.dirname(os.path.abspath(manifest))}")
    return 0


def _cmd_place(args) -> int:
    from .harness.runners import run_mode
    from .netlist import load_design_bundle, save_design
    from .place import PlacerOptions, legalize, max_overlap
    from .sta import report_design, run_sta

    design, _, _ = load_design_bundle(args.bundle)
    record = run_mode(
        design, args.mode, placer_options=PlacerOptions(max_iters=args.max_iters)
    )
    print(record.summary())
    x, y = record.x, record.y
    if not args.skip_legalize:
        x, y = legalize(design, x, y)
        assert max_overlap(design, x, y) < 1e-9
        print("legalized (no overlaps)")
    out = args.out if args.out else args.bundle
    save_design(design, out, x, y)
    print(f"placed bundle written to {out}")
    print()
    print(report_design(run_sta(design, x, y)))
    return 0


def _cmd_sta(args) -> int:
    from .netlist import load_design_bundle
    from .sta import format_path, report_design, run_sta, worst_paths

    design, x, y = load_design_bundle(args.bundle)
    result = run_sta(
        design,
        x,
        y,
        compute_hold=args.hold,
        propagated_clock=args.propagated_clock,
        wire_delay_model=args.wire_model,
    )
    print(report_design(result))
    if args.hold:
        print(
            f"\nhold: WNS = {result.wns_hold:.1f} ps, "
            f"TNS = {result.tns_hold:.1f} ps"
        )
    if result.clock is not None:
        print(f"clock skew (propagated): {result.clock.skew:.2f} ps")
    if args.paths:
        print()
        for path in worst_paths(result, args.paths):
            print(format_path(path))
            print()
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "bench":
        from .harness.__main__ import main as bench_main

        return bench_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Differentiable-timing-driven global placement "
        "(DAC 2022 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate", help="generate a synthetic benchmark")
    p_gen.add_argument("--name", default="generated")
    p_gen.add_argument("--cells", type=int, default=800)
    p_gen.add_argument("--depth", type=int, default=14)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--utilization", type=float, default=0.7)
    p_gen.add_argument("--out", required=True, help="bundle directory")
    p_gen.set_defaults(func=_cmd_generate)

    p_place = sub.add_parser("place", help="place a design bundle")
    p_place.add_argument("--bundle", required=True)
    p_place.add_argument(
        "--mode", choices=("dreamplace", "netweight", "ours"), default="ours"
    )
    p_place.add_argument("--max-iters", type=int, default=600)
    p_place.add_argument("--skip-legalize", action="store_true")
    p_place.add_argument("--out", default=None, help="output bundle dir")
    p_place.set_defaults(func=_cmd_place)

    p_sta = sub.add_parser("sta", help="analyse a design bundle")
    p_sta.add_argument("--bundle", required=True)
    p_sta.add_argument("--hold", action="store_true")
    p_sta.add_argument("--propagated-clock", action="store_true")
    p_sta.add_argument(
        "--wire-model", choices=("elmore", "d2m"), default="elmore"
    )
    p_sta.add_argument("--paths", type=int, default=0, help="report K paths")
    p_sta.set_defaults(func=_cmd_sta)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
