"""Backward (gradient) pass of the Elmore delay model - Equation (8).

The forward model (:func:`repro.sta.elmore.elmore_forward`) is four tree
dynamic-programming passes; the backward pass mirrors them in reverse order
(Figure 5 of the paper): the adjoint of each bottom-up pass is a top-down
pass and vice versa.  Given gradients of the objective with respect to the
per-node Elmore delay, squared impulse, and driver (root) load, this module
produces gradients with respect to node coordinates, which the caller then
scatters onto pins (Steiner points route to their coordinate-owner pins,
Figure 4).

Derivation sketch (``g`` denotes d objective / d quantity):

- ``impulse^2 = 2 beta - delay^2``  =>  ``g_beta += 2 g_imp2``,
  ``g_delay -= 2 delay g_imp2``;
- pass 4 reverse (bottom-up):  ``g_ldelay += res * g_beta``,
  ``g_res += ldelay * g_beta``,  ``g_beta[parent] += g_beta``;
- pass 3 reverse (top-down):   ``g_ldelay += g_ldelay[parent]``, then
  ``g_cap += delay * g_ldelay``, ``g_delay += cap * g_ldelay``;
- pass 2 reverse (bottom-up):  ``g_res += load * g_delay``,
  ``g_load += res * g_delay``,  ``g_delay[parent] += g_delay``;
- pass 1 reverse (top-down):   ``g_load += g_load[parent]``, then
  ``g_cap += g_load``;
- finally ``res = r_unit * len`` and the half-lumped wire capacitance give
  ``g_len = r_unit * g_res + (c_unit / 2)(g_cap(u) + g_cap(parent))`` and
  rectilinear length differentiates into coordinate signs.

Every step is validated against central finite differences in the tests.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..netlist.library import WireModel
from ..route.tree import Forest
from ..sta.elmore import ElmoreResult
from .scatter import scatter_accumulate, scatter_add

__all__ = ["elmore_backward"]


def elmore_backward(
    forest: Forest,
    elm: ElmoreResult,
    wire: WireModel,
    g_delay_ext: np.ndarray,
    g_imp2_ext: np.ndarray,
    g_load_ext: np.ndarray,
    g_beta_ext: np.ndarray = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Backpropagate Elmore gradients to node coordinates.

    Parameters
    ----------
    g_delay_ext, g_imp2_ext:
        d objective / d(delay, impulse^2) per forest node (typically
        nonzero at sink-pin nodes, from net-delay propagation).
    g_load_ext:
        d objective / d(root load) per node (nonzero at root nodes, from
        the LUT load inputs of the driving cell arcs).
    g_beta_ext:
        Optional direct d objective / d(beta) per node; used by moment-
        based wire metrics such as D2M that consume the second moment
        beyond its appearance in ``impulse^2``.

    Returns
    -------
    (g_node_x, g_node_y):
        Gradients with respect to the node coordinates used in the
        forward pass.
    """
    parent = forest.parent
    levels = forest.levels

    g_beta = 2.0 * g_imp2_ext
    if g_beta_ext is not None:
        g_beta = g_beta + g_beta_ext
    g_delay = g_delay_ext - 2.0 * elm.delay * g_imp2_ext
    g_ldelay = np.zeros(forest.n_nodes)
    g_load = g_load_ext.copy()
    g_cap = np.zeros(forest.n_nodes)
    g_res = np.zeros(forest.n_nodes)  # gradient of the edge-to-parent res

    # Reverse of pass 4 (Beta top-down) -> bottom-up sweep.
    for level in reversed(levels[1:]):
        g_ldelay[level] += elm.edge_res[level] * g_beta[level]
        g_res[level] += elm.ldelay[level] * g_beta[level]
        scatter_accumulate(g_beta, parent[level], g_beta[level])

    # Reverse of pass 3 (LDelay bottom-up) -> top-down sweep; apply the
    # local adjoints once each node's accumulated g_ldelay is final.
    roots = np.nonzero(forest.is_root)[0]
    g_cap[roots] += elm.delay[roots] * g_ldelay[roots]
    g_delay[roots] += elm.cap[roots] * g_ldelay[roots]
    for level in levels[1:]:
        g_ldelay[level] += g_ldelay[parent[level]]
        g_cap[level] += elm.delay[level] * g_ldelay[level]
        g_delay[level] += elm.cap[level] * g_ldelay[level]

    # Reverse of pass 2 (Delay top-down) -> bottom-up sweep.
    for level in reversed(levels[1:]):
        g_res[level] += elm.load[level] * g_delay[level]
        g_load[level] += elm.edge_res[level] * g_delay[level]
        scatter_accumulate(g_delay, parent[level], g_delay[level])

    # Reverse of pass 1 (Load bottom-up) -> top-down sweep.
    g_cap[roots] += g_load[roots]
    for level in levels[1:]:
        g_load[level] += g_load[parent[level]]
        g_cap[level] += g_load[level]

    # Chain into edge lengths:  res = r * len;  each edge's wire cap is
    # half-lumped onto both endpoints.
    g_len = wire.res_per_um * g_res
    hp = forest.has_parent
    g_len[hp] += 0.5 * wire.cap_per_um * (g_cap[hp] + g_cap[parent[hp]])

    # Rectilinear length -> coordinates (sign subgradient at zero).
    p = parent[hp]
    sx = np.sign(elm.node_x[hp] - elm.node_x[p])
    sy = np.sign(elm.node_y[hp] - elm.node_y[p])
    contrib_x = sx * g_len[hp]
    contrib_y = sy * g_len[hp]
    child = np.nonzero(hp)[0]
    g_x = scatter_add(child, contrib_x, forest.n_nodes)
    g_y = scatter_add(child, contrib_y, forest.n_nodes)
    scatter_accumulate(g_x, p, -contrib_x)
    scatter_accumulate(g_y, p, -contrib_y)
    return g_x, g_y
