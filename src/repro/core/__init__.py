"""The paper's contribution: differentiable timing engine + placement flow."""

from .smoothing import (
    lse_max,
    lse_max_grad,
    lse_min,
    segment_lse_max,
    segment_lse_weights,
    soft_clamp_neg,
    soft_clamp_neg_grad,
)
from .elmore_grad import elmore_backward
from .difftimer import DifferentiableTimer, TimerTape
from .objective import TimingObjective, TimingObjectiveOptions
from .timing_placer import TimingDrivenPlacer, TimingPlacerOptions
from .gradcheck import GradCheckReport, central_difference, check_gradient

__all__ = [
    "lse_max",
    "lse_max_grad",
    "lse_min",
    "segment_lse_max",
    "segment_lse_weights",
    "soft_clamp_neg",
    "soft_clamp_neg_grad",
    "elmore_backward",
    "DifferentiableTimer",
    "TimerTape",
    "TimingObjective",
    "TimingObjectiveOptions",
    "TimingDrivenPlacer",
    "TimingPlacerOptions",
    "GradCheckReport",
    "central_difference",
    "check_gradient",
]
