"""Differentiable net-delay propagation - Equations (9)-(10) of the paper.

A net arc carries the signal from a net's driver pin to one sink pin:

    AT(v)   = AT(u) + Delay(v)
    Slew(v) = sqrt(Slew(u)^2 + Impulse(v)^2)

Each pin has at most one fan-in net arc, so no smoothing is needed here;
the backward kernel distributes the sink gradients onto the driver AT/slew
and onto the Elmore delay / squared-impulse of the sink (Equation (10)).
Both kernels operate on one level's slice of the graph's net-arc table.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..contracts import differentiable
from .scatter import scatter_accumulate_rows

__all__ = ["net_forward_level", "net_backward_level"]


@differentiable(
    backward="repro.core.net_prop.net_backward_level",
    gradcheck="tests/test_difftimer.py::TestBackwardFiniteDifference"
    "::test_gradient_matches_fd",
)
def net_forward_level(
    sinks: np.ndarray,
    srcs: np.ndarray,
    net_delay: np.ndarray,
    impulse2: np.ndarray,
    at: np.ndarray,
    slew: np.ndarray,
) -> None:
    """Forward net propagation for the arcs of one level (in place).

    ``at``/``slew`` are the full ``(n_pins, 2)`` arrays; ``net_delay`` and
    ``impulse2`` are per-pin Elmore outputs at sink pins.
    """
    at[sinks] = at[srcs] + net_delay[sinks][:, None]
    slew[sinks] = np.sqrt(slew[srcs] ** 2 + impulse2[sinks][:, None])


def net_backward_level(
    sinks: np.ndarray,
    srcs: np.ndarray,
    slew: np.ndarray,
    g_at: np.ndarray,
    g_slew: np.ndarray,
    g_net_delay: np.ndarray,
    g_impulse2: np.ndarray,
) -> None:
    """Backward net propagation for one level (Equation (10), in place).

    Accumulates into the driver-pin gradients and the per-pin Elmore
    gradients; the sink gradients in ``g_at``/``g_slew`` must already be
    final (higher levels processed first).
    """
    g_at_sink = g_at[sinks]  # (k, 2)
    scatter_accumulate_rows(g_at, srcs, g_at_sink)
    g_net_delay[sinks] += g_at_sink.sum(axis=1)

    slew_sink = slew[sinks]
    slew_src = slew[srcs]
    safe = np.maximum(slew_sink, 1e-12)
    g_slew_sink = g_slew[sinks]
    scatter_accumulate_rows(g_slew, srcs, (slew_src / safe) * g_slew_sink)
    g_impulse2[sinks] += (g_slew_sink / (2.0 * safe)).sum(axis=1)
