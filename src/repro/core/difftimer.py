"""The differentiable STA engine (Section 3 of the paper).

:class:`DifferentiableTimer` computes smoothed TNS/WNS *and their exact
gradients with respect to every cell location*, treating the timing graph
as a deep network (Figure 2):

forward  (Figure 3, left-to-right):
    pin locations -> Steiner trees -> Elmore delay/impulse/load ->
    levelised AT/slew propagation (LSE-merged) -> endpoint slacks ->
    smoothed TNS/WNS;

backward (Figure 3, blue edges, right-to-left):
    d(TNS,WNS)/d(slack) -> level-by-level adjoints of cell and net arcs ->
    Elmore adjoints (4 reverse DP passes) -> node coordinates -> pins
    (Steiner gradients routed to owner pins, Figure 4) -> cell locations.

The engine is hand-backpropagated; no autograd framework is involved.
Every stage is validated against central finite differences in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..netlist.design import Design
from ..netlist.library import FALL, RISE
from ..route.rsmt import build_forest
from ..route.tree import Forest
from ..sta.elmore import (
    WIRE_DELAY_MODELS,
    ElmoreResult,
    d2m_delay,
    elmore_forward,
    node_caps,
)
from ..perf import PROFILER
from ..runtime import faults
from ..sta.graph import TimingGraph
from .cell_prop import SLEW_CLIP_MAX, cell_backward_level, cell_forward_level
from .elmore_grad import elmore_backward
from .net_prop import net_backward_level, net_forward_level
from .scatter import scatter_accumulate_at, scatter_add
from .smoothing import lse_min, soft_clamp_neg, soft_clamp_neg_grad

__all__ = ["DifferentiableTimer", "TimerTape"]

_SENTINEL = -1e30


@dataclass
class TimerTape:
    """Everything the backward pass needs from one forward evaluation."""

    forest: Forest
    elmore: ElmoreResult
    at: np.ndarray  # (n_pins, 2)
    slew: np.ndarray  # (n_pins, 2)
    net_delay: np.ndarray  # (n_pins,)
    impulse2: np.ndarray  # (n_pins,)
    driver_load: np.ndarray  # (n_pins,)
    # Per-contribution tape (global contribution order):
    at_cand: np.ndarray
    slew_cand: np.ndarray
    dd_dslew: np.ndarray
    dd_dload: np.ndarray
    ds_dslew: np.ndarray
    ds_dload: np.ndarray
    # Endpoint data:
    ep_slack_t: np.ndarray  # (n_endpoints, 2)
    ep_slack: np.ndarray  # (n_endpoints,) transition-softmin slack
    setup_dsetup_dslew: np.ndarray  # (n_setup, 2)
    tns: float
    wns: float
    #: Fraction of endpoints whose rise/fall slack gap exceeds 20*gamma,
    #: i.e. where the transition softmin has saturated to a hard min and
    #: the smoothing no longer blends the two transitions.
    lse_saturation: float = 0.0

    @property
    def wns_exact_of_smoothed(self) -> float:
        """Hard min over the (smoothed-propagation) endpoint slacks."""
        return float(self.ep_slack_t.min()) if self.ep_slack_t.size else 0.0


class DifferentiableTimer:
    """Differentiable timing engine over a fixed design/timing graph."""

    def __init__(
        self,
        design: Design,
        graph: Optional[TimingGraph] = None,
        gamma: float = 20.0,
        wire_delay_model: str = "elmore",
    ) -> None:
        self.design = design
        self.graph = graph if graph is not None else TimingGraph(design)
        self.gamma = float(gamma)
        if wire_delay_model not in WIRE_DELAY_MODELS:
            raise ValueError(
                f"unknown wire delay model {wire_delay_model!r}; "
                f"expected one of {WIRE_DELAY_MODELS}"
            )
        self.wire_delay_model = wire_delay_model

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(
        self,
        cell_x: Optional[np.ndarray] = None,
        cell_y: Optional[np.ndarray] = None,
        forest: Optional[Forest] = None,
    ) -> TimerTape:
        """Evaluate smoothed TNS/WNS at the given cell locations."""
        design = self.design
        graph = self.graph
        gamma = self.gamma
        x = design.cell_x if cell_x is None else cell_x
        y = design.cell_y if cell_y is None else cell_y
        if forest is None:
            forest = build_forest(design, x, y)

        # Fault-injection hook (inert unless a guarded placer run armed an
        # injector with a due lut_corrupt fault; see repro.runtime.faults).
        inj = faults.current_injector()
        if inj is not None:
            inj.corrupt_lutbank(graph.lutbank)

        with PROFILER.stage("difftimer.forward.elmore"):
            px, py = design.pin_positions(x, y)
            nx, ny = forest.node_coords(px, py)
            caps = node_caps(forest, design.pin_cap, graph.extra_pin_cap)
            elm = elmore_forward(forest, nx, ny, caps, design.library.wire)

        n_pins = design.n_pins
        net_delay = np.zeros(n_pins)
        impulse2 = np.zeros(n_pins)
        mask = forest.node_pin >= 0
        pins = forest.node_pin[mask]
        if self.wire_delay_model == "d2m":
            net_delay[pins] = d2m_delay(elm.delay[mask], elm.beta[mask])
        else:
            net_delay[pins] = elm.delay[mask]
        impulse2[pins] = np.maximum(2.0 * elm.beta[mask] - elm.delay[mask] ** 2, 0.0)
        driver_load = elm.root_load(forest, n_pins)

        at = np.full((n_pins, 2), _SENTINEL)
        slew = np.zeros((n_pins, 2))
        sp = graph.start_pins
        at[sp] = graph.start_at[sp]
        slew[sp] = graph.start_slew[sp]

        n_contribs = len(graph.c_dst)
        tape = TimerTape(
            forest=forest,
            elmore=elm,
            at=at,
            slew=slew,
            net_delay=net_delay,
            impulse2=impulse2,
            driver_load=driver_load,
            at_cand=np.zeros(n_contribs),
            slew_cand=np.zeros(n_contribs),
            dd_dslew=np.zeros(n_contribs),
            dd_dload=np.zeros(n_contribs),
            ds_dslew=np.zeros(n_contribs),
            ds_dload=np.zeros(n_contribs),
            ep_slack_t=np.zeros((graph.n_endpoints, 2)),
            ep_slack=np.zeros(graph.n_endpoints),
            setup_dsetup_dslew=np.zeros((len(graph.setup_d), 2)),
            tns=0.0,
            wns=0.0,
        )

        with PROFILER.stage("difftimer.forward.levels"):
            for level in range(1, graph.n_levels):
                sl = graph.net_arcs.level_slice(level)
                if sl.stop > sl.start:
                    with PROFILER.stage("difftimer.forward.net_level"):
                        net_forward_level(
                            graph.net_sink[sl], graph.net_src[sl],
                            net_delay, impulse2, at, slew,
                        )
                sl = graph.cell_arcs.level_slice(level)
                if sl.stop > sl.start:
                    with PROFILER.stage("difftimer.forward.cell_level"):
                        cell_forward_level(
                            sl, graph.c_src, graph.c_dst,
                            graph.c_tin, graph.c_tout,
                            graph.c_lut_delay, graph.c_lut_slew, graph.lutbank,
                            driver_load, gamma, at, slew,
                            tape.at_cand, tape.slew_cand,
                            tape.dd_dslew, tape.dd_dload,
                            tape.ds_dslew, tape.ds_dload,
                        )

        # ------------------------------------------------------------------
        # Endpoint slacks, smoothed TNS/WNS.
        # ------------------------------------------------------------------
        with PROFILER.stage("difftimer.forward.endpoints"):
            period = design.constraints.clock_period
            n_setup = len(graph.setup_d)
            rat = np.zeros((graph.n_endpoints, 2))
            if n_setup:
                for t in (RISE, FALL):
                    slew_raw = slew[graph.setup_d, t]
                    setup_time, dsu_ds, _ = graph.lutbank.lookup_with_grad(
                        graph.setup_lut[:, t],
                        np.clip(slew_raw, 0.0, SLEW_CLIP_MAX),
                        np.full(n_setup, graph.clock_slew),
                    )
                    rat[:n_setup, t] = period - setup_time
                    # Active clips make the lookup constant in slew.
                    clipped = (slew_raw < 0.0) | (slew_raw > SLEW_CLIP_MAX)
                    tape.setup_dsetup_dslew[:, t] = np.where(
                        clipped, 0.0, dsu_ds
                    )
            if len(graph.po_pins):
                rat[n_setup:] = (period - graph.po_output_delay)[:, None]

            tape.ep_slack_t = rat - at[graph.endpoint_pins]
            # Softmin across the two transitions per endpoint.
            tape.ep_slack = lse_min(tape.ep_slack_t, gamma, axis=1)
            if graph.n_endpoints:
                tape.tns = float(soft_clamp_neg(tape.ep_slack, gamma).sum())
                tape.wns = float(lse_min(tape.ep_slack, gamma))
                tape.lse_saturation = float(
                    np.mean(
                        np.abs(tape.ep_slack_t[:, 0] - tape.ep_slack_t[:, 1])
                        > 20.0 * gamma
                    )
                )
            else:
                # No setup checks or output ports: timing is trivially met
                # (lse_min over an empty array would raise).
                tape.tns = 0.0
                tape.wns = 0.0
        return tape

    # ------------------------------------------------------------------
    # Backward
    # ------------------------------------------------------------------
    def backward(
        self,
        tape: TimerTape,
        d_tns: float = 1.0,
        d_wns: float = 0.0,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Gradient of ``d_tns * TNS + d_wns * WNS`` w.r.t. cell centers.

        For the placement objective of Equation (6), which *minimises*
        ``t1 * (-TNS) + t2 * (-WNS)``, call with ``d_tns=-t1, d_wns=-t2``.
        """
        design = self.design
        graph = self.graph
        gamma = self.gamma
        n_pins = design.n_pins
        at, slew = tape.at, tape.slew

        # Fault-injection hook: a due timer_exc fault emulates a kernel
        # crash mid-backward (inert outside armed guarded placer runs).
        inj = faults.current_injector()
        if inj is not None:
            inj.maybe_raise("difftimer.backward")

        # Seeds: d objective / d endpoint slack.  With no endpoints the
        # objective is constant and the gradient is identically zero; the
        # empty seeds below propagate that without special cases, but we
        # still guard the softmin weights against empty reductions.
        g_sep = d_tns * soft_clamp_neg_grad(tape.ep_slack, gamma)
        if d_wns != 0.0 and tape.ep_slack.size:
            w_ep = np.exp(
                np.maximum((tape.wns - tape.ep_slack) / gamma, -700.0)
            )
            g_sep = g_sep + d_wns * w_ep
        # Transition softmin weights.
        w_t = np.exp(
            np.maximum(
                (tape.ep_slack[:, None] - tape.ep_slack_t) / gamma, -700.0
            )
        )
        g_slack_t = g_sep[:, None] * w_t  # (n_ep, 2)

        g_at = np.zeros((n_pins, 2))
        g_slew = np.zeros((n_pins, 2))
        g_load = np.zeros(n_pins)
        g_net_delay = np.zeros(n_pins)
        g_impulse2 = np.zeros(n_pins)

        # slack = rat - at;  for setup endpoints rat = T - setup(slew_D).
        ep = graph.endpoint_pins
        if len(ep):
            scatter_accumulate_at(
                g_at, ep[:, None], np.array([[RISE, FALL]]), -g_slack_t
            )
        n_setup = len(graph.setup_d)
        if n_setup:
            scatter_accumulate_at(
                g_slew,
                graph.setup_d[:, None],
                np.array([[RISE, FALL]]),
                -g_slack_t[:n_setup] * tape.setup_dsetup_dslew,
            )

        with PROFILER.stage("difftimer.backward.levels"):
            for level in range(graph.n_levels - 1, 0, -1):
                sl = graph.cell_arcs.level_slice(level)
                if sl.stop > sl.start:
                    with PROFILER.stage("difftimer.backward.cell_level"):
                        cell_backward_level(
                            sl, graph.c_src, graph.c_dst,
                            graph.c_tin, graph.c_tout,
                            gamma, at, slew,
                            tape.at_cand, tape.slew_cand,
                            tape.dd_dslew, tape.dd_dload,
                            tape.ds_dslew, tape.ds_dload,
                            g_at, g_slew, g_load,
                        )
                sl = graph.net_arcs.level_slice(level)
                if sl.stop > sl.start:
                    with PROFILER.stage("difftimer.backward.net_level"):
                        net_backward_level(
                            graph.net_sink[sl], graph.net_src[sl],
                            slew, g_at, g_slew, g_net_delay, g_impulse2,
                        )

        # Map per-pin gradients onto forest nodes and run Elmore backward.
        forest = tape.forest
        g_delay_ext = np.zeros(forest.n_nodes)
        g_imp2_ext = np.zeros(forest.n_nodes)
        g_load_ext = np.zeros(forest.n_nodes)
        mask = forest.node_pin >= 0
        pins = forest.node_pin[mask]
        g_imp2_ext[mask] = g_impulse2[pins]
        g_load_ext[mask] = g_load[pins]  # nonzero only at driver (root) pins
        g_beta_ext = None
        if self.wire_delay_model == "d2m":
            # d2m = ln2 * m1^2 / sqrt(m2): chain the net-delay gradient
            # into both moments.
            m1 = tape.elmore.delay[mask]
            m2 = np.maximum(tape.elmore.beta[mask], 1e-30)
            valid = tape.elmore.beta[mask] > 0
            dd_dm1 = np.where(valid, 2.0 * np.log(2.0) * m1 / np.sqrt(m2), 0.0)
            dd_dm2 = np.where(
                valid, -0.5 * np.log(2.0) * m1 * m1 / m2**1.5, 0.0
            )
            g_delay_ext[mask] = g_net_delay[pins] * dd_dm1
            g_beta_ext = np.zeros(forest.n_nodes)
            g_beta_ext[mask] = g_net_delay[pins] * dd_dm2
        else:
            g_delay_ext[mask] = g_net_delay[pins]

        with PROFILER.stage("difftimer.backward.elmore"):
            g_nx, g_ny = elmore_backward(
                forest, tape.elmore, design.library.wire,
                g_delay_ext, g_imp2_ext, g_load_ext, g_beta_ext,
            )
            g_px, g_py = forest.scatter_coord_grad(g_nx, g_ny)

        # Pins move rigidly with their cells.
        g_cx = scatter_add(design.pin2cell, g_px, design.n_cells)
        g_cy = scatter_add(design.pin2cell, g_py, design.n_cells)
        g_cx[design.cell_fixed] = 0.0
        g_cy[design.cell_fixed] = 0.0
        return g_cx, g_cy

    # ------------------------------------------------------------------
    def tns_wns_with_grad(
        self,
        cell_x: np.ndarray,
        cell_y: np.ndarray,
        forest: Optional[Forest] = None,
        d_tns: float = 1.0,
        d_wns: float = 0.0,
    ):
        """One-call forward + backward; returns (tns, wns, g_x, g_y, tape)."""
        tape = self.forward(cell_x, cell_y, forest)
        g_cx, g_cy = self.backward(tape, d_tns=d_tns, d_wns=d_wns)
        return tape.tns, tape.wns, g_cx, g_cy, tape
