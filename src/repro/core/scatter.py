"""Deterministic scatter-add kernels - the shared ``np.add.at`` replacement.

Scatter-adds (accumulating duplicate-index contributions) appear in every
gradient hot path of the placer: pin->cell gradient gathers, density
splats, rise/fall table updates, and the levelised Elmore sweeps.  Ad-hoc
``np.add.at`` call sites made each one a private reimplementation of the
determinism contract, and the tuple-indexed / broadcast forms of
``ufunc.at`` are several times slower than necessary.  This module is the
single audited implementation, and the ``no-scatter-add-at`` reprolint
rule (``repro.analysis``) bans new ``np.add.at`` call sites outside it.

Two lowering strategies, chosen by what the caller needs
(``benchmarks/bench_scatter.py`` measures both against the ``np.add.at``
forms they replaced):

- **Materializing scatters** (``scatter_add*``: the output starts at
  zero) lower onto a single :func:`np.bincount` call, which sums each
  bin's contributions in input order before one vectorised add.  Per
  destination slot both primitives fold contributions left-to-right in
  input order, and a fresh fold starts from ``0.0`` with ``0.0 + x == x``
  exact, so the bincount result is *bitwise identical* to ``np.add.at``
  into zeros - while 2-4x faster for the 2-D and row-scatter shapes.
- **In-place accumulation** (``scatter_accumulate*``: adding into an
  existing, generally non-zero array) flattens the target and indices
  row-major and applies the 1-D contiguous fast path of ``np.add.at``
  itself - trivially bit-identical, and the fastest primitive at every
  update density (a bincount rebuild would cost O(n) per call, which the
  per-level Elmore sweeps cannot afford).  Flattening preserves the
  element order of the tuple-indexed form, so per-slot fold order is
  unchanged; it merely bypasses numpy's slow multi-dimensional
  ``ufunc.at`` dispatch.

The equivalences are asserted bit-for-bit in ``tests/test_scatter.py``.

2-D variants flatten ``(ix, iy)`` index pairs row-major (the
``np.ravel_multi_index`` convention) so grid scatters such as the density
splat ride the same kernels.
"""

from __future__ import annotations

from .backend import xp

__all__ = [
    "scatter_add",
    "scatter_add_2d",
    "scatter_add_rows",
    "scatter_accumulate",
    "scatter_accumulate_at",
    "scatter_accumulate_rows",
]


def scatter_add(index: xp.ndarray, values: xp.ndarray, size: int) -> xp.ndarray:
    """Fresh ``(size,)`` float64 array with ``values`` summed into bins.

    Equivalent to ``out = zeros(size); np.add.at(out, index, values)``,
    bit for bit.
    """
    # bincount returns int64 when the weights array is empty.
    return xp.bincount(index, weights=values, minlength=size).astype(
        xp.float64, copy=False
    )


def scatter_add_2d(
    ix: xp.ndarray, iy: xp.ndarray, values: xp.ndarray, shape: tuple
) -> xp.ndarray:
    """Fresh ``shape`` grid with ``values`` summed into ``(ix, iy)`` cells.

    Equivalent to ``out = zeros(shape); np.add.at(out, (ix, iy), values)``.
    """
    nx, ny = shape
    return (
        xp.bincount(ix * ny + iy, weights=values, minlength=nx * ny)
        .astype(xp.float64, copy=False)
        .reshape(nx, ny)
    )


def scatter_add_rows(
    rows: xp.ndarray, values: xp.ndarray, n_rows: int
) -> xp.ndarray:
    """Fresh ``(n_rows, c)`` array accumulating the ``(k, c)`` ``values`` rows.

    Equivalent to ``out = zeros((n_rows, c)); np.add.at(out, rows, values)``
    (the row-scatter used to push per-pin gradients onto driver pins).
    """
    c = values.shape[1]
    flat = (rows[:, None] * c + xp.arange(c)).ravel()
    return (
        xp.bincount(flat, weights=values.ravel(), minlength=n_rows * c)
        .astype(xp.float64, copy=False)
        .reshape(n_rows, c)
    )


def _flat_view(out: xp.ndarray) -> xp.ndarray:
    """C-contiguous flat view of ``out`` (in-place kernels mutate it)."""
    if not out.flags.c_contiguous:
        raise ValueError(
            "scatter_accumulate targets must be C-contiguous "
            "(reshape(-1) would silently copy)"
        )
    return out.reshape(-1)


def scatter_accumulate(
    out: xp.ndarray, index: xp.ndarray, values: xp.ndarray
) -> xp.ndarray:
    """In-place ``out[index] += values`` with duplicate indices folded.

    ``out`` must be 1-D.  This is the module's one blessed ``ufunc.at``
    call: on a 1-D contiguous float64 target numpy takes its indexed
    inner loop, which outperforms any bincount rebuild of ``out`` at
    every update density the sweeps produce.
    """
    # reprolint: allow[no-scatter-add-at] the single audited accumulation site every converted call site routes through
    xp.add.at(out, index, values)
    return out


def scatter_accumulate_at(
    out: xp.ndarray,
    rows: xp.ndarray,
    cols: xp.ndarray,
    values: xp.ndarray,
) -> xp.ndarray:
    """In-place ``np.add.at(out, (rows, cols), values)`` on a 2-D array.

    ``rows``/``cols``/``values`` broadcast against each other exactly as
    the fancy-index form does (e.g. ``rows[:, None]`` against a
    ``[[0, 1]]`` column stencil); the flattened 1-D form folds each slot
    in the same element order, several times faster.
    """
    flat, values = xp.broadcast_arrays(rows * out.shape[1] + cols, values)
    scatter_accumulate(_flat_view(out), flat.ravel(), values.ravel())
    return out


def scatter_accumulate_rows(
    out: xp.ndarray, rows: xp.ndarray, values: xp.ndarray
) -> xp.ndarray:
    """In-place ``np.add.at(out, rows, values)`` row scatter on ``(n, c)``."""
    c = out.shape[1]
    flat = (rows[:, None] * c + xp.arange(c)).ravel()
    scatter_accumulate(_flat_view(out), flat, values.ravel())
    return out
