"""The smoothed timing objective of Equation (6).

:class:`TimingObjective` packages the differentiable timer for consumption
by the global placer: it owns the Steiner-forest cache (FLUTE-substitute
calls happen every ``rsmt_period`` iterations, with Figure-4 coordinate
tracking in between), ramps the term weights ``t1``/``t2`` by a fixed
factor per iteration as the paper does (+1%/iteration), and returns the
gradient of ``t1 * (-TNS_gamma) + t2 * (-WNS_gamma)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..netlist.design import Design
from ..route.rsmt import (
    _routable_nets,
    build_forest,
    build_forest_from_pins,
    build_trees_for_nets,
)
from ..route.tree import Forest
from ..sta.graph import TimingGraph
from ..telemetry.events import current_recorder
from ..telemetry.registry import current_heartbeat
from .difftimer import DifferentiableTimer

__all__ = ["TimingObjectiveOptions", "TimingObjective"]


@dataclass
class TimingObjectiveOptions:
    """Hyper-parameters of the timing term (paper Section 4 defaults).

    The paper sets ``gamma ~ 100`` ps, ``t1 ~ 0.01``, ``t2 ~ 0.0001`` on
    the ICCAD 2015 designs and increases ``t1``/``t2`` by 1% per iteration
    from roughly the 100th iteration on.  The defaults here are the same
    shape re-scaled to the synthetic suite's delay ranges.
    """

    t1: float = 0.02  # TNS weight (objective value reporting, Eq. (6))
    t2: float = 0.01  # WNS weight (objective value reporting, Eq. (6))
    ramp: float = 1.01  # per-iteration multiplicative increase
    gamma: float = 20.0  # LSE smoothing, in ps
    start_iteration: int = 100
    rsmt_period: int = 10  # rebuild Steiner trees every N iterations
    # Per-term gradient normalisation: each term's gradient is rescaled to
    # the given fraction of the wirelength-gradient L1 norm (then ramped).
    # This is the pragmatic version of the "dynamic updating strategies
    # for timing weights" the paper lists as future work: with ~100
    # endpoints instead of superblue's ~100k, fixed t1/t2 leave the
    # single-path WNS gradient drowned by the TNS term.
    tns_grad_frac: float = 0.08
    wns_grad_frac: float = 0.05
    grad_frac_max: float = 0.25  # ceiling for each ramped fraction
    ramp_freeze_overflow: Optional[float] = 0.25  # stop ramping below this
    # 0 (default) = measure both term gradients every iteration (two
    # backward passes, exact normalisation).  A value K > 0 re-measures
    # the norms only every K iterations and runs a single fused backward
    # with cached scales in between - ~15% faster per iteration at a
    # small quality cost (see the objective ablation benchmark).
    norm_refresh_period: int = 0
    # Dirty-net incremental rebuilds between full RSMT rebuilds: a net is
    # rebuilt early when any of its pins moved more than this rectilinear
    # distance since the net's tree was last built (the Figure-4 owner-pin
    # reuse rule degrades as pins drift).  ``None`` (default) disables the
    # incremental path; the forest then only changes on ``rsmt_period``.
    rsmt_dirty_threshold: Optional[float] = None
    # When more than this fraction of routable nets is dirty, a full
    # rebuild is cheaper than splicing (the batched kernels amortise best
    # over large buckets); the rebuild also resets the period counter.
    rsmt_dirty_full_frac: float = 0.5


class TimingObjective:
    """Stateful timing-gradient provider for :class:`GlobalPlacer`."""

    def __init__(
        self,
        design: Design,
        options: Optional[TimingObjectiveOptions] = None,
        graph: Optional[TimingGraph] = None,
    ) -> None:
        self.design = design
        self.options = options if options is not None else TimingObjectiveOptions()
        self.timer = DifferentiableTimer(
            design, graph=graph, gamma=self.options.gamma
        )
        self._forest: Optional[Forest] = None
        #: (x, y) the current forest was built from; checkpointed so a
        #: resumed run can rebuild the identical forest deterministically.
        self._forest_coords: Optional[Tuple[np.ndarray, np.ndarray]] = None
        #: Per-pin coordinates each net's tree was last built at.  With
        #: dirty-net splicing the forest mixes trees of different ages, so
        #: the checkpointable "coordinates the forest was built from" are
        #: per *pin*, not one (x, y) snapshot (each tree is a pure
        #: function of its own pins' build-time coordinates).
        self._built_px: Optional[np.ndarray] = None
        self._built_py: Optional[np.ndarray] = None
        self._iters_since_rsmt = 0
        self._frozen_k: Optional[int] = None
        self._norm_cache: Optional[Tuple[float, float]] = None
        self._iters_since_norms = 0
        self.n_rsmt_calls = 0
        self.n_rsmt_reuses = 0
        self.n_timer_calls = 0
        self.n_backward_calls = 0
        #: Cumulative dirty-net policy counters (telemetry mirrors these).
        self.n_dirty_nets = 0
        self.n_rebuilt_nets = 0
        self._last_forest_reused = False
        # Routable-net ids and a CSR gather for the vectorised per-net
        # displacement reduction of the dirty test.
        self._routable_ids: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def forest_for(
        self, cell_x: np.ndarray, cell_y: np.ndarray, iteration: int
    ) -> Forest:
        """Return the cached forest, rebuilding on the RSMT period.

        Between rebuilds, Steiner points track their owner pins (the
        paper's Figure 4 reuse rule), so the forest stays valid while
        cells move.  With ``rsmt_dirty_threshold`` set, nets whose pins
        drifted beyond the threshold since their tree was built are
        re-routed early and spliced into the cached forest in place.
        """
        if (
            self._forest is None
            or self._iters_since_rsmt >= self.options.rsmt_period
        ):
            self._full_rebuild(cell_x, cell_y, iteration)
        elif self.options.rsmt_dirty_threshold is not None:
            self._dirty_rebuild(cell_x, cell_y, iteration)
        else:
            self.n_rsmt_reuses += 1
            # reprolint: allow[checkpoint-completeness] per-call transient flag, overwritten by every forest_for() call
            self._last_forest_reused = True
        self._iters_since_rsmt += 1
        return self._forest

    def _routable_net_ids(self) -> np.ndarray:
        if self._routable_ids is None:
            # reprolint: allow[checkpoint-completeness] derived cache, lazily recomputed from the immutable design after resume
            self._routable_ids = np.array(
                _routable_nets(
                    self.design, range(self.design.n_nets), False
                ),
                dtype=np.int64,
            )
        return self._routable_ids

    def _full_rebuild(
        self, cell_x: np.ndarray, cell_y: np.ndarray, iteration: int
    ) -> None:
        heartbeat = current_heartbeat()
        if heartbeat is not None:
            # A full forest rebuild is the longest single stage inside an
            # iteration; stamping it lets `status` distinguish "hung in
            # rsmt_rebuild" from a stalled gradient step.  The placer
            # loop restores phase="place" on its next beat.
            heartbeat.update(phase="rsmt_rebuild", iteration=iteration)
        px, py = self.design.pin_positions(cell_x, cell_y)
        # reprolint: allow[checkpoint-completeness] rebuilt by set_state from the stored built_pin_coords
        self._forest = build_forest_from_pins(self.design, px, py)
        self._forest_coords = (cell_x.copy(), cell_y.copy())
        # reprolint: allow[checkpoint-completeness] persisted jointly as the built_pin_coords state entry
        self._built_px = px
        # reprolint: allow[checkpoint-completeness] persisted jointly as the built_pin_coords state entry
        self._built_py = py
        self._iters_since_rsmt = 0
        self.n_rsmt_calls += 1
        self._last_forest_reused = False
        recorder = current_recorder()
        if recorder is not None:
            recorder.counter(
                "rsmt_rebuilds", self.n_rsmt_calls, iteration=iteration
            )
        if self.options.rsmt_dirty_threshold is not None:
            self.n_rebuilt_nets += len(self._routable_net_ids())
            if recorder is not None:
                recorder.counter(
                    "rsmt_rebuilt_nets",
                    self.n_rebuilt_nets,
                    iteration=iteration,
                )

    def _dirty_rebuild(
        self, cell_x: np.ndarray, cell_y: np.ndarray, iteration: int
    ) -> None:
        """Re-route nets whose pins drifted past the dirty threshold."""
        design = self.design
        opts = self.options
        px, py = design.pin_positions(cell_x, cell_y)
        disp = np.abs(px - self._built_px) + np.abs(py - self._built_py)
        # Max pin displacement per net over the CSR slices.  reduceat on
        # an empty slice would read a neighbouring element; degree-0 nets
        # are masked afterwards (and can only make the start index go out
        # of range at the tail, hence the clip).
        starts = design.net2pin_start[:-1]
        gathered = disp[design.net2pin]
        safe_starts = np.minimum(starts, max(len(gathered) - 1, 0))
        net_disp = np.maximum.reduceat(gathered, safe_starts)
        net_disp[design.net_degrees == 0] = 0.0
        ids = self._routable_net_ids()
        dirty = ids[net_disp[ids] > opts.rsmt_dirty_threshold]
        if len(dirty) == 0:
            self.n_rsmt_reuses += 1
            self._last_forest_reused = True
            return
        self.n_dirty_nets += len(dirty)
        if len(dirty) > opts.rsmt_dirty_full_frac * len(ids):
            # Splicing would rebuild most of the forest anyway; a full
            # rebuild batches better and restarts the period counter
            # (forest_for's increment lands it at 1, as after a periodic
            # rebuild).
            self._full_rebuild(cell_x, cell_y, iteration)
            self._iters_since_rsmt = 0
        else:
            heartbeat = current_heartbeat()
            if heartbeat is not None:
                heartbeat.update(phase="rsmt_rebuild", iteration=iteration)
            trees = build_trees_for_nets(design, px, py, dirty.tolist())
            self._forest = self._forest.splice(trees)
            pins = np.concatenate([design.net_pins(ni) for ni in dirty])
            self._built_px[pins] = px[pins]
            self._built_py[pins] = py[pins]
            self.n_rebuilt_nets += len(trees)
            self._last_forest_reused = False
        recorder = current_recorder()
        if recorder is not None:
            recorder.counter(
                "rsmt_dirty_nets", self.n_dirty_nets, iteration=iteration
            )
            recorder.counter(
                "rsmt_rebuilt_nets", self.n_rebuilt_nets, iteration=iteration
            )

    def weights_at(self, iteration: int) -> Tuple[float, float]:
        """Ramped (t1, t2) for the given placer iteration.

        The ramp freezes once the placer reports a density overflow below
        ``ramp_freeze_overflow`` (tracked via :meth:`observe_overflow`), so
        that the growing timing force does not fight the final spreading.
        """
        k = max(iteration - self.options.start_iteration, 0)
        if self._frozen_k is not None:
            k = min(k, self._frozen_k)
        ramp = self.options.ramp**k
        return self.options.t1 * ramp, self.options.t2 * ramp

    def observe_overflow(self, iteration: int, overflow: float) -> None:
        """Placer feedback used to freeze the t1/t2 ramp near convergence."""
        threshold = self.options.ramp_freeze_overflow
        if (
            threshold is not None
            and self._frozen_k is None
            and overflow < threshold
        ):
            self._frozen_k = max(iteration - self.options.start_iteration, 0)

    # ------------------------------------------------------------------
    # Checkpoint support (registered as a placer state provider so that
    # resuming a timing-driven run replays the exact same RSMT/norm-cache
    # schedule - required for bit-identical trajectories).
    # ------------------------------------------------------------------
    def get_state(self) -> Dict[str, object]:
        fc = self._forest_coords
        bp = self._built_px
        return {
            "forest_coords": None if fc is None else (fc[0].copy(), fc[1].copy()),
            # Authoritative with dirty-net splicing: the per-pin build-time
            # coordinates reconstruct the mixed-age forest exactly.
            "built_pin_coords": None
            if bp is None
            else (bp.copy(), self._built_py.copy()),
            "iters_since_rsmt": self._iters_since_rsmt,
            "frozen_k": self._frozen_k,
            "norm_cache": self._norm_cache,
            "iters_since_norms": self._iters_since_norms,
            "n_rsmt_calls": self.n_rsmt_calls,
            "n_rsmt_reuses": self.n_rsmt_reuses,
            "n_timer_calls": self.n_timer_calls,
            "n_backward_calls": self.n_backward_calls,
            "n_dirty_nets": self.n_dirty_nets,
            "n_rebuilt_nets": self.n_rebuilt_nets,
        }

    def set_state(self, state: Dict[str, object]) -> None:
        bp = state.get("built_pin_coords")
        fc = state.get("forest_coords")
        if bp is not None:
            # Each tree is a pure function of its own pins' coordinates at
            # build time, so routing from the per-pin snapshot reproduces
            # the checkpointed forest (including mid-period splices).
            px, py = bp
            self._forest = build_forest_from_pins(self.design, px, py)
            self._built_px = px.copy()
            self._built_py = py.copy()
            self._forest_coords = (
                None if fc is None else (fc[0].copy(), fc[1].copy())
            )
        elif fc is not None:
            fx, fy = fc
            # Legacy checkpoints: build_forest is deterministic in its
            # inputs, so rebuilding from the stored cell coordinates
            # reproduces the checkpointed forest without pickling topology.
            self._forest = build_forest(self.design, fx, fy)
            self._forest_coords = (fx.copy(), fy.copy())
            self._built_px, self._built_py = self.design.pin_positions(fx, fy)
        else:
            self._forest = None
            self._forest_coords = None
            self._built_px = None
            self._built_py = None
        self._iters_since_rsmt = int(state.get("iters_since_rsmt", 0))
        self._frozen_k = state.get("frozen_k")
        nc = state.get("norm_cache")
        self._norm_cache = None if nc is None else (float(nc[0]), float(nc[1]))
        self._iters_since_norms = int(state.get("iters_since_norms", 0))
        self.n_rsmt_calls = int(state.get("n_rsmt_calls", 0))
        self.n_rsmt_reuses = int(state.get("n_rsmt_reuses", 0))
        self.n_timer_calls = int(state.get("n_timer_calls", 0))
        self.n_backward_calls = int(state.get("n_backward_calls", 0))
        self.n_dirty_nets = int(state.get("n_dirty_nets", 0))
        self.n_rebuilt_nets = int(state.get("n_rebuilt_nets", 0))

    # ------------------------------------------------------------------
    def __call__(
        self,
        iteration: int,
        cell_x: np.ndarray,
        cell_y: np.ndarray,
        wl_grad_l1: Optional[float] = None,
    ) -> Optional[Tuple[np.ndarray, np.ndarray, Dict[str, float]]]:
        """Placer hook: gradient of the timing term, or None before start.

        When ``wl_grad_l1`` is given, each term's gradient is rescaled to
        its ramped fraction of the wirelength-gradient norm and per-cell
        spikes are clipped - the pragmatic stand-in for the timing-weight
        scheduling and gradient preconditioning the paper leaves as future
        work; without it the ramped timing term can overpower the
        wirelength objective and destabilise the Nesterov iterates.
        """
        opts = self.options
        if iteration < opts.start_iteration:
            return None
        forest = self.forest_for(cell_x, cell_y, iteration)
        tape = self.timer.forward(cell_x, cell_y, forest)
        self.n_timer_calls += 1

        k = max(iteration - opts.start_iteration, 0)
        if self._frozen_k is not None:
            k = min(k, self._frozen_k)
        ramp = opts.ramp**k
        f_tns = min(opts.tns_grad_frac * ramp, opts.grad_frac_max)
        f_wns = min(opts.wns_grad_frac * ramp, opts.grad_frac_max)

        refresh = (
            self._norm_cache is None
            or opts.norm_refresh_period <= 0
            or self._iters_since_norms >= opts.norm_refresh_period
        )
        if refresh or wl_grad_l1 is None or wl_grad_l1 <= 0:
            # Measure both term gradients and cache their norms.
            g_tns = self.timer.backward(tape, d_tns=-1.0, d_wns=0.0)
            g_wns = self.timer.backward(tape, d_tns=0.0, d_wns=-1.0)
            self.n_backward_calls += 2
            self._iters_since_norms = 0
            norm_tns = float(np.abs(g_tns[0]).sum() + np.abs(g_tns[1]).sum())
            norm_wns = float(np.abs(g_wns[0]).sum() + np.abs(g_wns[1]).sum())
            self._norm_cache = (norm_tns, norm_wns)

            def normalized(pair, frac, norm):
                gx, gy = pair
                if wl_grad_l1 is None or wl_grad_l1 <= 0 or norm <= 1e-12:
                    return gx, gy
                s = frac * wl_grad_l1 / norm
                return gx * s, gy * s

            tx, ty = normalized(g_tns, f_tns, self._norm_cache[0])
            wx, wy = normalized(g_wns, f_wns, self._norm_cache[1])
            g_x = tx + wx
            g_y = ty + wy
        else:
            # Fused single backward: fold the cached per-term scales into
            # the seeds of one combined pass (the norms drift slowly).
            norm_tns, norm_wns = self._norm_cache
            a = f_tns * wl_grad_l1 / max(norm_tns, 1e-12)
            b = f_wns * wl_grad_l1 / max(norm_wns, 1e-12)
            g_x, g_y = self.timer.backward(tape, d_tns=-a, d_wns=-b)
            self.n_backward_calls += 1
            self._iters_since_norms += 1

        # Per-cell spike clipping: cells on the most critical paths can
        # receive gradients orders of magnitude above the bulk; clamp each
        # cell's gradient magnitude to a high percentile so the optimizer
        # does not overshoot on a handful of coordinates.
        mag = np.hypot(g_x, g_y)
        nonzero = mag[mag > 0]
        if len(nonzero) > 8:
            limit = float(np.percentile(nonzero, 98.0))
            over = mag > limit
            if np.any(over):
                shrink = limit / mag[over]
                g_x[over] *= shrink
                g_y[over] *= shrink
        metrics = {
            "tns_smoothed": tape.tns,
            "wns_smoothed": tape.wns,
            "tns_frac": f_tns,
            "wns_frac": f_wns,
            "lse_saturation": tape.lse_saturation,
            "rsmt_cache_hit": 1.0 if self._last_forest_reused else 0.0,
        }
        return g_x, g_y, metrics
