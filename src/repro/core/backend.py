"""Multi-backend array shim - the single ``xp`` namespace for hot kernels.

Every per-iteration kernel (density splat/solve/gather, WA wirelength,
LSE smoothing, the scatter primitives) reaches its array library through
the module-level :data:`xp` proxy instead of importing ``numpy``
directly.  The proxy resolves attributes against the *active backend* at
call time, so the same kernel source runs on NumPy (default), CuPy, or
torch without edits - which is the point: DG-RePlAce-style GPU ports
change the backend, not the kernels.

Backend selection, in priority order:

1. an explicit :func:`set_backend` / :func:`use_backend` call
   (the harness ``--backend`` flag routes here),
2. the ``REPRO_BACKEND`` environment variable,
3. ``numpy``.

Non-NumPy backends resolve *lazily*: importing this module never imports
CuPy or torch, and a missing/broken optional backend only surfaces when
it is actually requested - as a :class:`BackendUnavailableError` carrying
the probe failure, never a bare ``ImportError`` from deep inside a
kernel.  Capability probing runs one tiny allocation + reduction on the
target device so "installed but no GPU" fails at selection time, not
mid-placement.

The NumPy backend hands out the literal ``numpy`` module, so kernels
ported to ``xp`` are bit-identical to their former ``np`` selves; the
shim's only overhead is one attribute indirection (~100 ns, invisible
next to any array op).  FFT-adjacent entry points that historically came
from ``scipy.fft`` (``dctn``/``idctn``/``rfft``/``irfft``) are methods
on the backend object, which keeps ``scipy`` out of the kernels and
gives non-NumPy backends a place to supply their own transforms.  The
``backend-shim-only`` reprolint rule enforces that the ported kernel
modules never bypass this module.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "Backend",
    "BackendUnavailableError",
    "available_backends",
    "backend_name",
    "get_backend",
    "set_backend",
    "to_numpy",
    "use_backend",
    "xp",
]

BACKEND_ENV = "REPRO_BACKEND"
BACKEND_NAMES = ("numpy", "cupy", "torch")


class BackendUnavailableError(RuntimeError):
    """Requested backend cannot be used; ``reason`` says why.

    Raised at selection time (import failure, no device, failed probe) so
    callers get one actionable message instead of a traceback from the
    middle of a kernel.
    """

    def __init__(self, name: str, reason: str) -> None:
        self.backend = name
        self.reason = reason
        super().__init__(
            f"backend {name!r} unavailable: {reason} "
            f"(available: {', '.join(sorted(available_backends()))})"
        )


class Backend:
    """One resolved array backend: a namespace plus transform hooks."""

    name: str = "?"

    def __init__(self) -> None:
        self.xp = self._resolve_namespace()
        self._probe()

    # -- hooks ---------------------------------------------------------
    def _resolve_namespace(self) -> Any:
        raise NotImplementedError

    def _probe(self) -> None:
        """Tiny end-to-end op; raises if the device cannot compute."""
        a = self.xp.arange(4)
        total = float(self.to_numpy(a.sum()))
        if total != 6.0:
            raise RuntimeError(f"probe reduction returned {total!r}")

    def to_numpy(self, array: Any) -> Any:
        """Copy/convert a backend array to a host ``numpy`` array."""
        raise NotImplementedError

    def asarray(self, array: Any, dtype: Any = None) -> Any:
        return self.xp.asarray(array, dtype=dtype)

    # -- transforms ----------------------------------------------------
    def rfft(self, a: Any, n: Optional[int] = None, axis: int = -1) -> Any:
        return self.xp.fft.rfft(a, n=n, axis=axis)

    def irfft(self, a: Any, n: Optional[int] = None, axis: int = -1) -> Any:
        return self.xp.fft.irfft(a, n=n, axis=axis)

    def dctn(self, a: Any, type: int = 2, norm: str = "ortho") -> Any:
        raise BackendUnavailableError(
            self.name, "backend does not provide dctn"
        )

    def idctn(self, a: Any, type: int = 2, norm: str = "ortho") -> Any:
        raise BackendUnavailableError(
            self.name, "backend does not provide idctn"
        )


class NumpyBackend(Backend):
    """Default backend: the literal ``numpy`` module, scipy transforms.

    The FFT entry points route to ``scipy.fft`` rather than
    ``numpy.fft``: numpy's FFT always promotes to double precision,
    while scipy transforms float32 natively in complex64 - which the
    fp32 density fast path depends on.
    """

    name = "numpy"

    def _resolve_namespace(self) -> Any:
        import numpy
        import scipy.fft

        self._sfft = scipy.fft
        return numpy

    def to_numpy(self, array: Any) -> Any:
        return self.xp.asarray(array)

    def rfft(self, a: Any, n: Optional[int] = None, axis: int = -1) -> Any:
        return self._sfft.rfft(a, n=n, axis=axis)

    def irfft(self, a: Any, n: Optional[int] = None, axis: int = -1) -> Any:
        return self._sfft.irfft(a, n=n, axis=axis)

    def dctn(self, a: Any, type: int = 2, norm: str = "ortho") -> Any:
        from scipy.fft import dctn

        return dctn(a, type=type, norm=norm)

    def idctn(self, a: Any, type: int = 2, norm: str = "ortho") -> Any:
        from scipy.fft import idctn

        return idctn(a, type=type, norm=norm)


class CupyBackend(Backend):
    """CuPy on a CUDA device; requires at least one visible GPU."""

    name = "cupy"

    def _resolve_namespace(self) -> Any:
        import cupy

        n_dev = cupy.cuda.runtime.getDeviceCount()
        if n_dev < 1:
            raise RuntimeError("no CUDA device visible")
        return cupy

    def to_numpy(self, array: Any) -> Any:
        return self.xp.asnumpy(array)

    def dctn(self, a: Any, type: int = 2, norm: str = "ortho") -> Any:
        import cupyx.scipy.fft as cufft

        return cufft.dctn(a, type=type, norm=norm)

    def idctn(self, a: Any, type: int = 2, norm: str = "ortho") -> Any:
        import cupyx.scipy.fft as cufft

        return cufft.idctn(a, type=type, norm=norm)


class _TorchNamespace:
    """numpy-flavoured facade over ``torch`` for the kernel subset.

    Only the operations the ported kernels use are aliased; anything else
    falls through to ``torch`` itself when the name matches, and raises a
    clear ``AttributeError`` naming the backend otherwise.
    """

    def __init__(self, torch_mod: Any) -> None:
        self._torch = torch_mod
        self._aliases: Dict[str, Any] = {
            "asarray": torch_mod.as_tensor,
            "concatenate": torch_mod.cat,
            "broadcast_arrays": torch_mod.broadcast_tensors,
            "ndarray": torch_mod.Tensor,
        }

    def __getattr__(self, name: str) -> Any:
        alias = self._aliases.get(name)
        if alias is not None:
            return alias
        try:
            return getattr(self._torch, name)
        except AttributeError:
            raise AttributeError(
                f"torch backend has no kernel op {name!r}; extend "
                "_TorchNamespace if the kernel genuinely needs it"
            ) from None


class TorchBackend(Backend):
    """Torch tensors (CPU or CUDA) behind a numpy-flavoured namespace."""

    name = "torch"

    def _resolve_namespace(self) -> Any:
        import torch

        return _TorchNamespace(torch)

    def to_numpy(self, array: Any) -> Any:
        return array.detach().cpu().numpy()


_FACTORIES: Dict[str, Callable[[], Backend]] = {
    "numpy": NumpyBackend,
    "cupy": CupyBackend,
    "torch": TorchBackend,
}

# RLock: composing a BackendUnavailableError lists the available
# backends, which re-enters _instantiate from inside the locked region.
_lock = threading.RLock()
_instances: Dict[str, Backend] = {}
_active: Optional[str] = None  # explicit selection; None -> env/default


def _instantiate(name: str) -> Backend:
    """Resolve (and cache) a backend instance, or explain why not."""
    if name not in _FACTORIES:
        raise BackendUnavailableError(
            name, f"unknown backend (choose from {', '.join(BACKEND_NAMES)})"
        )
    with _lock:
        backend = _instances.get(name)
        if backend is None:
            try:
                backend = _FACTORIES[name]()
            except BackendUnavailableError:
                raise
            except Exception as exc:  # import/probe failure -> clean error
                raise BackendUnavailableError(
                    name, f"{type(exc).__name__}: {exc}"
                ) from exc
            _instances[name] = backend
        return backend


def get_backend() -> Backend:
    """The active backend (explicit > ``REPRO_BACKEND`` > numpy)."""
    name = _active or os.environ.get(BACKEND_ENV, "").strip() or "numpy"
    return _instantiate(name)


def backend_name() -> str:
    """Name of the backend :func:`get_backend` resolves to right now."""
    return _active or os.environ.get(BACKEND_ENV, "").strip() or "numpy"


def set_backend(name: str) -> Backend:
    """Select a backend process-wide; probes it immediately."""
    global _active
    backend = _instantiate(name)
    _active = name
    return backend


class use_backend:
    """Context manager scoping a backend selection (tests, harness)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._previous: Optional[str] = None

    def __enter__(self) -> Backend:
        global _active
        self._previous = _active
        backend = set_backend(self.name)
        return backend

    def __exit__(self, *exc: Any) -> None:
        global _active
        _active = self._previous


_enumerating = threading.local()


def available_backends() -> List[str]:
    """Names of backends that resolve and pass their probe, right now."""
    # Composing a BackendUnavailableError message calls back in here;
    # re-probing the backend that just failed would recurse forever, so
    # nested calls only report what is already instantiated.
    if getattr(_enumerating, "active", False):
        return sorted(_instances)
    _enumerating.active = True
    try:
        out = []
        for name in BACKEND_NAMES:
            try:
                _instantiate(name)
            except BackendUnavailableError:
                continue
            out.append(name)
        return out
    finally:
        _enumerating.active = False


def to_numpy(array: Any) -> Any:
    """Convert an active-backend array to a host numpy array."""
    return get_backend().to_numpy(array)


class _XpProxy:
    """Module-level ``xp``: attribute access forwards to the active backend.

    Kernels write ``xp.exp(...)`` exactly as they wrote ``np.exp(...)``;
    the indirection costs one dict lookup plus one getattr, which is
    noise next to any real array operation.
    """

    __slots__ = ()

    def __getattr__(self, name: str) -> Any:
        return getattr(get_backend().xp, name)

    def __repr__(self) -> str:  # pragma: no cover - debug nicety
        return f"<xp proxy -> {backend_name()}>"


xp = _XpProxy()
