"""Planned DCT transforms for the spectral Poisson solve.

``scipy.fft.dctn`` re-derives its factorization on every call and pays a
pre/post-processing pass per axis.  The density model calls the solver
once per placer iteration on a fixed grid, so everything that depends
only on the grid size is computed exactly once here: twiddle tables,
slice-based permutations, and reusable scratch buffers.  Per iteration
the transforms are pure ``rfft``/``irfft`` calls plus a handful of fused
elementwise passes.

The factorization is Makhoul's: for the even-odd permutation
``v = [x[0], x[2], ..., x[3], x[1]]`` and ``Z = T2 * rfft(v)`` with the
twiddle ``T2[k] = 2 f(k) exp(-i pi k / 2N)`` (``f`` the ortho
normalisation), the type-II DCT is

    X[k]     = Re(Z[k])          for k <= N//2,
    X[N - j] = -Im(Z[j])         for j = 1 .. N - N//2 - 1,

so the Hermitian tail needs no index gather at all - just a reversed
slice of ``Z.imag``.  The permutation itself is two strided slice
copies.  The inverse (type-III) reconstructs the half spectrum via the
conjugate-symmetry identity ``Im(W[k] V[k]) = -Re(W[N-k] V[N-k])``
(tables ``uc``/``vc`` below) and runs one ``irfft``.

The derivative transform - the sine series the spectral E-field needs -
uses the identity

    sum_{k>=1} b[k] sin(pi k (2n+1) / 2N)
        = (-1)^n * sum_j b[N-j] cos(pi j (2n+1) / 2N),

i.e. a reversed coefficient slice, the *same* planned inverse DCT, and
an alternating sign; the frequency scale ``pi*k/N`` is folded into the
flip table (callers apply the ``1/h`` bin-pitch scalar).

All kernels transform the LAST axis only; 2-D composition transposes
explicitly (a contiguous transpose copy is far cheaper than strided
axis-0 FFT work) and batches the two field components into single
stacked passes.  Plans are not thread-safe: scratch buffers are reused
across calls, and outputs of the grid-level methods are views into them
unless noted.  Tables live in the plan dtype (float64 or float32), so
the fp32 fast path runs complex64 FFTs end to end.  Accuracy against
``scipy.fft`` is pinned in ``tests/test_fftplan.py`` across even and
odd sizes.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from .backend import get_backend, xp

__all__ = ["Dct2Plan", "SpectralGridPlan"]


class Dct2Plan:
    """Planned last-axis ortho DCT-II/III (+ derivative inverse).

    One instance serves every batch size of transform length ``n`` in a
    given ``dtype``; rows are independent transforms.
    """

    def __init__(self, n: int, dtype: Any = None) -> None:
        if n < 2:
            raise ValueError(f"Dct2Plan needs n >= 2, got {n}")
        self._be = get_backend()
        dtype = xp.dtype(dtype or xp.float64)
        cdtype = (
            xp.complex64 if dtype == xp.dtype(xp.float32) else xp.complex128
        )
        self.n = n
        self.m = n // 2 + 1
        self.n_even = n - n // 2  # leading even-index block of the perm
        self.dtype = dtype
        self.cdtype = cdtype
        k = xp.arange(n)
        f = xp.full(n, xp.sqrt(1.0 / (2.0 * n)))
        f[0] = xp.sqrt(1.0 / (4.0 * n))
        m = self.m
        kk = xp.arange(m)
        # Forward twiddle: Z = tw * rfft(v); head = Re(Z), tail = -Im(Z)
        # reversed (see module docstring).
        self.tw = (
            2.0 * f[:m] * xp.exp(-1j * xp.pi * kk / (2.0 * n))
        ).astype(cdtype)
        # Inverse tables: spec[k] = uc[k]*X[k] + vc[k]*X[n-k] (vc[0]=0).
        e = xp.exp(1j * xp.pi * kk / (2.0 * n))
        u = e / (2.0 * f[:m])
        w = xp.zeros(m, dtype=xp.complex128)
        if m > 1:
            w[1:] = e[1:] / (2.0 * f[n - kk[1:]])
        self.uc = u.astype(cdtype)
        self.vc = (-1j * w).astype(cdtype)
        # Derivative inverse: flipped-frequency scale (h-free) and
        # (-1)^n output sign.
        dscale = xp.zeros(n)
        dscale[1:] = xp.pi * (n - k[1:].astype(xp.float64)) / float(n)
        self.deriv_scale = dscale.astype(dtype)
        self.alt_sign = xp.where(k % 2 == 0, 1.0, -1.0).astype(dtype)
        self._scratch: Dict[Tuple[str, int], Any] = {}

    def _buf(
        self,
        role: str,
        rows: int,
        complex_: bool = False,
        cols: Optional[int] = None,
    ) -> Any:
        key = (role, rows)
        buf = self._scratch.get(key)
        if buf is None:
            if cols is None:
                cols = self.m if complex_ else self.n
            dt = self.cdtype if complex_ else self.dtype
            buf = xp.empty((rows, cols), dtype=dt)
            self._scratch[key] = buf
        return buf

    # ------------------------------------------------------------------
    def forward(self, a: Any) -> Any:
        """Ortho DCT-II of each row.  Returns a reused scratch view."""
        n, m, nod = self.n, self.m, self.n_even
        rows = a.shape[0]
        v = self._buf("fwd_v", rows)
        v[:, :nod] = a[:, ::2]
        v[:, nod:] = a[:, 1::2][:, ::-1]
        spec = self._be.rfft(v, axis=-1)
        xp.multiply(spec, self.tw, out=spec)
        out = self._buf("fwd_out", rows)
        out[:, :m] = spec.real
        if m < n:
            xp.negative(spec.imag[:, n - m : 0 : -1], out=out[:, m:])
        return out

    def inverse(self, coeff: Any) -> Any:
        """Ortho DCT-III of each row.  Returns a reused scratch view."""
        n, m, nod = self.n, self.m, self.n_even
        rows = coeff.shape[0]
        spec = self._buf("inv_spec", rows, complex_=True)
        head = coeff[:, :m]
        # Complex table arithmetic into preallocated buffers beats
        # assembling through strided ``.real``/``.imag`` views by ~1.5x.
        xp.multiply(self.uc, head, out=spec)
        if m > 1:
            # Flipped tail X[n-j], j = 1..m-1: a reversed slice.
            fl = coeff[:, : n - m : -1]
            tail = self._buf("inv_tail", rows, complex_=True, cols=m - 1)
            xp.multiply(self.vc[1:], fl, out=tail)
            spec[:, 1:] += tail
        v = self._be.irfft(spec, n=n, axis=-1)
        out = self._buf("inv_out", rows)
        out[:, ::2] = v[:, :nod]
        out[:, 1::2] = v[:, nod:][:, ::-1]
        return out

    def inverse_deriv(self, coeff: Any) -> Any:
        """Sine-series inverse: ``-d/ds`` of the cosine interpolant.

        Given ortho DCT-II coefficients of ``phi``, returns the field
        ``-d(phi)/ds`` at unit bin pitch (callers scale by ``1/h``);
        differentiating ``sum c_u cos(a_u s)`` pulls out ``-a_u sin``,
        so the positive sine series computed here *is* the field.
        Returns a reused scratch view (shared with :meth:`inverse`).
        """
        rows = coeff.shape[0]
        flip = self._buf("drv_flip", rows)
        flip[:, 0] = 0.0
        # Y[j] = scale[j] * X[n-j]: again a reversed slice, no gather.
        xp.multiply(self.deriv_scale[1:], coeff[:, :0:-1], out=flip[:, 1:])
        out = self.inverse(flip)
        out *= self.alt_sign
        return out


class SpectralGridPlan:
    """Planned square-grid pipeline: forward solve + spectral E-field.

    Composes the last-axis :class:`Dct2Plan` over both axes of an
    ``n x n`` grid with explicit contiguous transposes, batching the two
    field components into single stacked inverse passes (one ``irfft``
    launch instead of two, per stage).  Not thread-safe (shared scratch;
    see :class:`Dct2Plan`).
    """

    def __init__(self, n: int, dtype: Any = None) -> None:
        self.n = n
        self.plan = Dct2Plan(n, dtype=dtype)
        self.dtype = self.plan.dtype
        self._t: Dict[str, Any] = {}

    def _grid(self, role: str, rows: Optional[int] = None) -> Any:
        buf = self._t.get(role)
        if buf is None:
            buf = xp.empty((rows or self.n, self.n), dtype=self.dtype)
            self._t[role] = buf
        return buf

    # -- reference-layout transforms (tests, potential) ----------------
    def dct2(self, a: Any) -> Any:
        """2-D ortho DCT-II (matches ``scipy.fft.dctn(type=2)``)."""
        t = self.plan.forward(xp.ascontiguousarray(a, dtype=self.dtype))
        tT = self._grid("t1")
        xp.copyto(tT, t.T)
        return self.plan.forward(tT).T.copy()

    def idct2(self, coeff: Any) -> Any:
        """2-D ortho DCT-III (matches ``scipy.fft.idctn(type=2)``)."""
        cT = self._grid("t1")
        xp.copyto(cT, xp.asarray(coeff, dtype=self.dtype).T)
        u = self.plan.inverse(cT)  # [ky, x]
        uT = self._grid("t2")
        xp.copyto(uT, u.T)  # [x, ky]
        return self.plan.inverse(uT).copy()

    # -- the density hot path ------------------------------------------
    def poisson_field(
        self, rho: Any, inv_denom_t: Any, want_potential: bool = False
    ):
        """Solve ``lap(phi) = -source`` and differentiate spectrally.

        ``inv_denom_t`` is the *transposed* reciprocal eigen-denominator
        with any source scaling folded in (zero at DC, so the mean
        projection costs nothing).  Returns
        ``(coeff_t, pot_t, ex_t, ey, phi)``:

        - ``coeff_t``/``pot_t``: transposed-layout DCT coefficients of
          the raw ``rho`` and of the potential (their elementwise
          product sums to the Parseval energy - layout-free),
        - ``ex_t``: x-field at unit pitch in ``[y, x]`` layout,
        - ``ey``: y-field at unit pitch in ``[x, y]`` layout,
        - ``phi``: the potential grid (fresh array) or ``None``.

        Fields are views into plan scratch: consume before the next
        call.
        """
        n = self.n
        p = self.plan
        t = p.forward(xp.ascontiguousarray(rho, dtype=self.dtype))
        tT = self._grid("t1")
        xp.copyto(tT, t.T)
        coeff_t = self._grid("coeff")
        coeff_t[:] = p.forward(tT)  # [ky, kx]
        pot_t = self._grid("pot")
        xp.multiply(coeff_t, inv_denom_t, out=pot_t)
        # Batched inverse: rows 0:n = idct over ky of P [kx, ky] -> B,
        # rows n:2n = idct over kx of P_T [ky, kx] -> C_T.
        stack = self._grid("s1", 2 * n)
        xp.copyto(stack[:n], pot_t.T)
        stack[n:] = pot_t
        u = p.inverse(stack)  # [B [kx, y]; C_T [ky, x]]
        # Batched derivative inverse: rows 0:n = idxst over kx of B_T
        # -> Ex_T [y, x], rows n:2n = idxst over ky of C -> Ey [x, y].
        stack2 = self._grid("s2", 2 * n)
        xp.copyto(stack2[:n], u[:n].T)  # B_T [y, kx]
        xp.copyto(stack2[n:], u[n:].T)  # C   [x, ky]
        phi = None
        if want_potential:
            phi = p.inverse(stack2[n:]).copy()  # idct over ky of C
        w = p.inverse_deriv(stack2)
        return coeff_t, pot_t, w[:n], w[n:], phi
