"""The differentiable-timing-driven placement flow (Figure 7 of the paper).

Wires the :class:`~repro.core.objective.TimingObjective` into the shared
:class:`~repro.place.placer.GlobalPlacer`: wirelength + density gradients
every iteration, plus - from ``start_iteration`` on - the gradients of the
smoothed TNS/WNS terms, with Steiner trees refreshed every
``rsmt_period`` iterations and reused (Figure 4) in between.  Periodic
golden-STA evaluations are recorded into the trace for the Figure-8 style
optimization curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..netlist.design import Design
from ..place.placer import GlobalPlacer, PlacerOptions, PlacerResult
from ..sta.analysis import StaticTimingAnalyzer
from ..sta.graph import TimingGraph
from .objective import TimingObjective, TimingObjectiveOptions

__all__ = ["TimingDrivenPlacer", "TimingPlacerOptions"]


@dataclass
class TimingPlacerOptions:
    """Options of the full timing-driven flow."""

    placer: PlacerOptions = field(default_factory=PlacerOptions)
    timing: TimingObjectiveOptions = field(default_factory=TimingObjectiveOptions)
    sta_every: int = 10  # golden STA into the trace every N iterations
    sta_in_trace: bool = True


class TimingDrivenPlacer:
    """Our placer: DREAMPlace substrate + differentiable timing objective."""

    def __init__(
        self,
        design: Design,
        options: Optional[TimingPlacerOptions] = None,
        graph: Optional[TimingGraph] = None,
    ) -> None:
        self.design = design
        self.options = options if options is not None else TimingPlacerOptions()
        self.graph = graph if graph is not None else TimingGraph(design)
        self.objective = TimingObjective(design, self.options.timing, self.graph)
        self.sta = StaticTimingAnalyzer(design, self.graph)

    def run(self) -> PlacerResult:
        """Run global placement with the differentiable timing objective."""
        opts = self.options
        placer_box = {}

        def hook(iteration: int, x: np.ndarray, y: np.ndarray):
            placer = placer_box.get("placer")
            wl_norm = placer.last_wl_grad_l1 if placer is not None else None
            if placer is not None:
                self.objective.observe_overflow(iteration, placer.last_overflow)
            out = self.objective(iteration, x, y, wl_grad_l1=wl_norm)
            metrics: Dict[str, float] = {} if out is None else dict(out[2])
            if (
                opts.sta_in_trace
                and iteration % opts.sta_every == 0
            ):
                res = self.sta.run(x, y)
                metrics["wns"] = res.wns_setup
                metrics["tns"] = res.tns_setup
            if out is None:
                if metrics:
                    zeros = np.zeros(self.design.n_cells)
                    return zeros, zeros, metrics
                return None
            return out[0], out[1], metrics

        placer = GlobalPlacer(
            self.design,
            opts.placer,
            extra_grad_fn=hook,
            # The objective's RSMT/norm-cache schedule rides along in
            # checkpoints so resumed runs replay bit-identically.
            state_providers={"timing_objective": self.objective},
            # The graph levelized at construction, which proves acyclicity;
            # --validate reuses it instead of levelizing twice.
            validation_graph=self.graph,
        )
        placer_box["placer"] = placer
        return placer.run()
