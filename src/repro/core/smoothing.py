"""Log-Sum-Exp smoothing of the non-smooth STA reductions (Section 3.2).

STA merges fan-in arrival times with ``max``/``min``; a direct gradient
would flow through only the single most critical path, causing oscillation.
Following Equation (5) of the paper, ``max`` is replaced by

    LSE_gamma(x_1..x_n) = gamma * log(sum_i exp(x_i / gamma))

and ``min(x) = -LSE_gamma(-x)``.  All kernels here are computed in shifted
(overflow-safe) form, and segment variants merge grouped candidates via
scatter operations, which is how the levelised timers consume them.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..contracts import differentiable
from .scatter import scatter_add

__all__ = [
    "lse_max",
    "lse_min",
    "lse_max_grad",
    "soft_clamp_neg",
    "soft_clamp_neg_grad",
    "segment_lse_max",
    "segment_lse_weights",
]

_SENTINEL = -1e30


@differentiable(
    backward="repro.core.smoothing.lse_max_grad",
    gradcheck="tests/test_smoothing.py::TestLseGrad::test_matches_finite_difference",
)
def lse_max(values: np.ndarray, gamma: float, axis=None):
    """Smoothed maximum ``gamma * log(sum(exp(x / gamma)))`` (shifted)."""
    values = np.asarray(values, dtype=np.float64)
    m = np.max(values, axis=axis, keepdims=True)
    out = m + gamma * np.log(
        np.sum(np.exp((values - m) / gamma), axis=axis, keepdims=True)
    )
    return np.squeeze(out, axis=axis) if axis is not None else float(out.reshape(()))


def lse_min(values: np.ndarray, gamma: float, axis=None):
    """Smoothed minimum: ``-LSE_gamma(-x)`` (the paper's min transform)."""
    neg = lse_max(-np.asarray(values, dtype=np.float64), gamma, axis=axis)
    return -neg


def lse_max_grad(values: np.ndarray, gamma: float, axis=None) -> np.ndarray:
    """Gradient of :func:`lse_max` - the softmax weights of the inputs."""
    values = np.asarray(values, dtype=np.float64)
    m = np.max(values, axis=axis, keepdims=True)
    e = np.exp((values - m) / gamma)
    return e / np.sum(e, axis=axis, keepdims=True)


@differentiable(
    backward="repro.core.smoothing.soft_clamp_neg_grad",
    gradcheck="tests/test_smoothing.py::TestSoftClampNeg::test_grad_matches_fd",
)
def soft_clamp_neg(slack: np.ndarray, gamma: float) -> np.ndarray:
    """Smoothed ``min(0, slack)`` = ``-gamma * softplus(-slack / gamma)``.

    This is the per-endpoint term of the smoothed TNS of Equation (2):
    for very negative slack it approaches ``slack``; for very positive
    slack it approaches 0.
    """
    z = -np.asarray(slack, dtype=np.float64) / gamma
    # softplus(z) = log(1 + exp(z)), computed stably.
    softplus = np.where(z > 30, z, np.log1p(np.exp(np.minimum(z, 30))))
    return -gamma * softplus


def soft_clamp_neg_grad(slack: np.ndarray, gamma: float) -> np.ndarray:
    """Derivative of :func:`soft_clamp_neg` w.r.t. slack: sigmoid(-s/gamma)."""
    z = -np.asarray(slack, dtype=np.float64) / gamma
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def segment_lse_max(
    candidates: np.ndarray,
    segment_ids: np.ndarray,
    n_segments: int,
    gamma: float,
    empty_value: float = _SENTINEL,
) -> np.ndarray:
    """Grouped smoothed maximum via scatter-max + scatter-add.

    ``candidates[i]`` belongs to group ``segment_ids[i]``; groups with no
    candidates return ``empty_value``.  Implemented in shifted form so huge
    negative sentinels contribute zero weight rather than NaNs.
    """
    m = np.full(n_segments, _SENTINEL)
    np.maximum.at(m, segment_ids, candidates)
    shifted = np.exp(
        np.maximum((candidates - m[segment_ids]) / gamma, -700.0)
    )
    s = scatter_add(segment_ids, shifted, n_segments)
    out = np.full(n_segments, empty_value)
    nonempty = s > 0
    out[nonempty] = m[nonempty] + gamma * np.log(s[nonempty])
    return out


def segment_lse_weights(
    candidates: np.ndarray,
    segment_ids: np.ndarray,
    smoothed: np.ndarray,
    gamma: float,
) -> np.ndarray:
    """Softmax weight of each candidate given the group's smoothed max.

    Uses the identity ``w_i = exp((x_i - LSE) / gamma)``, which already
    embeds the normalisation, so no second reduction is needed.
    """
    return np.exp(
        np.maximum((candidates - smoothed[segment_ids]) / gamma, -700.0)
    )
