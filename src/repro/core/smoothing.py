"""Log-Sum-Exp smoothing of the non-smooth STA reductions (Section 3.2).

STA merges fan-in arrival times with ``max``/``min``; a direct gradient
would flow through only the single most critical path, causing oscillation.
Following Equation (5) of the paper, ``max`` is replaced by

    LSE_gamma(x_1..x_n) = gamma * log(sum_i exp(x_i / gamma))

and ``min(x) = -LSE_gamma(-x)``.  All kernels here are computed in shifted
(overflow-safe) form, and segment variants merge grouped candidates via
scatter operations, which is how the levelised timers consume them.
"""

from __future__ import annotations

from typing import Tuple


from ..contracts import differentiable
from .backend import xp
from .scatter import scatter_add

__all__ = [
    "lse_max",
    "lse_min",
    "lse_max_grad",
    "soft_clamp_neg",
    "soft_clamp_neg_grad",
    "segment_lse_max",
    "segment_lse_weights",
]

_SENTINEL = -1e30


@differentiable(
    backward="repro.core.smoothing.lse_max_grad",
    gradcheck="tests/test_smoothing.py::TestLseGrad::test_matches_finite_difference",
)
def lse_max(values: xp.ndarray, gamma: float, axis=None):
    """Smoothed maximum ``gamma * log(sum(exp(x / gamma)))`` (shifted)."""
    values = xp.asarray(values, dtype=xp.float64)
    m = xp.max(values, axis=axis, keepdims=True)
    out = m + gamma * xp.log(
        xp.sum(xp.exp((values - m) / gamma), axis=axis, keepdims=True)
    )
    return xp.squeeze(out, axis=axis) if axis is not None else float(out.reshape(()))


def lse_min(values: xp.ndarray, gamma: float, axis=None):
    """Smoothed minimum: ``-LSE_gamma(-x)`` (the paper's min transform)."""
    neg = lse_max(-xp.asarray(values, dtype=xp.float64), gamma, axis=axis)
    return -neg


def lse_max_grad(values: xp.ndarray, gamma: float, axis=None) -> xp.ndarray:
    """Gradient of :func:`lse_max` - the softmax weights of the inputs."""
    values = xp.asarray(values, dtype=xp.float64)
    m = xp.max(values, axis=axis, keepdims=True)
    e = xp.exp((values - m) / gamma)
    return e / xp.sum(e, axis=axis, keepdims=True)


@differentiable(
    backward="repro.core.smoothing.soft_clamp_neg_grad",
    gradcheck="tests/test_smoothing.py::TestSoftClampNeg::test_grad_matches_fd",
)
def soft_clamp_neg(slack: xp.ndarray, gamma: float) -> xp.ndarray:
    """Smoothed ``min(0, slack)`` = ``-gamma * softplus(-slack / gamma)``.

    This is the per-endpoint term of the smoothed TNS of Equation (2):
    for very negative slack it approaches ``slack``; for very positive
    slack it approaches 0.
    """
    z = -xp.asarray(slack, dtype=xp.float64) / gamma
    # softplus(z) = log(1 + exp(z)), computed stably.
    softplus = xp.where(z > 30, z, xp.log1p(xp.exp(xp.minimum(z, 30))))
    return -gamma * softplus


def soft_clamp_neg_grad(slack: xp.ndarray, gamma: float) -> xp.ndarray:
    """Derivative of :func:`soft_clamp_neg` w.r.t. slack: sigmoid(-s/gamma)."""
    z = -xp.asarray(slack, dtype=xp.float64) / gamma
    out = xp.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + xp.exp(-z[pos]))
    ez = xp.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def segment_lse_max(
    candidates: xp.ndarray,
    segment_ids: xp.ndarray,
    n_segments: int,
    gamma: float,
    empty_value: float = _SENTINEL,
) -> xp.ndarray:
    """Grouped smoothed maximum via scatter-max + scatter-add.

    ``candidates[i]`` belongs to group ``segment_ids[i]``; groups with no
    candidates return ``empty_value``.  Implemented in shifted form so huge
    negative sentinels contribute zero weight rather than NaNs.
    """
    m = xp.full(n_segments, _SENTINEL, dtype=xp.float64)
    xp.maximum.at(m, segment_ids, candidates)
    shifted = xp.exp(
        xp.maximum((candidates - m[segment_ids]) / gamma, -700.0)
    )
    s = scatter_add(segment_ids, shifted, n_segments)
    out = xp.full(n_segments, empty_value, dtype=xp.float64)
    nonempty = s > 0
    out[nonempty] = m[nonempty] + gamma * xp.log(s[nonempty])
    return out


def segment_lse_weights(
    candidates: xp.ndarray,
    segment_ids: xp.ndarray,
    smoothed: xp.ndarray,
    gamma: float,
) -> xp.ndarray:
    """Softmax weight of each candidate given the group's smoothed max.

    Uses the identity ``w_i = exp((x_i - LSE) / gamma)``, which already
    embeds the normalisation, so no second reduction is needed.
    """
    return xp.exp(
        xp.maximum((candidates - smoothed[segment_ids]) / gamma, -700.0)
    )
