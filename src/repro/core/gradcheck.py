"""Finite-difference gradient checking utilities.

Used by the test-suite to validate every hand-derived backward pass
(Elmore, net/cell propagation, LUT interpolation, the full timer) against
central differences.  Central differences are exact for the piecewise-
multilinear functions involved as long as the probe does not cross a
non-smooth boundary (LUT cell edge, rectilinear-distance kink, hard-max
switch), so checks report both the pass-rate and the worst error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

__all__ = ["GradCheckReport", "central_difference", "check_gradient"]


@dataclass
class GradCheckReport:
    """Outcome of a gradient check over a set of probed coordinates."""

    n_checked: int
    n_failed: int
    max_abs_err: float
    max_rel_err: float

    @property
    def ok(self) -> bool:
        return self.n_failed == 0

    def __str__(self) -> str:
        return (
            f"GradCheck({self.n_checked} probes, {self.n_failed} failed, "
            f"max_abs={self.max_abs_err:.3e}, max_rel={self.max_rel_err:.3e})"
        )


def central_difference(
    fn: Callable[[np.ndarray], float],
    x: np.ndarray,
    index: int,
    eps: float = 1e-5,
) -> float:
    """Two-sided difference quotient of ``fn`` along one coordinate."""
    xp = x.copy()
    xm = x.copy()
    xp[index] += eps
    xm[index] -= eps
    return (fn(xp) - fn(xm)) / (2.0 * eps)


def check_gradient(
    fn: Callable[[np.ndarray], float],
    grad: np.ndarray,
    x: np.ndarray,
    indices: Optional[Sequence[int]] = None,
    eps: float = 1e-5,
    rtol: float = 1e-3,
    atol: float = 1e-6,
) -> GradCheckReport:
    """Compare an analytic gradient against central differences.

    ``indices`` limits the probes (finite differences are O(2 evals) each);
    by default every coordinate is probed.
    """
    if indices is None:
        indices = range(len(x))
    n_failed = 0
    max_abs = 0.0
    max_rel = 0.0
    n = 0
    for i in indices:
        n += 1
        fd = central_difference(fn, x, int(i), eps)
        err = abs(fd - grad[i])
        rel = err / (1.0 + abs(fd))
        max_abs = max(max_abs, err)
        max_rel = max(max_rel, rel)
        if err > atol + rtol * (1.0 + abs(fd)):
            n_failed += 1
    return GradCheckReport(
        n_checked=n, n_failed=n_failed, max_abs_err=max_abs, max_rel_err=max_rel
    )
