"""Differentiable cell-delay propagation - Equations (11)-(12) of the paper.

Cell arcs are characterised by NLDM lookup tables indexed by (input slew,
output load).  Fan-in arrival times and slews are merged with the smoothed
maximum of Equation (5):

    Delay_u(v) = LUT_cell(Slew(u), Load(v))
    Slew_u(v)  = LUT_transition(Slew(u), Load(v))
    AT(v)      = LSE_gamma over u of { AT(u) + Delay_u(v) }
    Slew(v)    = LSE_gamma over u of { Slew_u(v) }

The backward kernel uses the softmax identity ``w_i = exp((x_i - LSE) /
gamma)`` to recover merge weights without storing them, then chains through
the LUT-interpolation gradients of Figure 6 into source slews and net loads
(Equation (12)).  Kernels operate on one level's slice of the graph's
contribution table; per-contribution LUT values and partial derivatives are
recorded in the caller's tape arrays during the forward pass.
"""

from __future__ import annotations

import numpy as np

from ..contracts import differentiable
from ..sta.nldm import LutBank
from .scatter import scatter_accumulate, scatter_accumulate_at
from .smoothing import segment_lse_max

__all__ = [
    "SLEW_CLIP_MAX",
    "cell_forward_level",
    "cell_backward_level",
    "cell_forward_exact",
]

_SENTINEL = -1e30

#: Upper bound applied to slews before LUT queries.  Unreached fan-ins
#: carry sentinel values, so queries are clamped to the LUT's sane range;
#: where the clamp is active the slew derivative of the lookup is zero.
SLEW_CLIP_MAX = 1e6


@differentiable(
    backward="repro.core.cell_prop.cell_backward_level",
    gradcheck="tests/test_difftimer.py::TestBackwardFiniteDifference"
    "::test_gradient_matches_fd",
)
def cell_forward_level(
    sl: slice,
    src: np.ndarray,
    dst: np.ndarray,
    tin: np.ndarray,
    tout: np.ndarray,
    lut_delay: np.ndarray,
    lut_slew: np.ndarray,
    lutbank: LutBank,
    driver_load: np.ndarray,
    gamma: float,
    at: np.ndarray,
    slew: np.ndarray,
    tape_at_cand: np.ndarray,
    tape_slew_cand: np.ndarray,
    tape_dd_dslew: np.ndarray,
    tape_dd_dload: np.ndarray,
    tape_ds_dslew: np.ndarray,
    tape_ds_dload: np.ndarray,
) -> None:
    """Forward cell propagation with LSE merge for one level (in place).

    ``sl`` slices the level's contributions out of the graph tables; the
    ``tape_*`` arrays (full contribution length) receive the candidate
    values and LUT partials needed by the backward pass.
    """
    s, d = src[sl], dst[sl]
    ti, to = tin[sl], tout[sl]
    slew_raw = slew[s, ti]
    slew_in = np.clip(slew_raw, 0.0, SLEW_CLIP_MAX)
    load = driver_load[d]
    delay, dd_ds, dd_dl = lutbank.lookup_with_grad(lut_delay[sl], slew_in, load)
    out_slew, ds_ds, ds_dl = lutbank.lookup_with_grad(lut_slew[sl], slew_in, load)
    # Where the clip is active the lookup sees a constant slew, so the
    # recorded slew-derivatives must vanish (else backward disagrees with
    # finite differences of the clipped forward).
    clipped = (slew_raw < 0.0) | (slew_raw > SLEW_CLIP_MAX)
    if np.any(clipped):
        dd_ds = np.where(clipped, 0.0, dd_ds)
        ds_ds = np.where(clipped, 0.0, ds_ds)

    at_cand = at[s, ti] + delay
    tape_at_cand[sl] = at_cand
    tape_slew_cand[sl] = out_slew
    tape_dd_dslew[sl] = dd_ds
    tape_dd_dload[sl] = dd_dl
    tape_ds_dslew[sl] = ds_ds
    tape_ds_dload[sl] = ds_dl

    n_pins = at.shape[0]
    seg = d * 2 + to
    merged_at = segment_lse_max(at_cand, seg, n_pins * 2, gamma)
    merged_slew = segment_lse_max(out_slew, seg, n_pins * 2, gamma)
    touched = np.unique(seg)
    at.reshape(-1)[touched] = merged_at[touched]
    slew.reshape(-1)[touched] = merged_slew[touched]


def cell_backward_level(
    sl: slice,
    src: np.ndarray,
    dst: np.ndarray,
    tin: np.ndarray,
    tout: np.ndarray,
    gamma: float,
    at: np.ndarray,
    slew: np.ndarray,
    tape_at_cand: np.ndarray,
    tape_slew_cand: np.ndarray,
    tape_dd_dslew: np.ndarray,
    tape_dd_dload: np.ndarray,
    tape_ds_dslew: np.ndarray,
    tape_ds_dload: np.ndarray,
    g_at: np.ndarray,
    g_slew: np.ndarray,
    g_load: np.ndarray,
) -> None:
    """Backward cell propagation for one level (Equation (12), in place).

    The gradients of the level's sink pins (``g_at``/``g_slew`` at ``dst``)
    must be final before this call.  Accumulates into source-pin AT/slew
    gradients and per-pin net-load gradients.
    """
    s, d = src[sl], dst[sl]
    ti, to = tin[sl], tout[sl]
    seg_at = at[d, to]
    seg_slew = slew[d, to]

    # Softmax weights via the identity w_i = exp((x_i - LSE) / gamma).
    w_at = np.exp(np.maximum((tape_at_cand[sl] - seg_at) / gamma, -700.0))
    w_slew = np.exp(np.maximum((tape_slew_cand[sl] - seg_slew) / gamma, -700.0))

    g_cand_at = w_at * g_at[d, to]  # == g over (AT(u) + Delay_u(v))
    g_cand_slew = w_slew * g_slew[d, to]

    # AT(u) receives the merge weight directly (Eq. 12a).
    scatter_accumulate_at(g_at, s, ti, g_cand_at)
    # Slew(u) via both LUT x-derivatives (Eq. 12d).
    scatter_accumulate_at(
        g_slew,
        s,
        ti,
        g_cand_at * tape_dd_dslew[sl] + g_cand_slew * tape_ds_dslew[sl],
    )
    # Load(v) via both LUT y-derivatives (Eq. 12e).
    scatter_accumulate(
        g_load,
        d,
        g_cand_at * tape_dd_dload[sl] + g_cand_slew * tape_ds_dload[sl],
    )


def cell_forward_exact(  # reprolint: allow[backward-pair] exact hard-max sibling shared with the incremental engine; no gradient flows through it
    idx: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    tin: np.ndarray,
    tout: np.ndarray,
    lut_delay: np.ndarray,
    lut_slew: np.ndarray,
    lutbank: LutBank,
    driver_load: np.ndarray,
    at: np.ndarray,
    slew: np.ndarray,
) -> None:
    """Exact (hard-max) cell propagation over a batch of contributions.

    The non-smoothed sibling of :func:`cell_forward_level`, shared by the
    incremental engine's level sweep: ``idx`` selects any subset of the
    graph's contribution table whose sink pins all sit on one level, and
    the sinks' ``at``/``slew`` rows are recomputed from scratch with hard
    maxima (late mode).  Callers must pre-reset the sink rows to the
    ``-inf`` sentinel / zero slew before the call, since the kernel only
    scatter-maxes candidate values into them.
    """
    s, d = src[idx], dst[idx]
    ti, to = tin[idx], tout[idx]
    slew_in = np.clip(slew[s, ti], 0.0, SLEW_CLIP_MAX)
    load = driver_load[d]
    delay = lutbank.lookup(lut_delay[idx], slew_in, load)
    out_slew = lutbank.lookup(lut_slew[idx], slew_in, load)
    seg = d * 2 + to
    np.maximum.at(at.reshape(-1), seg, at[s, ti] + delay)
    np.maximum.at(slew.reshape(-1), seg, out_slew)
