"""Append-only perf-regression ledger under ``benchmarks/history/``.

Each benchmark (``bench_placer.py``, ``bench_rsmt.py``) appends one
record per invocation to ``benchmarks/history/<bench>.jsonl``:

::

    {"bench": "rsmt_forest", "git_rev": "<sha>", "ts": "<iso8601>",
     "metrics": {"speedup": 3.28, ...},
     "gates": {"speedup": "higher"}}

``gates`` names the metrics that matter for regression detection and
their good direction: ``"higher"`` (a speedup - dropping is a
regression) or ``"lower"`` (a runtime - growing is a regression).

``python -m repro.harness trend`` renders the trajectory per bench and
gates the *latest* record against the median of up to
:data:`BASELINE_WINDOW` prior records: the median absorbs isolated noisy
runs, while a real regression shifts the latest point past the ``rtol``
tolerance and exits non-zero.  The ledger is keyed by git revision so a
drift report names the commit range that introduced it.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional, Sequence

from .manifest import git_revision

__all__ = [
    "HISTORY_DIR",
    "BASELINE_WINDOW",
    "append_record",
    "load_history",
    "list_benches",
    "check_trend",
    "render_trend",
]

#: Default ledger location, relative to the repository root / cwd.
HISTORY_DIR = os.path.join("benchmarks", "history")

#: Prior records the drift gate medians over (excluding the latest).
BASELINE_WINDOW = 5


def _bench_path(history_dir: str, bench: str) -> str:
    return os.path.join(history_dir, f"{bench}.jsonl")


def append_record(
    bench: str,
    metrics: Dict[str, Any],
    gates: Optional[Dict[str, str]] = None,
    history_dir: str = HISTORY_DIR,
    git_rev: Optional[str] = None,
) -> Dict[str, Any]:
    """Append one benchmark outcome to the ledger; returns the record.

    ``gates`` maps metric name to good direction (``"higher"`` /
    ``"lower"``); ungated metrics are recorded for the trajectory but
    never fail the trend check.
    """
    for metric, direction in (gates or {}).items():
        if direction not in ("higher", "lower"):
            raise ValueError(
                f"gate for {metric!r} must be 'higher' or 'lower', "
                f"got {direction!r}"
            )
    record = {
        "bench": bench,
        "git_rev": git_rev if git_rev is not None else git_revision(),
        "ts": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "metrics": dict(metrics),
        "gates": dict(gates or {}),
    }
    os.makedirs(history_dir, exist_ok=True)
    with open(_bench_path(history_dir, bench), "a") as handle:
        handle.write(json.dumps(record) + "\n")
    return record


def load_history(
    bench: str, history_dir: str = HISTORY_DIR
) -> List[Dict[str, Any]]:
    """All ledger records of one bench, oldest first ([] when absent)."""
    path = _bench_path(history_dir, bench)
    try:
        with open(path) as handle:
            lines = handle.readlines()
    except FileNotFoundError:
        return []
    records = []
    for line in lines:
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def list_benches(history_dir: str = HISTORY_DIR) -> List[str]:
    """Bench names with a ledger file, sorted."""
    try:
        names = os.listdir(history_dir)
    except FileNotFoundError:
        return []
    return sorted(
        name[: -len(".jsonl")] for name in names if name.endswith(".jsonl")
    )


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def check_trend(
    records: Sequence[Dict[str, Any]], rtol: float = 0.1
) -> List[Dict[str, Any]]:
    """Drift findings for the latest record vs its recent baseline.

    For every gated metric present in the latest record, the baseline is
    the median of that metric over up to :data:`BASELINE_WINDOW`
    immediately-prior records.  ``"higher"``-gated metrics drift when
    the latest falls below ``baseline * (1 - rtol)``;
    ``"lower"``-gated ones when it rises above ``baseline * (1 + rtol)``.
    Fewer than 2 records -> nothing to compare, no findings.
    """
    if len(records) < 2:
        return []
    latest = records[-1]
    prior = records[-1 - BASELINE_WINDOW: -1]
    findings = []
    for metric, direction in (latest.get("gates") or {}).items():
        value = latest.get("metrics", {}).get(metric)
        baseline_values = [
            r["metrics"][metric]
            for r in prior
            if metric in r.get("metrics", {})
        ]
        if value is None or not baseline_values:
            continue
        baseline = _median([float(v) for v in baseline_values])
        value = float(value)
        if direction == "higher":
            drifted = value < baseline * (1.0 - rtol)
        else:
            drifted = value > baseline * (1.0 + rtol)
        if drifted:
            findings.append(
                {
                    "bench": latest.get("bench"),
                    "metric": metric,
                    "direction": direction,
                    "value": value,
                    "baseline": baseline,
                    "rtol": rtol,
                    "git_rev": latest.get("git_rev"),
                    "baseline_revs": [r.get("git_rev") for r in prior],
                }
            )
    return findings


def render_trend(
    records: Sequence[Dict[str, Any]], rtol: float = 0.1
) -> str:
    """Human trajectory of one bench's ledger, drift-annotated."""
    if not records:
        return "(no history)"
    bench = records[-1].get("bench", "?")
    gated = sorted(records[-1].get("gates") or {})
    metrics = gated or sorted(records[-1].get("metrics") or {})
    header = f"{'rev':<12} {'ts':<20}" + "".join(
        f" {m:>14}" for m in metrics
    )
    lines = [f"# trend: {bench}", header]
    for record in records:
        rev = str(record.get("git_rev", "?"))[:10]
        row = f"{rev:<12} {str(record.get('ts', '')):<20}"
        for metric in metrics:
            value = record.get("metrics", {}).get(metric)
            row += (
                f" {value:>14.4f}"
                if isinstance(value, (int, float))
                else f" {'-':>14}"
            )
        lines.append(row)
    findings = check_trend(records, rtol=rtol)
    for f in findings:
        sign = "below" if f["direction"] == "higher" else "above"
        lines.append(
            f"DRIFT {f['metric']}: {f['value']:.4f} is {sign} the "
            f"baseline median {f['baseline']:.4f} beyond rtol={f['rtol']} "
            f"(latest rev {str(f['git_rev'])[:10]})"
        )
    if not findings:
        lines.append(f"ok: latest within rtol={rtol} of baseline median")
    return "\n".join(lines)
