"""Unified telemetry: spans, metric streams, run manifests, toolchain.

The observability layer of the placement stack:

- :mod:`repro.perf` (sibling module) - hierarchical span profiling the
  library's ``PROFILER.stage(...)`` call sites feed;
- :mod:`repro.telemetry.events` - typed per-iteration metric events
  streamed to JSONL (:class:`MetricsRecorder`, armed per run via
  :func:`recording`/:func:`current_recorder`);
- :mod:`repro.telemetry.manifest` - run manifests (design, mode,
  options, seed, git rev, interpreter versions, outcome, span tree);
- :mod:`repro.telemetry.session` - run-directory lifecycle
  (:func:`start_run` -> :class:`RunSession`);
- :mod:`repro.telemetry.report` / :mod:`repro.telemetry.compare` - the
  ``python -m repro.harness report|compare`` toolchain (imported by the
  harness CLI; not re-exported here to keep import edges acyclic).
"""

from .events import (
    EVENT_KINDS,
    EVENTS_FILENAME,
    SCHEMA_VERSION,
    MetricsRecorder,
    current_recorder,
    iteration_series,
    kind_error_message,
    read_events,
    recording,
    suggest_kind,
)
from .manifest import (
    MANIFEST_FILENAME,
    RunManifest,
    git_revision,
    load_manifest,
    make_run_id,
    write_manifest,
)
from .session import RunSession, start_run

__all__ = [
    "EVENT_KINDS",
    "EVENTS_FILENAME",
    "SCHEMA_VERSION",
    "MetricsRecorder",
    "current_recorder",
    "iteration_series",
    "kind_error_message",
    "read_events",
    "recording",
    "suggest_kind",
    "MANIFEST_FILENAME",
    "RunManifest",
    "git_revision",
    "load_manifest",
    "make_run_id",
    "write_manifest",
    "RunSession",
    "start_run",
]
