"""Unified telemetry: spans, metric streams, run manifests, toolchain.

The observability layer of the placement stack:

- :mod:`repro.perf` (sibling module) - hierarchical span profiling the
  library's ``PROFILER.stage(...)`` call sites feed, plus Chrome
  ``trace_event`` export of span trees;
- :mod:`repro.telemetry.events` - typed per-iteration metric events
  streamed to JSONL (:class:`MetricsRecorder`, armed per run via
  :func:`recording`/:func:`current_recorder`);
- :mod:`repro.telemetry.registry` - the *live* layer: on-disk heartbeat
  records per active run (:class:`RunRegistry`/:class:`Heartbeat`,
  armed per run via :func:`heartbeating`/:func:`current_heartbeat`)
  with stale/dead detection behind ``python -m repro.harness status``;
- :mod:`repro.telemetry.resources` - zero-dependency CPU/RSS/fault
  sampling streamed as ``resource`` events and rolled into manifests;
- :mod:`repro.telemetry.manifest` - run manifests (design, mode,
  options, seed, git rev, interpreter versions, outcome, span tree);
- :mod:`repro.telemetry.session` - run-directory lifecycle
  (:func:`start_run` -> :class:`RunSession`);
- :mod:`repro.telemetry.history` - append-only perf-regression ledger
  under ``benchmarks/history/`` behind ``python -m repro.harness
  trend``;
- :mod:`repro.telemetry.report` / :mod:`repro.telemetry.compare` - the
  ``python -m repro.harness report|compare`` toolchain (imported by the
  harness CLI; not re-exported here to keep import edges acyclic).
"""

from .events import (
    EVENT_KINDS,
    EVENTS_FILENAME,
    SCHEMA_VERSION,
    MetricsRecorder,
    current_recorder,
    iteration_series,
    kind_error_message,
    read_events,
    read_events_partial,
    recording,
    suggest_kind,
)
from .manifest import (
    MANIFEST_FILENAME,
    RunManifest,
    git_revision,
    load_manifest,
    make_run_id,
    write_manifest,
)
from .registry import (
    Heartbeat,
    HeartbeatRecord,
    RunRegistry,
    current_heartbeat,
    heartbeating,
    pid_alive,
)
from .resources import ResourceSampler, resource_delta, sample_resources
from .session import RunSession, start_run

__all__ = [
    "EVENT_KINDS",
    "EVENTS_FILENAME",
    "SCHEMA_VERSION",
    "MetricsRecorder",
    "current_recorder",
    "iteration_series",
    "kind_error_message",
    "read_events",
    "read_events_partial",
    "recording",
    "suggest_kind",
    "MANIFEST_FILENAME",
    "RunManifest",
    "git_revision",
    "load_manifest",
    "make_run_id",
    "write_manifest",
    "Heartbeat",
    "HeartbeatRecord",
    "RunRegistry",
    "current_heartbeat",
    "heartbeating",
    "pid_alive",
    "ResourceSampler",
    "resource_delta",
    "sample_resources",
    "RunSession",
    "start_run",
]
