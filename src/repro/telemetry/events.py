"""Typed metric-event streams persisted as JSONL.

One run of the placer stack produces a stream of *events* - per-iteration
scalar snapshots, counters, guard quarantines, recovery actions,
checkpoint saves - appended line-by-line to an ``events.jsonl`` file so
trajectories survive the process and can be diffed across runs.

Schema (version :data:`SCHEMA_VERSION`): every event is one JSON object
per line carrying at least

``ts``
    Wall-clock POSIX timestamp (float seconds) at emission.
``ts_mono``
    Monotonic timestamp (float seconds, ``time.monotonic()``) at
    emission.  Only comparable *within* one process's stream; live
    tailing uses it for iteration-rate/ETA math so the numbers survive
    wall-clock adjustments (NTP steps, suspend).  New in schema v2 -
    v1 streams simply lack the field and readers must fall back to
    ``ts``.
``kind``
    One of :data:`EVENT_KINDS`.
``iteration``
    Placer iteration the event belongs to, or ``null`` for events
    outside the iteration loop.

Kind-specific payloads:

=================  ====================================================
kind               extra fields
=================  ====================================================
``run_start``      ``design``, ``optimizer``, ``seed``, ``max_iters``,
                   ``resumed``
``iteration``      ``metrics`` - dict of scalar series values (hpwl,
                   overflow, lambda, tns_smoothed, wns_smoothed,
                   tns_frac, wns_frac, lse_saturation, rsmt_cache_hit,
                   wns, tns, ...)
``counter``        ``name``, ``value`` (monotonic cumulative count)
``quarantine``     ``term``, ``bad_entries`` (numerical-guard event)
``term_exception`` ``term``, ``error`` (objective term raised)
``recovery``       ``action`` (``optimizer_restart`` /
                   ``checkpoint_rollback`` / ``diverged_stop``),
                   optional ``fault_iteration``/``target_iteration``
                   (rollbacks carry ``iteration: null`` so iteration
                   truncation on restart keeps them)
``checkpoint``     ``action`` (``save``/``load``), ``path``,
                   ``overflow``
``incremental``    ``updates``, ``pins_recomputed`` (incremental-STA
                   progress, throttled)
``resource``       ``rss_bytes``, ``peak_rss_bytes``, ``cpu_user_s``,
                   ``cpu_sys_s``, ``minor_faults``, ``major_faults``
                   (process resource sample from
                   ``repro.telemetry.resources``, throttled; new in
                   schema v2)
``run_end``        ``stop_reason``, ``iterations``, ``hpwl``,
                   ``overflow``, ``recoveries``,
                   ``quarantined_iterations``, ``nonfinite_events``
``task_retry``     ``run_id``, ``task_index``, ``attempt``,
                   ``failure`` (supervisor taxonomy kind), ``error``,
                   ``delay_s`` (suite supervisor; iteration is null)
``task_quarantine`` ``run_id``, ``task_index``, ``attempts``,
                   ``failure``, ``error`` (task exhausted its retries)
``worker_respawn`` ``pid`` (dead worker), ``run_id`` (in-flight task),
                   ``failure`` (why the worker died)
``note``           free-form ``message``
=================  ====================================================

Library layers reach the active recorder through
:func:`current_recorder` (armed with the :func:`recording` context
manager around a run), mirroring the fault-injection pattern: when no
recorder is armed every telemetry call site is a cheap ``None`` check.

Version history:

- v1: initial 13-kind schema (PR 3/7), wall-clock ``ts`` only.
- v2: adds ``ts_mono`` to every event and the ``resource`` kind.
  Readers stay back-compatible: v1 records are valid v2 records minus
  the monotonic stamp.
"""

from __future__ import annotations

import difflib
import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_KINDS",
    "EVENTS_FILENAME",
    "suggest_kind",
    "kind_error_message",
    "MetricsRecorder",
    "current_recorder",
    "recording",
    "read_events",
    "read_events_partial",
    "iteration_series",
]

#: Version stamp of the event schema (bumped on incompatible changes).
SCHEMA_VERSION = 2

#: Default events filename inside a telemetry run directory.
EVENTS_FILENAME = "events.jsonl"

#: Every event kind the stream may contain.
EVENT_KINDS = (
    "run_start",
    "iteration",
    "counter",
    "quarantine",
    "term_exception",
    "recovery",
    "checkpoint",
    "incremental",
    "resource",
    "run_end",
    "task_retry",
    "task_quarantine",
    "worker_respawn",
    "note",
)


def suggest_kind(kind: str) -> Optional[str]:
    """Closest valid event kind to ``kind``, or None if nothing is close."""
    matches = difflib.get_close_matches(kind, EVENT_KINDS, n=1, cutoff=0.6)
    return matches[0] if matches else None


def kind_error_message(kind: str) -> str:
    """Diagnostic for an unknown event kind, with a nearest-match hint.

    Shared by :meth:`MetricsRecorder.event` and the
    ``telemetry-kind-literal`` rule of ``repro.analysis`` so the runtime
    error and the lint finding read identically.
    """
    message = f"unknown event kind {kind!r}; expected one of {EVENT_KINDS}"
    suggestion = suggest_kind(kind)
    if suggestion is not None:
        message += f" (did you mean {suggestion!r}?)"
    return message


def _json_default(value: Any):
    """Coerce numpy scalars/arrays into JSON-native types."""
    item = getattr(value, "item", None)
    if callable(item) and getattr(value, "ndim", None) in (None, 0):
        return value.item()
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return value.tolist()
    raise TypeError(
        f"{type(value).__name__} is not JSON serializable in a telemetry event"
    )


class MetricsRecorder:
    """Append-only JSONL event stream for one run (thread-safe).

    ``append=True`` opens an existing stream for continuation (the
    ``--resume`` path); combined with :meth:`truncate_from` the resumed
    process drops any events at or past its restart iteration first, so
    the stream never holds duplicate iterations.
    """

    def __init__(self, path: str, append: bool = False) -> None:
        self.path = path
        self.n_events = 0
        self._lock = threading.Lock()
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._fh = open(path, "a" if append else "w")

    # ------------------------------------------------------------------
    def event(
        self, kind: str, iteration: Optional[int] = None, **fields: Any
    ) -> Dict[str, Any]:
        """Append one event; returns the emitted dict."""
        if kind not in EVENT_KINDS:
            raise ValueError(kind_error_message(kind))
        record: Dict[str, Any] = {
            "ts": time.time(),
            "ts_mono": time.monotonic(),
            "kind": kind,
            "iteration": None if iteration is None else int(iteration),
        }
        record.update(fields)
        line = json.dumps(record, default=_json_default)
        with self._lock:
            if self._fh.closed:
                raise ValueError(f"recorder for {self.path!r} is closed")
            self._fh.write(line + "\n")
            self._fh.flush()
            self.n_events += 1
        return record

    def iteration(self, iteration: int, metrics: Dict[str, float]) -> None:
        """Per-iteration scalar snapshot (the convergence series)."""
        self.event("iteration", iteration=iteration, metrics=dict(metrics))

    def counter(
        self, name: str, value: int, iteration: Optional[int] = None
    ) -> None:
        """Cumulative counter sample (e.g. Steiner rebuilds so far)."""
        self.event("counter", iteration=iteration, name=name, value=int(value))

    # ------------------------------------------------------------------
    def truncate_from(self, iteration: int) -> int:
        """Drop already-recorded events at or past ``iteration``.

        Called by the placer when resuming from a checkpoint: events the
        restarted trajectory will re-emit are removed so the stream stays
        a single, duplicate-free history.  Events without an iteration
        (``run_start`` of the original run, counters emitted outside the
        loop) are kept.  Returns the number of dropped events.
        """
        with self._lock:
            self._fh.flush()
            self._fh.close()
            kept: List[str] = []
            dropped = 0
            try:
                with open(self.path) as handle:
                    for line in handle:
                        if not line.strip():
                            continue
                        record = json.loads(line)
                        it = record.get("iteration")
                        if it is not None and it >= iteration:
                            dropped += 1
                            continue
                        kept.append(line if line.endswith("\n") else line + "\n")
            except FileNotFoundError:
                pass
            with open(self.path, "w") as handle:
                handle.writelines(kept)
            self._fh = open(self.path, "a")
        return dropped

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "MetricsRecorder":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


#: The recorder armed by the currently running telemetry session, if any.
_CURRENT: Optional[MetricsRecorder] = None


def current_recorder() -> Optional[MetricsRecorder]:
    """The armed recorder of the enclosing telemetry run, or None."""
    return _CURRENT


@contextmanager
def recording(recorder: MetricsRecorder):
    """Arm ``recorder`` for the duration of the block (run scope)."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = recorder
    try:
        yield recorder
    finally:
        _CURRENT = previous


def read_events_partial(path: str) -> "tuple[List[Dict[str, Any]], int]":
    """Parse a JSONL event stream, tolerating a torn trailing record.

    A stream read *mid-write* (live ``tail``/``status`` against an
    in-flight run) may end in a partial line: either the final line has
    no terminating newline yet, or it has one but the JSON payload was
    cut short by the OS scheduling the reader between two ``write``
    syscalls.  Such a trailing fragment is skipped and counted instead
    of raising.  A malformed line in the *middle* of the file is still
    an error - that is corruption, not an in-flight write.

    Returns ``(events, skipped)`` where ``skipped`` is 0 or 1.
    """
    events: List[Dict[str, Any]] = []
    with open(path) as handle:
        lines = handle.readlines()
    for index, line in enumerate(lines):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            events.append(json.loads(stripped))
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                return events, 1
            raise
    return events, 0


def read_events(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL event stream back into a list of dicts.

    Tolerates (and silently drops) a torn trailing partial record so
    reading an in-flight stream is safe; use :func:`read_events_partial`
    to observe the skip count.
    """
    events, _skipped = read_events_partial(path)
    return events


def iteration_series(
    events: List[Dict[str, Any]]
) -> Dict[str, List[Any]]:
    """Extract per-metric (iterations, values) series from a stream.

    Returns ``{metric: ([iterations], [values])}`` over every
    ``iteration`` event that carries the metric.
    """
    series: Dict[str, Any] = {}
    for record in events:
        if record.get("kind") != "iteration":
            continue
        it = record.get("iteration")
        for key, value in (record.get("metrics") or {}).items():
            xs, ys = series.setdefault(key, ([], []))
            xs.append(it)
            ys.append(value)
    return series
