"""On-disk run registry: who is running, where they are, are they alive.

The registry is the live half of the telemetry stack.  Where manifests
and event streams describe runs *after the fact*, the registry answers
"what is happening right now": every active run/worker keeps one small
JSON record under ``<telemetry_base>/registry/`` that it re-writes
(atomically, tmp + ``os.replace``) on every heartbeat:

::

    <telemetry_base>/registry/<run_id>.json
        {run_id, pid, design, mode, phase, iteration, attempt,
         started, ts, ts_mono, anchor_iteration, anchor_ts,
         rss_bytes, cpu_user_s, cpu_sys_s}

``ts`` is the wall clock of the last beat; readers in *other* processes
(``repro.harness status``) classify each record by it:

``live``
    The pid exists and the last beat is recent.
``stale``
    The pid exists but the heartbeat is older than the threshold - the
    run is hung or wedged (this is what the supervisor's timeout message
    quotes: "silent for 93s at iteration 412 in rsmt_rebuild").
``dead``
    The pid is gone: the process was SIGKILL'd or crashed before its
    clean-exit removal.  :meth:`RunRegistry.gc` deletes these; every new
    :class:`RunSession` garbage-collects on registration so abandoned
    records do not accumulate.

Writers go through :class:`Heartbeat`, a throttled updater armed for the
run scope via :func:`heartbeating` and reached from library layers via
:func:`current_heartbeat` - the exact pattern
:func:`repro.telemetry.events.current_recorder` established, so call
sites are a cheap ``None`` check when observability is off.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "REGISTRY_DIRNAME",
    "HeartbeatRecord",
    "RunRegistry",
    "Heartbeat",
    "pid_alive",
    "current_heartbeat",
    "heartbeating",
]

#: Registry directory name under a telemetry base directory.
REGISTRY_DIRNAME = "registry"

#: Default seconds-without-a-beat before a live pid counts as stale.
DEFAULT_STALE_AFTER_S = 15.0


def pid_alive(pid: int) -> bool:
    """True if a process with ``pid`` exists (signal-0 probe)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid exists, other user
        return True
    except OSError:  # pragma: no cover - no-kill platforms
        return False
    return True


@dataclass
class HeartbeatRecord:
    """One run's live state, as persisted in its registry file."""

    run_id: str
    pid: int
    design: str
    mode: str
    phase: str = "setup"
    iteration: Optional[int] = None
    attempt: int = 1
    #: Wall clock when the run registered.
    started: float = 0.0
    #: Wall clock of the last beat (staleness is judged against this).
    ts: float = 0.0
    #: Monotonic clock of the last beat (same-process rate math).
    ts_mono: float = 0.0
    #: First-iteration anchor for cross-process iteration-rate estimates:
    #: rate = (iteration - anchor_iteration) / (ts - anchor_ts).
    anchor_iteration: Optional[int] = None
    anchor_ts: Optional[float] = None
    #: Latest resource sample highlights, if a sampler is feeding us.
    rss_bytes: Optional[int] = None
    cpu_user_s: Optional[float] = None
    cpu_sys_s: Optional[float] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HeartbeatRecord":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})

    # ------------------------------------------------------------------
    def age_s(self, now: Optional[float] = None) -> float:
        """Seconds since the last beat (wall clock)."""
        return (time.time() if now is None else now) - self.ts

    def state(
        self,
        stale_after_s: float = DEFAULT_STALE_AFTER_S,
        now: Optional[float] = None,
    ) -> str:
        """``live`` / ``stale`` / ``dead`` classification."""
        if not pid_alive(self.pid):
            return "dead"
        return "stale" if self.age_s(now) > stale_after_s else "live"

    def iteration_rate(self) -> Optional[float]:
        """Iterations/second since the anchor beat, or None."""
        if (
            self.iteration is None
            or self.anchor_iteration is None
            or self.anchor_ts is None
        ):
            return None
        dt = self.ts - self.anchor_ts
        steps = self.iteration - self.anchor_iteration
        if dt <= 0 or steps <= 0:
            return None
        return steps / dt


class RunRegistry:
    """Registry directory accessor: read, write, list, garbage-collect."""

    def __init__(self, base_dir: str) -> None:
        self.base_dir = base_dir
        self.path = os.path.join(base_dir, REGISTRY_DIRNAME)

    # -- writer side ---------------------------------------------------
    def write(self, record: HeartbeatRecord) -> str:
        """Atomically persist ``record`` (tmp + replace, pid-suffixed)."""
        os.makedirs(self.path, exist_ok=True)
        path = self._record_path(record.run_id)
        tmp = f"{path}.{record.pid}.tmp"
        with open(tmp, "w") as handle:
            json.dump(record.to_dict(), handle)
            handle.write("\n")
        os.replace(tmp, path)
        return path

    def remove(self, run_id: str) -> bool:
        """Delete a record (clean exit); True if one existed."""
        try:
            os.unlink(self._record_path(run_id))
        except FileNotFoundError:
            return False
        return True

    # -- reader side ---------------------------------------------------
    def read(self, run_id: str) -> Optional[HeartbeatRecord]:
        """One record by run id, or None if absent/torn."""
        return self._load(self._record_path(run_id))

    def list(self) -> List[HeartbeatRecord]:
        """All readable records, sorted by registration time."""
        try:
            names = sorted(os.listdir(self.path))
        except FileNotFoundError:
            return []
        records = []
        for name in names:
            if not name.endswith(".json"):
                continue
            record = self._load(os.path.join(self.path, name))
            if record is not None:
                records.append(record)
        records.sort(key=lambda r: (r.started, r.run_id))
        return records

    def gc(self) -> List[HeartbeatRecord]:
        """Remove records whose pid no longer exists; returns them.

        Only *dead* records are collected - a stale record with a live
        pid is a hung run someone should look at, not garbage.
        """
        collected = []
        for record in self.list():
            if not pid_alive(record.pid):
                if self.remove(record.run_id):
                    collected.append(record)
        return collected

    # ------------------------------------------------------------------
    def _record_path(self, run_id: str) -> str:
        safe = run_id.replace(os.sep, "_")
        return os.path.join(self.path, f"{safe}.json")

    @staticmethod
    def _load(path: str) -> Optional[HeartbeatRecord]:
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            # Deleted or replaced mid-read; the record is atomic so a
            # parse error means it vanished, not that it is torn.
            return None
        try:
            return HeartbeatRecord.from_dict(data)
        except TypeError:
            return None


class Heartbeat:
    """Throttled writer of one run's registry record.

    ``update`` is cheap enough for the placer's per-iteration loop: a
    beat is persisted at most every ``min_interval_s`` (monotonic),
    except that a *phase change* always writes immediately - phase
    transitions are exactly what a watcher wants to see without lag.
    """

    def __init__(
        self,
        registry: RunRegistry,
        record: HeartbeatRecord,
        min_interval_s: float = 0.5,
    ) -> None:
        self.registry = registry
        self.record = record
        self.min_interval_s = float(min_interval_s)
        self._last_write_mono: Optional[float] = None
        self.closed = False
        now = time.time()
        if not record.started:
            record.started = now
        record.ts = now
        record.ts_mono = time.monotonic()
        self.registry.write(record)
        self._last_write_mono = record.ts_mono

    # ------------------------------------------------------------------
    def update(
        self,
        phase: Optional[str] = None,
        iteration: Optional[int] = None,
        resources: Optional[Dict[str, Any]] = None,
        force: bool = False,
        **extra: Any,
    ) -> bool:
        """Record progress; returns True if a beat was persisted."""
        if self.closed:
            return False
        record = self.record
        phase_changed = phase is not None and phase != record.phase
        if phase is not None:
            record.phase = phase
        if iteration is not None:
            iteration = int(iteration)
            record.iteration = iteration
            if record.anchor_iteration is None:
                record.anchor_iteration = iteration
                record.anchor_ts = time.time()
        if resources is not None:
            record.rss_bytes = resources.get("rss_bytes")
            record.cpu_user_s = resources.get("cpu_user_s")
            record.cpu_sys_s = resources.get("cpu_sys_s")
        if extra:
            record.extra.update(extra)

        now_mono = time.monotonic()
        if (
            not force
            and not phase_changed
            and self._last_write_mono is not None
            and now_mono - self._last_write_mono < self.min_interval_s
        ):
            return False
        record.ts = time.time()
        record.ts_mono = now_mono
        self.registry.write(record)
        self._last_write_mono = now_mono
        return True

    def close(self, remove: bool = True) -> None:
        """End the heartbeat; by default the record is removed (clean
        exit).  ``remove=False`` leaves the last beat on disk for a
        post-mortem reader."""
        if self.closed:
            return
        self.closed = True
        if remove:
            self.registry.remove(self.record.run_id)


#: The heartbeat armed by the currently running session, if any.
_CURRENT: Optional[Heartbeat] = None


def current_heartbeat() -> Optional[Heartbeat]:
    """The armed heartbeat of the enclosing run, or None."""
    return _CURRENT


@contextmanager
def heartbeating(heartbeat: Optional[Heartbeat]):
    """Arm ``heartbeat`` for the duration of the block (run scope)."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = heartbeat
    try:
        yield heartbeat
    finally:
        _CURRENT = previous
