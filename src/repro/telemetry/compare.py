"""Diff two telemetry runs: manifests, final metrics, span trees.

``python -m repro.harness compare <run_a> <run_b>`` is the CI-usable
regression gate: it exits non-zero when the runs' final metrics drift
past a configurable relative tolerance.  Two identical-seed runs of the
deterministic placer compare clean (wall-clock differences are
informational only); a perturbed seed or a behavioural change trips the
threshold.

Span-tree timing comparison is informational by default (wall-clock is
machine-noisy); pass a ``span_rtol`` to additionally gate on per-span
total-time drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .manifest import RunManifest, load_manifest

__all__ = ["CompareResult", "compare_runs", "GATED_METRICS"]

#: Final metrics gated by the tolerance check (deterministic outcomes).
#: ``runtime`` and wall-clock are reported but never gate.
GATED_METRICS = ("wns", "tns", "hpwl", "overflow", "iterations")

#: Manifest identity fields surfaced in the diff.
_IDENTITY_FIELDS = (
    "design",
    "mode",
    "seed",
    "schema_version",
    "git_rev",
    "python_version",
    "numpy_version",
)


@dataclass
class CompareResult:
    """Outcome of one run-vs-run comparison."""

    run_a: str
    run_b: str
    #: Gate violations; non-empty means the comparison failed.
    regressions: List[str] = field(default_factory=list)
    #: Non-gating observations (identity diffs, runtime drift, spans).
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def format(self) -> str:
        lines = [f"compare {self.run_a} vs {self.run_b}"]
        for note in self.notes:
            lines.append(f"  note: {note}")
        for reg in self.regressions:
            lines.append(f"  REGRESSION: {reg}")
        lines.append("result: " + ("OK" if self.ok else "REGRESSION"))
        return "\n".join(lines)


def _rel_close(a: float, b: float, rtol: float, atol: float) -> bool:
    return abs(a - b) <= atol + rtol * max(abs(a), abs(b))


def _flatten_spans(
    node: Dict[str, Any], prefix: str = ""
) -> Dict[str, Tuple[float, int]]:
    """``{path: (total_s, calls)}`` over a Timer.tree()-shaped dict."""
    out: Dict[str, Tuple[float, int]] = {}
    for child in node.get("children", []):
        path = f"{prefix}/{child['name']}" if prefix else str(child["name"])
        out[path] = (float(child.get("total_s", 0.0)), int(child.get("calls", 0)))
        out.update(_flatten_spans(child, path))
    return out


def compare_runs(
    dir_a: str,
    dir_b: str,
    rtol: float = 1e-6,
    atol: float = 1e-9,
    span_rtol: Optional[float] = None,
    metrics: Tuple[str, ...] = GATED_METRICS,
) -> CompareResult:
    """Compare two run directories; see the module docstring for policy."""
    ma: RunManifest = load_manifest(dir_a)
    mb: RunManifest = load_manifest(dir_b)
    result = CompareResult(run_a=ma.run_id, run_b=mb.run_id)

    # ------------------------------------------------------------------
    # Manifest identity: design/mode mismatches make the metric diff
    # meaningless, so they gate; environment drift is informational.
    # ------------------------------------------------------------------
    for fld in _IDENTITY_FIELDS:
        va, vb = getattr(ma, fld), getattr(mb, fld)
        if va == vb:
            continue
        line = f"manifest.{fld}: {va!r} != {vb!r}"
        if fld in ("design", "mode"):
            result.regressions.append(line)
        else:
            result.notes.append(line)
    opt_keys = set(ma.options) | set(mb.options)
    for key in sorted(opt_keys):
        va, vb = ma.options.get(key), mb.options.get(key)
        if va != vb:
            result.notes.append(f"options.{key}: {va!r} != {vb!r}")

    # ------------------------------------------------------------------
    # reprolint provenance: dirty trees and rule-set drift are flagged
    # but never gate (two identical-seed runs must still compare OK).
    # ------------------------------------------------------------------
    for label, manifest in (("a", ma), ("b", mb)):
        analysis = manifest.analysis or {}
        if analysis.get("error"):
            result.notes.append(
                f"run {label} ({manifest.run_id}): reprolint provenance "
                f"unavailable ({analysis['error']})"
            )
        elif analysis.get("clean") is False:
            result.notes.append(
                f"run {label} ({manifest.run_id}) was produced from a dirty "
                f"tree: {analysis.get('new_finding_count', '?')} "
                "non-baselined reprolint finding(s)"
            )
    aa, ab = ma.analysis or {}, mb.analysis or {}
    if aa and ab:
        for key, what in (
            ("rules_version", "reprolint rule set"),
            ("baseline_hash", "reprolint baseline"),
        ):
            if aa.get(key) != ab.get(key):
                result.notes.append(
                    f"{what} differs between runs: "
                    f"{aa.get(key)!r} != {ab.get(key)!r}"
                )

    # ------------------------------------------------------------------
    # Final metrics: the regression gate.
    # ------------------------------------------------------------------
    fa, fb = ma.final_metrics, mb.final_metrics
    if not fa or not fb:
        result.regressions.append(
            "final metrics missing "
            f"(a: {sorted(fa) or 'none'}, b: {sorted(fb) or 'none'}); "
            "were both runs finalized?"
        )
    for key in metrics:
        if key not in fa or key not in fb:
            if key in fa or key in fb:
                result.regressions.append(
                    f"final.{key}: present in only one run"
                )
            continue
        va, vb = fa[key], fb[key]
        try:
            close = _rel_close(float(va), float(vb), rtol, atol)
        except (TypeError, ValueError):
            close = va == vb
        if not close:
            result.regressions.append(
                f"final.{key}: {_num(va)} vs {_num(vb)} "
                f"(rel diff {_reldiff(va, vb):.3g} > rtol {rtol:g})"
            )
    sa, sb = fa.get("stop_reason"), fb.get("stop_reason")
    if sa is not None and sb is not None and sa != sb:
        result.regressions.append(f"final.stop_reason: {sa!r} != {sb!r}")
    ra, rb = fa.get("runtime"), fb.get("runtime")
    if isinstance(ra, (int, float)) and isinstance(rb, (int, float)) and ra:
        result.notes.append(
            f"runtime: {ra:.3f}s vs {rb:.3f}s ({rb / ra:.2f}x, informational)"
        )

    # ------------------------------------------------------------------
    # Span trees: total-time drift per span path.
    # ------------------------------------------------------------------
    spans_a = _flatten_spans(ma.span_tree or {})
    spans_b = _flatten_spans(mb.span_tree or {})
    drifts: List[Tuple[float, str]] = []
    for path in sorted(set(spans_a) | set(spans_b)):
        if path not in spans_a or path not in spans_b:
            line = f"span {path}: present in only one run"
            if span_rtol is not None:
                result.regressions.append(line)
            else:
                result.notes.append(line)
            continue
        ta, _ = spans_a[path]
        tb, _ = spans_b[path]
        rel = _reldiff(ta, tb)
        if span_rtol is not None and not _rel_close(ta, tb, span_rtol, 1e-4):
            result.regressions.append(
                f"span {path}: {ta:.4f}s vs {tb:.4f}s "
                f"(rel diff {rel:.3g} > span rtol {span_rtol:g})"
            )
        elif rel > 0:
            drifts.append((rel, f"span {path}: {ta:.4f}s vs {tb:.4f}s"))
    if span_rtol is None and drifts:
        drifts.sort(reverse=True)
        for rel, line in drifts[:5]:
            result.notes.append(f"{line} (rel diff {rel:.2f}, informational)")
    return result


def _num(value: Any) -> str:
    try:
        return f"{float(value):.6g}"
    except (TypeError, ValueError):
        return repr(value)


def _reldiff(a: Any, b: Any) -> float:
    try:
        fa, fb = float(a), float(b)
    except (TypeError, ValueError):
        return float("inf")
    denom = max(abs(fa), abs(fb))
    return abs(fa - fb) / denom if denom else 0.0
