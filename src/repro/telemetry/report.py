"""Render one telemetry run into a human-readable report.

``python -m repro.harness report <run_dir>`` loads the run's manifest
and event stream and produces:

- ``report.md`` - a markdown summary (manifest, final metrics, event
  breakdown, guard/recovery activity, hierarchical span tree with
  self-time), also printed to stdout;
- ``curve_<metric>.svg`` - one dependency-free convergence plot per
  recorded iteration series (hpwl, overflow, wns, tns, ...), via
  :mod:`repro.harness.plots`.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

from ..perf import format_span_tree
from .events import iteration_series, read_events
from .manifest import RunManifest, load_manifest

__all__ = ["render_report", "PLOTTED_METRICS"]

#: Iteration series rendered as SVG curves when present in the stream.
PLOTTED_METRICS = (
    "hpwl",
    "overflow",
    "wns",
    "tns",
    "tns_smoothed",
    "wns_smoothed",
    "lse_saturation",
)

_MANIFEST_ROWS = (
    ("run id", "run_id"),
    ("design", "design"),
    ("mode", "mode"),
    ("seed", "seed"),
    ("created", "created"),
    ("git rev", "git_rev"),
    ("python", "python_version"),
    ("numpy", "numpy_version"),
    ("platform", "platform"),
    ("wall clock (s)", "wall_clock_s"),
)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _event_summary(events: List[Dict[str, Any]]) -> List[str]:
    counts: Dict[str, int] = {}
    for record in events:
        kind = record.get("kind", "?")
        counts[kind] = counts.get(kind, 0) + 1
    lines = ["| kind | events |", "|---|---|"]
    for kind in sorted(counts):
        lines.append(f"| {kind} | {counts[kind]} |")
    return lines


def _incident_lines(events: List[Dict[str, Any]]) -> List[str]:
    """Guard quarantines, exceptions, recoveries and checkpoints."""
    out: List[str] = []
    for record in events:
        kind = record.get("kind")
        it = record.get("iteration")
        if kind == "quarantine":
            out.append(
                f"- iteration {it}: quarantined `{record.get('term')}` "
                f"({record.get('bad_entries')} non-finite entries)"
            )
        elif kind == "term_exception":
            out.append(
                f"- iteration {it}: `{record.get('term')}` raised "
                f"{record.get('error')}"
            )
        elif kind == "recovery":
            target = record.get("target_iteration")
            suffix = f" -> iteration {target}" if target is not None else ""
            out.append(
                f"- iteration {it}: recovery `{record.get('action')}`{suffix}"
            )
        elif kind == "checkpoint":
            out.append(
                f"- iteration {it}: checkpoint {record.get('action')} "
                f"`{os.path.basename(str(record.get('path', '')))}`"
            )
    return out


def render_report(
    run_dir: str,
    out_dir: Optional[str] = None,
    write: bool = True,
) -> str:
    """Build the markdown report for ``run_dir``; returns the markdown.

    With ``write=True`` (default) the markdown plus one SVG per
    available convergence series are written into ``out_dir`` (default:
    the run directory itself).
    """
    manifest: RunManifest = load_manifest(run_dir)
    events_path = os.path.join(run_dir, manifest.events_file)
    events = read_events(events_path) if os.path.exists(events_path) else []
    series = iteration_series(events)
    destination = out_dir if out_dir is not None else run_dir

    lines: List[str] = [f"# Run report: {manifest.run_id}", ""]

    lines.append("## Manifest")
    lines.append("")
    lines.append("| field | value |")
    lines.append("|---|---|")
    for label, attr in _MANIFEST_ROWS:
        lines.append(f"| {label} | {_fmt(getattr(manifest, attr))} |")
    if manifest.options:
        opts = ", ".join(
            f"{k}={_fmt(v)}" for k, v in sorted(manifest.options.items())
        )
        lines.append(f"| options | {opts} |")
    lines.append("")

    lines.append("## Final metrics")
    lines.append("")
    if manifest.final_metrics:
        lines.append("| metric | value |")
        lines.append("|---|---|")
        for key in sorted(manifest.final_metrics):
            lines.append(f"| {key} | {_fmt(manifest.final_metrics[key])} |")
    else:
        lines.append("(run not finalized)")
    lines.append("")

    lines.append(f"## Events ({len(events)} total)")
    lines.append("")
    lines.extend(_event_summary(events))
    incidents = _incident_lines(events)
    if incidents:
        lines.append("")
        lines.append("### Incidents")
        lines.append("")
        lines.extend(incidents)
    lines.append("")

    plotted: List[str] = []
    if write and series:
        # Imported lazily: harness.__init__ pulls in runners, which
        # imports this package - a module-level import would cycle.
        from ..harness.plots import curves_svg, save_svg

        os.makedirs(destination, exist_ok=True)
        for metric in PLOTTED_METRICS:
            if metric not in series:
                continue
            xs, ys = series[metric]
            if not xs:
                continue
            svg = curves_svg(
                {metric: (xs, ys)},
                title=f"{manifest.design} / {manifest.mode}: {metric}",
                ylabel=metric,
            )
            name = f"curve_{metric}.svg"
            save_svg(svg, os.path.join(destination, name))
            plotted.append(name)
    lines.append("## Convergence")
    lines.append("")
    if plotted:
        for name in plotted:
            lines.append(f"- ![{name}]({name})")
    elif series:
        lines.append(
            f"(series available, plots not written: {sorted(series)})"
        )
    else:
        lines.append("(no iteration series recorded)")
    lines.append("")

    lines.append("## Span tree")
    lines.append("")
    if manifest.span_tree:
        lines.append("```")
        lines.append(
            format_span_tree(
                manifest.span_tree, title=f"{manifest.run_id} span tree"
            )
        )
        lines.append("```")
    else:
        lines.append("(no span tree recorded; run with profiling enabled)")
    lines.append("")

    markdown = "\n".join(lines)
    if write:
        os.makedirs(destination, exist_ok=True)
        with open(os.path.join(destination, "report.md"), "w") as handle:
            handle.write(markdown)
    return markdown
