"""Run manifests: what produced a telemetry stream, and how it ended.

A manifest is the diffable identity card of one run: design, mode,
placer options, seed, source revision, interpreter/numpy versions, plus
- once the run finishes - wall-clock, final metrics, and the profiler's
span tree.  ``repro.telemetry.compare`` diffs two manifests to decide
whether a run regressed; ``repro.telemetry.report`` renders one into a
human summary.

Manifests are plain JSON (``manifest.json`` inside the run directory),
written atomically so a killed run leaves either the start-of-run or the
finalized manifest, never a torn file.
"""

from __future__ import annotations

import itertools
import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional

from .events import EVENTS_FILENAME, SCHEMA_VERSION

__all__ = [
    "MANIFEST_FILENAME",
    "RunManifest",
    "make_run_id",
    "git_revision",
    "write_manifest",
    "load_manifest",
]

#: Manifest filename inside a telemetry run directory.
MANIFEST_FILENAME = "manifest.json"

_RUN_COUNTER = itertools.count()


def make_run_id(design: str, mode: str) -> str:
    """Unique, sortable run id: design, mode, timestamp, pid, counter."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    return f"{design}_{mode}_{stamp}_{os.getpid()}_{next(_RUN_COUNTER)}"


def git_revision(cwd: Optional[str] = None) -> str:
    """Current git revision, or ``"unknown"`` outside a repo/git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def _numpy_version() -> str:
    try:
        import numpy

        return numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        return "unknown"


@dataclass
class RunManifest:
    """Identity + outcome of one telemetry run (JSON round-trippable)."""

    run_id: str
    design: str
    mode: str
    seed: int
    #: Placer/flow options as a flat JSON-ready dict.
    options: Dict[str, Any] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION
    created: str = ""
    git_rev: str = ""
    python_version: str = ""
    numpy_version: str = ""
    platform: str = ""
    events_file: str = EVENTS_FILENAME
    #: Filled in by finalize(): total wall-clock of the run in seconds.
    wall_clock_s: Optional[float] = None
    #: Final scalar outcome (wns/tns/hpwl/overflow/iterations/...).
    final_metrics: Dict[str, Any] = field(default_factory=dict)
    #: Profiler span tree snapshot (``repro.perf.Timer.tree`` shape).
    span_tree: Optional[Dict[str, Any]] = None
    #: reprolint provenance: rules_version, finding counts, baseline
    #: hash, and the ``clean`` verdict of the producing tree (see
    #: :func:`repro.analysis.provenance.analysis_provenance`).
    analysis: Optional[Dict[str, Any]] = None
    #: Design-bundle cache provenance (key, hit/miss, setup seconds) when
    #: the run's design came from :mod:`repro.netlist.cache`.
    design_cache: Optional[Dict[str, Any]] = None
    #: Supervised-execution provenance (``{"attempt": n, ...}``) stamped
    #: when the suite supervisor re-ran this task after a failure; None
    #: for first-attempt (zero-fault) runs, keeping them byte-comparable
    #: with unsupervised output.
    supervision: Optional[Dict[str, Any]] = None
    #: Resource rollup of the run (peak RSS, CPU user/sys deltas, fault
    #: counts) from :mod:`repro.telemetry.resources`; None off-POSIX or
    #: when sampling was off.  Wall-clock-class provenance: ignored by
    #: ``compare`` and stripped by the CI determinism gates.
    resources: Optional[Dict[str, Any]] = None

    @classmethod
    def create(
        cls,
        design: str,
        mode: str,
        seed: int,
        options: Optional[Dict[str, Any]] = None,
        run_id: Optional[str] = None,
    ) -> "RunManifest":
        """Manifest for a run starting now, environment auto-collected."""
        try:
            from ..analysis.provenance import analysis_provenance

            analysis = analysis_provenance()
        except Exception:  # pragma: no cover - provenance must never gate a run
            analysis = None
        return cls(
            run_id=run_id if run_id else make_run_id(design, mode),
            design=design,
            mode=mode,
            seed=int(seed),
            options=dict(options or {}),
            created=time.strftime("%Y-%m-%dT%H:%M:%S"),
            git_rev=git_revision(),
            python_version=sys.version.split()[0],
            numpy_version=_numpy_version(),
            platform=platform.platform(),
            analysis=analysis,
        )

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunManifest":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


def write_manifest(manifest: RunManifest, directory: str) -> str:
    """Atomically write ``manifest.json`` into ``directory``."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, MANIFEST_FILENAME)
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(manifest.to_dict(), handle, indent=2, default=str)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def load_manifest(directory: str) -> RunManifest:
    """Load the manifest of a telemetry run directory."""
    path = os.path.join(directory, MANIFEST_FILENAME)
    with open(path) as handle:
        return RunManifest.from_dict(json.load(handle))
