"""Zero-dependency process resource sampling.

The observability layer needs CPU time, resident-set size, and fault
counts for every live run without adding a dependency (no ``psutil``).
Two sources cover that:

- :func:`resource.getrusage` (POSIX) for CPU user/sys seconds, peak RSS,
  and minor/major fault counts.  ``ru_maxrss`` is kilobytes on Linux and
  bytes on macOS; both are normalized to bytes here.
- ``/proc/self/statm`` (Linux) for the *current* RSS in pages, scaled by
  ``sysconf("SC_PAGE_SIZE")``.  Off Linux the current-RSS field falls
  back to the peak, which is the best portable approximation.

On platforms without the :mod:`resource` module (Windows) every sampler
degrades to a graceful no-op returning ``None`` - call sites already
treat a missing sample as "nothing to report".

Samples are plain dicts so they serialize straight into ``resource``
telemetry events and manifest rollups:

``rss_bytes``        current resident set size
``peak_rss_bytes``   lifetime peak resident set size
``cpu_user_s``       cumulative user CPU seconds
``cpu_sys_s``        cumulative system CPU seconds
``minor_faults``     cumulative page reclaims (no I/O)
``major_faults``     cumulative page faults (required I/O)

CPU seconds and fault counts are *cumulative over the process lifetime*,
which matters for warm supervisor workers executing many tasks: per-task
attribution must go through :func:`resource_delta` with a sample taken
before and after the task.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Any, Dict, Optional

try:  # POSIX only; absent on Windows.
    import resource as _resource
except ImportError:  # pragma: no cover - exercised only off-POSIX
    _resource = None

__all__ = [
    "sample_resources",
    "resource_delta",
    "ResourceSampler",
]

#: Fields a sample dict always carries (in emission order).
SAMPLE_FIELDS = (
    "rss_bytes",
    "peak_rss_bytes",
    "cpu_user_s",
    "cpu_sys_s",
    "minor_faults",
    "major_faults",
)

_PAGE_SIZE: Optional[int] = None


def _page_size() -> int:
    global _PAGE_SIZE
    if _PAGE_SIZE is None:
        try:
            _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
        except (AttributeError, ValueError, OSError):
            _PAGE_SIZE = 4096
    return _PAGE_SIZE


def _current_rss_bytes() -> Optional[int]:
    """Current RSS from ``/proc/self/statm``, or None off Linux."""
    try:
        with open("/proc/self/statm") as handle:
            fields = handle.read().split()
        return int(fields[1]) * _page_size()
    except (OSError, IndexError, ValueError):
        return None


def sample_resources() -> Optional[Dict[str, Any]]:
    """One resource snapshot of the current process, or None off-POSIX."""
    if _resource is None:
        return None
    usage = _resource.getrusage(_resource.RUSAGE_SELF)
    peak = int(usage.ru_maxrss)
    if sys.platform != "darwin":
        peak *= 1024  # Linux reports kilobytes; darwin reports bytes.
    rss = _current_rss_bytes()
    return {
        "rss_bytes": peak if rss is None else rss,
        "peak_rss_bytes": peak,
        "cpu_user_s": float(usage.ru_utime),
        "cpu_sys_s": float(usage.ru_stime),
        "minor_faults": int(usage.ru_minflt),
        "major_faults": int(usage.ru_majflt),
    }


def resource_delta(
    before: Optional[Dict[str, Any]], after: Optional[Dict[str, Any]]
) -> Optional[Dict[str, Any]]:
    """Attribute one span of work inside a long-lived process.

    CPU seconds and fault counts are differenced (they are cumulative),
    while RSS fields stay absolute: "how much memory" is a property of
    the process at the end of the span, not a rate.  Returns None when
    either sample is missing (off-POSIX).
    """
    if before is None or after is None:
        return None
    return {
        "rss_bytes": after["rss_bytes"],
        "peak_rss_bytes": after["peak_rss_bytes"],
        "cpu_user_s": after["cpu_user_s"] - before["cpu_user_s"],
        "cpu_sys_s": after["cpu_sys_s"] - before["cpu_sys_s"],
        "minor_faults": after["minor_faults"] - before["minor_faults"],
        "major_faults": after["major_faults"] - before["major_faults"],
    }


class ResourceSampler:
    """Throttled sampler for hot loops.

    :meth:`maybe_sample` returns a fresh sample at most once per
    ``min_interval_s`` (monotonic), and *always* on the first call so
    even a run shorter than the interval yields one sample.  Call sites
    in the placer loop pay one ``time.monotonic()`` per iteration when
    throttled.
    """

    def __init__(self, min_interval_s: float = 2.0) -> None:
        self.min_interval_s = float(min_interval_s)
        self._last_mono: Optional[float] = None
        self.last_sample: Optional[Dict[str, Any]] = None

    def maybe_sample(self) -> Optional[Dict[str, Any]]:
        """A sample if the throttle window elapsed, else None."""
        now = time.monotonic()
        if (
            self._last_mono is not None
            and now - self._last_mono < self.min_interval_s
        ):
            return None
        return self.sample(now=now)

    def sample(self, now: Optional[float] = None) -> Optional[Dict[str, Any]]:
        """An unconditional sample (still None off-POSIX)."""
        self._last_mono = time.monotonic() if now is None else now
        sampled = sample_resources()
        if sampled is not None:
            self.last_sample = sampled
        return sampled
