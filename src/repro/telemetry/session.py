"""One telemetry run: a directory with a manifest and an event stream.

:func:`start_run` creates (or, for resumes, re-opens) a run directory

::

    <base>/<run_id>/
        manifest.json     # identity + (after finalize) outcome
        events.jsonl      # typed metric stream (repro.telemetry.events)

and hands back a :class:`RunSession` whose recorder is armed around the
placement with :func:`repro.telemetry.events.recording`.  The session
also turns the shared profiler on for its duration so the finalized
manifest carries the hierarchical span tree of the run, registers a
live heartbeat record in the telemetry base's registry
(:mod:`repro.telemetry.registry`), and snapshots process resources so
``finalize`` can roll a CPU/RSS summary into the manifest.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Optional

from ..perf import PROFILER
from .events import EVENTS_FILENAME, MetricsRecorder
from .manifest import (
    MANIFEST_FILENAME,
    RunManifest,
    load_manifest,
    make_run_id,
    write_manifest,
)
from .registry import Heartbeat, HeartbeatRecord, RunRegistry
from .resources import resource_delta, sample_resources

__all__ = ["RunSession", "start_run"]


class RunSession:
    """Owns one run directory's manifest + recorder lifecycle."""

    def __init__(
        self,
        run_dir: str,
        manifest: RunManifest,
        recorder: MetricsRecorder,
        profile: bool = True,
        registry_dir: Optional[str] = None,
        attempt: int = 1,
    ) -> None:
        self.run_dir = run_dir
        self.manifest = manifest
        self.recorder = recorder
        self._t0 = time.perf_counter()
        self._profile = profile
        self._profiler_was_enabled = PROFILER.enabled
        if profile:
            PROFILER.reset()
            PROFILER.enable()
        self._resources_start = sample_resources()
        self.heartbeat: Optional[Heartbeat] = None
        if registry_dir is not None:
            registry = RunRegistry(registry_dir)
            # Sweep records left by SIGKILL'd runs before adding ours.
            registry.gc()
            self.heartbeat = Heartbeat(
                registry,
                HeartbeatRecord(
                    run_id=manifest.run_id,
                    pid=os.getpid(),
                    design=manifest.design,
                    mode=manifest.mode,
                    phase="setup",
                    attempt=attempt,
                ),
            )

    @property
    def run_id(self) -> str:
        return self.manifest.run_id

    def finalize(
        self,
        final_metrics: Optional[Dict[str, Any]] = None,
        span_tree: Optional[Dict[str, Any]] = None,
    ) -> RunManifest:
        """Record the outcome, write the manifest, release the stream.

        ``span_tree`` defaults to the shared profiler's current tree
        (captured before the profiler's enabled state is restored).
        A clean finalize also removes the run's registry record - a
        record that outlives its pid is the signature of a killed run.
        """
        self.manifest.wall_clock_s = time.perf_counter() - self._t0
        if final_metrics:
            self.manifest.final_metrics = dict(final_metrics)
        if span_tree is None and self._profile:
            span_tree = PROFILER.tree()
        if span_tree is not None:
            self.manifest.span_tree = span_tree
        if self._profile:
            PROFILER.enabled = self._profiler_was_enabled
        rollup = resource_delta(self._resources_start, sample_resources())
        if rollup is not None:
            self.manifest.resources = rollup
        write_manifest(self.manifest, self.run_dir)
        self.recorder.close()
        if self.heartbeat is not None:
            self.heartbeat.close(remove=True)
        return self.manifest


def start_run(
    base_dir: str,
    design: str,
    mode: str,
    seed: int,
    options: Optional[Dict[str, Any]] = None,
    run_id: Optional[str] = None,
    resume: bool = False,
    profile: bool = True,
    attempt: int = 1,
) -> RunSession:
    """Open a telemetry run under ``base_dir``.

    ``base_dir`` may also point directly at an *existing* run directory
    (one containing ``manifest.json``); with ``resume=True`` that run is
    continued - its manifest is kept and new events append to its stream
    (the placer truncates any post-restart duplicates first).

    ``attempt`` stamps the registry heartbeat so ``status`` can show
    which supervisor retry a run belongs to.
    """
    if resume and os.path.exists(os.path.join(base_dir, MANIFEST_FILENAME)):
        run_dir = base_dir
        manifest = load_manifest(run_dir)
        recorder = MetricsRecorder(
            os.path.join(run_dir, manifest.events_file), append=True
        )
        return RunSession(
            run_dir,
            manifest,
            recorder,
            profile=profile,
            registry_dir=os.path.dirname(os.path.abspath(run_dir)),
            attempt=attempt,
        )

    rid = run_id if run_id else make_run_id(design, mode)
    run_dir = os.path.join(base_dir, rid)
    if run_id is None:
        # Auto ids are already unique, but never trample an existing run.
        k = 1
        while os.path.exists(run_dir):
            run_dir = os.path.join(base_dir, f"{rid}-{k}")
            k += 1
        rid = os.path.basename(run_dir)
    os.makedirs(run_dir, exist_ok=True)

    existing = resume and os.path.exists(
        os.path.join(run_dir, MANIFEST_FILENAME)
    )
    if existing:
        manifest = load_manifest(run_dir)
    else:
        manifest = RunManifest.create(
            design=design, mode=mode, seed=seed, options=options, run_id=rid
        )
        write_manifest(manifest, run_dir)
    recorder = MetricsRecorder(
        os.path.join(run_dir, manifest.events_file), append=existing or resume
    )
    return RunSession(
        run_dir,
        manifest,
        recorder,
        profile=profile,
        registry_dir=base_dir,
        attempt=attempt,
    )
