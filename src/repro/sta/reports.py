"""Timing report utilities: slack histograms and design summaries.

The paper's reference [34] frames timing-driven placement as *slack
histogram compression*: a placer should not only fix the worst path but
shift the whole endpoint-slack distribution rightward.  This module
renders that view - text histograms of endpoint slack, distribution
statistics, and a scalar histogram-compression figure of merit - plus a
one-stop ``report_design`` summary used by the examples and the harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .analysis import STAResult

__all__ = [
    "SlackHistogram",
    "slack_histogram",
    "format_histogram",
    "histogram_compression",
    "report_design",
]


@dataclass
class SlackHistogram:
    """Binned endpoint-slack distribution."""

    edges: np.ndarray  # (n_bins + 1,)
    counts: np.ndarray  # (n_bins,)
    wns: float
    tns: float
    n_violating: int
    n_endpoints: int

    @property
    def violation_fraction(self) -> float:
        return self.n_violating / max(self.n_endpoints, 1)


def slack_histogram(
    result: STAResult, n_bins: int = 12, clip: Optional[float] = None
) -> SlackHistogram:
    """Histogram the endpoint setup slacks of an STA result.

    ``clip`` bounds the positive tail (default: the observed maximum) so
    that a handful of very relaxed endpoints cannot flatten the bins that
    matter.
    """
    slacks = np.asarray(result.endpoint_slack, dtype=float)
    slacks = slacks[np.abs(slacks) < 1e29]
    if len(slacks) == 0:
        edges = np.linspace(-1.0, 1.0, n_bins + 1)
        return SlackHistogram(edges, np.zeros(n_bins, int), 0.0, 0.0, 0, 0)
    hi = float(slacks.max()) if clip is None else clip
    lo = float(slacks.min())
    if hi <= lo:
        hi = lo + 1.0
    edges = np.linspace(lo, hi, n_bins + 1)
    counts, _ = np.histogram(np.clip(slacks, lo, hi), bins=edges)
    return SlackHistogram(
        edges=edges,
        counts=counts,
        wns=float(slacks.min()),
        tns=float(np.minimum(slacks, 0.0).sum()),
        n_violating=int((slacks < 0).sum()),
        n_endpoints=len(slacks),
    )


def format_histogram(hist: SlackHistogram, width: int = 46) -> str:
    """ASCII rendering of a slack histogram (violating bins marked '#')."""
    lines = [
        f"endpoint slack histogram ({hist.n_endpoints} endpoints, "
        f"{hist.n_violating} violating)"
    ]
    peak = max(int(hist.counts.max()), 1)
    for k in range(len(hist.counts)):
        lo, hi = hist.edges[k], hist.edges[k + 1]
        bar_len = int(round(width * hist.counts[k] / peak))
        marker = "#" if hi <= 0 else ("+" if lo >= 0 else "~")
        lines.append(
            f"[{lo:9.1f}, {hi:9.1f}) {marker} "
            f"{'█' * bar_len}{'' if hist.counts[k] else ''} {hist.counts[k]}"
        )
    lines.append(f"WNS = {hist.wns:.1f} ps, TNS = {hist.tns:.1f} ps")
    return "\n".join(lines)


def histogram_compression(
    before: SlackHistogram, after: SlackHistogram
) -> float:
    """Scalar compression figure of merit in [reference of [34]'s spirit].

    Measures how much of the *negative-slack mass* was removed:
    ``1 - |TNS_after| / |TNS_before|`` (0 = no change, 1 = all violations
    cleared, negative = regression).
    """
    if before.tns >= 0:
        return 0.0
    return 1.0 - abs(after.tns) / abs(before.tns)


def report_design(result: STAResult, n_bins: int = 12) -> str:
    """Multi-section text report: summary, histogram, worst endpoints."""
    design = result.graph.design
    hist = slack_histogram(result, n_bins=n_bins)
    lines = [
        f"Timing report for {design.name}",
        f"  clock period : {design.constraints.clock_period:.1f} ps",
        f"  endpoints    : {hist.n_endpoints} "
        f"({hist.n_violating} violating, "
        f"{100 * hist.violation_fraction:.1f}%)",
        f"  WNS / TNS    : {result.wns_setup:.1f} / {result.tns_setup:.1f} ps",
        "",
        format_histogram(hist),
        "",
        "worst endpoints:",
    ]
    ep = result.graph.endpoint_pins
    order = np.argsort(result.endpoint_slack)[:5]
    for k in order:
        lines.append(
            f"  {design.pin_name[int(ep[k])]:<24} "
            f"slack = {result.endpoint_slack[k]:9.1f} ps"
        )
    return "\n".join(lines)
