"""Timing-graph construction and levelisation.

Builds the pin-level DAG of STA (Figure 1 of the paper): net arcs from each
net's driver to its sinks, and cell arcs from cell input pins to output
pins, expanded into per-transition *contributions* according to arc
unateness.  Pins are assigned logical levels by a longest-path topological
sort - done once, since levels do not depend on pin locations (step (1) of
the paper's Section 3.3) - and all arc tables are sorted by the level of
their sink so that both timers can sweep level by level with vectorised
kernels.

Clock nets are not propagation arcs (ideal clock): flip-flop CK pins are
start points with arrival time zero, and the CK->Q arc launches paths.
Setup checks at FF D pins and output ports are the timing endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..netlist.design import Design, PORT_IN_TYPE, PORT_OUT_TYPE
from ..netlist.library import ArcKind, FALL, RISE
from .nldm import LutBank

__all__ = ["CombinationalCycleError", "TimingGraph", "LevelizedArcs", "levelize"]


class CombinationalCycleError(ValueError):
    """The propagation edge set contains a combinational cycle.

    Carries the pin indices of one example cycle (``cycle_pins``, in walk
    order) and the total number of pins levelisation could not reach, so
    callers - the design validator in particular - can name the offending
    logic instead of reporting a generic failure.
    """

    def __init__(
        self,
        cycle_pins: Sequence[int],
        n_unreachable: int,
        pin_names: Optional[Sequence[str]] = None,
    ) -> None:
        self.cycle_pins = [int(p) for p in cycle_pins]
        self.n_unreachable = int(n_unreachable)
        if pin_names is not None:
            shown = [str(pin_names[p]) for p in self.cycle_pins]
        else:
            shown = [f"pin#{p}" for p in self.cycle_pins]
        preview = " -> ".join(shown[:8])
        if len(shown) > 8:
            preview += f" -> ... ({len(shown)} pins on the cycle)"
        super().__init__(
            "timing graph has a combinational cycle "
            f"({self.n_unreachable} pins unreachable); example cycle: "
            f"{preview} -> {shown[0]}"
        )


def _example_cycle(
    edges_src: np.ndarray, edges_dst: np.ndarray, unresolved: np.ndarray
) -> List[int]:
    """Extract one cycle from the pins levelisation could not resolve.

    Every unresolved pin has at least one unprocessed in-edge whose source
    is itself unresolved, so walking predecessors inside the unresolved
    set must revisit a pin - that revisit closes a cycle.
    """
    mask = unresolved[edges_src] & unresolved[edges_dst]
    pred: dict = {}
    for s, d in zip(edges_src[mask].tolist(), edges_dst[mask].tolist()):
        pred.setdefault(d, s)
    if not pred:
        return []
    node = next(iter(pred))
    seen: dict = {}
    path: List[int] = []
    while node is not None and node not in seen:
        seen[node] = len(path)
        path.append(node)
        node = pred.get(node)
    if node is None:
        return path  # defensive: dead-ends only, no closed walk found
    return path[seen[node]:]


def levelize(
    edges_src: np.ndarray,
    edges_dst: np.ndarray,
    n_pins: int,
    pin_names: Optional[Sequence[str]] = None,
) -> np.ndarray:
    """Longest-path levels of a pin DAG via wave-vectorised Kahn sweep.

    One whole frontier wave is processed per iteration: the frontier's
    out-edges are gathered from a CSR table in a single batch, sink levels
    are raised with a scatter-max and in-degrees are decremented with one
    bincount per wave.  Raises :class:`CombinationalCycleError` (a
    ``ValueError``) naming an example cycle when the edge set is not a
    DAG; ``pin_names`` (if given) makes the message name actual pins.
    """
    level = np.zeros(n_pins, dtype=np.int64)
    indegree = np.bincount(edges_dst, minlength=n_pins)
    frontier = np.nonzero(indegree == 0)[0]
    remaining = indegree.copy()
    order_dst = np.argsort(edges_src, kind="stable") if len(edges_src) else None
    dst_sorted = edges_dst[order_dst] if order_dst is not None else edges_dst
    out_start = np.zeros(n_pins + 1, dtype=np.int64)
    if len(edges_src):
        np.cumsum(np.bincount(edges_src, minlength=n_pins), out=out_start[1:])
    visited = 0
    while len(frontier):
        visited += len(frontier)
        starts = out_start[frontier]
        counts = out_start[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        # CSR multi-gather: edge index = start of its frontier pin plus
        # the running offset within that pin's out-edge run.
        ends = np.cumsum(counts)
        offsets = np.arange(total) - np.repeat(ends - counts, counts)
        edge_idx = np.repeat(starts, counts) + offsets
        sinks = dst_sorted[edge_idx]
        np.maximum.at(level, sinks, np.repeat(level[frontier] + 1, counts))
        remaining -= np.bincount(sinks, minlength=n_pins)
        candidates = np.unique(sinks)
        frontier = candidates[remaining[candidates] == 0]
    if visited != n_pins:
        unresolved = remaining > 0
        raise CombinationalCycleError(
            _example_cycle(edges_src, edges_dst, unresolved),
            n_pins - visited,
            pin_names,
        )
    return level


@dataclass
class LevelizedArcs:
    """Arc arrays sorted by sink-pin level with per-level offsets.

    ``offsets[l] : offsets[l + 1]`` slices out the arcs whose sink pin sits
    at level ``l``.
    """

    offsets: np.ndarray

    def level_slice(self, level: int) -> slice:
        return slice(self.offsets[level], self.offsets[level + 1])


def _sort_by_level(level_of: np.ndarray, n_levels: int) -> Tuple[np.ndarray, np.ndarray]:
    """Stable-sort arc indices by level; returns (order, offsets)."""
    order = np.argsort(level_of, kind="stable")
    counts = np.bincount(level_of, minlength=n_levels)
    offsets = np.zeros(n_levels + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return order, offsets


class TimingGraph:
    """The static structure shared by the golden and differentiable timers."""

    def __init__(self, design: Design) -> None:
        self.design = design
        n_pins = design.n_pins
        lutbank = LutBank()

        # ------------------------------------------------------------------
        # Net arcs: driver -> sink for every routed (non-clock) net.
        # ------------------------------------------------------------------
        net_sink: List[int] = []
        net_src: List[int] = []
        net_of_sink: List[int] = []
        self.timing_nets: List[int] = []
        for ni in range(design.n_nets):
            driver = design.net_driver[ni]
            if driver < 0 or design.net_is_clock[ni] or design.net_degree(ni) < 2:
                continue
            self.timing_nets.append(ni)
            for p in design.net_pins(ni):
                if p != driver:
                    net_sink.append(int(p))
                    net_src.append(int(driver))
                    net_of_sink.append(ni)
        net_sink_arr = np.array(net_sink, dtype=np.int64)
        net_src_arr = np.array(net_src, dtype=np.int64)
        net_of_sink_arr = np.array(net_of_sink, dtype=np.int64)

        # ------------------------------------------------------------------
        # Cell arcs expanded into per-transition contributions.
        # ------------------------------------------------------------------
        c_src: List[int] = []
        c_dst: List[int] = []
        c_tin: List[int] = []
        c_tout: List[int] = []
        c_lut_delay: List[int] = []
        c_lut_slew: List[int] = []
        setup_d: List[int] = []
        setup_ck: List[int] = []
        setup_lut: List[Tuple[int, int]] = []
        hold_d: List[int] = []
        hold_ck: List[int] = []
        hold_lut: List[Tuple[int, int]] = []

        pin_lookup = {}
        for p in range(n_pins):
            cell = design.pin2cell[p]
            pin_lookup[(int(cell), design.pin_name[p].rsplit("/", 1)[1])] = p

        for ci in range(design.n_cells):
            ctype = design.cell_type_of(ci)
            for arc in ctype.arcs:
                src = pin_lookup.get((ci, arc.from_pin))
                dst = pin_lookup.get((ci, arc.to_pin))
                if src is None or dst is None:
                    continue
                if arc.kind.is_delay_arc:
                    for t_out in (RISE, FALL):
                        lut_d = lutbank.register(arc.delay_lut(t_out))
                        lut_s = lutbank.register(arc.transition_lut(t_out))
                        for t_in in arc.unateness.transition_sources(t_out):
                            c_src.append(src)
                            c_dst.append(dst)
                            c_tin.append(t_in)
                            c_tout.append(t_out)
                            c_lut_delay.append(lut_d)
                            c_lut_slew.append(lut_s)
                elif arc.kind is ArcKind.SETUP:
                    setup_d.append(dst)
                    setup_ck.append(src)
                    setup_lut.append(
                        (
                            lutbank.register(arc.constraint_lut(RISE)),
                            lutbank.register(arc.constraint_lut(FALL)),
                        )
                    )
                elif arc.kind is ArcKind.HOLD:
                    hold_d.append(dst)
                    hold_ck.append(src)
                    hold_lut.append(
                        (
                            lutbank.register(arc.constraint_lut(RISE)),
                            lutbank.register(arc.constraint_lut(FALL)),
                        )
                    )

        c_src_arr = np.array(c_src, dtype=np.int64)
        c_dst_arr = np.array(c_dst, dtype=np.int64)

        # ------------------------------------------------------------------
        # Levelisation: longest-path levels over the propagation DAG.
        # ------------------------------------------------------------------
        edges_src = np.concatenate([net_src_arr, c_src_arr])
        edges_dst = np.concatenate([net_sink_arr, c_dst_arr])
        # Deduplicate parallel edges (a non-unate arc contributes 4 tuples).
        if len(edges_src):
            pairs = np.unique(np.stack([edges_src, edges_dst], axis=1), axis=0)
            edges_src, edges_dst = pairs[:, 0], pairs[:, 1]
        level = levelize(edges_src, edges_dst, n_pins, pin_names=design.pin_name)
        self.level = level
        self.n_levels = int(level.max()) + 1 if n_pins else 1

        # Start points: pins with no incoming propagation arc.
        indegree = np.bincount(edges_dst, minlength=n_pins)
        self.start_pins = np.nonzero(indegree == 0)[0]

        # ------------------------------------------------------------------
        # Sort arc tables by sink level.
        # ------------------------------------------------------------------
        order, offsets = _sort_by_level(level[net_sink_arr], self.n_levels)
        self.net_sink = net_sink_arr[order]
        self.net_src = net_src_arr[order]
        self.net_of_sink = net_of_sink_arr[order]
        self.net_arcs = LevelizedArcs(offsets)

        order, offsets = _sort_by_level(level[c_dst_arr], self.n_levels)
        self.c_src = c_src_arr[order]
        self.c_dst = c_dst_arr[order]
        self.c_tin = np.array(c_tin, dtype=np.int64)[order]
        self.c_tout = np.array(c_tout, dtype=np.int64)[order]
        self.c_lut_delay = np.array(c_lut_delay, dtype=np.int64)[order]
        self.c_lut_slew = np.array(c_lut_slew, dtype=np.int64)[order]
        self.cell_arcs = LevelizedArcs(offsets)

        # ------------------------------------------------------------------
        # Checks and endpoints.
        # ------------------------------------------------------------------
        self.setup_d = np.array(setup_d, dtype=np.int64)
        self.setup_ck = np.array(setup_ck, dtype=np.int64)
        self.setup_lut = np.array(setup_lut, dtype=np.int64).reshape(-1, 2)
        self.hold_d = np.array(hold_d, dtype=np.int64)
        self.hold_ck = np.array(hold_ck, dtype=np.int64)
        self.hold_lut = np.array(hold_lut, dtype=np.int64).reshape(-1, 2)

        po_pins = []
        po_ports = []
        for p in range(n_pins):
            ci = design.pin2cell[p]
            if design.cell_types[design.cell_type[ci]].name == PORT_OUT_TYPE:
                po_pins.append(p)
                po_ports.append(design.cell_name[ci])
        self.po_pins = np.array(po_pins, dtype=np.int64)
        self.po_output_delay = np.array(
            [design.constraints.output_delay(name) for name in po_ports]
        )
        self.po_extra_load = np.array(
            [design.constraints.output_load(name) for name in po_ports]
        )

        #: Endpoint pins = FF D pins with setup checks, then PO pins.
        self.endpoint_pins = np.concatenate([self.setup_d, self.po_pins])
        self.n_endpoints = len(self.endpoint_pins)

        # Extra pin capacitance (SDC set_load on output ports).
        self.extra_pin_cap = np.zeros(n_pins)
        self.extra_pin_cap[self.po_pins] = self.po_extra_load

        # Start-point boundary conditions.
        self.start_at = np.zeros((n_pins, 2))
        self.start_slew = np.full(
            (n_pins, 2), design.library.default_input_slew
        )
        for p in self.start_pins:
            ci = design.pin2cell[p]
            if design.cell_types[design.cell_type[ci]].name == PORT_IN_TYPE:
                port = design.cell_name[ci]
                if port != design.constraints.clock_port:
                    self.start_at[p, :] = design.constraints.input_delay(port)
                    self.start_slew[p, :] = design.constraints.input_slew(port)

        #: Constant clock slew seen by constraint LUTs (ideal clock).
        self.clock_slew = design.library.default_input_slew

        lutbank.finalize()
        self.lutbank = lutbank

    # ------------------------------------------------------------------
    def fanin_contributions(self, pin: int) -> np.ndarray:
        """Indices of cell-arc contributions whose sink is ``pin``."""
        return np.nonzero(self.c_dst == pin)[0]

    def describe(self) -> str:
        """One-line structural summary (useful in logs and tests)."""
        return (
            f"TimingGraph(levels={self.n_levels}, "
            f"net_arcs={len(self.net_sink)}, cell_contribs={len(self.c_dst)}, "
            f"endpoints={self.n_endpoints}, luts={len(self.lutbank)})"
        )
