"""Critical-path extraction and ``report_timing``-style output.

Paths are traced backward from timing endpoints by re-resolving, at each
pin, which fan-in arc produced the merged (max) arrival time - the same
information a tagged STA engine would keep, recovered here on demand so the
vectorised forward pass stays lean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..netlist.library import FALL, RISE
from .analysis import STAResult

__all__ = ["PathPoint", "TimingPath", "extract_path", "worst_paths", "format_path"]

_TRANSITION_NAME = {RISE: "r", FALL: "f"}


@dataclass
class PathPoint:
    """One pin on a timing path."""

    pin: int
    pin_name: str
    transition: int
    at: float
    slew: float
    incr: float
    arc_kind: str  # "start" | "net" | "cell"


@dataclass
class TimingPath:
    """A launch-to-endpoint timing path with its endpoint slack."""

    points: List[PathPoint]
    endpoint: int
    slack: float

    @property
    def delay(self) -> float:
        return self.points[-1].at - self.points[0].at

    @property
    def length(self) -> int:
        return len(self.points)


def _fanin_resolve(result: STAResult, pin: int, transition: int):
    """Return (src_pin, src_transition, incr, kind) of the winning fan-in."""
    graph = result.graph
    # Net arc? A pin has at most one.
    hits = np.nonzero(graph.net_sink == pin)[0]
    if len(hits):
        src = int(graph.net_src[hits[0]])
        return src, transition, float(result.net_delay[pin]), "net"
    # Cell contributions into this pin/transition.
    mask = (graph.c_dst == pin) & (graph.c_tout == transition)
    idx = np.nonzero(mask)[0]
    if not len(idx):
        return None
    src = graph.c_src[idx]
    tin = graph.c_tin[idx]
    slew_q = np.clip(result.slew[src, tin], 0.0, 1e6)
    delay = graph.lutbank.lookup(
        graph.c_lut_delay[idx], slew_q, result.driver_load[pin]
    )
    cand = result.at[src, tin] + delay
    best = int(np.argmax(cand))
    return int(src[best]), int(tin[best]), float(delay[best]), "cell"


def extract_path(
    result: STAResult, endpoint_pin: int, transition: Optional[int] = None
) -> TimingPath:
    """Trace the most critical path ending at ``endpoint_pin``."""
    design = result.graph.design
    if transition is None:
        transition = int(np.argmin(result.slack[endpoint_pin]))
    slack = float(result.slack[endpoint_pin, transition])

    rev: List[PathPoint] = []
    pin, t = endpoint_pin, transition
    guard = 0
    while True:
        guard += 1
        if guard > design.n_pins + 1:
            raise RuntimeError("path tracing did not terminate")
        resolved = _fanin_resolve(result, pin, t)
        incr = 0.0 if resolved is None else resolved[2]
        kind = "start" if resolved is None else resolved[3]
        rev.append(
            PathPoint(
                pin=pin,
                pin_name=design.pin_name[pin],
                transition=t,
                at=float(result.at[pin, t]),
                slew=float(result.slew[pin, t]),
                incr=incr,
                arc_kind=kind,
            )
        )
        if resolved is None:
            break
        pin, t = resolved[0], resolved[1]
    return TimingPath(points=list(reversed(rev)), endpoint=endpoint_pin, slack=slack)


def worst_paths(result: STAResult, k: int = 5) -> List[TimingPath]:
    """The ``k`` most critical endpoint paths, sorted by slack ascending."""
    ep = result.graph.endpoint_pins
    order = np.argsort(result.endpoint_slack)
    paths = []
    for i in order[:k]:
        paths.append(extract_path(result, int(ep[i])))
    return paths


def format_path(path: TimingPath) -> str:
    """Render one path in a ``report_timing`` style block."""
    lines = [
        f"Path to {path.points[-1].pin_name} "
        f"(slack = {path.slack:.2f} ps, {path.length} points)",
        f"{'pin':<28} {'edge':>4} {'incr':>9} {'at':>10} {'slew':>8}  kind",
    ]
    for p in path.points:
        lines.append(
            f"{p.pin_name:<28} {_TRANSITION_NAME[p.transition]:>4} "
            f"{p.incr:>9.2f} {p.at:>10.2f} {p.slew:>8.2f}  {p.arc_kind}"
        )
    return "\n".join(lines)
