"""Golden static timing analysis: graph, Elmore, NLDM, analysis, paths."""

from .nldm import LutBank
from .graph import CombinationalCycleError, LevelizedArcs, TimingGraph, levelize
from .elmore import ElmoreResult, elmore_forward, node_caps
from .analysis import STAResult, StaticTimingAnalyzer, run_sta
from .paths import TimingPath, extract_path, format_path, worst_paths
from .incremental import IncrementalTimer, VerifyReport
from .clock import ClockArrival, propagate_clock
from .reports import (
    SlackHistogram,
    format_histogram,
    histogram_compression,
    report_design,
    slack_histogram,
)

__all__ = [
    "LutBank",
    "CombinationalCycleError",
    "LevelizedArcs",
    "TimingGraph",
    "levelize",
    "ElmoreResult",
    "elmore_forward",
    "node_caps",
    "STAResult",
    "StaticTimingAnalyzer",
    "run_sta",
    "TimingPath",
    "extract_path",
    "format_path",
    "worst_paths",
    "IncrementalTimer",
    "VerifyReport",
    "ClockArrival",
    "propagate_clock",
    "SlackHistogram",
    "format_histogram",
    "histogram_compression",
    "report_design",
    "slack_histogram",
]
