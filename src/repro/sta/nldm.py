"""Batched NLDM lookup-table kernels.

A :class:`LutBank` packs many :class:`~repro.netlist.lut.LUT` objects into
padded arrays so that a heterogeneous batch of queries (each query naming
its own table) is answered with a handful of vectorised NumPy operations.
Both the golden STA and the differentiable timer use the same bank; the
gradient path (``lookup_with_grad``) implements the LUT-interpolation
derivative of Figure 6 of the paper.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..netlist.lut import LUT

__all__ = ["LutBank"]


def _pad_axis(axis: np.ndarray) -> np.ndarray:
    """Ensure an index axis has length >= 2 (constants become flat ramps)."""
    if len(axis) >= 2:
        return axis
    return np.array([axis[0], axis[0] + 1.0])


class LutBank:
    """A registry of LUTs with batched bilinear lookup.

    Use :meth:`register` to intern a LUT and obtain its integer id, then
    :meth:`finalize` once before the first lookup.  Lookups take an array of
    ids and broadcastable query arrays.
    """

    def __init__(self) -> None:
        self._luts: List[LUT] = []
        self._by_identity: Dict[int, int] = {}
        self._finalized = False
        self.x: np.ndarray
        self.y: np.ndarray
        self.values: np.ndarray
        self.x_len: np.ndarray
        self.y_len: np.ndarray

    def register(self, lut: LUT) -> int:
        """Intern a LUT (deduplicated by object identity); returns its id."""
        if self._finalized:
            raise RuntimeError("LutBank already finalized")
        key = id(lut)
        if key in self._by_identity:
            return self._by_identity[key]
        index = len(self._luts)
        self._luts.append(lut)
        self._by_identity[key] = index
        return index

    def __len__(self) -> int:
        return len(self._luts)

    def finalize(self) -> None:
        """Pack all registered LUTs into padded batch arrays."""
        if self._finalized:
            return
        self._finalized = True
        if not self._luts:
            self.x = np.zeros((0, 2))
            self.y = np.zeros((0, 2))
            self.values = np.zeros((0, 2, 2))
            self.x_len = np.zeros(0, dtype=np.int64)
            self.y_len = np.zeros(0, dtype=np.int64)
            return
        xs = [_pad_axis(lut.x) for lut in self._luts]
        ys = [_pad_axis(lut.y) for lut in self._luts]
        nx = max(len(a) for a in xs)
        ny = max(len(a) for a in ys)
        k = len(self._luts)
        self.x = np.full((k, nx), np.inf)
        self.y = np.full((k, ny), np.inf)
        self.values = np.zeros((k, nx, ny))
        self.x_len = np.zeros(k, dtype=np.int64)
        self.y_len = np.zeros(k, dtype=np.int64)
        for i, (lut, ax, ay) in enumerate(zip(self._luts, xs, ys)):
            self.x_len[i] = len(ax)
            self.y_len[i] = len(ay)
            self.x[i, : len(ax)] = ax
            self.y[i, : len(ay)] = ay
            v = lut.values
            # Duplicate rows/columns for axes that were padded from length 1.
            if v.shape[0] == 1 and len(ax) == 2:
                v = np.vstack([v, v])
            if v.shape[1] == 1 and len(ay) == 2:
                v = np.hstack([v, v])
            self.values[i, : v.shape[0], : v.shape[1]] = v

    def lookup_with_grad(
        self, ids: np.ndarray, x: np.ndarray, y: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched bilinear lookup; returns ``(value, dv/dx, dv/dy)``.

        ``ids`` selects the table per query; ``x``/``y`` are the query
        coordinates.  Out-of-range queries extrapolate linearly from the
        boundary cell, matching :meth:`LUT.lookup_with_grad`.
        """
        if not self._finalized:
            self.finalize()
        ids = np.asarray(ids, dtype=np.int64)
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        ids, x, y = np.broadcast_arrays(ids, x, y)
        shape = ids.shape
        ids, x, y = ids.ravel(), x.ravel(), y.ravel()

        ax = self.x[ids]  # (Q, nx), padded with +inf
        ay = self.y[ids]
        i = np.clip(
            np.sum(ax <= x[:, None], axis=1) - 1, 0, self.x_len[ids] - 2
        )
        j = np.clip(
            np.sum(ay <= y[:, None], axis=1) - 1, 0, self.y_len[ids] - 2
        )
        q = np.arange(len(ids))
        x0 = ax[q, i]
        x1 = ax[q, i + 1]
        y0 = ay[q, j]
        y1 = ay[q, j + 1]
        v = self.values[ids]
        q00 = v[q, i, j]
        q01 = v[q, i, j + 1]
        q10 = v[q, i + 1, j]
        q11 = v[q, i + 1, j + 1]
        tx = (x - x0) / (x1 - x0)
        ty = (y - y0) / (y1 - y0)
        v0 = q00 + ty * (q01 - q00)
        v1 = q10 + ty * (q11 - q10)
        val = v0 + tx * (v1 - v0)
        dvx = (v1 - v0) / (x1 - x0)
        d0 = (q01 - q00) / (y1 - y0)
        d1 = (q11 - q10) / (y1 - y0)
        dvy = d0 + tx * (d1 - d0)
        return val.reshape(shape), dvx.reshape(shape), dvy.reshape(shape)

    def lookup(self, ids: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Batched bilinear lookup (values only)."""
        return self.lookup_with_grad(ids, x, y)[0]
