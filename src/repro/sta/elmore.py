"""Vectorised Elmore delay model over a routing forest.

Implements the four tree dynamic-programming passes of Equation (7) of the
paper (and of the TAU 2015 reference timer): a bottom-up load accumulation,
a top-down delay pass, a bottom-up load-delay (LDelay) pass and a top-down
Beta pass, yielding per-node delay and impulse (slew component).  All four
passes are executed level-by-level over the flattened
:class:`~repro.route.tree.Forest`, which is the same scheduling the paper's
GPU kernels use.

The backward (gradient) counterpart, Equation (8), lives in
:mod:`repro.core.elmore_grad`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..contracts import differentiable
from ..netlist.library import WireModel
from ..route.tree import Forest

__all__ = ["ElmoreResult", "elmore_forward", "node_caps", "d2m_delay", "WIRE_DELAY_MODELS"]

#: Wire-delay metrics derivable from the Elmore moment passes.
WIRE_DELAY_MODELS = ("elmore", "d2m")


def d2m_delay(delay: np.ndarray, beta: np.ndarray) -> np.ndarray:
    """The D2M ("delay with two moments") metric ``ln2 * m1^2 / sqrt(m2)``.

    ``m1`` is the Elmore delay and ``m2`` (our ``beta``) the second moment
    of the impulse response.  For a single-pole response ``m2 = m1^2`` and
    D2M reduces to the exact ``ln2 * m1``; on general RC trees it is a
    well-known tighter (less pessimistic) estimate than Elmore.  The paper
    presents Elmore as one instance of its differentiable framework; this
    metric demonstrates the claimed extensibility - it is an analytic
    function of the same moments, so the same backward passes apply.
    """
    safe_beta = np.maximum(beta, 1e-30)
    out = np.log(2.0) * delay * delay / np.sqrt(safe_beta)
    return np.where(beta > 0, out, 0.0)


@dataclass
class ElmoreResult:
    """Per-node outputs of the Elmore forward pass.

    All arrays are indexed by forest node.  ``delay`` is the Elmore delay
    from the net's driver to the node; ``impulse`` is the slew-degradation
    component ``sqrt(2*beta - delay^2)``; ``load`` at a net's root node is
    the total capacitive load seen by the driving cell.
    """

    edge_res: np.ndarray
    edge_len: np.ndarray
    cap: np.ndarray
    load: np.ndarray
    delay: np.ndarray
    ldelay: np.ndarray
    beta: np.ndarray
    impulse: np.ndarray
    node_x: np.ndarray
    node_y: np.ndarray

    def root_load(self, forest: Forest, n_pins: int) -> np.ndarray:
        """Scatter per-net root load onto the driver pins (0 elsewhere)."""
        out = np.zeros(n_pins)
        roots = np.nonzero(forest.is_root)[0]
        pins = forest.node_pin[roots]
        valid = pins >= 0
        out[pins[valid]] = self.load[roots[valid]]
        return out


def node_caps(
    forest: Forest,
    pin_cap: np.ndarray,
    extra_pin_cap: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Intrinsic (non-wire) capacitance per forest node.

    Pin nodes carry their library pin capacitance plus any external load
    (e.g. ``set_load`` on output ports); Steiner nodes carry none.  Driver
    pins contribute no input capacitance to their own net, which is already
    reflected in the library (output pins have zero capacitance).
    """
    caps = np.zeros(forest.n_nodes)
    mask = forest.node_pin >= 0
    pins = forest.node_pin[mask]
    caps[mask] = pin_cap[pins]
    if extra_pin_cap is not None:
        caps[mask] += extra_pin_cap[pins]
    return caps


@differentiable(
    backward="repro.core.elmore_grad.elmore_backward",
    gradcheck="tests/test_elmore_grad.py::TestElmoreBackward"
    "::test_matches_finite_differences",
)
def elmore_forward(
    forest: Forest,
    node_x: np.ndarray,
    node_y: np.ndarray,
    intrinsic_cap: np.ndarray,
    wire: WireModel,
) -> ElmoreResult:
    """Run the 4-pass Elmore DP of Equation (7) over the whole forest.

    Parameters
    ----------
    forest:
        Flattened routing trees.
    node_x, node_y:
        Current node coordinates (see :meth:`Forest.node_coords`).
    intrinsic_cap:
        Per-node pin capacitance (see :func:`node_caps`).
    wire:
        Per-unit-length RC parameters.
    """
    n = forest.n_nodes
    parent = forest.parent
    hp = forest.has_parent

    edge_len = forest.edge_lengths(node_x, node_y)
    edge_res = wire.res_per_um * edge_len
    # Wire capacitance of each edge is lumped half at each endpoint.
    cap = intrinsic_cap.copy()
    half_wire = 0.5 * wire.cap_per_um * edge_len
    cap[hp] += half_wire[hp]
    # bincount is a much faster deterministic scatter-add than np.add.at
    # (it sums each bin in input order before a single vector add).
    cap += np.bincount(parent[hp], weights=half_wire[hp], minlength=n)

    load = cap.copy()
    delay = np.zeros(n)
    ldelay = np.zeros(n)
    beta = np.zeros(n)

    levels = forest.levels
    # Pass 1 (bottom-up): Load(u) = Cap(u) + sum_child Load(v).
    for level in reversed(levels[1:]):
        load += np.bincount(parent[level], weights=load[level], minlength=n)
    # Pass 2 (top-down): Delay(u) = Delay(fa(u)) + Res(fa->u) * Load(u).
    for level in levels[1:]:
        delay[level] = delay[parent[level]] + edge_res[level] * load[level]
    # Pass 3 (bottom-up): LDelay(u) = Cap(u)*Delay(u) + sum_child LDelay(v).
    ldelay += cap * delay
    for level in reversed(levels[1:]):
        ldelay += np.bincount(
            parent[level], weights=ldelay[level], minlength=n
        )
    # Pass 4 (top-down): Beta(u) = Beta(fa(u)) + Res(fa->u) * LDelay(u).
    for level in levels[1:]:
        beta[level] = beta[parent[level]] + edge_res[level] * ldelay[level]

    impulse_sq = np.maximum(2.0 * beta - delay * delay, 0.0)
    impulse = np.sqrt(impulse_sq)
    return ElmoreResult(
        edge_res=edge_res,
        edge_len=edge_len,
        cap=cap,
        load=load,
        delay=delay,
        ldelay=ldelay,
        beta=beta,
        impulse=impulse,
        node_x=node_x,
        node_y=node_y,
    )
