"""Incremental static timing analysis after cell moves.

The ICCAD 2015 contest the paper evaluates on is *incremental*
timing-driven placement: a few cells move, and timing must be refreshed
without re-analysing the whole design (the TAU 2015 setting of the paper's
reference [30]).  :class:`IncrementalTimer` keeps the full late/setup
timing state and, per move:

1. re-routes only the nets touching moved cells and replays their Elmore
   passes (a mini-forest of just those trees);
2. seeds a dirty set with the affected sink pins and driver pins (whose
   cell-arc delays depend on the changed load);
3. sweeps the affected cone level by level, recomputing all dirty pins of
   a level in one batch (replaying the levelised net/cell kernels shared
   with :mod:`repro.core`) and early-terminating the fan-out of pins
   whose arrival time and slew settle;
4. refreshes the slacks of affected endpoints and the running WNS/TNS.

Moves are symmetric: to reject a trial move, move the cells back - the
incremental update restores the previous state exactly (asserted in the
test-suite).  This engine powers the timing-driven detailed placer in
:mod:`repro.place.detailed`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.cell_prop import SLEW_CLIP_MAX, cell_forward_exact
from ..core.net_prop import net_forward_level
from ..netlist.design import Design
from ..netlist.library import FALL, RISE
from ..perf import PROFILER
from ..route.rsmt import build_trees_for_nets
from ..telemetry.events import current_recorder
from ..route.tree import Forest, RoutingTree
from .analysis import StaticTimingAnalyzer
from .elmore import elmore_forward, node_caps
from .graph import TimingGraph

__all__ = ["IncrementalTimer", "VerifyReport"]

_EPS = 1e-9
_AT_SENTINEL = -1e30


@dataclass(frozen=True)
class VerifyReport:
    """Outcome of :meth:`IncrementalTimer.verify`.

    Truthy iff the incremental state matches the full re-analysis, so it
    drops into boolean assertions; on mismatch it carries the worst
    offender instead of leaving the caller with a bare ``False``.
    """

    ok: bool
    #: Endpoint pin with the largest tolerance-normalised slack deviation
    #: (-1 when the design has no endpoints).
    worst_endpoint_pin: int
    worst_endpoint_name: str
    #: |incremental - golden| slack at that endpoint.
    worst_slack_delta: float
    wns_delta: float
    tns_delta: float
    n_endpoints: int

    def __bool__(self) -> bool:
        return self.ok

    def __str__(self) -> str:
        if self.ok:
            return f"verify OK ({self.n_endpoints} endpoints)"
        return (
            f"verify FAILED: worst endpoint {self.worst_endpoint_name!r} "
            f"(pin {self.worst_endpoint_pin}) slack off by "
            f"{self.worst_slack_delta:.3e}; "
            f"dWNS={self.wns_delta:.3e} dTNS={self.tns_delta:.3e}"
        )


class IncrementalTimer:
    """Maintains setup timing under incremental cell movement."""

    def __init__(
        self,
        design: Design,
        graph: Optional[TimingGraph] = None,
        max_steiner_degree: int = 24,
    ) -> None:
        self.design = design
        self.graph = graph if graph is not None else TimingGraph(design)
        self.max_steiner_degree = max_steiner_degree
        g = self.graph
        n_pins = design.n_pins

        # Fan-in structures: one net arc per sink pin; contributions
        # grouped by their destination pin.
        self.fanin_net_src = np.full(n_pins, -1, dtype=np.int64)
        self.fanin_net_src[g.net_sink] = g.net_src
        order = np.argsort(g.c_dst, kind="stable")
        self._c_order = order
        counts = np.bincount(g.c_dst, minlength=n_pins)
        self._c_start = np.zeros(n_pins + 1, dtype=np.int64)
        np.cumsum(counts, out=self._c_start[1:])

        # Fan-out adjacency over unique (src, dst) propagation edges.
        edges_src = np.concatenate([g.net_src, g.c_src])
        edges_dst = np.concatenate([g.net_sink, g.c_dst])
        if len(edges_src):
            pairs = np.unique(np.stack([edges_src, edges_dst], axis=1), axis=0)
            edges_src, edges_dst = pairs[:, 0], pairs[:, 1]
        out_order = np.argsort(edges_src, kind="stable")
        self._out_dst = edges_dst[out_order]
        counts = np.bincount(edges_src, minlength=n_pins)
        self._out_start = np.zeros(n_pins + 1, dtype=np.int64)
        np.cumsum(counts, out=self._out_start[1:])

        # Pins of each cell (CSR), endpoint bookkeeping.
        cell_order = np.argsort(design.pin2cell, kind="stable")
        self._cell_pins = cell_order
        counts = np.bincount(design.pin2cell, minlength=design.n_cells)
        self._cell_pin_start = np.zeros(design.n_cells + 1, dtype=np.int64)
        np.cumsum(counts, out=self._cell_pin_start[1:])

        self._endpoint_index = {
            int(p): k for k, p in enumerate(g.endpoint_pins)
        }
        self._setup_index = {int(p): k for k, p in enumerate(g.setup_d)}

        # Array-valued mirrors of the endpoint dicts, so the batched sweep
        # can classify whole pin vectors without Python-level lookups.
        self._is_endpoint = np.zeros(n_pins, dtype=bool)
        self._is_endpoint[g.endpoint_pins] = True
        self._endpoint_idx_of_pin = np.full(n_pins, -1, dtype=np.int64)
        self._endpoint_idx_of_pin[g.endpoint_pins] = np.arange(
            len(g.endpoint_pins)
        )
        self._setup_idx_of_pin = np.full(n_pins, -1, dtype=np.int64)
        self._setup_idx_of_pin[g.setup_d] = np.arange(len(g.setup_d))
        self._po_idx_of_pin = np.full(n_pins, -1, dtype=np.int64)
        self._po_idx_of_pin[g.po_pins] = np.arange(len(g.po_pins))

        self._sta = StaticTimingAnalyzer(design, self.graph)
        self.x: np.ndarray
        self.y: np.ndarray
        self.trees: List[Optional[RoutingTree]]
        self.n_incremental_updates = 0
        self.n_pins_recomputed = 0

    # ------------------------------------------------------------------
    def reset(
        self,
        cell_x: Optional[np.ndarray] = None,
        cell_y: Optional[np.ndarray] = None,
    ) -> None:
        """Full analysis at the given placement; establishes the baseline."""
        design = self.design
        self.x = (design.cell_x if cell_x is None else cell_x).astype(float).copy()
        self.y = (design.cell_y if cell_y is None else cell_y).astype(float).copy()
        result = self._sta.run(self.x, self.y)
        self.at = result.at.copy()
        self.slew = result.slew.copy()
        self.net_delay = result.net_delay.copy()
        self.impulse2 = result.impulse**2
        self.driver_load = result.driver_load.copy()
        self.trees = list(result.forest.trees)
        self.ep_slack = result.endpoint_slack.copy()
        self._refresh_totals()

    def _refresh_totals(self) -> None:
        finite = self.ep_slack < 1e29
        if np.any(finite):
            self.wns = float(self.ep_slack[finite].min())
            self.tns = float(np.minimum(self.ep_slack[finite], 0.0).sum())
        else:
            self.wns = 0.0
            self.tns = 0.0

    # ------------------------------------------------------------------
    # Elmore refresh for a set of nets
    # ------------------------------------------------------------------
    def _reroute_nets(self, nets: Sequence[int]) -> Set[int]:
        """Rebuild trees + Elmore values for nets; returns affected pins."""
        design = self.design
        px, py = design.pin_positions(self.x, self.y)
        affected: Set[int] = set()
        # Degree-bucketed batched rebuild (bit-identical to per-net
        # build_rsmt; see repro.route.batch).
        by_net = build_trees_for_nets(
            design,
            px,
            py,
            list(nets),
            max_steiner_degree=self.max_steiner_degree,
        )
        rebuilt: List[RoutingTree] = []
        for ni, tree in by_net.items():
            self.trees[ni] = tree
            rebuilt.append(tree)
            affected.update(int(p) for p in design.net_pins(ni))
        if not rebuilt:
            return affected
        mini = Forest(rebuilt, design.n_pins)
        nx, ny = mini.node_coords(px, py)
        caps = node_caps(mini, design.pin_cap, self.graph.extra_pin_cap)
        elm = elmore_forward(mini, nx, ny, caps, design.library.wire)
        mask = mini.node_pin >= 0
        pins = mini.node_pin[mask]
        self.net_delay[pins] = elm.delay[mask]
        self.impulse2[pins] = np.maximum(
            2.0 * elm.beta[mask] - elm.delay[mask] ** 2, 0.0
        )
        roots = np.nonzero(mini.is_root)[0]
        self.driver_load[mini.node_pin[roots]] = elm.load[roots]
        return affected

    # ------------------------------------------------------------------
    # Single-pin recompute (late mode, exact max merge)
    #
    # Scalar reference implementation of the batched level kernel in
    # :meth:`_recompute_level`; kept for debugging and as the oracle the
    # test-suite checks the vectorised sweep against.
    # ------------------------------------------------------------------
    def _recompute_pin(self, p: int) -> Tuple[np.ndarray, np.ndarray]:
        g = self.graph
        src = self.fanin_net_src[p]
        if src >= 0:
            at = self.at[src] + self.net_delay[p]
            slew = np.sqrt(self.slew[src] ** 2 + self.impulse2[p])
            return at, slew
        sl = slice(self._c_start[p], self._c_start[p + 1])
        idx = self._c_order[sl]
        if len(idx) == 0:
            return self.at[p].copy(), self.slew[p].copy()  # start point
        c_src = g.c_src[idx]
        c_tin = g.c_tin[idx]
        c_tout = g.c_tout[idx]
        slew_in = np.clip(self.slew[c_src, c_tin], 0.0, 1e6)
        load = np.full(len(idx), self.driver_load[p])
        delay = g.lutbank.lookup(g.c_lut_delay[idx], slew_in, load)
        out_slew = g.lutbank.lookup(g.c_lut_slew[idx], slew_in, load)
        at_cand = self.at[c_src, c_tin] + delay
        at = np.full(2, -1e30)
        slew = np.zeros(2)
        for t in (RISE, FALL):
            m = c_tout == t
            if np.any(m):
                at[t] = at_cand[m].max()
                slew[t] = out_slew[m].max()
        return at, slew

    def _endpoint_slack(self, p: int) -> float:
        g = self.graph
        period = self.design.constraints.clock_period
        if p in self._setup_index:
            k = self._setup_index[p]
            slacks = np.empty(2)
            for t in (RISE, FALL):
                setup_time = g.lutbank.lookup(
                    np.array([g.setup_lut[k, t]]),
                    np.array([np.clip(self.slew[p, t], 0.0, 1e6)]),
                    np.array([g.clock_slew]),
                )[0]
                slacks[t] = (period - setup_time) - self.at[p, t]
            return float(slacks.min())
        # Output port endpoint.
        which = np.nonzero(g.po_pins == p)[0][0]
        rat = period - g.po_output_delay[which]
        return float((rat - self.at[p]).min())

    # ------------------------------------------------------------------
    def move(
        self,
        cells: Iterable[int],
        new_x: Iterable[float],
        new_y: Iterable[float],
    ) -> Tuple[float, float]:
        """Move cells and incrementally refresh timing; returns (WNS, TNS)."""
        design = self.design
        g = self.graph
        cells = list(cells)
        for ci, nx_, ny_ in zip(cells, new_x, new_y):
            self.x[ci] = nx_
            self.y[ci] = ny_
        self.n_incremental_updates += 1

        # Nets touching any moved cell.
        nets: Set[int] = set()
        for ci in cells:
            sl = slice(self._cell_pin_start[ci], self._cell_pin_start[ci + 1])
            for p in self._cell_pins[sl]:
                ni = design.pin2net[p]
                if ni >= 0:
                    nets.add(int(ni))
        with PROFILER.stage("incremental.reroute"):
            self._reroute_nets(sorted(nets))

        # Dirty pins: sinks of changed nets (net-arc values changed) and
        # drivers of changed nets (their input cell arcs see a new load).
        dirty: Set[int] = set()
        for ni in nets:
            if design.net_is_clock[ni]:
                continue
            driver = design.net_driver[ni]
            for p in design.net_pins(ni):
                dirty.add(int(p))
            if driver >= 0:
                dirty.add(int(driver))

        with PROFILER.stage("incremental.sweep"):
            touched_endpoints = self._sweep(
                np.fromiter(dirty, dtype=np.int64, count=len(dirty))
            )
        with PROFILER.stage("incremental.endpoints"):
            self._refresh_endpoint_slacks(touched_endpoints)
        self._refresh_totals()
        recorder = current_recorder()
        # Throttled: one event per 32 moves keeps high-churn ECO loops
        # from dominating the stream.
        if recorder is not None and (self.n_incremental_updates & 31) == 1:
            recorder.event(
                "incremental",
                updates=self.n_incremental_updates,
                pins_recomputed=self.n_pins_recomputed,
                wns=self.wns,
                tns=self.tns,
            )
        return self.wns, self.tns

    def counters(self) -> Dict[str, int]:
        """Cumulative work counters for telemetry/reporting."""
        return {
            "incremental_updates": self.n_incremental_updates,
            "pins_recomputed": self.n_pins_recomputed,
        }

    # ------------------------------------------------------------------
    # Batched level-ordered sweep
    # ------------------------------------------------------------------
    @staticmethod
    def _gather_csr(
        starts: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        """Flat indices of the CSR runs ``starts[i] : starts[i]+counts[i]``."""
        total = int(counts.sum())
        if total == 0:
            return np.zeros(0, dtype=np.int64)
        ends = np.cumsum(counts)
        offsets = np.arange(total) - np.repeat(ends - counts, counts)
        return np.repeat(starts, counts) + offsets

    def _split_by_level(self, pins: np.ndarray) -> List[np.ndarray]:
        """Partition a pin vector into per-level chunks (ascending level)."""
        lv = self.graph.level[pins]
        order = np.argsort(lv, kind="stable")
        pins, lv = pins[order], lv[order]
        bounds = np.nonzero(np.diff(lv))[0] + 1
        return np.split(pins, bounds)

    def _recompute_level(self, pins: np.ndarray) -> None:
        """Recompute AT/slew of one level's dirty pins in a single batch.

        Net-arc sinks replay the shared :func:`net_forward_level` kernel;
        cell-arc sinks gather all of their fan-in contributions from the
        CSR table and replay :func:`cell_forward_exact` (the hard-max
        sibling of the differentiable timer's level kernel).  Start points
        (no fan-in at all) keep their boundary values.
        """
        g = self.graph
        srcs = self.fanin_net_src[pins]
        net_mask = srcs >= 0
        net_sinks = pins[net_mask]
        if len(net_sinks):
            net_forward_level(
                net_sinks, srcs[net_mask],
                self.net_delay, self.impulse2, self.at, self.slew,
            )
        cell_sinks = pins[~net_mask]
        if len(cell_sinks):
            starts = self._c_start[cell_sinks]
            counts = self._c_start[cell_sinks + 1] - starts
            cell_sinks = cell_sinks[counts > 0]
            idx = self._c_order[
                self._gather_csr(starts[counts > 0], counts[counts > 0])
            ]
            if len(cell_sinks):
                # Exact recompute from *all* fan-ins: reset, scatter-max.
                self.at[cell_sinks] = _AT_SENTINEL
                self.slew[cell_sinks] = 0.0
                cell_forward_exact(
                    idx, g.c_src, g.c_dst, g.c_tin, g.c_tout,
                    g.c_lut_delay, g.c_lut_slew, g.lutbank,
                    self.driver_load, self.at, self.slew,
                )

    def _sweep(self, dirty: np.ndarray) -> np.ndarray:
        """Level-ordered batched sweep of the affected cone.

        Returns the endpoint pins whose slack needs refreshing.  Levels
        strictly increase along propagation edges, so each level is
        finalised in one batch before any of its fan-out levels runs.
        """
        worklist: Dict[int, List[np.ndarray]] = {}
        if len(dirty):
            for chunk in self._split_by_level(dirty):
                worklist[int(self.graph.level[chunk[0]])] = [chunk]
        touched: List[np.ndarray] = []
        while worklist:
            level = min(worklist)
            pins = np.unique(np.concatenate(worklist.pop(level)))
            self.n_pins_recomputed += len(pins)
            old_at = self.at[pins].copy()
            old_slew = self.slew[pins].copy()
            self._recompute_level(pins)
            touched.append(pins[self._is_endpoint[pins]])
            changed = (
                np.abs(self.at[pins] - old_at).max(axis=1) > _EPS
            ) | (np.abs(self.slew[pins] - old_slew).max(axis=1) > _EPS)
            changed_pins = pins[changed]
            if not len(changed_pins):
                continue
            starts = self._out_start[changed_pins]
            counts = self._out_start[changed_pins + 1] - starts
            succ = self._out_dst[self._gather_csr(starts, counts)]
            if not len(succ):
                continue
            for chunk in self._split_by_level(np.unique(succ)):
                worklist.setdefault(
                    int(self.graph.level[chunk[0]]), []
                ).append(chunk)
        if not touched:
            return np.zeros(0, dtype=np.int64)
        return np.unique(np.concatenate(touched))

    def _refresh_endpoint_slacks(self, pins: np.ndarray) -> None:
        """Batched slack refresh for the given endpoint pins."""
        if not len(pins):
            return
        g = self.graph
        period = self.design.constraints.clock_period
        ep_idx = self._endpoint_idx_of_pin[pins]
        setup_idx = self._setup_idx_of_pin[pins]
        is_setup = setup_idx >= 0
        sp = pins[is_setup]
        if len(sp):
            k = setup_idx[is_setup]
            slacks = np.empty((len(sp), 2))
            clock_slew = np.full(len(sp), g.clock_slew)
            for t in (RISE, FALL):
                setup_time = g.lutbank.lookup(
                    g.setup_lut[k, t],
                    np.clip(self.slew[sp, t], 0.0, SLEW_CLIP_MAX),
                    clock_slew,
                )
                slacks[:, t] = (period - setup_time) - self.at[sp, t]
            self.ep_slack[ep_idx[is_setup]] = slacks.min(axis=1)
        pp = pins[~is_setup]
        if len(pp):
            rat = period - g.po_output_delay[self._po_idx_of_pin[pp]]
            self.ep_slack[ep_idx[~is_setup]] = (
                rat[:, None] - self.at[pp]
            ).min(axis=1)

    # ------------------------------------------------------------------
    def verify(self, rtol: float = 1e-6, atol: float = 1e-6) -> "VerifyReport":
        """Cross-check the incremental state against a full re-analysis.

        Returns a :class:`VerifyReport` that is truthy when the state
        matches (so ``assert timer.verify()`` still works) and, on a
        mismatch, names the worst-offending endpoint pin and the
        magnitude of the slack/WNS/TNS drift - the data actually needed to
        debug a divergent incremental update.

        Note: the full analysis re-routes every net from scratch, so trees
        of *unmoved* nets must coincide; this holds because RSMT
        construction is deterministic in the pin coordinates.
        """
        result = self._sta.run(self.x, self.y)
        delta = np.abs(self.ep_slack - result.endpoint_slack)
        tolerance = atol + rtol * np.abs(result.endpoint_slack)
        slack_ok = bool(np.all(delta <= tolerance))
        wns_delta = self.wns - result.wns_setup
        tns_delta = self.tns - result.tns_setup
        wns_ok = abs(wns_delta) <= atol + rtol * abs(result.wns_setup)
        tns_ok = abs(tns_delta) <= atol + rtol * abs(result.tns_setup)

        worst_pin = -1
        worst_pin_name = ""
        worst_delta = 0.0
        if len(delta):
            k = int(np.argmax(delta - tolerance))
            worst_pin = int(self.graph.endpoint_pins[k])
            worst_pin_name = self.design.pin_name[worst_pin]
            worst_delta = float(delta[k])
        return VerifyReport(
            ok=slack_ok and wns_ok and tns_ok,
            worst_endpoint_pin=worst_pin,
            worst_endpoint_name=worst_pin_name,
            worst_slack_delta=worst_delta,
            wns_delta=float(wns_delta),
            tns_delta=float(tns_delta),
            n_endpoints=len(delta),
        )
